//! The [`Strategy`] trait and the built-in strategies the workspace uses:
//! numeric ranges, tuples, [`Just`], [`any`], unions (`prop_oneof!`),
//! recursive strategies, and a small string-pattern subset.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces one concrete value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds values recursively: `self` is the leaf strategy, and
    /// `recurse` wraps an inner strategy into a deeper one. `depth` bounds
    /// the nesting; the remaining size hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (backs `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_inclusive(0, self.options.len() - 1);
        self.options[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain; see [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * unit;
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

macro_rules! strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// The character alphabet and length bounds a string pattern denotes.
#[derive(Debug, Clone)]
struct StringPattern {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

/// Printable fuzz alphabet for `.` and `\PC`: all printable ASCII (which
/// includes quotes, braces, backslash — the characters parsers trip on)
/// plus a few multi-byte scalars to exercise UTF-8 handling.
fn printable_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (0x20u8..=0x7E).map(char::from).collect();
    chars.extend(['æ', 'ø', 'å', 'Æ', 'Ø', 'Å', 'µ', '…', '中', '🦀']);
    chars
}

/// Parses the supported pattern subset: an atom (`.`, `\PC`, or a character
/// class `[...]` with ranges and literals) followed by a `{lo,hi}` counted
/// repetition. Panics on anything else, naming the unsupported pattern.
fn parse_pattern(pattern: &str) -> StringPattern {
    let unsupported = || -> ! {
        panic!(
            "string strategy pattern {pattern:?} is outside the supported \
             subset (`.`, `\\PC`, or `[...]`, followed by `{{lo,hi}}`)"
        )
    };

    let (atom, rep) = match pattern.find('{') {
        Some(i) => pattern.split_at(i),
        None => unsupported(),
    };
    let rep = rep.strip_prefix('{').and_then(|r| r.strip_suffix('}')).unwrap_or_else(|| unsupported());
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => match (a.trim().parse(), b.trim().parse()) {
            (Ok(lo), Ok(hi)) => (lo, hi),
            _ => unsupported(),
        },
        None => unsupported(),
    };
    if lo > hi {
        unsupported();
    }

    let alphabet = match atom {
        "." | "\\PC" => printable_alphabet(),
        class if class.starts_with('[') && class.ends_with(']') => {
            let inner: Vec<char> = class[1..class.len() - 1].chars().collect();
            let mut chars = Vec::new();
            let mut i = 0;
            while i < inner.len() {
                let c = match inner[i] {
                    '\\' if i + 1 < inner.len() => {
                        i += 1;
                        inner[i]
                    }
                    c => c,
                };
                // `a-z` range, unless the `-` is the final character.
                if i + 2 < inner.len() && inner[i + 1] == '-' {
                    let end = inner[i + 2];
                    if c > end {
                        unsupported();
                    }
                    chars.extend(c..=end);
                    i += 3;
                } else {
                    chars.push(c);
                    i += 1;
                }
            }
            if chars.is_empty() {
                unsupported();
            }
            chars
        }
        _ => unsupported(),
    };
    StringPattern { alphabet, min_len: lo, max_len: hi }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let p = parse_pattern(self);
        let n = rng.usize_inclusive(p.min_len, p.max_len);
        (0..n)
            .map(|_| p.alphabet[rng.usize_inclusive(0, p.alphabet.len() - 1)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let (a, b) = (0i64..30, 1i64..8).generate(&mut rng);
            assert!((0..30).contains(&a) && (1..8).contains(&b));
            let f = (90.0f64..200.0).generate(&mut rng);
            assert!((90.0..200.0).contains(&f));
            let d = (0i64..=5).generate(&mut rng);
            assert!((0..=5).contains(&d));
        }
    }

    #[test]
    fn negative_spans_sample_uniformly() {
        let mut rng = rng();
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = (i64::MIN / 2..i64::MAX / 2).generate(&mut rng);
            assert!((i64::MIN / 2..i64::MAX / 2).contains(&v));
            lo_seen |= v < 0;
            hi_seen |= v > 0;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[ -~]{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));

            let soup = "\\PC{0,24}".generate(&mut rng);
            assert!(soup.chars().count() <= 24);
            assert!(soup.chars().all(|c| !c.is_control()));

            let mixed = "[ -~;|,\tæøå]{0,40}".generate(&mut rng);
            assert!(mixed.chars().count() <= 40);
        }
        // The tab escape survives into the class.
        let p = parse_pattern("[a\t]{1,1}");
        assert!(p.alphabet.contains(&'\t'));
    }

    #[test]
    fn union_map_and_recursive_compose() {
        let mut rng = rng();
        let leaf = crate::prop_oneof![Just("a".to_owned()), Just("b".to_owned())];
        let tree = leaf.prop_recursive(2, 10, 2, |inner| {
            (inner.clone(), inner).prop_map(|(x, y)| format!("({x}{y})"))
        });
        let mut max_len = 0;
        for _ in 0..300 {
            let s = tree.generate(&mut rng);
            assert!(!s.is_empty());
            max_len = max_len.max(s.len());
        }
        // Recursion actually nests at least once.
        assert!(max_len > 1, "max {max_len}");
    }

    #[test]
    fn vec_strategy_obeys_size() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u64>(), 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }
}
