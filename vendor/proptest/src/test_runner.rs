//! Test-runner support types: configuration, case errors, and the
//! deterministic RNG strategies draw from.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented here.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// A failed property case (assertion message).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator behind every strategy: xoshiro256++ seeded
/// from a hash of the property's name, so runs are reproducible without
/// persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary name (e.g. the test function's
    /// identifier).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then splitmix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 uniform bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as usize;
        }
        lo + (self.next_u64() % (span + 1)) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usize_inclusive_covers_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.usize_inclusive(0, 3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.usize_inclusive(5, 5), 5);
    }
}
