//! Minimal, dependency-free stand-in for the subset of the `proptest` 1.x
//! API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be resolved. This crate re-implements the pieces the
//! workspace's property tests rely on:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_recursive`, and `boxed`;
//! * strategies for numeric ranges, tuples, [`Just`](strategy::Just),
//!   [`any`](strategy::any), `prop_oneof!`, string patterns (a small
//!   character-class/repetition subset), and
//!   [`collection::vec`](collection::vec);
//! * the `proptest!` macro with `#![proptest_config(...)]`, plus
//!   `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: case generation is seeded
//! deterministically from the test name (fully reproducible runs, no
//! persistence files) and there is **no shrinking** — a failing case reports
//! the assertion message and case number only.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between heterogeneous strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($($strategy,)+);
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
