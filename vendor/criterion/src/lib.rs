//! Minimal, dependency-free stand-in for the subset of the `criterion` 0.5
//! API this workspace's benches use (`Criterion`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros).
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be resolved. This harness keeps the bench binaries
//! compiling and producing useful numbers: each benchmark runs a short
//! calibration pass, then a fixed number of timed samples, and prints the
//! median, min, and max per-iteration wall time. There is no statistical
//! analysis, outlier rejection, or HTML report.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark (calibration + samples).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(300);

/// One benchmark's timing context, passed to the closure given to
/// [`Criterion::bench_function`] and friends.
pub struct Bencher {
    /// Median per-iteration time of the timed samples, filled by `iter`.
    median: Duration,
    lo: Duration,
    hi: Duration,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            median: Duration::ZERO,
            lo: Duration::ZERO,
            hi: Duration::ZERO,
            sample_count,
        }
    }

    /// Times `f`, storing median/min/max per-iteration durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in a slice of the target time?
        let calibrate_until = TARGET_SAMPLE_TIME / 4;
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < calibrate_until {
            black_box(f());
            iters += 1;
        }
        let per_sample = (iters / self.sample_count as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed() / per_sample as u32);
        }
        samples.sort();
        self.median = samples[samples.len() / 2];
        self.lo = samples[0];
        self.hi = samples[samples.len() - 1];
    }
}

fn report(name: &str, b: &Bencher) {
    println!(
        "{name:<44} time: [{} {} {}]",
        fmt_duration(b.lo),
        fmt_duration(b.median),
        fmt_duration(b.hi)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// An identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id shown as `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The top-level benchmark driver; one per bench binary.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(11);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            sample_count: 11,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(3);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // `--test`, in which case the harness must exit without running
            // (matching real criterion's cargo_bench_support behaviour).
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(5);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.median > Duration::ZERO);
        assert!(b.lo <= b.median && b.median <= b.hi);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("consensus", 10).id, "consensus/10");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
