//! Minimal, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` convenience methods `gen`, `gen_bool`, `gen_range`).
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be resolved; this crate keeps the workspace self-contained.
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! for a given seed, statistically solid for synthetic-data purposes, and
//! explicitly **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it internally.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce from raw bits.
pub trait StandardSample: Sized {
    /// Draws one value from the "standard" distribution for the type
    /// (uniform over the domain; `[0, 1)` for floats).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (uniform over the domain; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        f64::standard_sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with splitmix64, as rand_core does.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(2016);
        let mut b = StdRng::seed_from_u64(2016);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(110..180);
            assert!((110..180).contains(&v));
            let f = rng.gen_range(10.0f64..100.0);
            assert!((10.0..100.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            let n = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
