#!/bin/bash
# CI gate: release build, full test suite, the repo's own static-analysis
# pass (pastas-lint), and a warning-free clippy pass over every target
# (benches and examples included). Stricter than
# scripts/tier1.sh (which trades lint coverage for a paper-scale smoke
# run); run both before merging.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

stage() {
    local name="$1"
    shift
    local t0 t1
    t0=$(date +%s)
    "$@"
    t1=$(date +%s)
    printf 'ci: %-36s %5ds\n' "$name" "$((t1 - t0))" >&2
}

stage "cargo build --release" cargo build --release
stage "cargo test" cargo test -q
# Repo-specific invariants (DESIGN.md §9 and §14): no panics on hot
# paths, no wall clocks in determinism layers, budget-clamped
# allocations, plus the interprocedural flow rules (lock-order cycles,
# blocking calls under locks, transitive hot-path panics, guards across
# snapshot publication). Findings land in SARIF for tooling; anything
# not recorded in lint-baseline.json fails the gate.
lint_stage() {
    cargo run -q -p pastas-lint -- --workspace --format=sarif \
        --baseline=lint-baseline.json > target/pastas-lint.sarif
}
stage "lint (pastas-lint, sarif)" lint_stage
# The first run above primed target/pastas-lint.cache; a warm incremental
# run must come back fast (the whole point of the file-hash cache).
warm_lint_stage() {
    local w0 w1 warm_ms
    w0=$(date +%s%N)
    cargo run -q -p pastas-lint -- --workspace --format=sarif \
        --baseline=lint-baseline.json > /dev/null
    w1=$(date +%s%N)
    warm_ms=$(((w1 - w0) / 1000000))
    echo "ci: warm lint run took ${warm_ms}ms" >&2
    if [ "$warm_ms" -ge 2000 ]; then
        echo "ci: warm incremental lint exceeded 2000ms" >&2
        return 1
    fi
}
stage "lint (warm incremental <2s)" warm_lint_stage
stage "cargo clippy (deny warnings)" cargo clippy --all-targets -- -D warnings
# Planner smoke: differential scan-vs-plan check over a battery of query
# shapes (positive, negated, counted, compound, disjunctive, demographic)
# on a small synth collection, asserting the has∧lacks shape is served by
# posting-list set algebra. Exits non-zero on any mismatch.
stage "planner smoke (differential)" \
    cargo run --release --example plan_explain -- --smoke --patients 2000
# The same differential battery at one million patients on the sharded
# store (an arena per 65,536 patients — one per index shard): every
# index-servable shape must stay index-served and execute its plan
# inside the paper-interactive 100 ms budget.
stage "planner smoke (sharded 1M)" \
    cargo run --release --example plan_explain -- --smoke --patients 1000000 \
    --shard-patients 65536 --budget-ms 100
# Temporal smoke: every seq(...) shape's planned result must equal the
# full scan, code-bearing patterns must execute as an index-prefiltered
# PatternScan (no full-scan operator, nonzero candidate/automaton-run
# stats), and cover-free patterns must plan to an honest full scan.
stage "temporal smoke (pattern scans)" \
    cargo run --release --example plan_explain -- --smoke-temporal --patients 2000
# Loopback smoke of the serve layer: starts a real server on an
# OS-assigned port, fires every endpoint (including /select?explain=1 on
# a negated compound query, asserting an index-served plan), asserts
# 200s, a response-cache hit on the repeated /select, zero worker panics,
# and a graceful shutdown. Exits non-zero on any failed check.
stage "serve smoke (loopback)" \
    cargo run --release --example serve_cohorts -- --smoke --patients 1500
# Streaming-ingest smoke: POST one /ingest delta per source format for a
# brand-new patient, force a synchronous /compact, and assert the patient
# is selectable (+1 on its cohort), has a timeline, and that the ingest
# gauges read fully drained (zero queue depth, zero side-index rows, at
# least one compaction). Exits non-zero on any failed check.
stage "ingest smoke (streaming)" \
    cargo run --release --example serve_cohorts -- --smoke-ingest --patients 1500
# Materialized-cohort smoke: POST /cohort freezes a selection, the three
# /cohort/{id}/* reads answer over the frozen bitmap, an ingest delta +
# /compact turns the handle 410 Gone (with a re-materialize hint), and
# re-materializing at the new version sees the streamed patient. Also
# asserts the registry gauges on /metrics. Exits non-zero on any failure.
stage "analytics smoke (cohort registry)" \
    cargo run --release --example serve_cohorts -- --smoke-analytics --patients 1500

echo "ci: all stages passed" >&2
