#!/bin/bash
# Tier-1 gate: release build, full test suite, and a smoke run of the
# paper-scale cohort-selection example (down-scaled so the whole script
# stays CI-sized). Prints the wall-clock budget of each stage.
#
# Usage: scripts/tier1.sh [smoke-patients]   (default 8000)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_PATIENTS="${1:-8000}"

stage() {
    local name="$1"
    shift
    local t0 t1
    t0=$(date +%s)
    "$@"
    t1=$(date +%s)
    printf 'tier1: %-28s %5ds\n' "$name" "$((t1 - t0))" >&2
}

stage "cargo build --release" cargo build --release
stage "cargo test" cargo test -q
stage "smoke: cohort_selection_168k" \
    cargo run --release -q -p pastas-core --example cohort_selection_168k -- \
    --patients "$SMOKE_PATIENTS"

echo "tier1: all stages passed" >&2
