//! End-to-end streaming convergence: a live server fed the four source
//! registries as chunked `POST /ingest` increments — while a reader
//! hammers `/select` — must, after a quiesce + `POST /compact`, answer
//! every cohort query with exactly the counts of a from-scratch batch
//! build over the same raw text.
//!
//! The assertions are order-independent equalities, so the test is
//! deterministic under `PASTAS_THREADS=1` and correct under any thread
//! interleaving: reads never block (every in-flight `/select` answers
//! 200 from some published snapshot), and the final counts do not depend
//! on how the increments interleaved with background compactions.

use pastas_core::prelude::*;
use pastas_serve::{client, serve, ServerConfig};
use pastas_synth::emit::{emit, MessConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Split one source text into `chunk_rows`-row increments, each carrying
/// the header line so every chunk is a well-formed mini-file.
fn chunks(text: &str, chunk_rows: usize) -> Vec<String> {
    let mut lines = text.lines();
    let Some(header) = lines.next() else { return Vec::new() };
    let rows: Vec<&str> = lines.collect();
    rows.chunks(chunk_rows)
        .map(|rows| {
            let mut out = String::with_capacity(header.len() + rows.len() * 40);
            out.push_str(header);
            out.push('\n');
            for row in rows {
                out.push_str(row);
                out.push('\n');
            }
            out
        })
        .collect()
}

/// POST one increment, retrying on 429 backpressure after the advertised
/// `Retry-After` (capped low: this is a loopback test).
fn post_with_backoff(addr: std::net::SocketAddr, path: &str, body: &str) {
    let timeout = Duration::from_secs(30);
    for _attempt in 0..200 {
        let resp = client::post(addr, path, body.as_bytes(), timeout).expect("post");
        match resp.status {
            202 => return,
            429 => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("unexpected ingest status {other}: {}", resp.body_str()),
        }
    }
    panic!("ingest queue never drained");
}

fn server_count(addr: std::net::SocketAddr, query: &str) -> u64 {
    let resp = client::post(
        addr,
        "/select?count_only=1",
        query.as_bytes(),
        Duration::from_secs(30),
    )
    .expect("select");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let body = resp.body_str().into_owned();
    pastas_ingest::json::Json::parse(&body)
        .ok()
        .and_then(|doc| doc.get("count").and_then(|c| c.as_f64()))
        .map(|v| v as u64)
        .expect("count field")
}

#[test]
fn concurrent_ingest_converges_to_the_batch_build() {
    let population = generate_population(SynthConfig::with_patients(120), 23);
    let raw = emit(&population, MessConfig::default());

    // The oracle: one batch aggregation of the same raw text.
    let batch = Workbench::from_raw_sources(pastas_ingest::SourceTexts {
        persons: &raw.persons,
        claims: &raw.claims,
        hospital: &raw.hospital,
        municipal: &raw.municipal,
        prescriptions: &raw.prescriptions,
    });

    // The system under test starts EMPTY and learns everything from the
    // stream. Tight queue + low threshold: backpressure (429) and
    // background compactions both actually happen during the run.
    let config = ServerConfig {
        workers: 4,
        ingest_queue_capacity: 4,
        compact_threshold: 16,
        ..ServerConfig::default()
    };
    let handle = serve(Workbench::from_collection(HistoryCollection::new()), config)
        .expect("bind");
    let addr = handle.addr();

    // A reader hammering /select the whole time: reads must never block
    // on ingest or compaction — every request answers 200 promptly from
    // whichever snapshot is current.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _ = server_count(addr, "has(T90)");
                served += 1;
            }
            served
        })
    };

    // Persons first (the linkage anchor), then the four event sources as
    // interleaved small increments.
    for chunk in chunks(&raw.persons, 25) {
        post_with_backoff(addr, "/ingest?format=persons", &chunk);
    }
    let streams = [
        ("claims", chunks(&raw.claims, 40)),
        ("hospital", chunks(&raw.hospital, 40)),
        ("municipal", chunks(&raw.municipal, 40)),
        ("prescriptions", chunks(&raw.prescriptions, 40)),
    ];
    let mut pending: Vec<(String, std::collections::VecDeque<String>)> = streams
        .into_iter()
        .map(|(format, chunks)| (format!("/ingest?format={format}"), chunks.into()))
        .collect();
    // Round-robin across sources so increments of different formats
    // interleave at the server.
    while pending.iter().any(|(_, q)| !q.is_empty()) {
        for (path, queue) in &mut pending {
            if let Some(chunk) = queue.pop_front() {
                post_with_backoff(addr, path, &chunk);
            }
        }
    }

    // Quiesce: no more writers; one synchronous /compact applies every
    // 202'd batch and folds the side-index.
    let resp = client::post(addr, "/compact", b"", Duration::from_secs(60)).expect("compact");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert!(resp.body_str().contains("\"side_rows\":0"), "{}", resp.body_str());

    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().expect("reader thread");
    assert!(reads > 0, "the reader actually exercised /select during ingest");

    // Convergence: every cohort count equals the batch oracle's.
    let queries = [
        "has(T90)",
        "lacks(T90)",
        "has(K.*) and lacks(T90)",
        "has(T90) and has(A.*)",
    ];
    let reference = batch.collection().stats().last.map(|dt| dt.date());
    for query in queries {
        let oracle = {
            let parsed = pastas_query::parse_query(
                query,
                reference.unwrap_or(Date::new(2013, 1, 1).unwrap()),
            )
            .expect("query parses");
            batch.select_positions(&parsed).len() as u64
        };
        assert_eq!(
            server_count(addr, query),
            oracle,
            "streamed counts diverge from the batch build for {query:?}"
        );
    }

    // The gauges agree: all debt folded, at least one compaction ran
    // (the threshold was 16 rows against a 120-patient stream).
    let metrics = client::get(addr, "/metrics", Duration::from_secs(30)).expect("metrics");
    let doc = pastas_ingest::json::Json::parse(&metrics.body_str()).expect("metrics json");
    let gauge = |name: &str| doc.get(name).and_then(|g| g.as_f64()).unwrap_or(-1.0);
    assert_eq!(gauge("side_index_rows"), 0.0);
    assert_eq!(gauge("ingest_queue_depth"), 0.0);
    assert_eq!(gauge("ingest_pending_entries"), 0.0);
    assert!(gauge("compactions_total") >= 1.0);
    assert_eq!(gauge("patients"), batch.collection().len() as f64);
    assert_eq!(gauge("worker_panics"), 0.0);

    handle.shutdown();
}
