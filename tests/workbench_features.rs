//! Integration of the workbench extension features: session history,
//! extraction round-trips, exposure derivation, indicators, clustering,
//! the overview mode and the event chart — Shneiderman's full task
//! taxonomy exercised end-to-end on one synthetic cohort.

use pastas_core::exposure::{medication_exposures, with_exposures};
use pastas_core::indicators::indicators;
use pastas_core::prelude::*;
use pastas_query::SortKey;

fn workbench(n: usize, seed: u64) -> Workbench {
    Workbench::from_collection(generate_collection(SynthConfig::with_patients(n), seed))
}

#[test]
fn session_replay_reaches_the_same_view() {
    let mut s1 = Session::new(workbench(150, 3));
    s1.apply(ViewCommand::Sort(SortKey::EntryCount)).unwrap();
    s1.apply(ViewCommand::AlignOnCode("T90".into())).unwrap();
    s1.apply(ViewCommand::SetFilter(Some(EntryPredicate::IsDiagnosis))).unwrap();

    // Replaying the recorded history on a fresh session converges to the
    // same rendered view.
    let commands: Vec<ViewCommand> = s1.history().into_iter().cloned().collect();
    let mut s2 = Session::new(workbench(150, 3));
    for c in commands {
        s2.apply(c).unwrap();
    }
    assert_eq!(
        s1.workbench().render_svg(600.0, 300.0),
        s2.workbench().render_svg(600.0, 300.0),
        "replayed session renders identically"
    );

    // Undo all the way back equals the initial view.
    let initial = workbench(150, 3).render_svg(600.0, 300.0);
    while s1.undo() {}
    assert_eq!(s1.workbench().render_svg(600.0, 300.0), initial);
}

#[test]
fn extraction_round_trip_preserves_query_results() {
    let wb = workbench(300, 9);
    let q = QueryBuilder::new().has_code("T90|K86").unwrap().build();
    let before = wb.select_ids(&q);

    let json = to_json(wb.collection());
    let reloaded = from_json(&json).expect("round trip");
    let wb2 = Workbench::from_collection(reloaded);
    let after = wb2.select_ids(&q);
    assert_eq!(before, after, "queries agree across the export/import cycle");

    // CSV row count equals entry count.
    let csv = to_csv(wb.collection());
    assert_eq!(csv.lines().count() - 1, wb.collection().stats().entries);
}

#[test]
fn derived_exposures_become_medication_bands_in_the_scene() {
    let wb = workbench(400, 11);
    // Find a patient with several dispensings.
    let h = wb
        .collection()
        .iter()
        .find(|h| {
            h.entries()
                .iter()
                .filter(|e| matches!(e.payload(), PayloadRef::Medication(_)))
                .count()
                >= 6
        })
        .expect("a medicated patient");
    let eras = medication_exposures(h, Duration::days(120));
    assert!(!eras.is_empty());
    let enriched = with_exposures(h, Duration::days(120));
    assert_eq!(enriched.len(), h.len() + eras.len());

    // Render the enriched single-patient view: medication bands appear.
    let c = HistoryCollection::from_histories([enriched]);
    let single = Workbench::from_collection(c);
    let svg = single.render_svg(900.0, 120.0);
    assert!(svg.contains("viz-Band-medication"), "exposure bands rendered");
}

#[test]
fn indicator_panels_scale_with_cohort_severity() {
    let wb = workbench(3_000, 13);
    let from = Date::new(2013, 1, 1).unwrap();
    let to = Date::new(2015, 1, 1).unwrap();
    let everyone = indicators(wb.collection(), from, to);
    let diabetics = wb.select(&QueryBuilder::new().has_code("T90").unwrap().build());
    let dm = indicators(diabetics.collection(), from, to);
    assert!(dm.gp_contacts_per_py > everyone.gp_contacts_per_py);
    assert!(dm.polypharmacy_rate > everyone.polypharmacy_rate);
    let table = dm.to_table();
    assert!(table.contains("GP contacts"));
}

#[test]
fn overview_and_detail_views_show_the_same_filter() {
    let mut wb = workbench(500, 17);
    wb.set_filter(Some(EntryPredicate::code_regex("T90").unwrap()));
    let overview = wb.render_overview_svg(600.0, 200.0);
    let vp = wb.default_viewport(600.0, 400.0);
    let (_, hits) = wb.layout(&vp);
    // Detail view shows only T90 under the filter; the overview renders
    // *some* cells iff any T90 exists.
    let any_t90 = hits.iter().any(|r| r.details.contains("T90"));
    assert!(hits.iter().all(|r| r.details.contains("T90")));
    assert_eq!(overview.contains("viz-Overview-cell"), any_t90);
}

#[test]
fn event_chart_and_pattern_query_agree() {
    use pastas_viz::eventchart::{collect_rows, render_event_chart, EventChartOptions};
    let wb = workbench(2_000, 19);
    let readmit = TemporalPattern::starting_with(EntryPredicate::IsInterval)
        .then(GapBound::within(Duration::days(30)), EntryPredicate::IsInterval);
    let rows = collect_rows(wb.collection(), &readmit);
    let total_hits: usize = wb
        .collection()
        .iter()
        .map(|h| readmit.find_matches(h).len())
        .sum();
    assert_eq!(rows.len(), total_hits);
    let (scene, hits) = render_event_chart(wb.collection(), &rows, &EventChartOptions::default());
    if !rows.is_empty() {
        assert!(!scene.is_empty());
        assert_eq!(
            hits.iter().map(|r| r.row).collect::<std::collections::HashSet<_>>().len(),
            rows.len(),
            "every hit row has registered regions"
        );
    }
}

#[test]
fn similarity_clustering_flows_into_rendering() {
    let wb0 = workbench(800, 23);
    let q = QueryBuilder::new().has_code("T90|R95|P76").unwrap().build();
    let mut cohort = wb0.select(&q);
    if cohort.collection().len() < 6 {
        return; // pathological seed; other tests cover small cohorts
    }
    let assignment = cohort.sort_by_similarity(3);
    assert_eq!(assignment.len(), cohort.collection().len());
    let svg = cohort.render_svg(800.0, 500.0);
    assert!(svg.contains("viz-Row-bar"));
}
