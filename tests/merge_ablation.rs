//! The E9 ablation as a correctness test: NSEPter's serial merge vs the
//! alignment consensus on noisy shared pathways.
//!
//! §II.A.1 claims the serial merge "would miss an opportunity to merge
//! nodes if two histories differed in one single position" and that input
//! order mattered; §II.A.2's alignment methods were built to fix that.
//! Here we verify both claims hold for our implementations.

use pastas_align::consensus::consensus_sequence;
use pastas_align::Scoring;
use pastas_codes::Code;
use pastas_graph::{merge_neighbors, merge_on_regex, DiGraph};
use pastas_regex::Regex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TRUE_PATHWAY: [&str; 5] = ["A01", "T90", "K74", "K77", "A97"];

fn seq(codes: &[&str]) -> Vec<Code> {
    codes.iter().map(|c| Code::icpc(c)).collect()
}

/// Generate `n` copies of the true pathway, each corrupted with `k`
/// random single-position edits (insert / delete / substitute).
fn noisy_copies(n: usize, k: usize, rng: &mut StdRng) -> Vec<Vec<Code>> {
    let noise_pool = ["R05", "D01", "H71", "A04"];
    (0..n)
        .map(|_| {
            let mut s: Vec<&str> = TRUE_PATHWAY.to_vec();
            for _ in 0..k {
                match rng.gen_range(0..3) {
                    0 => {
                        // insert
                        let at = rng.gen_range(0..=s.len());
                        s.insert(at, noise_pool[rng.gen_range(0..noise_pool.len())]);
                    }
                    1 if s.len() > 2 => {
                        // delete a non-anchor position
                        let at = rng.gen_range(0..s.len());
                        if s[at] != "T90" {
                            s.remove(at);
                        }
                    }
                    _ => {
                        // substitute
                        let at = rng.gen_range(0..s.len());
                        if s[at] != "T90" {
                            s[at] = noise_pool[rng.gen_range(0..noise_pool.len())];
                        }
                    }
                }
            }
            seq(&s)
        })
        .collect()
}

/// Fraction of the true pathway recovered (longest common subsequence /
/// pathway length).
fn recovery(recovered: &[Code]) -> f64 {
    let truth = seq(&TRUE_PATHWAY);
    let lcs = lcs_len(recovered, &truth);
    lcs as f64 / truth.len() as f64
}

fn lcs_len(a: &[Code], b: &[Code]) -> usize {
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[a.len()][b.len()]
}

/// NSEPter pathway estimate: serial merge on the anchor + neighbour merge,
/// then the heaviest chain through the anchor.
fn nsepter_pathway(seqs: &[Vec<Code>]) -> Vec<Code> {
    let mut g = DiGraph::from_sequences(seqs);
    let re = Regex::new("T90").expect("regex");
    let merged = merge_on_regex(&mut g, &re);
    let Some(&anchor) = merged.first() else { return Vec::new() };
    merge_neighbors(&mut g, &merged, 4);
    pastas_graph::merge::serial_pathway(&g, anchor)
        .into_iter()
        .map(|v| Code::icpc(&v))
        .collect()
}

#[test]
fn both_recover_the_pathway_from_clean_data() {
    let seqs: Vec<Vec<Code>> = (0..8).map(|_| seq(&TRUE_PATHWAY)).collect();
    let consensus = consensus_sequence(&seqs, 0.5, &Scoring::default());
    assert_eq!(recovery(&consensus), 1.0, "consensus on clean data");
    let nsepter = nsepter_pathway(&seqs);
    assert_eq!(recovery(&nsepter), 1.0, "NSEPter on clean data");
}

#[test]
fn consensus_beats_serial_merge_under_noise() {
    let mut rng = StdRng::seed_from_u64(4711);
    let mut consensus_total = 0.0;
    let mut nsepter_total = 0.0;
    let trials = 12;
    for _ in 0..trials {
        let seqs = noisy_copies(10, 2, &mut rng);
        consensus_total += recovery(&consensus_sequence(&seqs, 0.5, &Scoring::default()));
        nsepter_total += recovery(&nsepter_pathway(&seqs));
    }
    let consensus_mean = consensus_total / trials as f64;
    let nsepter_mean = nsepter_total / trials as f64;
    assert!(
        consensus_mean > 0.9,
        "consensus should stay near-perfect under light noise: {consensus_mean:.2}"
    );
    assert!(
        consensus_mean > nsepter_mean + 0.05,
        "consensus {consensus_mean:.2} should beat NSEPter {nsepter_mean:.2}"
    );
}

#[test]
fn consensus_is_order_independent_but_serial_merge_is_not_guaranteed_to_be() {
    let mut rng = StdRng::seed_from_u64(99);
    let seqs = noisy_copies(8, 2, &mut rng);
    let mut reversed = seqs.clone();
    reversed.reverse();

    let c1 = consensus_sequence(&seqs, 0.5, &Scoring::default());
    let c2 = consensus_sequence(&reversed, 0.5, &Scoring::default());
    assert_eq!(c1, c2, "consensus is order-independent (the paper's fix)");
    // We don't assert NSEPter *differs* (it may coincide), only that the
    // consensus invariant holds where the paper says NSEPter's did not.
}

#[test]
fn noise_sweep_shows_graceful_vs_brittle_degradation() {
    let mut rng = StdRng::seed_from_u64(2016);
    let mut prev_consensus = 1.1;
    for k in [0usize, 1, 2, 4] {
        let mut c_total = 0.0;
        let trials = 8;
        for _ in 0..trials {
            let seqs = noisy_copies(10, k, &mut rng);
            c_total += recovery(&consensus_sequence(&seqs, 0.5, &Scoring::default()));
        }
        let c_mean = c_total / trials as f64;
        assert!(
            c_mean <= prev_consensus + 0.1,
            "recovery should not improve with more noise"
        );
        if k <= 2 {
            assert!(c_mean > 0.85, "k={k}: consensus recovery {c_mean:.2}");
        }
        prev_consensus = c_mean;
    }
}
