//! End-to-end integration: synth → heterogeneous sources → aggregation →
//! cohort identification → alignment → rendering → export.

use pastas_core::prelude::*;
use pastas_synth::emit::{emit, MessConfig};

fn build_workbench(patients: usize, seed: u64, mess: MessConfig) -> Workbench {
    let pop = generate_population(SynthConfig::with_patients(patients), seed);
    let raw = emit(&pop, mess);
    Workbench::from_raw_sources(SourceTexts {
        persons: &raw.persons,
        claims: &raw.claims,
        hospital: &raw.hospital,
        municipal: &raw.municipal,
        prescriptions: &raw.prescriptions,
    })
}

#[test]
fn full_pipeline_produces_consistent_artifacts() {
    let wb = build_workbench(500, 21, MessConfig::default());
    assert_eq!(wb.collection().len(), 500);
    let quality = wb.quality().expect("raw-source build has a report");
    assert!(quality.entries_loaded > 1_000);
    assert!(quality.yield_fraction() > 0.95, "yield {:.3}", quality.yield_fraction());

    // Selection at several granularities.
    let diabetes = wb.select(&QueryBuilder::new().has_code("T90|T89|E1[014].*").unwrap().build());
    let chapter_t = wb.select(&QueryBuilder::new().has_code("T.*").unwrap().build());
    assert!(!diabetes.collection().is_empty());
    assert!(
        chapter_t.collection().len() >= diabetes.collection().len(),
        "chapter filter must be a superset of the leaf filter"
    );

    // Align, render, export.
    let mut cohort = diabetes;
    let anchored = cohort.align_on_code("T90|T89").unwrap();
    assert!(anchored > 0);
    let svg = cohort.render_svg(900.0, 500.0);
    assert!(svg.contains("viz-Axis-anchor"), "aligned view draws the anchor rule");
    let ascii = cohort.render_ascii(100, 20);
    assert!(ascii.contains('│'), "anchor rule in terminal output");

    let id = cohort.collection().histories()[0].id();
    let page = cohort.export_personal_timeline(id).unwrap();
    assert!(page.contains("<svg"));
}

#[test]
fn messy_sources_degrade_gracefully_and_are_accounted() {
    let clean = build_workbench(300, 33, MessConfig {
        duplicate_prob: 0.0,
        invalid_date_prob: 0.0,
        note_prob: 0.0,
    });
    let messy = build_workbench(300, 33, MessConfig {
        duplicate_prob: 0.15,
        invalid_date_prob: 0.02,
        note_prob: 0.2,
    });
    let (cq, mq) = (clean.quality().unwrap(), messy.quality().unwrap());
    assert!(mq.duplicates_dropped > cq.duplicates_dropped);
    assert!(mq.dropped_pre_birth > 0);
    assert!(mq.measurements_extracted > cq.measurements_extracted);
    // Dedup + validation bring the collections close: the messy build may
    // even have a few *more* entries (extracted note measurements), but
    // the diagnosis-entry counts must match exactly.
    let diag_count = |wb: &Workbench| {
        wb.collection()
            .iter()
            .flat_map(|h| h.entries())
            .filter(|e| matches!(e.payload(), PayloadRef::Diagnosis(_)))
            .count()
    };
    let (dc, dm) = (diag_count(&clean), diag_count(&messy));
    let diff = dc.abs_diff(dm) as f64 / dc as f64;
    assert!(diff < 0.03, "diagnosis counts {dc} vs {dm}");
}

#[test]
fn temporal_patterns_agree_between_query_and_manual_scan() {
    let wb = build_workbench(400, 55, MessConfig::default());
    let pattern = TemporalPattern::starting_with(EntryPredicate::code_regex("T90").unwrap())
        .then(GapBound::within(Duration::days(120)), EntryPredicate::IsInterval);
    let via_pattern: Vec<PatientId> = wb
        .collection()
        .iter()
        .filter(|h| pattern.matches(h))
        .map(|h| h.id())
        .collect();
    // Manual: T90 event followed by an interval starting within 120 days.
    let mut manual = Vec::new();
    for h in wb.collection() {
        let entries = h.entries();
        'outer: for (i, e) in entries.iter().enumerate() {
            if e.code().is_some_and(|c| c.value == "T90") {
                for later in entries.iter().skip(i + 1) {
                    if later.is_interval() {
                        let gap = later.start() - e.end();
                        if gap >= Duration::ZERO && gap <= Duration::days(120) {
                            manual.push(h.id());
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(via_pattern, manual);
}

#[test]
fn sorting_and_alignment_are_consistent_views_of_the_same_data() {
    let mut wb = build_workbench(200, 77, MessConfig::default());
    let stats_before = wb.collection().stats();
    wb.sort(&SortKey::EntryCount);
    wb.align_on_code("K86").unwrap();
    wb.sort(&SortKey::FirstEntry);
    // View operations never mutate the data.
    assert_eq!(wb.collection().stats(), stats_before);
    assert_eq!(wb.order().len(), 200);
    // The order is a permutation.
    let mut sorted = wb.order().to_vec();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..200).collect::<Vec<u32>>());
}

#[test]
fn scale_smoke_twenty_thousand() {
    // A fast sanity pass at moderately large scale (the full 168k runs in
    // the E5 example/bench).
    let collection = generate_collection(SynthConfig::with_patients(20_000), 2013);
    let wb = Workbench::from_collection(collection);
    let q = QueryBuilder::new().has_code("T90|T89|E1[014].*").unwrap().build();
    let cohort = wb.select_positions(&q);
    let selectivity = cohort.len() as f64 / 20_000.0;
    assert!(
        (0.055..0.105).contains(&selectivity),
        "selectivity {selectivity:.3} should approximate the paper's 7.7%"
    );
    // Rendering a large cohort stays bounded because layout only touches
    // visible rows.
    let svg = wb.render_svg(1200.0, 700.0);
    assert!(svg.len() < 3_000_000, "SVG size bounded by viewport, got {}", svg.len());
}
