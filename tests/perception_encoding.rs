//! The perceptual claims behind the visual encodings, verified against the
//! actual palette and glyph assignments the timeline uses.
//!
//! §II.B: good encodings keep common searches in the preattentive regime
//! and avoid conjunction search. These tests connect `pastas-perception`'s
//! models to `pastas-viz`'s concrete choices.

use pastas_core::prelude::*;
use pastas_perception::color::min_pairwise_delta_e;
use pastas_perception::{classify_search, Item, SearchCondition};
use pastas_viz::color::MEDICATION_PALETTE;

#[test]
fn medication_palette_is_perceptually_distinct() {
    let rgb: Vec<(u8, u8, u8)> = MEDICATION_PALETTE.iter().map(|c| (c.r, c.g, c.b)).collect();
    let min_de = min_pairwise_delta_e(&rgb);
    // ΔE ≈ 2.3 is the JND; categorical palettes want a wide margin.
    assert!(min_de > 10.0, "weakest palette pair ΔE = {min_de:.1}");
}

#[test]
fn searching_for_any_medication_is_preattentive() {
    // All medication glyphs are triangles; diagnoses are squares,
    // measurements arrows. Searching "any medication" is a shape feature
    // search regardless of the color spread.
    let target = Item { shape: 2, color: 2 }; // triangle, cardiovascular color
    let mut distractors = Vec::new();
    for i in 0..200u8 {
        distractors.push(Item { shape: 0, color: i % 14 }); // squares
        distractors.push(Item { shape: 1, color: i % 14 }); // arrows
    }
    assert_eq!(classify_search(target, &distractors), SearchCondition::Feature);
}

#[test]
fn searching_for_one_drug_class_among_other_drugs_is_preattentive_by_color() {
    // All triangles, but the target's ATC color class is unique on screen.
    let target = Item { shape: 2, color: 9 }; // nervous-system drug
    let distractors: Vec<Item> =
        (0..100).map(|i| Item { shape: 2, color: (i % 8) as u8 }).collect(); // classes 0–7
    assert_eq!(classify_search(target, &distractors), SearchCondition::Feature);
}

#[test]
fn mixed_displays_can_force_conjunction_search_and_the_model_shows_the_cost() {
    use pastas_perception::search::{RtModel, SearchExperiment};
    use rand::SeedableRng;

    // A cardiovascular *dispensing* among cardiovascular diagnoses (same
    // color family) and other-class dispensings (same shape): conjunction.
    let target = Item { shape: 2, color: 2 };
    let mut distractors = vec![Item { shape: 0, color: 2 }; 30];
    distractors.extend(vec![Item { shape: 2, color: 9 }; 30]);
    assert_eq!(classify_search(target, &distractors), SearchCondition::Conjunction);

    // And the RT model prices that: conjunction slope ≫ feature slope.
    let exp = SearchExperiment {
        set_sizes: vec![4, 16, 64, 256],
        trials: 150,
        model: RtModel::default(),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let feature = exp.run(SearchCondition::Feature, &mut rng);
    let conjunction = exp.run(SearchCondition::Conjunction, &mut rng);
    assert!(feature.slope.abs() < 2.0);
    assert!(conjunction.slope > 10.0 * feature.slope.abs().max(0.5));
}

#[test]
fn every_payload_kind_gets_a_distinct_glyph_shape() {
    use pastas_ontology::presentation::{GlyphShape, PresentationOntology};
    let p = PresentationOntology::new();
    let shapes = [
        p.glyph_for(&Payload::Diagnosis(Code::icpc("T90"))),
        p.glyph_for(&Payload::Measurement { kind: MeasurementKind::SystolicBp, value: 140.0 }),
        p.glyph_for(&Payload::Medication(Code::atc("C07AB02"))),
        p.glyph_for(&Payload::Note("x".into())),
    ];
    let unique: std::collections::HashSet<GlyphShape> = shapes.iter().copied().collect();
    assert_eq!(unique.len(), shapes.len(), "payload kinds share a glyph: {shapes:?}");
}

#[test]
fn the_mantra_pays_off_at_paper_scale() {
    use pastas_perception::cost::{overview_zoom_filter_cost, scroll_everything_cost};
    // Finding ten interesting patients in the 13,000-patient cohort.
    let filter = overview_zoom_filter_cost(10);
    let scroll = scroll_everything_cost(13_000, 40, 10);
    assert!(scroll / filter > 10.0, "ratio {:.1}", scroll / filter);
}
