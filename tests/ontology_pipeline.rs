//! Integration of the two OWL formalizations with the aggregated data:
//! classification, the ICPC↔ICD bridge, ABox materialization, and the
//! presentation mapping — the paper's "represents and reasons with patient
//! events in different OWL-formalizations according to the perspective and
//! use".

use pastas_core::prelude::*;
use pastas_ontology::integration::{code_class_name, IntegrationOntology};
use pastas_ontology::presentation::PresentationOntology;
use pastas_ontology::store::{Term, TripleStore};
use pastas_ontology::vocab::{ns, Vocabulary};

#[test]
fn aggregated_entries_classify_under_both_formalizations() {
    let collection = generate_collection(SynthConfig::with_patients(150), 5);
    let integration = IntegrationOntology::new();
    let presentation = PresentationOntology::new();

    let mut classified = 0usize;
    for h in &collection {
        for e in h.entries() {
            // Integration perspective: clinical classes.
            let classes = integration.classify_entry(e);
            assert!(
                classes.iter().any(|c| c == "pastas-int:PatientEntry"),
                "every entry is a PatientEntry: {classes:?}"
            );
            // Presentation perspective: exactly one visual class.
            let vclass = presentation.presentation_class(e);
            assert!(vclass.starts_with("viz:Glyph/") || vclass.starts_with("viz:Band/"));
            // The two namespaces never bleed into each other.
            assert!(classes.iter().all(|c| !c.starts_with("viz:")));
            classified += 1;
        }
    }
    assert!(classified > 500);
}

#[test]
fn the_bridge_makes_gp_and_hospital_diabetes_the_same_condition() {
    let integration = IntegrationOntology::new();
    let collection = generate_collection(SynthConfig::with_patients(3_000), 9);

    // Find a diabetic with both a T90 (GP) and an E11 (hospital) code.
    let both = collection.iter().find(|h| {
        let codes: Vec<&str> =
            h.entries().iter().filter_map(|e| e.code()).map(|c| c.value.as_str()).collect();
        codes.contains(&"T90") && codes.contains(&"E11")
    });
    let h = both.expect("some diabetic was hospitalized");
    let t90_conditions = integration.conditions_of(&Code::icpc("T90"));
    let e11_conditions = integration.conditions_of(&Code::icd10("E11"));
    assert_eq!(t90_conditions, e11_conditions);
    assert_eq!(t90_conditions, vec!["Diabetes"]);

    // And via entry classification: both entries land in EntryFor/Diabetes.
    for e in h.entries() {
        if e.code().is_some_and(|c| c.value == "T90" || c.value == "E11") {
            let classes = integration.classify_entry(e);
            assert!(
                classes.iter().any(|c| c == "pastas-int:EntryFor/Diabetes"),
                "{classes:?}"
            );
        }
    }
}

#[test]
fn abox_materialization_scales_linearly_and_is_queryable() {
    let collection = generate_collection(SynthConfig::with_patients(200), 13);
    let integration = IntegrationOntology::new();
    let mut store = TripleStore::new();
    let mut vocab = Vocabulary::new();
    for h in &collection {
        integration.assert_history(h, &mut store, &mut vocab);
    }
    let stats = collection.stats();
    // Per entry: type + patient + source + start (+ code for coded, + end
    // for intervals) — between 4 and 6 triples.
    assert!(store.len() >= 4 * stats.entries);
    assert!(store.len() <= 6 * stats.entries);

    // Query the materialized graph: dispensings by type.
    let rdf_type = Term::Resource(vocab.get(ns::RDF_TYPE).unwrap());
    let dispensing = Term::Resource(vocab.get("pastas-int:Dispensing").unwrap());
    let dispensings = store.subjects(rdf_type, dispensing).len();
    let expected = collection
        .iter()
        .flat_map(|h| h.entries())
        .filter(|e| matches!(e.payload(), PayloadRef::Medication(_)))
        .count();
    assert_eq!(dispensings, expected);
}

#[test]
fn abstraction_answers_lifelines_style_rollups() {
    // "medications can be shown using a name for the group of drugs (beta
    // blocker) or by the individual drug names".
    let presentation = PresentationOntology::new();
    let metoprolol = Code::atc("C07AB02");
    assert_eq!(presentation.abstract_label(&metoprolol, 5), "Metoprolol");
    assert_eq!(presentation.abstract_label(&metoprolol, 2), "Beta blocking agents");
    // The roll-up agrees with the integration hierarchy.
    let integration = IntegrationOntology::new();
    assert!(integration.is_subclass(&code_class_name(&metoprolol), "ATC:C07"));
}

#[test]
fn every_synthesized_code_is_known_to_the_integration_ontology() {
    let collection = generate_collection(SynthConfig::with_patients(500), 17);
    let mut integration = IntegrationOntology::new();
    let mut unknown = Vec::new();
    let mut registered_any = false;
    for h in &collection {
        for e in h.entries() {
            if let Some(code) = e.code() {
                if integration.lookup(&code_class_name(code)).is_none() {
                    // Register on the fly — the supported workflow for
                    // codes outside the catalog.
                    integration.register_code(code);
                    registered_any = true;
                    unknown.push(code.clone());
                }
            }
        }
    }
    if registered_any {
        integration.saturate();
    }
    // After registration every code participates in its hierarchy.
    for code in unknown {
        let class = code_class_name(&code);
        let parent = code.parent().map(|p| code_class_name(&p));
        if let Some(parent) = parent {
            assert!(integration.is_subclass(&class, &parent), "{class} ⊑ {parent}");
        }
    }
}
