//! Temporal reasoning over real model data: the Allen layer, the STN
//! layer, and the query layer must agree with each other and with the raw
//! timestamps.

use pastas_core::prelude::*;
use pastas_ontology::temporal::{AllenNetwork, AllenRel, AllenSet, Stn};

/// Extract the (start, end) extents of one history's entries.
fn extents(h: &History) -> Vec<(DateTime, DateTime)> {
    h.entries().iter().map(|e| (e.start(), e.end())).collect()
}

#[test]
fn observed_relations_form_a_path_consistent_network() {
    let collection = generate_collection(SynthConfig::with_patients(80), 23);
    let mut checked = 0usize;
    for h in collection.iter().filter(|h| h.len() >= 3 && h.len() <= 20) {
        let ex = extents(h);
        let n = ex.len();
        let mut net = AllenNetwork::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let rel = AllenRel::between_times(ex[i], ex[j]);
                net.constrain(i, j, AllenSet::of(rel));
            }
        }
        assert!(
            net.propagate(),
            "relations observed from real timestamps are necessarily consistent ({})",
            h.id()
        );
        checked += 1;
    }
    assert!(checked > 10, "checked {checked} histories");
}

#[test]
fn allen_relations_match_entry_overlap_semantics() {
    let collection = generate_collection(SynthConfig::with_patients(60), 29);
    for h in collection.iter().take(30) {
        let entries = h.entries();
        for i in 0..entries.len().min(10) {
            for j in 0..entries.len().min(10) {
                if i == j {
                    continue;
                }
                let (a, b) = (entries.get(i), entries.get(j));
                let rel = AllenRel::between_times((a.start(), a.end()), (b.start(), b.end()));
                let overlap = a.overlaps(b.start(), b.end());
                let disjoint = matches!(rel, AllenRel::Before | AllenRel::After);
                // Entry::overlaps uses closed intervals, so *only* strict
                // before/after imply non-overlap. (Meets/MetBy share an
                // endpoint after point-widening, which closed-interval
                // overlap counts as touching.)
                if disjoint {
                    let gap_secs = if a.end() < b.start() {
                        (b.start() - a.end()).as_seconds()
                    } else {
                        (a.start() - b.end()).as_seconds()
                    };
                    if gap_secs > 1 {
                        assert!(!overlap, "{rel:?} but overlapping: {} vs {}", a.describe(), b.describe());
                    }
                }
            }
        }
    }
}

#[test]
fn gap_constraints_compile_to_consistent_stns() {
    // The "readmission within 30 days" pattern as an STN, checked against
    // actual pattern hits.
    let collection = generate_collection(SynthConfig::with_patients(4_000), 31);
    let pattern = TemporalPattern::starting_with(EntryPredicate::IsInterval)
        .then(GapBound::within(Duration::days(30)), EntryPredicate::IsInterval);

    let mut hits_checked = 0usize;
    for h in &collection {
        for hit in pattern.find_matches(h) {
            let entries = h.entries();
            let first = entries.get(hit.steps[0]);
            let second = entries.get(hit.steps[1]);
            // Build the STN: 4 time points (s1, e1, s2, e2).
            let day = 86_400i64;
            let mut stn = Stn::new(4);
            // Interval structure: e >= s.
            stn.add_range(0, 1, 0, 365 * day);
            stn.add_range(2, 3, 0, 365 * day);
            // The gap constraint: s2 - e1 in [0, 30d].
            stn.add_range(1, 2, 0, 30 * day);
            assert!(stn.close(), "pattern STN must be consistent");
            // The actual timestamps satisfy the implied bounds.
            let (lo, hi) = stn.bounds(1, 2);
            let gap = (second.start() - first.end()).as_seconds();
            assert!(gap >= lo.unwrap() && gap <= hi.unwrap(), "gap {gap}s outside bounds");
            hits_checked += 1;
        }
    }
    assert!(hits_checked > 3, "found {hits_checked} readmissions to verify");
}

#[test]
fn aligned_axis_offsets_agree_with_months_between() {
    // The viz aligned axis buckets by Date::months_between; spot-check the
    // invariant on generated anchors.
    let collection = generate_collection(SynthConfig::with_patients(300), 37);
    let pred = EntryPredicate::code_regex("T90").unwrap();
    let alignment = align_on(&collection, &pred);
    let mut verified = 0;
    for h in &collection {
        let Some(anchor) = alignment.anchor(h.id()) else { continue };
        for e in h.entries().iter().take(5) {
            let k = e.start().date().months_between(anchor.date());
            // The floor invariant from pastas-time.
            assert!(anchor.date().add_months(k) <= e.start().date());
            assert!(anchor.date().add_months(k + 1) > e.start().date());
            verified += 1;
        }
    }
    assert!(verified > 20);
}
