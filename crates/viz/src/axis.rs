//! The horizontal axis, in its two modes.
//!
//! §IV.B: "The horizontal axis has two modes: 1) When the diagram is not
//! aligned, the axis shows calendar time (the actual dates). 2) In an
//! aligned diagram, the axis shows the number of months before and after
//! the alignment point."

use pastas_query::Alignment;
use pastas_time::{Date, DateTime, Duration};

/// Axis mode: calendar time or months-from-anchor.
#[derive(Debug, Clone)]
pub enum AxisMode {
    /// Calendar dates; ticks at month/quarter/year boundaries depending on
    /// the visible span.
    Calendar,
    /// Aligned mode: each history is shifted so its anchor sits at x = 0;
    /// ticks count months before/after the anchor.
    Aligned(Alignment),
}

/// One axis tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Tick {
    /// Position in axis coordinates: seconds from the axis origin.
    pub at_seconds: i64,
    /// Label text (`"2014-03"` or `"-6 mo"`).
    pub label: String,
    /// Major ticks get labels and stronger rules.
    pub major: bool,
}

impl AxisMode {
    /// True if aligned.
    pub fn is_aligned(&self) -> bool {
        matches!(self, AxisMode::Aligned(_))
    }
}

/// Generate calendar ticks covering `[from, to]`, adapting granularity to
/// the span: ≤ 4 months → monthly ticks; ≤ 3 years → quarterly; else
/// yearly. Major ticks at year boundaries (or every tick when monthly).
pub fn calendar_ticks(from: DateTime, to: DateTime) -> Vec<Tick> {
    let days = (to - from).whole_days().max(1);
    let step_months: i32 = if days <= 124 {
        1
    } else if days <= 3 * 366 {
        3
    } else {
        12
    };
    let mut ticks = Vec::new();
    // First tick: the first step boundary at or after `from`.
    let d0 = from.date().first_of_month();
    let mut cursor = d0;
    // Snap to the step grid within the year.
    while (cursor.month() as i32 - 1) % step_months != 0 {
        cursor = cursor.add_months(1);
    }
    if cursor.at_midnight() < from {
        cursor = cursor.add_months(step_months);
    }
    let origin = from;
    while cursor.at_midnight() <= to {
        let t = cursor.at_midnight();
        let major = step_months == 1 || cursor.month() == 1;
        let label = if step_months >= 12 || cursor.month() == 1 {
            format!("{}", cursor.year())
        } else {
            format!("{:04}-{:02}", cursor.year(), cursor.month())
        };
        ticks.push(Tick { at_seconds: (t - origin).as_seconds(), label, major });
        cursor = cursor.add_months(step_months);
    }
    ticks
}

/// Generate aligned ticks for `months_before..=months_after` around the
/// anchor, stepping so that at most ~25 ticks appear. Month `k`'s offset
/// uses a nominal 30.44-day month so every history shares one scale.
pub fn aligned_ticks(months_before: i32, months_after: i32) -> Vec<Tick> {
    let total = (months_after + months_before).max(1);
    let step = ((total as f64 / 24.0).ceil() as i32).max(1);
    let mut ticks = Vec::new();
    let mut k = -months_before;
    // Snap to the step grid.
    while k.rem_euclid(step) != 0 {
        k += 1;
    }
    while k <= months_after {
        ticks.push(Tick {
            at_seconds: (k as f64 * NOMINAL_MONTH_SECS) as i64,
            label: if k == 0 { "0".to_owned() } else { format!("{k:+} mo") },
            major: k == 0 || k % 12 == 0,
        });
        k += step;
    }
    ticks
}

/// Seconds in a nominal month (30.44 days) — the aligned axis's unit.
pub const NOMINAL_MONTH_SECS: f64 = 30.44 * 86_400.0;

/// In aligned mode, an entry's axis position is its offset from the
/// history's anchor. Returns `None` if the history has no anchor (it drops
/// out of the aligned view).
pub fn aligned_offset(alignment: &Alignment, patient: pastas_model::PatientId, t: DateTime) -> Option<Duration> {
    Some(t - alignment.anchor(patient)?)
}

/// Tick helpers for tests and the SVG axis: whether a date lies on a year
/// boundary.
pub fn is_year_start(d: Date) -> bool {
    d.month() == 1 && d.day() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    #[test]
    fn monthly_ticks_for_short_spans() {
        let ticks = calendar_ticks(t(2014, 1, 15), t(2014, 4, 20));
        let labels: Vec<_> = ticks.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, vec!["2014-02", "2014-03", "2014-04"]);
        assert!(ticks.iter().all(|t| t.major), "monthly ticks are all major");
    }

    #[test]
    fn quarterly_ticks_for_two_years() {
        let ticks = calendar_ticks(t(2013, 1, 1), t(2015, 1, 1));
        assert!(ticks.len() >= 8 && ticks.len() <= 10, "{} ticks", ticks.len());
        assert!(ticks.iter().any(|t| t.label == "2014"), "year boundary labelled as year");
        assert!(ticks.iter().any(|t| t.label == "2013-04"));
        // Ticks are ordered and within the span.
        for w in ticks.windows(2) {
            assert!(w[0].at_seconds < w[1].at_seconds);
        }
    }

    #[test]
    fn yearly_ticks_for_long_spans() {
        let ticks = calendar_ticks(t(2000, 1, 1), t(2010, 1, 1));
        assert_eq!(ticks.len(), 11);
        assert!(ticks.iter().all(|t| t.major));
        assert_eq!(ticks[0].label, "2000");
    }

    #[test]
    fn first_tick_is_at_or_after_from() {
        // ~3.5 months: monthly granularity; Jan 1 precedes `from`, so the
        // first tick is February.
        let ticks = calendar_ticks(t(2014, 1, 15), t(2014, 5, 1));
        assert!(ticks[0].at_seconds >= 0);
        assert_eq!(ticks[0].label, "2014-02");
        // ~4.5 months: quarterly granularity snaps to Apr 1.
        let ticks = calendar_ticks(t(2014, 1, 15), t(2014, 6, 1));
        assert_eq!(ticks[0].label, "2014-04");
    }

    #[test]
    fn aligned_ticks_bracket_zero() {
        let ticks = aligned_ticks(6, 18);
        assert!(ticks.iter().any(|t| t.label == "0"));
        assert!(ticks.iter().any(|t| t.label == "-6 mo"));
        assert!(ticks.iter().any(|t| t.label == "+18 mo"));
        let zero = ticks.iter().find(|t| t.label == "0").unwrap();
        assert_eq!(zero.at_seconds, 0);
        assert!(zero.major);
    }

    #[test]
    fn aligned_ticks_step_up_for_long_ranges() {
        let ticks = aligned_ticks(60, 60);
        assert!(ticks.len() <= 26, "{} ticks", ticks.len());
        // ±12-month ticks are major.
        assert!(ticks.iter().filter(|t| t.major).count() >= 3);
    }

    #[test]
    fn aligned_offsets() {
        use pastas_codes::Code;
        use pastas_model::*;
        use pastas_query::{align_on, EntryPredicate};

        let mut h = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        h.insert(Entry::event(
            t(2013, 6, 1),
            Payload::Diagnosis(Code::icpc("T90")),
            SourceKind::PrimaryCare,
        ));
        let c = HistoryCollection::from_histories([h]);
        let a = align_on(&c, &EntryPredicate::code_regex("T90").unwrap());
        let off = aligned_offset(&a, PatientId(1), t(2013, 7, 1)).unwrap();
        assert_eq!(off.whole_days(), 30);
        assert!(aligned_offset(&a, PatientId(2), t(2013, 7, 1)).is_none());
    }
}
