//! The Fig. 1 timeline layout.
//!
//! Turns `(collection, display order, axis mode, filter, viewport)` into a
//! [`Scene`] plus a [`HitMap`]. Pure function of its inputs; the E1 bench
//! measures exactly this call.

use crate::axis::{aligned_ticks, calendar_ticks, AxisMode, NOMINAL_MONTH_SECS};
use crate::color;
use crate::hit::{HitMap, HitRecord};
use crate::scene::{Primitive, Scene};
use crate::viewport::Viewport;
use pastas_model::{EntryRef, HistoryCollection};
use pastas_ontology::presentation::{BandKind, GlyphShape, PresentationOntology};
use pastas_query::EntryPredicate;
use pastas_time::{Date, DateTime, Duration};

/// The fixed epoch whose x-position represents "offset zero" in aligned
/// mode.
pub const ALIGNED_EPOCH_YEAR: i32 = 2000;

/// The zero-offset instant used by aligned viewports.
pub fn aligned_epoch() -> DateTime {
    // lint:allow(transitive-no-panic-hot-path) literal 2000-01-01 is a valid date
    Date::new(ALIGNED_EPOCH_YEAR, 1, 1).expect("valid").at_midnight()
}

/// A viewport showing `months_before..months_after` around the anchor.
pub fn aligned_viewport(
    months_before: i32,
    months_after: i32,
    rows: f64,
    width_px: f64,
    height_px: f64,
) -> Viewport {
    let e = aligned_epoch();
    Viewport::new(
        e + Duration::seconds((-months_before as f64 * NOMINAL_MONTH_SECS) as i64),
        e + Duration::seconds((months_after as f64 * NOMINAL_MONTH_SECS) as i64),
        rows,
        width_px,
        height_px,
    )
}

/// Layout options.
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    /// Axis mode (calendar vs aligned).
    pub axis: AxisMode,
    /// Event filter: entries failing it are hidden ("filtering events").
    pub filter: Option<EntryPredicate>,
    /// Draw patient-id labels on the vertical axis.
    pub row_labels: bool,
    /// Attach details-on-demand tooltips to every drawn entry.
    pub tooltips: bool,
    /// Pixels reserved at the bottom for the axis.
    pub axis_height: f64,
}

impl Default for TimelineOptions {
    fn default() -> TimelineOptions {
        TimelineOptions {
            axis: AxisMode::Calendar,
            filter: None,
            row_labels: true,
            tooltips: true,
            axis_height: 24.0,
        }
    }
}

/// A timeline view: a collection in a display order plus options.
#[derive(Debug)]
pub struct TimelineView<'a> {
    collection: &'a HistoryCollection,
    order: Vec<u32>,
    /// Layout options.
    pub options: TimelineOptions,
}

impl<'a> TimelineView<'a> {
    /// A view in natural collection order.
    pub fn new(collection: &'a HistoryCollection, options: TimelineOptions) -> TimelineView<'a> {
        TimelineView { collection, order: (0..collection.len() as u32).collect(), options }
    }

    /// Replace the display order (from `pastas_query::sort_histories`).
    /// Indexes out of range are dropped.
    pub fn with_order(mut self, order: Vec<u32>) -> TimelineView<'a> {
        let n = self.collection.len() as u32;
        self.order = order.into_iter().filter(|&i| i < n).collect();
        self
    }

    /// Number of display rows.
    pub fn rows(&self) -> usize {
        self.order.len()
    }

    /// The x pixel of an instant for a given history, or `None` when the
    /// history has no anchor in aligned mode.
    fn x_of(&self, vp: &Viewport, patient: pastas_model::PatientId, t: DateTime) -> Option<f64> {
        match &self.options.axis {
            AxisMode::Calendar => Some(vp.x_of(t)),
            AxisMode::Aligned(alignment) => {
                let anchor = alignment.anchor(patient)?;
                Some(vp.x_of(aligned_epoch() + (t - anchor)))
            }
        }
    }

    /// Lay the view out into a scene + hit map.
    pub fn layout(&self, vp: &Viewport) -> (Scene, HitMap) {
        let presentation = PresentationOntology::new();
        let mut scene = Scene::new(vp.width_px, vp.height_px + self.options.axis_height);
        let mut hits = HitMap::new();
        let row_h = vp.row_height();
        let bar_h = (row_h * 0.62).clamp(1.0, 26.0);
        let histories = self.collection.histories();

        for row in vp.visible_rows(self.order.len()) {
            let hist = &histories[self.order[row] as usize];
            let y_top = vp.y_of_row(row);
            let y_bar = y_top + (row_h - bar_h) / 2.0;
            let patient = hist.id();

            // The gray history bar spans the history's extent (clipped).
            let (Some(first), Some(last)) = (hist.first_time(), hist.last_time()) else {
                continue;
            };
            let (Some(x0), Some(x1)) = (self.x_of(vp, patient, first), self.x_of(vp, patient, last))
            else {
                continue; // unanchored history in aligned mode
            };
            let bar_x0 = x0.max(0.0);
            let bar_x1 = x1.min(vp.width_px);
            if bar_x1 > bar_x0 {
                scene.push(
                    Primitive::Rect {
                        x: bar_x0,
                        y: y_bar,
                        w: bar_x1 - bar_x0,
                        h: bar_h,
                        fill: color::ROW_BAR,
                    },
                    "viz:Row/bar",
                );
            }

            // Entries: bands first (under), then glyphs (over).
            for pass in 0..2 {
                for (ei, e) in hist.entries().iter().enumerate() {
                    if let Some(f) = &self.options.filter {
                        if !f.matches(e) {
                            continue;
                        }
                    }
                    let is_band = e.is_interval() && presentation.band_for(e.payload()).is_some();
                    if (pass == 0) != is_band {
                        continue;
                    }
                    let (Some(ex0), Some(ex1)) =
                        (self.x_of(vp, patient, e.start()), self.x_of(vp, patient, e.end()))
                    else {
                        continue;
                    };
                    if ex1 < 0.0 || ex0 > vp.width_px {
                        continue; // outside the visible span
                    }
                    let bbox = if is_band {
                        self.draw_band(&mut scene, &presentation, e, (ex0, ex1, y_bar, bar_h), vp)
                    } else {
                        self.draw_glyph(&mut scene, &presentation, e, ex0, y_bar, bar_h)
                    };
                    if let Some(bbox) = bbox {
                        hits.push(HitRecord {
                            bbox,
                            row,
                            history_index: self.order[row] as usize,
                            entry_index: ei,
                            details: e.describe(),
                        });
                    }
                }
            }

            // Patient-id label (the paper's vertical axis).
            if self.options.row_labels && row_h >= 7.0 {
                scene.push(
                    Primitive::Text {
                        x: 2.0,
                        y: y_bar + bar_h - 1.0,
                        text: patient.to_string(),
                        size: (row_h * 0.45).clamp(6.0, 11.0),
                        fill: color::AXIS_INK,
                    },
                    "viz:Row/label",
                );
            }
        }

        self.draw_axis(&mut scene, vp);
        (scene, hits)
    }

    /// `geom` is the band's pixel geometry `(x0, x1, y, height)`.
    fn draw_band(
        &self,
        scene: &mut Scene,
        presentation: &PresentationOntology,
        e: EntryRef<'_>,
        (ex0, ex1, y_bar, bar_h): (f64, f64, f64, f64),
        vp: &Viewport,
    ) -> Option<(f64, f64, f64, f64)> {
        let band = presentation.band_for(e.payload())?;
        let fill = match band {
            BandKind::Hospital => color::BAND_HOSPITAL,
            BandKind::Municipal => color::BAND_MUNICIPAL,
            BandKind::Rehabilitation => color::BAND_REHAB,
            BandKind::Medication => color::BAND_MEDICATION,
        };
        let x = ex0.max(0.0);
        let w = (ex1.min(vp.width_px) - x).max(1.0);
        let prim = Primitive::Rect { x, y: y_bar, w, h: bar_h, fill };
        let bbox = prim.bbox();
        let class = presentation.presentation_class(e);
        if self.options.tooltips {
            scene.push_with_tooltip(prim, &class, e.describe());
        } else {
            scene.push(prim, &class);
        }
        Some(bbox)
    }

    fn draw_glyph(
        &self,
        scene: &mut Scene,
        presentation: &PresentationOntology,
        e: EntryRef<'_>,
        x: f64,
        y_bar: f64,
        bar_h: f64,
    ) -> Option<(f64, f64, f64, f64)> {
        let shape = presentation.glyph_for(e.payload());
        let s = (bar_h * 0.55).clamp(2.0, 9.0); // glyph size
        let cy = y_bar + bar_h / 2.0;
        let fill = presentation
            .entry_color_class(e)
            .map(|c| color::medication_color(c.0))
            .unwrap_or(color::GLYPH_INK);
        let prim = match shape {
            GlyphShape::Square => {
                Primitive::Rect { x: x - s / 2.0, y: cy - s / 2.0, w: s, h: s, fill }
            }
            GlyphShape::Arrow => Primitive::Polygon {
                // Upward arrow above the bar: the Fig. 1 BP marks.
                points: vec![
                    (x, y_bar - 1.0),
                    (x - s / 2.0, y_bar + s - 1.0),
                    (x + s / 2.0, y_bar + s - 1.0),
                ],
                fill,
            },
            GlyphShape::Triangle => Primitive::Polygon {
                points: vec![
                    (x, cy + s / 2.0),
                    (x - s / 2.0, cy - s / 2.0),
                    (x + s / 2.0, cy - s / 2.0),
                ],
                fill,
            },
            GlyphShape::Cross => Primitive::Polygon {
                points: cross_points(x, cy, s),
                fill,
            },
            GlyphShape::Circle => Primitive::Circle { cx: x, cy, r: s / 2.0, fill },
        };
        let bbox = prim.bbox();
        let class = presentation.presentation_class(e);
        if self.options.tooltips {
            scene.push_with_tooltip(prim, &class, e.describe());
        } else {
            scene.push(prim, &class);
        }
        Some(bbox)
    }

    fn draw_axis(&self, scene: &mut Scene, vp: &Viewport) {
        let y = vp.height_px;
        scene.push(
            Primitive::Line {
                x1: 0.0,
                y1: y,
                x2: vp.width_px,
                y2: y,
                stroke: color::AXIS_INK,
                width: 1.0,
            },
            "viz:Axis/rule",
        );
        let (ticks, origin) = match &self.options.axis {
            AxisMode::Calendar => (calendar_ticks(vp.time_from, vp.time_to), vp.time_from),
            AxisMode::Aligned(_) => {
                let e = aligned_epoch();
                let before =
                    (-((vp.time_from - e).as_seconds() as f64) / NOMINAL_MONTH_SECS).ceil() as i32;
                let after =
                    (((vp.time_to - e).as_seconds() as f64) / NOMINAL_MONTH_SECS).floor() as i32;
                // Anchor rule at offset zero.
                let x0 = vp.x_of(e);
                scene.push(
                    Primitive::Line {
                        x1: x0,
                        y1: 0.0,
                        x2: x0,
                        y2: y,
                        stroke: color::ANCHOR_RULE,
                        width: 1.0,
                    },
                    "viz:Axis/anchor",
                );
                (aligned_ticks(before.max(0), after.max(0)), e)
            }
        };
        for tick in ticks {
            let x = vp.x_of(origin + Duration::seconds(tick.at_seconds));
            if !(0.0..=vp.width_px).contains(&x) {
                continue;
            }
            scene.push(
                Primitive::Line {
                    x1: x,
                    y1: y,
                    x2: x,
                    y2: y + if tick.major { 6.0 } else { 4.0 },
                    stroke: color::AXIS_INK,
                    width: 1.0,
                },
                "viz:Axis/tick",
            );
            if tick.major {
                scene.push(
                    Primitive::Text {
                        x: x + 2.0,
                        y: y + self.options.axis_height - 6.0,
                        text: tick.label,
                        size: 10.0,
                        fill: color::AXIS_INK,
                    },
                    "viz:Axis/label",
                );
            }
        }
    }
}

fn cross_points(cx: f64, cy: f64, s: f64) -> Vec<(f64, f64)> {
    // A plus-shaped dodecagon.
    let a = s / 6.0;
    let b = s / 2.0;
    vec![
        (cx - a, cy - b),
        (cx + a, cy - b),
        (cx + a, cy - a),
        (cx + b, cy - a),
        (cx + b, cy + a),
        (cx + a, cy + a),
        (cx + a, cy + b),
        (cx - a, cy + b),
        (cx - a, cy + a),
        (cx - b, cy + a),
        (cx - b, cy - a),
        (cx - a, cy - a),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, EpisodeKind, History, Patient, PatientId, Payload, Sex, SourceKind};
    use pastas_query::{align_on, EntryPredicate};

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn sample_collection() -> HistoryCollection {
        let mut hs = Vec::new();
        for id in 1..=3u64 {
            let mut h = History::new(Patient {
                id: PatientId(id),
                birth_date: Date::new(1950, 1, 1).unwrap(),
                sex: Sex::Female,
            });
            h.insert(Entry::event(
                t(2013, 3, id as u32),
                Payload::Diagnosis(Code::icpc("T90")),
                SourceKind::PrimaryCare,
            ));
            h.insert(Entry::event(
                t(2013, 6, 1),
                Payload::Measurement {
                    kind: pastas_model::MeasurementKind::SystolicBp,
                    value: 150.0,
                },
                SourceKind::PrimaryCare,
            ));
            h.insert(Entry::event(
                t(2013, 8, 1),
                Payload::Medication(Code::atc("C07AB02")),
                SourceKind::Prescription,
            ));
            h.insert(Entry::interval(
                t(2013, 9, 1),
                t(2013, 9, 10),
                Payload::Episode(EpisodeKind::Inpatient),
                SourceKind::Hospital,
            ));
            hs.push(h);
        }
        HistoryCollection::from_histories(hs)
    }

    fn vp() -> Viewport {
        Viewport::new(t(2013, 1, 1), t(2014, 1, 1), 10.0, 800.0, 400.0)
    }

    #[test]
    fn figure_1_inventory() {
        let c = sample_collection();
        let view = TimelineView::new(&c, TimelineOptions::default());
        let (scene, hits) = view.layout(&vp());
        assert_eq!(scene.count_class_prefix("viz:Row/bar"), 3, "one gray bar per history");
        assert_eq!(scene.count_class_prefix("viz:Glyph/square"), 3, "diagnosis rectangles");
        assert_eq!(scene.count_class_prefix("viz:Glyph/arrow"), 3, "BP arrows");
        assert_eq!(scene.count_class_prefix("viz:Glyph/triangle"), 3, "dispensings");
        assert_eq!(scene.count_class_prefix("viz:Band/hospital"), 3, "stay bands");
        assert!(scene.count_class_prefix("viz:Axis/tick") > 3);
        assert_eq!(scene.count_class_prefix("viz:Row/label"), 3);
        assert_eq!(hits.len(), 12, "every drawn entry is hit-testable");
    }

    #[test]
    fn details_on_demand_round_trip() {
        let c = sample_collection();
        let view = TimelineView::new(&c, TimelineOptions::default());
        let (_, hits) = view.layout(&vp());
        // Find the hospital band of row 0 via its own bbox centre.
        let band = hits
            .iter()
            .find(|r| r.row == 0 && r.details.contains("inpatient"))
            .expect("band record");
        let cx = (band.bbox.0 + band.bbox.2) / 2.0;
        let cy = (band.bbox.1 + band.bbox.3) / 2.0;
        let hit = hits.hit_test(cx, cy).expect("hit");
        assert!(hit.details.contains("inpatient stay"), "{}", hit.details);
        assert!(hit.details.contains("hospital"), "{}", hit.details);
    }

    #[test]
    fn filtering_hides_events() {
        let c = sample_collection();
        let opts =
            TimelineOptions { filter: Some(EntryPredicate::IsDiagnosis), ..Default::default() };
        let view = TimelineView::new(&c, opts);
        let (scene, hits) = view.layout(&vp());
        assert_eq!(scene.count_class_prefix("viz:Glyph/square"), 3);
        assert_eq!(scene.count_class_prefix("viz:Glyph/triangle"), 0, "medications filtered");
        assert_eq!(scene.count_class_prefix("viz:Band"), 0, "bands filtered");
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn medication_glyphs_use_atc_colors() {
        let c = sample_collection();
        let view = TimelineView::new(&c, TimelineOptions::default());
        let (scene, _) = view.layout(&vp());
        let tri = scene
            .elements
            .iter()
            .find(|e| e.class == "viz:Glyph/triangle")
            .expect("triangle");
        if let Primitive::Polygon { fill, .. } = &tri.primitive {
            // C07AB02 is cardiovascular: palette index 2.
            assert_eq!(*fill, color::MEDICATION_PALETTE[2]);
        } else {
            panic!("medication glyph should be a polygon");
        }
    }

    #[test]
    fn aligned_mode_drops_unanchored_and_draws_anchor_rule() {
        let mut c = sample_collection();
        // A fourth history with no T90: must vanish in aligned mode.
        let mut h = History::new(Patient {
            id: PatientId(9),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Male,
        });
        h.insert(Entry::event(
            t(2013, 4, 1),
            Payload::Diagnosis(Code::icpc("K74")),
            SourceKind::PrimaryCare,
        ));
        c.upsert(h);
        let alignment = align_on(&c, &EntryPredicate::code_regex("T90").unwrap());
        let opts = TimelineOptions { axis: AxisMode::Aligned(alignment), ..Default::default() };
        let view = TimelineView::new(&c, opts);
        let avp = aligned_viewport(6, 12, 10.0, 800.0, 400.0);
        let (scene, _) = view.layout(&avp);
        assert_eq!(scene.count_class_prefix("viz:Row/bar"), 3, "unanchored row dropped");
        assert_eq!(scene.count_class_prefix("viz:Axis/anchor"), 1);
    }

    #[test]
    fn aligned_mode_places_anchors_at_zero() {
        let c = sample_collection();
        let alignment = align_on(&c, &EntryPredicate::code_regex("T90").unwrap());
        let opts = TimelineOptions { axis: AxisMode::Aligned(alignment), ..Default::default() };
        let view = TimelineView::new(&c, opts);
        let avp = aligned_viewport(6, 12, 10.0, 900.0, 400.0);
        let (scene, hits) = view.layout(&avp);
        let zero_x = avp.x_of(aligned_epoch());
        // Every T90 square sits on the anchor rule.
        for r in hits.iter().filter(|r| r.details.contains("T90")) {
            let cx = (r.bbox.0 + r.bbox.2) / 2.0;
            assert!((cx - zero_x).abs() < 1.0, "T90 at {cx}, anchor at {zero_x}");
        }
        assert!(scene.count_class_prefix("viz:Axis/label") > 0);
    }

    #[test]
    fn vertical_zoom_limits_rows_drawn() {
        let c = sample_collection();
        let view = TimelineView::new(&c, TimelineOptions::default());
        let mut v = vp();
        v.rows_visible = 1.0;
        let (scene, _) = view.layout(&v);
        assert_eq!(scene.count_class_prefix("viz:Row/bar"), 1, "only one row visible");
    }

    #[test]
    fn horizontal_window_clips_entries() {
        let c = sample_collection();
        let view = TimelineView::new(&c, TimelineOptions::default());
        // Window covering only March: just the diagnosis squares.
        let v = Viewport::new(t(2013, 2, 20), t(2013, 4, 1), 10.0, 800.0, 400.0);
        let (scene, _) = view.layout(&v);
        assert_eq!(scene.count_class_prefix("viz:Glyph/square"), 3);
        assert_eq!(scene.count_class_prefix("viz:Glyph/triangle"), 0);
        assert_eq!(scene.count_class_prefix("viz:Band"), 0);
    }

    #[test]
    fn custom_order_is_respected() {
        let c = sample_collection();
        let view =
            TimelineView::new(&c, TimelineOptions::default()).with_order(vec![2, 0, 99]);
        assert_eq!(view.rows(), 2, "out-of-range order entries dropped");
        let (_, hits) = view.layout(&vp());
        assert!(hits.iter().all(|r| r.history_index == 2 || r.history_index == 0));
    }

    #[test]
    fn empty_collection_draws_only_axis() {
        let c = HistoryCollection::new();
        let view = TimelineView::new(&c, TimelineOptions::default());
        let (scene, hits) = view.layout(&vp());
        assert!(hits.is_empty());
        assert!(scene.count_class_prefix("viz:Row").eq(&0));
        assert!(scene.count_class_prefix("viz:Axis") > 0);
    }
}
