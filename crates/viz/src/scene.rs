//! A retained-mode scene graph of drawing primitives.
//!
//! The timeline layout produces a [`Scene`]; renderers (SVG, ASCII, HTML)
//! and the hit-tester consume it. Keeping the scene explicit is what makes
//! the E1/E8 measurements meaningful: layout cost and render cost are
//! separated.

use crate::color::Color;

/// One drawing primitive. Coordinates are in device pixels, y down.
#[derive(Debug, Clone, PartialEq)]
pub enum Primitive {
    /// Filled rectangle.
    Rect {
        /// Left edge.
        x: f64,
        /// Top edge.
        y: f64,
        /// Width.
        w: f64,
        /// Height.
        h: f64,
        /// Fill color.
        fill: Color,
    },
    /// Line segment.
    Line {
        /// Start x.
        x1: f64,
        /// Start y.
        y1: f64,
        /// End x.
        x2: f64,
        /// End y.
        y2: f64,
        /// Stroke color.
        stroke: Color,
        /// Stroke width.
        width: f64,
    },
    /// Filled circle.
    Circle {
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
        /// Radius.
        r: f64,
        /// Fill color.
        fill: Color,
    },
    /// Filled polygon (used for triangles and arrowheads).
    Polygon {
        /// Vertices.
        points: Vec<(f64, f64)>,
        /// Fill color.
        fill: Color,
    },
    /// Text anchored at the left baseline.
    Text {
        /// Anchor x.
        x: f64,
        /// Baseline y.
        y: f64,
        /// Content.
        text: String,
        /// Font size in px.
        size: f64,
        /// Ink color.
        fill: Color,
    },
}

impl Primitive {
    /// Axis-aligned bounding box `(x0, y0, x1, y1)`.
    pub fn bbox(&self) -> (f64, f64, f64, f64) {
        match self {
            Primitive::Rect { x, y, w, h, .. } => (*x, *y, x + w, y + h),
            Primitive::Line { x1, y1, x2, y2, .. } => {
                (x1.min(*x2), y1.min(*y2), x1.max(*x2), y1.max(*y2))
            }
            Primitive::Circle { cx, cy, r, .. } => (cx - r, cy - r, cx + r, cy + r),
            Primitive::Polygon { points, .. } => points.iter().fold(
                (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
                |(x0, y0, x1, y1), &(x, y)| (x0.min(x), y0.min(y), x1.max(x), y1.max(y)),
            ),
            Primitive::Text { x, y, text, size, .. } => {
                // Monospace-ish estimate: 0.6 em advance per char.
                (*x, y - size, x + 0.6 * size * text.chars().count() as f64, *y)
            }
        }
    }
}

/// An element: a primitive plus semantic annotations for interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// The drawing primitive.
    pub primitive: Primitive,
    /// Presentation-ontology class (`viz:Glyph/square`, …), used as the
    /// SVG class attribute.
    pub class: String,
    /// Details-on-demand text (SVG `<title>`, HTML tooltip).
    pub tooltip: Option<String>,
}

/// A scene: elements in paint order plus the canvas size.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scene {
    /// Canvas width, px.
    pub width: f64,
    /// Canvas height, px.
    pub height: f64,
    /// Elements in paint order (later paints over earlier).
    pub elements: Vec<Element>,
}

impl Scene {
    /// An empty scene of the given size.
    pub fn new(width: f64, height: f64) -> Scene {
        Scene { width, height, elements: Vec::new() }
    }

    /// Push a bare primitive.
    pub fn push(&mut self, primitive: Primitive, class: &str) {
        self.elements.push(Element { primitive, class: class.to_owned(), tooltip: None });
    }

    /// Push a primitive with a details-on-demand tooltip.
    pub fn push_with_tooltip(&mut self, primitive: Primitive, class: &str, tooltip: String) {
        self.elements.push(Element {
            primitive,
            class: class.to_owned(),
            tooltip: Some(tooltip),
        });
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if nothing has been drawn.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Count of elements by class prefix (used by tests and the legend).
    pub fn count_class_prefix(&self, prefix: &str) -> usize {
        self.elements.iter().filter(|e| e.class.starts_with(prefix)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::GLYPH_INK;

    #[test]
    fn bboxes() {
        let r = Primitive::Rect { x: 1.0, y: 2.0, w: 3.0, h: 4.0, fill: GLYPH_INK };
        assert_eq!(r.bbox(), (1.0, 2.0, 4.0, 6.0));
        let l = Primitive::Line { x1: 5.0, y1: 1.0, x2: 2.0, y2: 3.0, stroke: GLYPH_INK, width: 1.0 };
        assert_eq!(l.bbox(), (2.0, 1.0, 5.0, 3.0));
        let c = Primitive::Circle { cx: 0.0, cy: 0.0, r: 2.0, fill: GLYPH_INK };
        assert_eq!(c.bbox(), (-2.0, -2.0, 2.0, 2.0));
        let p = Primitive::Polygon { points: vec![(0.0, 0.0), (2.0, 1.0), (1.0, 3.0)], fill: GLYPH_INK };
        assert_eq!(p.bbox(), (0.0, 0.0, 2.0, 3.0));
    }

    #[test]
    fn scene_accumulates_in_order() {
        let mut s = Scene::new(100.0, 50.0);
        s.push(Primitive::Circle { cx: 1.0, cy: 1.0, r: 1.0, fill: GLYPH_INK }, "viz:Glyph/circle");
        s.push_with_tooltip(
            Primitive::Circle { cx: 2.0, cy: 2.0, r: 1.0, fill: GLYPH_INK },
            "viz:Glyph/circle",
            "details".into(),
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.elements[1].tooltip.as_deref(), Some("details"));
        assert_eq!(s.count_class_prefix("viz:Glyph"), 2);
        assert_eq!(s.count_class_prefix("viz:Band"), 0);
    }
}
