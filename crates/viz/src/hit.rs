//! Hit-testing and details-on-demand.
//!
//! Fig. 1's "dynamic displays showing detailed information about the
//! history content under the mouse cursor": the layout registers a hit
//! record per drawn entry; [`HitMap::hit_test`] resolves a cursor position
//! to the topmost record in O(visible entries), fast enough that E8 can
//! hold hover latency far under the 0.1 s budget.

/// One interactive region.
#[derive(Debug, Clone, PartialEq)]
pub struct HitRecord {
    /// Bounding box `(x0, y0, x1, y1)` in device pixels.
    pub bbox: (f64, f64, f64, f64),
    /// Display row.
    pub row: usize,
    /// History position in the collection.
    pub history_index: usize,
    /// Entry position within the history.
    pub entry_index: usize,
    /// The details-on-demand text.
    pub details: String,
}

/// All interactive regions of one laid-out scene, in paint order.
#[derive(Debug, Clone, Default)]
pub struct HitMap {
    records: Vec<HitRecord>,
}

impl HitMap {
    /// An empty map.
    pub fn new() -> HitMap {
        HitMap::default()
    }

    /// Register a region (call in paint order).
    pub fn push(&mut self, record: HitRecord) {
        self.records.push(record);
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The topmost record under `(x, y)`, with a tolerance margin so thin
    /// glyphs stay clickable.
    pub fn hit_test(&self, x: f64, y: f64) -> Option<&HitRecord> {
        const SLOP: f64 = 2.0;
        self.records.iter().rev().find(|r| {
            let (x0, y0, x1, y1) = r.bbox;
            x >= x0 - SLOP && x <= x1 + SLOP && y >= y0 - SLOP && y <= y1 + SLOP
        })
    }

    /// All records on a display row (for the left-hand history panel).
    pub fn row_records(&self, row: usize) -> impl Iterator<Item = &HitRecord> {
        self.records.iter().filter(move |r| r.row == row)
    }

    /// Iterate all records.
    pub fn iter(&self) -> impl Iterator<Item = &HitRecord> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(x0: f64, y0: f64, x1: f64, y1: f64, row: usize) -> HitRecord {
        HitRecord {
            bbox: (x0, y0, x1, y1),
            row,
            history_index: row,
            entry_index: 0,
            details: format!("row {row}"),
        }
    }

    #[test]
    fn topmost_wins() {
        let mut m = HitMap::new();
        m.push(rec(0.0, 0.0, 100.0, 100.0, 0));
        m.push(rec(40.0, 40.0, 60.0, 60.0, 1));
        assert_eq!(m.hit_test(50.0, 50.0).unwrap().row, 1, "later paint wins");
        assert_eq!(m.hit_test(10.0, 10.0).unwrap().row, 0);
        assert!(m.hit_test(300.0, 300.0).is_none());
    }

    #[test]
    fn slop_makes_thin_glyphs_clickable() {
        let mut m = HitMap::new();
        m.push(rec(50.0, 10.0, 50.5, 20.0, 0)); // half-pixel-wide mark
        assert!(m.hit_test(51.5, 15.0).is_some());
        assert!(m.hit_test(55.0, 15.0).is_none());
    }

    #[test]
    fn row_filtering() {
        let mut m = HitMap::new();
        m.push(rec(0.0, 0.0, 10.0, 10.0, 3));
        m.push(rec(20.0, 0.0, 30.0, 10.0, 3));
        m.push(rec(0.0, 20.0, 10.0, 30.0, 4));
        assert_eq!(m.row_records(3).count(), 2);
        assert_eq!(m.row_records(4).count(), 1);
        assert_eq!(m.row_records(9).count(), 0);
        assert_eq!(m.len(), 3);
    }
}
