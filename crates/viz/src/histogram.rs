//! Cohort dimension histograms as small multiples.
//!
//! One mini bar chart per profile dimension, laid out on a grid — the
//! cohort-composition panel the refinement loop reads between edits to
//! the selection criteria. Rendered through the shared [`Scene`] graph
//! so the SVG path reuses the existing renderer (classes + tooltips for
//! the interactive build), plus a direct text renderer for terminals.

use crate::color::{self, Color};
use crate::scene::{Primitive, Scene};
use pastas_analytics::{CohortProfile, Histogram};

const TITLE_PX: f64 = 12.0;
const LABEL_PX: f64 = 9.0;
const PAD: f64 = 10.0;
const BAR_FILL: Color = Color::rgb(0x4c, 0x78, 0xa8);
const BAR_EMPTY: Color = Color::rgb(0xe8, 0xe8, 0xe8);
const INK: Color = color::GLYPH_INK;

/// Lay the profile's histograms out as small multiples in a `w × h`
/// scene, three charts per row.
pub fn panel_scene(profile: &CohortProfile, w: f64, h: f64) -> Scene {
    let charts = profile.histograms();
    let mut scene = Scene::new(w, h);
    scene.push(
        Primitive::Text {
            x: PAD,
            y: PAD + TITLE_PX,
            text: format!(
                "cohort: {} patients, {} entries (reference {})",
                profile.cohort_size, profile.total_entries, profile.reference
            ),
            size: TITLE_PX,
            fill: INK,
        },
        "panel-header",
    );
    if charts.is_empty() {
        return scene;
    }
    let cols = 3usize;
    let rows = charts.len().div_ceil(cols);
    let top = PAD * 2.0 + TITLE_PX;
    let cell_w = (w - PAD) / cols as f64;
    let cell_h = (h - top - PAD) / rows as f64;
    for (i, chart) in charts.iter().enumerate() {
        let x0 = PAD + (i % cols) as f64 * cell_w;
        let y0 = top + (i / cols) as f64 * cell_h;
        draw_chart(&mut scene, chart, x0, y0, cell_w - PAD, cell_h - PAD);
    }
    scene
}

/// One mini bar chart inside the cell `(x0, y0, w, h)`.
fn draw_chart(scene: &mut Scene, chart: &Histogram, x0: f64, y0: f64, w: f64, h: f64) {
    scene.push(
        Primitive::Text {
            x: x0,
            y: y0 + TITLE_PX,
            text: chart.name.replace('_', " "),
            size: TITLE_PX,
            fill: INK,
        },
        "histogram-title",
    );
    let max = chart.buckets.iter().map(|&(_, c)| c).max().unwrap_or(0);
    if max == 0 || chart.buckets.is_empty() {
        return;
    }
    let chart_top = y0 + TITLE_PX + 4.0;
    let chart_h = (h - TITLE_PX - 4.0 - LABEL_PX).max(8.0);
    let slot = w / chart.buckets.len() as f64;
    let bar_w = (slot * 0.8).max(1.0);
    for (i, (label, count)) in chart.buckets.iter().enumerate() {
        let bar_h = chart_h * (*count as f64 / max as f64);
        let x = x0 + i as f64 * slot;
        let fill = if *count == 0 { BAR_EMPTY } else { BAR_FILL };
        scene.push_with_tooltip(
            Primitive::Rect {
                x,
                y: chart_top + (chart_h - bar_h),
                w: bar_w,
                h: bar_h.max(if *count > 0 { 1.0 } else { 0.0 }),
                fill,
            },
            &format!("histogram-bar {}", chart.name),
            format!("{}: {} = {}", chart.name, label, count),
        );
        // Label every bucket when they fit, else first/last only.
        let fits = slot >= LABEL_PX * label.len() as f64 * 0.62;
        if fits || i == 0 || i + 1 == chart.buckets.len() {
            scene.push(
                Primitive::Text {
                    x,
                    y: chart_top + chart_h + LABEL_PX,
                    text: label.clone(),
                    size: LABEL_PX,
                    fill: INK,
                },
                "histogram-label",
            );
        }
    }
}

/// The panel as a standalone SVG document.
pub fn panel_svg(profile: &CohortProfile, w: f64, h: f64) -> String {
    crate::svg::render(&panel_scene(profile, w, h))
}

/// The panel as plain text: one horizontal-bar block per histogram.
pub fn panel_ascii(profile: &CohortProfile, cols: usize) -> String {
    let bar_cols = cols.saturating_sub(30).max(10);
    let mut out = format!(
        "cohort: {} patients, {} entries (reference {})\n",
        profile.cohort_size, profile.total_entries, profile.reference
    );
    for chart in profile.histograms() {
        out.push('\n');
        out.push_str(chart.name);
        if !chart.partition {
            out.push_str(" (per-patient, overlapping)");
        }
        out.push('\n');
        let max = chart.buckets.iter().map(|&(_, c)| c).max().unwrap_or(0);
        for (label, count) in &chart.buckets {
            let filled = if max == 0 {
                0
            } else {
                ((*count as f64 / max as f64) * bar_cols as f64).round() as usize
            };
            out.push_str(&format!(
                "  {label:>12} {:bar_cols$} {count}\n",
                "#".repeat(filled),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_analytics::cohort_profile;
    use pastas_ontology::integration::IntegrationOntology;
    use pastas_synth::{generate_collection, SynthConfig};
    use pastas_time::Date;

    fn profile() -> CohortProfile {
        let collection = generate_collection(SynthConfig::with_patients(80), 31);
        let reference = collection
            .stats()
            .last
            .map(|dt| dt.date())
            .unwrap_or_else(|| Date::new(2013, 1, 1).expect("valid"));
        let positions: Vec<u32> = (0..collection.len() as u32).collect();
        cohort_profile(&collection, &IntegrationOntology::new(), &positions, reference, 10)
    }

    #[test]
    fn svg_panel_has_one_chart_per_histogram() {
        let p = profile();
        let scene = panel_scene(&p, 900.0, 600.0);
        assert_eq!(scene.count_class_prefix("histogram-title"), p.histograms().len());
        assert!(scene.count_class_prefix("histogram-bar") > 0);
        let svg = panel_svg(&p, 900.0, 600.0);
        assert!(svg.contains("<svg"));
        assert!(svg.contains("age band"));
    }

    #[test]
    fn ascii_panel_lists_every_bucket_label() {
        let p = profile();
        let text = panel_ascii(&p, 100);
        assert!(text.contains("age_band"));
        assert!(text.contains("dominant_source"));
        assert!(text.contains("90+"));
        assert!(text.contains("none"));
    }

    #[test]
    fn empty_profile_renders_without_panicking() {
        let collection = generate_collection(SynthConfig::with_patients(10), 31);
        let p = cohort_profile(
            &collection,
            &IntegrationOntology::new(),
            &[],
            Date::new(2013, 1, 1).expect("valid"),
            10,
        );
        assert!(panel_svg(&p, 400.0, 300.0).contains("<svg"));
        assert!(panel_ascii(&p, 80).contains("0 patients"));
    }
}
