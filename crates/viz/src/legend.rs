//! The legend panel: glyph shapes, band colors, and the medication
//! palette, generated from the presentation ontology so the legend can
//! never drift from the actual encoding.

use crate::color;
use crate::scene::{Primitive, Scene};
use pastas_codes::atc::LEVEL1_GROUPS;
use pastas_ontology::presentation::{BandKind, GlyphShape};

/// One legend row: swatch class, label.
#[derive(Debug, Clone, PartialEq)]
pub struct LegendItem {
    /// Scene class of the swatch (`viz:Glyph/...`, `viz:Band/...`,
    /// `viz:Color/<letter>`).
    pub class: String,
    /// Human label.
    pub label: String,
}

/// All legend items in display order: glyphs, bands, then the medication
/// color classes.
pub fn legend_items() -> Vec<LegendItem> {
    let mut out = Vec::new();
    for (shape, label) in [
        (GlyphShape::Square, "diagnosis"),
        (GlyphShape::Arrow, "measurement"),
        (GlyphShape::Triangle, "medication dispensing"),
        (GlyphShape::Cross, "note"),
    ] {
        out.push(LegendItem {
            class: format!("viz:Glyph/{}", shape.name()),
            label: label.to_owned(),
        });
    }
    for (band, label) in [
        (BandKind::Hospital, "hospital episode"),
        (BandKind::Municipal, "municipal care"),
        (BandKind::Rehabilitation, "rehabilitation"),
        (BandKind::Medication, "medication exposure"),
    ] {
        out.push(LegendItem {
            class: format!("viz:Band/{}", band.name()),
            label: label.to_owned(),
        });
    }
    for (i, (letter, name)) in LEVEL1_GROUPS.iter().enumerate() {
        let _ = i;
        out.push(LegendItem {
            class: format!("viz:Color/{letter}"),
            label: format!("ATC {letter} — {name}"),
        });
    }
    out
}

/// Render the legend as a scene column of `width` px.
pub fn render_legend(width: f64) -> Scene {
    let items = legend_items();
    let row_h = 16.0;
    let mut scene = Scene::new(width, items.len() as f64 * row_h + 8.0);
    for (i, item) in items.iter().enumerate() {
        let y = 4.0 + i as f64 * row_h;
        let cy = y + row_h / 2.0;
        let prim = if let Some(band) = item.class.strip_prefix("viz:Band/") {
            let fill = match band {
                "hospital" => color::BAND_HOSPITAL,
                "municipal" => color::BAND_MUNICIPAL,
                "rehabilitation" => color::BAND_REHAB,
                _ => color::BAND_MEDICATION,
            };
            Primitive::Rect { x: 4.0, y: y + 3.0, w: 18.0, h: row_h - 6.0, fill }
        } else if let Some(letter) = item.class.strip_prefix("viz:Color/") {
            let idx = LEVEL1_GROUPS
                .iter()
                .position(|(g, _)| letter.starts_with(*g))
                .unwrap_or(0);
            Primitive::Rect {
                x: 6.0,
                y: y + 4.0,
                w: 12.0,
                h: row_h - 8.0,
                fill: color::MEDICATION_PALETTE[idx],
            }
        } else {
            match item.class.as_str() {
                "viz:Glyph/square" => {
                    Primitive::Rect { x: 8.0, y: cy - 4.0, w: 8.0, h: 8.0, fill: color::GLYPH_INK }
                }
                "viz:Glyph/arrow" => Primitive::Polygon {
                    points: vec![(12.0, cy - 5.0), (8.0, cy + 4.0), (16.0, cy + 4.0)],
                    fill: color::GLYPH_INK,
                },
                "viz:Glyph/triangle" => Primitive::Polygon {
                    points: vec![(12.0, cy + 4.0), (8.0, cy - 4.0), (16.0, cy - 4.0)],
                    fill: color::GLYPH_INK,
                },
                _ => Primitive::Circle { cx: 12.0, cy, r: 4.0, fill: color::GLYPH_INK },
            }
        };
        scene.push(prim, &item.class);
        scene.push(
            Primitive::Text {
                x: 28.0,
                y: cy + 3.5,
                text: item.label.clone(),
                size: 10.0,
                fill: color::GLYPH_INK,
            },
            "viz:Legend/label",
        );
    }
    scene
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legend_covers_glyphs_bands_and_all_atc_groups() {
        let items = legend_items();
        assert_eq!(items.len(), 4 + 4 + 14);
        assert!(items.iter().any(|i| i.class == "viz:Glyph/square" && i.label == "diagnosis"));
        assert!(items.iter().any(|i| i.class == "viz:Band/hospital"));
        assert!(items.iter().any(|i| i.label.contains("Cardiovascular system")));
    }

    #[test]
    fn legend_scene_has_swatch_and_label_per_item() {
        let scene = render_legend(220.0);
        let items = legend_items();
        assert_eq!(scene.count_class_prefix("viz:Legend/label"), items.len());
        // One swatch per item (everything that isn't a label).
        assert_eq!(scene.len() - items.len(), items.len());
    }

    #[test]
    fn color_swatches_use_the_palette_in_group_order() {
        let scene = render_legend(220.0);
        let swatch = scene
            .elements
            .iter()
            .find(|e| e.class == "viz:Color/C")
            .expect("cardiovascular swatch");
        if let Primitive::Rect { fill, .. } = swatch.primitive {
            assert_eq!(fill, color::MEDICATION_PALETTE[2], "C is group index 2");
        } else {
            panic!("color swatch should be a rect");
        }
    }
}
