//! Rendering NSEPter graphs (Fig. 2) into the scene model.
//!
//! Nodes are circles sized by merged-history count; edges are lines whose
//! width scales with the number of histories exhibiting the transition —
//! "Common edges between merged nodes were scaled according to the number
//! of histories exhibiting the transition in question" (§II.A.1).

use crate::color;
use crate::scene::{Primitive, Scene};
use pastas_graph::{DiGraph, GraphLayout};

/// Rendering parameters.
#[derive(Debug, Clone, Copy)]
pub struct GraphViewOptions {
    /// Horizontal spacing between layers, px.
    pub layer_spacing: f64,
    /// Vertical spacing within a layer, px.
    pub row_spacing: f64,
    /// Canvas margin, px.
    pub margin: f64,
    /// Draw code labels on nodes.
    pub labels: bool,
}

impl Default for GraphViewOptions {
    fn default() -> GraphViewOptions {
        GraphViewOptions { layer_spacing: 110.0, row_spacing: 42.0, margin: 36.0, labels: true }
    }
}

/// Render a laid-out graph to a scene.
pub fn render_graph(g: &DiGraph, layout: &GraphLayout, opts: &GraphViewOptions) -> Scene {
    let w = opts.margin * 2.0 + opts.layer_spacing * layout.layers.max(1) as f64;
    let h = opts.margin * 2.0 + opts.row_spacing * layout.max_layer_size.max(1) as f64;
    let mut scene = Scene::new(w, h);
    let place = |x: f64, y: f64| (opts.margin + x * opts.layer_spacing, opts.margin + y * opts.row_spacing);

    // Edges underneath.
    for (a, b, weight) in g.edges() {
        let (Some(&(xa, ya)), Some(&(xb, yb))) = (layout.positions.get(&a), layout.positions.get(&b))
        else {
            continue;
        };
        let (x1, y1) = place(xa, ya);
        let (x2, y2) = place(xb, yb);
        scene.push_with_tooltip(
            Primitive::Line {
                x1,
                y1,
                x2,
                y2,
                stroke: color::AXIS_INK,
                width: (weight as f64).sqrt().max(0.75),
            },
            "graph:edge",
            format!("{weight} histories take this transition"),
        );
    }
    // Nodes on top.
    for (id, node) in g.nodes().iter().enumerate() {
        if node.dead {
            continue;
        }
        let Some(&(x, y)) = layout.positions.get(&id) else { continue };
        let (cx, cy) = place(x, y);
        let r = 4.0 + (node.members.len() as f64).sqrt() * 2.0;
        scene.push_with_tooltip(
            Primitive::Circle { cx, cy, r, fill: color::ROW_BAR },
            "graph:node",
            format!("{} — {} histories", node.code.value, node.members.len()),
        );
        if opts.labels {
            scene.push(
                Primitive::Text {
                    x: cx - 10.0,
                    y: cy + 3.0,
                    text: node.code.value.clone(),
                    size: 9.0,
                    fill: color::GLYPH_INK,
                },
                "graph:label",
            );
        }
    }
    scene
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_graph::{layout, merge_neighbors, merge_on_regex};
    use pastas_regex::Regex;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    fn merged_graph() -> (DiGraph, GraphLayout) {
        let seqs = vec![
            seq(&["A01", "T90", "K74"]),
            seq(&["A01", "T90", "K74"]),
            seq(&["R05", "T90", "K77"]),
        ];
        let mut g = DiGraph::from_sequences(&seqs);
        let merged = merge_on_regex(&mut g, &Regex::new("T90").unwrap());
        merge_neighbors(&mut g, &merged, 2);
        let l = layout(&g);
        (g, l)
    }

    #[test]
    fn scene_inventory_matches_graph() {
        let (g, l) = merged_graph();
        let scene = render_graph(&g, &l, &GraphViewOptions::default());
        assert_eq!(scene.count_class_prefix("graph:node"), g.node_count());
        assert_eq!(scene.count_class_prefix("graph:edge"), g.edge_count());
        assert_eq!(scene.count_class_prefix("graph:label"), g.node_count());
    }

    #[test]
    fn edge_width_scales_with_history_count() {
        let (g, l) = merged_graph();
        let scene = render_graph(&g, &l, &GraphViewOptions::default());
        let widths: Vec<f64> = scene
            .elements
            .iter()
            .filter_map(|e| match &e.primitive {
                Primitive::Line { width, .. } if e.class == "graph:edge" => Some(*width),
                _ => None,
            })
            .collect();
        let max = widths.iter().cloned().fold(0.0, f64::max);
        let min = widths.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > min, "shared transitions draw thicker: {widths:?}");
    }

    #[test]
    fn labels_can_be_disabled() {
        let (g, l) = merged_graph();
        let opts = GraphViewOptions { labels: false, ..Default::default() };
        let scene = render_graph(&g, &l, &opts);
        assert_eq!(scene.count_class_prefix("graph:label"), 0);
    }

    #[test]
    fn merged_node_tooltip_reports_membership() {
        let (g, l) = merged_graph();
        let scene = render_graph(&g, &l, &GraphViewOptions::default());
        assert!(scene
            .elements
            .iter()
            .any(|e| e.tooltip.as_deref() == Some("T90 — 3 histories")));
    }

    #[test]
    fn empty_graph_renders_empty_scene() {
        let g = DiGraph::from_sequences(&[]);
        let l = layout(&g);
        let scene = render_graph(&g, &l, &GraphViewOptions::default());
        assert!(scene.is_empty());
    }
}
