//! The PAsTAs timeline visualization, headless.
//!
//! Fig. 1 of the paper: "Each gray bar … constitutes a patient history,
//! with small rectangles and arrows indicating diagnoses and blood
//! pressure measurements … The colors in the visualization show different
//! classes of medication. On the left-hand side and bottom of the window,
//! there are dynamic displays showing detailed information about the
//! history content under the mouse cursor." Plus §IV.B's two axis modes
//! and the two zoom sliders.
//!
//! Everything a GUI toolkit would do is modelled as data + pure functions,
//! so the pipeline is testable and its latency benchmarkable against
//! Shneiderman's 0.1 s budget (E8):
//!
//! * [`color`] — the categorical palette (ATC groups, bands, glyphs);
//! * [`scene`] — a retained-mode scene graph of drawing primitives;
//! * [`viewport`] — pan + the dual zoom sliders;
//! * [`axis`] — calendar and aligned (months-from-anchor) axes with tick
//!   generation;
//! * [`timeline`] — the Fig. 1 layout: rows, bands, glyphs, labels;
//! * [`hit`] — hit-testing and details-on-demand;
//! * [`svg`] / [`ascii`] / [`html`] — renderers (static SVG, terminal
//!   preview, and the pastas.no-style interactive personal timeline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod axis;
pub mod color;
pub mod graphview;
pub mod histogram;
pub mod hit;
pub mod legend;
pub mod eventchart;
pub mod html;
pub mod overview;
pub mod scene;
pub mod svg;
pub mod timeline;
pub mod transition;
pub mod viewport;

pub use axis::AxisMode;
pub use scene::{Primitive, Scene};
pub use timeline::{TimelineOptions, TimelineView};
pub use viewport::Viewport;

#[cfg(test)]
mod proptests;
