//! Scene transitions — the change-blindness countermeasure.
//!
//! §II.C.2: "If the user blinks or changes focus, or if the screen briefly
//! goes blank, between two successive views, it is probable that the user
//! will be unable to detect the difference … the visualization should not
//! presume that a user is able to detect changes between views without a
//! way of highlighting the change, such as with animation."
//!
//! [`diff`] compares two scenes element-by-element (keyed by class +
//! tooltip, matching greedily within a class) and produces an
//! [`AnimationPlan`]: which elements enter (fade in), leave (fade out), or
//! move (interpolate), with a duration chosen per the magnitude of change
//! so large re-arrangements get more time to track.

use crate::scene::{Element, Primitive, Scene};

/// One element-level change between two scenes.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// New element: fade in at this index of the new scene.
    Enter {
        /// Index into the new scene.
        new_index: usize,
    },
    /// Removed element: fade out from this index of the old scene.
    Exit {
        /// Index into the old scene.
        old_index: usize,
    },
    /// The element persisted but its geometry changed: interpolate.
    Move {
        /// Index into the old scene.
        old_index: usize,
        /// Index into the new scene.
        new_index: usize,
        /// Straight-line distance between bbox centres, px.
        distance: f64,
    },
}

/// The animation plan for one view change.
#[derive(Debug, Clone, Default)]
pub struct AnimationPlan {
    /// Element changes.
    pub changes: Vec<Change>,
    /// Recommended duration, ms.
    pub duration_ms: f64,
}

impl AnimationPlan {
    /// Count of entering elements.
    pub fn enters(&self) -> usize {
        self.changes.iter().filter(|c| matches!(c, Change::Enter { .. })).count()
    }

    /// Count of exiting elements.
    pub fn exits(&self) -> usize {
        self.changes.iter().filter(|c| matches!(c, Change::Exit { .. })).count()
    }

    /// Count of moving elements.
    pub fn moves(&self) -> usize {
        self.changes.iter().filter(|c| matches!(c, Change::Move { .. })).count()
    }
}

fn identity_key(e: &Element) -> (&str, Option<&str>) {
    (e.class.as_str(), e.tooltip.as_deref())
}

fn centre(p: &Primitive) -> (f64, f64) {
    let (x0, y0, x1, y1) = p.bbox();
    ((x0 + x1) / 2.0, (y0 + y1) / 2.0)
}

/// Diff two scenes and plan the transition.
///
/// Elements are matched by `(class, tooltip)` identity — the tooltip
/// carries the entry description, so an entry that merely moved (zoom,
/// alignment, re-sort) matches itself across views. Ambiguous matches
/// (identical keys) pair up greedily in order.
pub fn diff(old: &Scene, new: &Scene) -> AnimationPlan {
    use std::collections::HashMap;
    let mut new_by_key: HashMap<(&str, Option<&str>), Vec<usize>> = HashMap::new();
    for (i, e) in new.elements.iter().enumerate() {
        new_by_key.entry(identity_key(e)).or_default().push(i);
    }
    // Reverse so pop() takes elements in order.
    for v in new_by_key.values_mut() {
        v.reverse();
    }

    let mut changes = Vec::new();
    let mut max_distance = 0.0f64;
    let mut matched_new = vec![false; new.elements.len()];
    for (old_index, e) in old.elements.iter().enumerate() {
        match new_by_key.get_mut(&identity_key(e)).and_then(Vec::pop) {
            Some(new_index) => {
                matched_new[new_index] = true;
                let (ax, ay) = centre(&e.primitive);
                let (bx, by) = centre(&new.elements[new_index].primitive);
                let distance = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                if distance > 0.25 || e.primitive != new.elements[new_index].primitive {
                    max_distance = max_distance.max(distance);
                    changes.push(Change::Move { old_index, new_index, distance });
                }
            }
            None => changes.push(Change::Exit { old_index }),
        }
    }
    for (new_index, matched) in matched_new.iter().enumerate() {
        if !matched {
            changes.push(Change::Enter { new_index });
        }
    }

    // Duration heuristic: 200 ms floor (perceivable), growing with travel
    // distance, capped at 800 ms (don't block the interaction loop).
    let duration_ms = if changes.is_empty() {
        0.0
    } else {
        (200.0 + max_distance * 0.8).min(800.0)
    };
    AnimationPlan { changes, duration_ms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::GLYPH_INK;

    fn glyph(x: f64, tooltip: &str) -> Element {
        Element {
            primitive: Primitive::Circle { cx: x, cy: 10.0, r: 2.0, fill: GLYPH_INK },
            class: "viz:Glyph/circle".to_owned(),
            tooltip: Some(tooltip.to_owned()),
        }
    }

    fn scene(elements: Vec<Element>) -> Scene {
        Scene { width: 100.0, height: 50.0, elements }
    }

    #[test]
    fn identical_scenes_need_no_animation() {
        let s = scene(vec![glyph(10.0, "a"), glyph(20.0, "b")]);
        let plan = diff(&s, &s);
        assert!(plan.changes.is_empty());
        assert_eq!(plan.duration_ms, 0.0);
    }

    #[test]
    fn moved_entries_are_tracked_not_replaced() {
        // The zoom case: same entries, new positions.
        let old = scene(vec![glyph(10.0, "a"), glyph(20.0, "b")]);
        let new = scene(vec![glyph(40.0, "a"), glyph(80.0, "b")]);
        let plan = diff(&old, &new);
        assert_eq!(plan.moves(), 2);
        assert_eq!(plan.enters(), 0);
        assert_eq!(plan.exits(), 0);
        assert!(plan.duration_ms >= 200.0);
    }

    #[test]
    fn filtering_produces_exits_and_unfiltering_enters() {
        let full = scene(vec![glyph(10.0, "a"), glyph(20.0, "b"), glyph(30.0, "c")]);
        let filtered = scene(vec![glyph(10.0, "a")]);
        let plan = diff(&full, &filtered);
        assert_eq!(plan.exits(), 2);
        assert_eq!(plan.enters(), 0);
        let back = diff(&filtered, &full);
        assert_eq!(back.enters(), 2);
        assert_eq!(back.exits(), 0);
    }

    #[test]
    fn duration_scales_with_travel_and_is_capped() {
        let old = scene(vec![glyph(0.0, "a")]);
        let near = scene(vec![glyph(10.0, "a")]);
        let far = scene(vec![glyph(5_000.0, "a")]);
        let d_near = diff(&old, &near).duration_ms;
        let d_far = diff(&old, &far).duration_ms;
        assert!(d_near < d_far);
        assert!(d_far <= 800.0, "capped at 800 ms");
    }

    #[test]
    fn duplicate_keys_pair_greedily() {
        // Two identical diagnoses on the same day: both must match, none
        // spuriously enter/exit.
        let old = scene(vec![glyph(10.0, "dup"), glyph(20.0, "dup")]);
        let new = scene(vec![glyph(12.0, "dup"), glyph(22.0, "dup")]);
        let plan = diff(&old, &new);
        assert_eq!(plan.moves(), 2);
        assert_eq!(plan.enters() + plan.exits(), 0);
    }

    #[test]
    fn class_change_is_exit_plus_enter() {
        let old = scene(vec![glyph(10.0, "a")]);
        let mut changed = glyph(10.0, "a");
        changed.class = "viz:Glyph/square".to_owned();
        let new = scene(vec![changed]);
        let plan = diff(&old, &new);
        assert_eq!(plan.exits(), 1);
        assert_eq!(plan.enters(), 1);
    }
}
