//! The pattern-hit event chart — the Fails et al. design the paper
//! discusses (§II.D.2).
//!
//! "The visualisation used by Fails et al. can remind of an event chart
//! showing multiple lines per history, **one for each hit of a temporal
//! query**. However, the visualisation shows only the time spanned by the
//! search hits, as opposed to the traditional event chart showing the
//! entire histories."
//!
//! Given the hits of a `pastas_query::TemporalPattern`, this view lays out
//! one row per *hit* (a history with three readmission episodes gets three
//! rows), each row showing only the hit's span, left-aligned at the hit's
//! first step — which makes the internal tempo of the pattern comparable
//! across patients.

use crate::color;
use crate::hit::{HitMap, HitRecord};
use crate::scene::{Primitive, Scene};
use pastas_model::{EntryView, HistoryCollection};
use pastas_ontology::presentation::PresentationOntology;
use pastas_query::temporal::PatternHit;
use pastas_time::Duration;

/// One row of the chart: which history, which entry indexes.
#[derive(Debug, Clone)]
pub struct ChartRow {
    /// Position of the history in the collection.
    pub history_index: usize,
    /// The pattern hit.
    pub hit: PatternHit,
}

/// Collect chart rows by running a pattern over a collection.
pub fn collect_rows(
    collection: &HistoryCollection,
    pattern: &pastas_query::TemporalPattern,
) -> Vec<ChartRow> {
    let mut rows = Vec::new();
    for (i, h) in collection.iter().enumerate() {
        for hit in pattern.find_matches(h) {
            rows.push(ChartRow { history_index: i, hit });
        }
    }
    rows
}

/// Event-chart options.
#[derive(Debug, Clone, Copy)]
pub struct EventChartOptions {
    /// Canvas width, px.
    pub width: f64,
    /// Row height, px.
    pub row_height: f64,
    /// Extra time shown after the last step, as a fraction of the longest
    /// hit span.
    pub tail_fraction: f64,
}

impl Default for EventChartOptions {
    fn default() -> EventChartOptions {
        EventChartOptions { width: 900.0, row_height: 18.0, tail_fraction: 0.1 }
    }
}

/// Render the event chart: rows of hit spans, aligned at each hit's first
/// step, with step entries drawn using the normal glyph/band vocabulary.
pub fn render_event_chart(
    collection: &HistoryCollection,
    rows: &[ChartRow],
    opts: &EventChartOptions,
) -> (Scene, HitMap) {
    let presentation = PresentationOntology::new();
    let histories = collection.histories();

    // The time scale: longest hit span across rows (anchor → last end).
    let span_of = |row: &ChartRow| -> Duration {
        let entries = histories[row.history_index].entries();
        let first = entries.get(row.hit.steps[0]).start();
        let last = row
            .hit
            .steps
            .iter()
            .map(|&i| entries.get(i).end())
            .max()
            .expect("non-empty hit");
        last - first
    };
    let max_span = rows
        .iter()
        .map(|r| span_of(r).as_seconds())
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let scale = opts.width / (max_span * (1.0 + opts.tail_fraction)).max(1.0);

    let height = rows.len() as f64 * opts.row_height + 4.0;
    let mut scene = Scene::new(opts.width, height);
    let mut hits = HitMap::new();

    for (ri, row) in rows.iter().enumerate() {
        let entries = histories[row.history_index].entries();
        let anchor = entries.get(row.hit.steps[0]).start();
        let y = 2.0 + ri as f64 * opts.row_height;
        let bar_h = opts.row_height * 0.7;

        // The hit-span guide line.
        let span = span_of(row).as_seconds() as f64 * scale;
        scene.push(
            Primitive::Line {
                x1: 0.0,
                y1: y + bar_h / 2.0,
                x2: span.max(2.0),
                y2: y + bar_h / 2.0,
                stroke: color::ROW_BAR,
                width: bar_h * 0.5,
            },
            "chart:span",
        );

        for &ei in &row.hit.steps {
            let e = entries.get(ei);
            let x0 = (e.start() - anchor).as_seconds() as f64 * scale;
            let x1 = (e.end() - anchor).as_seconds() as f64 * scale;
            let prim = if e.is_interval() && presentation.band_for(e.payload()).is_some() {
                Primitive::Rect {
                    x: x0,
                    y,
                    w: (x1 - x0).max(1.5),
                    h: bar_h,
                    fill: color::BAND_HOSPITAL,
                }
            } else {
                let s = (bar_h * 0.6).clamp(3.0, 8.0);
                Primitive::Rect {
                    x: x0 - s / 2.0,
                    y: y + (bar_h - s) / 2.0,
                    w: s,
                    h: s,
                    fill: color::GLYPH_INK,
                }
            };
            let bbox = prim.bbox();
            scene.push_with_tooltip(prim, &presentation.presentation_class(e), e.describe());
            hits.push(HitRecord {
                bbox,
                row: ri,
                history_index: row.history_index,
                entry_index: ei,
                details: e.describe(),
            });
        }
    }
    (scene, hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, EpisodeKind, History, Patient, PatientId, Payload, Sex, SourceKind};
    use pastas_query::{EntryPredicate, GapBound, TemporalPattern};
    use pastas_time::{Date, DateTime};

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn collection() -> HistoryCollection {
        let mk = |id: u64, stays: &[(u32, u32)]| {
            let mut h = History::new(Patient {
                id: PatientId(id),
                birth_date: Date::new(1950, 1, 1).unwrap(),
                sex: Sex::Female,
            });
            h.insert(Entry::event(
                t(2013, 1, 5),
                Payload::Diagnosis(Code::icpc("K77")),
                SourceKind::PrimaryCare,
            ));
            for &(m, d) in stays {
                h.insert(Entry::interval(
                    t(2013, m, d),
                    t(2013, m, d + 4),
                    Payload::Episode(EpisodeKind::Inpatient),
                    SourceKind::Hospital,
                ));
            }
            h
        };
        HistoryCollection::from_histories([
            mk(1, &[(2, 1), (2, 20)]),            // one readmission pair
            mk(2, &[(3, 1), (3, 10), (3, 20)]),   // two overlapping-window pairs
            mk(3, &[(5, 1)]),                     // no readmission
        ])
    }

    fn readmit_pattern() -> TemporalPattern {
        TemporalPattern::starting_with(EntryPredicate::IsInterval)
            .then(GapBound::within(pastas_time::Duration::days(30)), EntryPredicate::IsInterval)
    }

    #[test]
    fn one_row_per_hit_not_per_history() {
        let c = collection();
        let rows = collect_rows(&c, &readmit_pattern());
        // h1: 1 hit; h2: stays at 3/1, 3/10, 3/20 → anchors 1 and 2 both
        // complete → 2 hits; h3: none.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.iter().filter(|r| r.history_index == 1).count(), 2);
        assert!(rows.iter().all(|r| r.history_index != 2));
    }

    #[test]
    fn rows_are_anchor_aligned() {
        let c = collection();
        let rows = collect_rows(&c, &readmit_pattern());
        let (scene, hits) = render_event_chart(&c, &rows, &EventChartOptions::default());
        assert!(!scene.is_empty());
        // Each row's first step starts at x ≈ 0.
        for ri in 0..rows.len() {
            let first = hits
                .row_records(ri)
                .min_by(|a, b| a.bbox.0.partial_cmp(&b.bbox.0).unwrap())
                .expect("row has records");
            assert!(first.bbox.0 <= 1.0, "row {ri} first step at {}", first.bbox.0);
        }
    }

    #[test]
    fn only_the_hit_span_is_drawn() {
        // The K77 diagnosis (before the stays) is not part of any hit and
        // must not appear — "events not part of a search hit are only
        // counted in the design of Fails et al."
        let c = collection();
        let rows = collect_rows(&c, &readmit_pattern());
        let (_, hits) = render_event_chart(&c, &rows, &EventChartOptions::default());
        assert!(hits.iter().all(|r| !r.details.contains("K77")));
    }

    #[test]
    fn empty_hits_render_empty_chart() {
        let c = collection();
        let never = TemporalPattern::starting_with(EntryPredicate::code_regex("Z99").unwrap());
        let rows = collect_rows(&c, &never);
        assert!(rows.is_empty());
        let (scene, hits) = render_event_chart(&c, &rows, &EventChartOptions::default());
        assert!(scene.is_empty());
        assert!(hits.is_empty());
    }
}
