//! SVG rendering of a [`Scene`].
//!
//! Hand-rolled writer: the scene's primitive set is small and fixed, so a
//! dependency-free emitter stays trivially auditable. Tooltips become
//! `<title>` children (the native SVG hover affordance), classes carry the
//! presentation-ontology class names.

use crate::scene::{Primitive, Scene};
use std::fmt::Write;

/// Escape text content for XML. Beyond the five predefined entities,
/// control characters outside XML 1.0's character range (everything below
/// U+0020 except tab/newline/carriage return) are replaced with U+FFFD —
/// they cannot be represented in XML at all, even as numeric references,
/// and passing them through would corrupt the whole document. Source
/// strings here include patient note text and code descriptions, which
/// arrive from heterogeneous registries and do contain stray controls.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            '\t' | '\n' | '\r' => out.push(c),
            c if (c as u32) < 0x20 => out.push('\u{fffd}'),
            _ => out.push(c),
        }
    }
    out
}

/// Sanitize a class name into an SVG-safe token (`viz:Glyph/square` →
/// `viz-Glyph-square`).
fn class_token(class: &str) -> String {
    class
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
        .collect()
}

fn fmt_num(v: f64) -> String {
    // Trim trailing zeros for compact output.
    let s = format!("{v:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_owned()
    } else {
        s.to_owned()
    }
}

/// Render a scene to a standalone SVG document.
pub fn render(scene: &Scene) -> String {
    let mut out = String::with_capacity(scene.len() * 96 + 256);
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\" font-family=\"sans-serif\">",
        fmt_num(scene.width),
        fmt_num(scene.height),
        fmt_num(scene.width),
        fmt_num(scene.height),
    );
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n");
    for el in &scene.elements {
        let class = class_token(&el.class);
        let title = el
            .tooltip
            .as_ref()
            .map(|t| format!("<title>{}</title>", escape(t)))
            .unwrap_or_default();
        let open_close = |body: String| -> String {
            if title.is_empty() {
                format!("{body}/>\n")
            } else {
                // Reopen the element to nest the title.
                let tag_end = body.find(' ').unwrap_or(body.len());
                let tag = &body[1..tag_end];
                format!("{body}>{title}</{tag}>\n")
            }
        };
        match &el.primitive {
            Primitive::Rect { x, y, w, h, fill } => {
                out.push_str(&open_close(format!(
                    "<rect class=\"{class}\" x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"",
                    fmt_num(*x),
                    fmt_num(*y),
                    fmt_num(*w),
                    fmt_num(*h),
                    fill.hex(),
                )));
            }
            Primitive::Line { x1, y1, x2, y2, stroke, width } => {
                out.push_str(&open_close(format!(
                    "<line class=\"{class}\" x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{}\" stroke-width=\"{}\"",
                    fmt_num(*x1),
                    fmt_num(*y1),
                    fmt_num(*x2),
                    fmt_num(*y2),
                    stroke.hex(),
                    fmt_num(*width),
                )));
            }
            Primitive::Circle { cx, cy, r, fill } => {
                out.push_str(&open_close(format!(
                    "<circle class=\"{class}\" cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{}\"",
                    fmt_num(*cx),
                    fmt_num(*cy),
                    fmt_num(*r),
                    fill.hex(),
                )));
            }
            Primitive::Polygon { points, fill } => {
                let pts: Vec<String> =
                    points.iter().map(|&(x, y)| format!("{},{}", fmt_num(x), fmt_num(y))).collect();
                out.push_str(&open_close(format!(
                    "<polygon class=\"{class}\" points=\"{}\" fill=\"{}\"",
                    pts.join(" "),
                    fill.hex(),
                )));
            }
            Primitive::Text { x, y, text, size, fill } => {
                let _ = writeln!(
                    out,
                    "<text class=\"{class}\" x=\"{}\" y=\"{}\" font-size=\"{}\" fill=\"{}\">{}</text>",
                    fmt_num(*x),
                    fmt_num(*y),
                    fmt_num(*size),
                    fill.hex(),
                    escape(text),
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::GLYPH_INK;

    fn scene_with(p: Primitive) -> Scene {
        let mut s = Scene::new(100.0, 50.0);
        s.push(p, "viz:Glyph/square");
        s
    }

    #[test]
    fn document_structure() {
        let svg = render(&scene_with(Primitive::Rect {
            x: 1.0,
            y: 2.0,
            w: 3.0,
            h: 4.0,
            fill: GLYPH_INK,
        }));
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("width=\"100\""));
        assert!(svg.contains("<rect class=\"viz-Glyph-square\" x=\"1\" y=\"2\""));
    }

    #[test]
    fn tooltips_become_titles() {
        let mut s = Scene::new(10.0, 10.0);
        s.push_with_tooltip(
            Primitive::Circle { cx: 1.0, cy: 1.0, r: 1.0, fill: GLYPH_INK },
            "viz:Glyph/circle",
            "diagnosis T90 (Diabetes <non-insulin>)".into(),
        );
        let svg = render(&s);
        assert!(svg.contains("<title>diagnosis T90 (Diabetes &lt;non-insulin&gt;)</title>"));
        assert!(svg.contains("</circle>"));
    }

    #[test]
    fn text_is_escaped() {
        let svg = render(&scene_with(Primitive::Text {
            x: 0.0,
            y: 0.0,
            text: "BP < 140 & falling".into(),
            size: 10.0,
            fill: GLYPH_INK,
        }));
        assert!(svg.contains("BP &lt; 140 &amp; falling"));
    }

    #[test]
    fn control_characters_cannot_corrupt_the_document() {
        // U+0001 is unrepresentable in XML 1.0 (even as &#1;) — it must be
        // replaced, not passed through. Tab survives: it is a valid char.
        assert_eq!(escape("a\u{1}b"), "a\u{fffd}b");
        assert_eq!(escape("a\tb"), "a\tb");
        let mut s = Scene::new(10.0, 10.0);
        s.push_with_tooltip(
            Primitive::Circle { cx: 1.0, cy: 1.0, r: 1.0, fill: GLYPH_INK },
            "viz:Glyph/circle",
            "note \u{1}with\u{8} controls".into(),
        );
        let svg = render(&s);
        assert!(!svg.contains('\u{1}') && !svg.contains('\u{8}'), "{svg}");
        assert!(svg.contains("<title>note \u{fffd}with\u{fffd} controls</title>"));
    }

    #[test]
    fn numbers_are_compact() {
        assert_eq!(fmt_num(10.0), "10");
        assert_eq!(fmt_num(10.50), "10.5");
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(-3.25), "-3.25");
    }

    #[test]
    fn all_primitives_render() {
        let mut s = Scene::new(10.0, 10.0);
        s.push(Primitive::Rect { x: 0.0, y: 0.0, w: 1.0, h: 1.0, fill: GLYPH_INK }, "a");
        s.push(
            Primitive::Line { x1: 0.0, y1: 0.0, x2: 1.0, y2: 1.0, stroke: GLYPH_INK, width: 1.0 },
            "b",
        );
        s.push(Primitive::Circle { cx: 0.0, cy: 0.0, r: 1.0, fill: GLYPH_INK }, "c");
        s.push(Primitive::Polygon { points: vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)], fill: GLYPH_INK }, "d");
        s.push(Primitive::Text { x: 0.0, y: 0.0, text: "x".into(), size: 8.0, fill: GLYPH_INK }, "e");
        let svg = render(&s);
        for tag in ["<rect", "<line", "<circle", "<polygon", "<text"] {
            assert!(svg.contains(tag), "missing {tag}");
        }
    }
}
