//! Terminal rendering of a [`Scene`] — the quick-look renderer used by the
//! examples and by tests that want to assert on visual structure without
//! parsing SVG.
//!
//! Each scene pixel block maps to one character cell: bands render as `░`,
//! the gray row bar as `─`, glyphs by shape (`■ ▲ ↑ + ●`), axis rules as
//! `┈`. Later elements overwrite earlier ones, matching paint order.

use crate::scene::{Primitive, Scene};

/// Render the scene onto a `cols × rows` character grid.
pub fn render(scene: &Scene, cols: usize, rows: usize) -> String {
    let mut grid = vec![vec![' '; cols]; rows];
    let sx = cols as f64 / scene.width.max(1.0);
    let sy = rows as f64 / scene.height.max(1.0);

    let plot = |x: f64, y: f64, ch: char, grid: &mut Vec<Vec<char>>| {
        let cx = (x * sx) as isize;
        let cy = (y * sy) as isize;
        if cx >= 0 && cy >= 0 && (cx as usize) < cols && (cy as usize) < rows {
            grid[cy as usize][cx as usize] = ch;
        }
    };

    for el in &scene.elements {
        let ch = glyph_char(&el.class);
        match &el.primitive {
            Primitive::Rect { x, y, w, h, .. } => {
                let fill = if el.class.starts_with("viz:Band") {
                    '░'
                } else if el.class.starts_with("viz:Row/bar") {
                    '─'
                } else {
                    ch
                };
                // For row bars draw only the vertical middle line of cells.
                let y_mid = y + h / 2.0;
                let steps = ((w * sx).ceil() as usize).max(1);
                for i in 0..steps {
                    let px = x + i as f64 / sx.max(1e-9);
                    if el.class.starts_with("viz:Band") {
                        plot(px, y + h * 0.25, fill, &mut grid);
                        plot(px, y_mid, fill, &mut grid);
                        plot(px, y + h * 0.75, fill, &mut grid);
                    } else {
                        plot(px, y_mid, fill, &mut grid);
                    }
                }
            }
            Primitive::Line { x1, y1, x2, y2, .. } => {
                let steps = (((x2 - x1).abs() * sx).max((y2 - y1).abs() * sy).ceil() as usize)
                    .max(1);
                for i in 0..=steps {
                    let t = i as f64 / steps as f64;
                    let c = if el.class.starts_with("viz:Axis/anchor") { '│' } else { '┈' };
                    plot(x1 + (x2 - x1) * t, y1 + (y2 - y1) * t, c, &mut grid);
                }
            }
            Primitive::Circle { cx, cy, .. } => plot(*cx, *cy, ch, &mut grid),
            Primitive::Polygon { points, .. } => {
                let (x0, y0, x1, y1) = el.primitive.bbox();
                let _ = points;
                plot((x0 + x1) / 2.0, (y0 + y1) / 2.0, ch, &mut grid);
            }
            Primitive::Text { x, y, text, .. } => {
                for (i, c) in text.chars().enumerate() {
                    plot(x + i as f64 / sx.max(1e-9), *y, c, &mut grid);
                }
            }
        }
    }

    let mut out = String::with_capacity(rows * (cols + 1));
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

fn glyph_char(class: &str) -> char {
    match class {
        c if c.ends_with("/square") => '■',
        c if c.ends_with("/arrow") => '↑',
        c if c.ends_with("/triangle") => '▲',
        c if c.ends_with("/cross") => '+',
        c if c.ends_with("/circle") => '●',
        _ => '·',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::GLYPH_INK;
    use crate::scene::Scene;

    #[test]
    fn glyph_characters() {
        assert_eq!(glyph_char("viz:Glyph/square"), '■');
        assert_eq!(glyph_char("viz:Glyph/arrow"), '↑');
        assert_eq!(glyph_char("viz:Glyph/triangle"), '▲');
        assert_eq!(glyph_char("other"), '·');
    }

    #[test]
    fn renders_grid_of_requested_size() {
        let s = Scene::new(100.0, 50.0);
        let out = render(&s, 40, 10);
        assert_eq!(out.lines().count(), 10);
        assert!(out.lines().all(|l| l.chars().count() <= 40));
    }

    #[test]
    fn paint_order_overwrites() {
        let mut s = Scene::new(10.0, 10.0);
        s.push(
            Primitive::Circle { cx: 5.0, cy: 5.0, r: 1.0, fill: GLYPH_INK },
            "viz:Glyph/circle",
        );
        s.push(
            Primitive::Rect { x: 5.0, y: 4.5, w: 1.0, h: 1.0, fill: GLYPH_INK },
            "viz:Glyph/square",
        );
        let out = render(&s, 10, 10);
        assert!(out.contains('■'), "{out}");
        assert!(!out.contains('●'), "later square overwrote the circle");
    }

    #[test]
    fn text_renders_literally() {
        let mut s = Scene::new(100.0, 10.0);
        s.push(
            Primitive::Text { x: 0.0, y: 5.0, text: "P0000001".into(), size: 8.0, fill: GLYPH_INK },
            "viz:Row/label",
        );
        let out = render(&s, 100, 10);
        assert!(out.contains("P0000001"), "{out}");
    }
}
