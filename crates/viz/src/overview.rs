//! The overview mode — "Overview first, zoom and filter, then
//! details-on-demand" (§II.C.3).
//!
//! At 168,000 patients there are more histories than screen pixel rows, so
//! the row-per-patient layout cannot provide the *overview* step of the
//! mantra. This mode aggregates: the display order is cut into row blocks,
//! time into buckets, and each cell shows the entry density as a grayscale
//! patch. The analyst spots dense regions (the "information scent" of
//! §II.C.1), then zooms into the row-per-patient view.

use crate::color::Color;
use crate::scene::{Primitive, Scene};
use pastas_model::HistoryCollection;
use pastas_query::EntryPredicate;
use pastas_time::DateTime;

/// Overview parameters.
#[derive(Debug, Clone, Copy)]
pub struct OverviewOptions {
    /// Number of time buckets (columns).
    pub time_buckets: usize,
    /// Number of row blocks (each aggregates `ceil(rows / row_blocks)`
    /// consecutive histories of the display order).
    pub row_blocks: usize,
}

impl Default for OverviewOptions {
    fn default() -> OverviewOptions {
        OverviewOptions { time_buckets: 96, row_blocks: 64 }
    }
}

/// The density matrix: `matrix[block][bucket]` = entry count.
#[derive(Debug, Clone)]
pub struct DensityMatrix {
    /// Counts per (row block, time bucket).
    pub counts: Vec<Vec<u32>>,
    /// Highest cell value (0 for an empty matrix).
    pub max: u32,
    /// Histories per row block.
    pub block_size: usize,
}

/// Compute the density matrix over `[from, to)` in display `order`.
pub fn density(
    collection: &HistoryCollection,
    order: &[u32],
    from: DateTime,
    to: DateTime,
    filter: Option<&EntryPredicate>,
    opts: &OverviewOptions,
) -> DensityMatrix {
    let blocks = opts.row_blocks.max(1);
    let buckets = opts.time_buckets.max(1);
    let block_size = order.len().div_ceil(blocks).max(1);
    let span = (to - from).as_seconds().max(1) as f64;
    let histories = collection.histories();
    let mut counts = vec![vec![0u32; buckets]; blocks];
    for (row, &hi) in order.iter().enumerate() {
        let block = row / block_size;
        if block >= blocks {
            break;
        }
        for e in histories[hi as usize].entries() {
            if filter.is_some_and(|f| !f.matches(e)) {
                continue;
            }
            if e.end() < from || e.start() > to {
                continue;
            }
            // Point entries hit one bucket; intervals smear across theirs.
            let b0 = (((e.start().max(from) - from).as_seconds() as f64 / span)
                * buckets as f64) as usize;
            let b1 = (((e.end().min(to) - from).as_seconds() as f64 / span) * buckets as f64)
                as usize;
            for count in &mut counts[block][b0..=b1.min(buckets - 1)] {
                *count += 1;
            }
        }
    }
    let max = counts.iter().flatten().copied().max().unwrap_or(0);
    DensityMatrix { counts, max, block_size }
}

/// Render the density matrix as a scene (darker = denser; perceptually
/// this is a sequential lightness ramp, the safe encoding for magnitude).
pub fn render_overview(matrix: &DensityMatrix, width: f64, height: f64) -> Scene {
    let blocks = matrix.counts.len().max(1);
    let buckets = matrix.counts.first().map(Vec::len).unwrap_or(0).max(1);
    let cell_w = width / buckets as f64;
    let cell_h = height / blocks as f64;
    let mut scene = Scene::new(width, height);
    for (bi, row) in matrix.counts.iter().enumerate() {
        for (ti, &n) in row.iter().enumerate() {
            if n == 0 {
                continue;
            }
            // Lightness ramp: sqrt compression so sparse cells stay visible.
            let intensity = (n as f64 / matrix.max.max(1) as f64).sqrt();
            let shade = (235.0 - intensity * 190.0) as u8;
            scene.push_with_tooltip(
                Primitive::Rect {
                    x: ti as f64 * cell_w,
                    y: bi as f64 * cell_h,
                    w: cell_w.max(1.0),
                    h: cell_h.max(1.0),
                    fill: Color::rgb(shade, shade, shade),
                },
                "viz:Overview/cell",
                format!(
                    "{} entries (patients {}–{})",
                    n,
                    bi * matrix.block_size,
                    (bi + 1) * matrix.block_size - 1
                ),
            );
        }
    }
    scene
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, History, Patient, PatientId, Payload, Sex, SourceKind};
    use pastas_time::Date;

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn collection(n: usize) -> HistoryCollection {
        HistoryCollection::from_histories((0..n).map(|i| {
            let mut h = History::new(Patient {
                id: PatientId(i as u64 + 1),
                birth_date: Date::new(1950, 1, 1).unwrap(),
                sex: Sex::Female,
            });
            // Every history has one event in March; the first half also
            // has one in September.
            h.insert(Entry::event(
                t(2013, 3, 15),
                Payload::Diagnosis(Code::icpc("A01")),
                SourceKind::PrimaryCare,
            ));
            if i < n / 2 {
                h.insert(Entry::event(
                    t(2013, 9, 15),
                    Payload::Diagnosis(Code::icpc("T90")),
                    SourceKind::PrimaryCare,
                ));
            }
            h
        }))
    }

    #[test]
    fn density_captures_the_temporal_structure() {
        let c = collection(100);
        let order: Vec<u32> = (0..100).collect();
        let m = density(
            &c,
            &order,
            t(2013, 1, 1),
            t(2014, 1, 1),
            None,
            &OverviewOptions { time_buckets: 12, row_blocks: 2 },
        );
        assert_eq!(m.counts.len(), 2);
        assert_eq!(m.counts[0].len(), 12);
        assert_eq!(m.block_size, 50);
        // March (bucket 2) is dense in both blocks.
        assert_eq!(m.counts[0][2], 50);
        assert_eq!(m.counts[1][2], 50);
        // September (bucket 8) only in the first block.
        assert_eq!(m.counts[0][8], 50);
        assert_eq!(m.counts[1][8], 0);
        assert_eq!(m.max, 50);
    }

    #[test]
    fn filter_narrows_the_overview() {
        let c = collection(40);
        let order: Vec<u32> = (0..40).collect();
        let only_t90 = EntryPredicate::code_regex("T90").unwrap();
        let m = density(
            &c,
            &order,
            t(2013, 1, 1),
            t(2014, 1, 1),
            Some(&only_t90),
            &OverviewOptions { time_buckets: 12, row_blocks: 1 },
        );
        let total: u32 = m.counts[0].iter().sum();
        assert_eq!(total, 20, "only the T90 half remains");
    }

    #[test]
    fn overview_scene_size_is_bounded_by_cells_not_patients() {
        // 10k patients, but the scene never exceeds blocks × buckets cells.
        let c = collection(1_000);
        let order: Vec<u32> = (0..1_000).collect();
        let opts = OverviewOptions { time_buckets: 24, row_blocks: 16 };
        let m = density(&c, &order, t(2013, 1, 1), t(2014, 1, 1), None, &opts);
        let scene = render_overview(&m, 800.0, 400.0);
        assert!(scene.len() <= 24 * 16, "scene has {} elements", scene.len());
        assert!(scene.count_class_prefix("viz:Overview/cell") > 0);
    }

    #[test]
    fn denser_cells_are_darker() {
        let c = collection(100);
        let order: Vec<u32> = (0..100).collect();
        let m = density(
            &c,
            &order,
            t(2013, 1, 1),
            t(2014, 1, 1),
            None,
            &OverviewOptions { time_buckets: 12, row_blocks: 2 },
        );
        let scene = render_overview(&m, 800.0, 400.0);
        let mut shades: Vec<u8> = scene
            .elements
            .iter()
            .filter_map(|e| match e.primitive {
                Primitive::Rect { fill, .. } => Some(fill.r),
                _ => None,
            })
            .collect();
        shades.sort_unstable();
        shades.dedup();
        assert!(!shades.is_empty());
        // The densest cell uses the darkest shade.
        assert_eq!(shades[0], 235 - 190, "full intensity shade");
    }

    #[test]
    fn empty_inputs() {
        let c = HistoryCollection::new();
        let m = density(&c, &[], t(2013, 1, 1), t(2014, 1, 1), None, &OverviewOptions::default());
        assert_eq!(m.max, 0);
        let scene = render_overview(&m, 100.0, 100.0);
        assert!(scene.is_empty());
    }
}
