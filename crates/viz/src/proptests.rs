//! Property tests: the layout pipeline never panics and produces sane
//! geometry for arbitrary viewports and collections.

use crate::timeline::{TimelineOptions, TimelineView};
use crate::viewport::Viewport;
use pastas_codes::Code;
use pastas_model::{
    Entry, EpisodeKind, History, HistoryCollection, Patient, PatientId, Payload, Sex, SourceKind,
};
use pastas_time::{Date, DateTime, Duration};
use proptest::prelude::*;

fn arb_time() -> impl Strategy<Value = DateTime> {
    // 2012..2016.
    (1_325_376_000i64..1_451_606_400).prop_map(|s| DateTime::from_second_number(s).unwrap())
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (arb_time(), 0i64..90, 0usize..4).prop_map(|(t, len_days, kind)| match kind {
        0 => Entry::event(t, Payload::Diagnosis(Code::icpc("T90")), SourceKind::PrimaryCare),
        1 => Entry::event(t, Payload::Medication(Code::atc("C07AB02")), SourceKind::Prescription),
        2 => Entry::event(
            t,
            Payload::Measurement { kind: pastas_model::MeasurementKind::SystolicBp, value: 140.0 },
            SourceKind::PrimaryCare,
        ),
        _ => Entry::interval(
            t,
            t + Duration::days(len_days),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        ),
    })
}

fn arb_collection() -> impl Strategy<Value = HistoryCollection> {
    proptest::collection::vec(proptest::collection::vec(arb_entry(), 0..10), 0..8).prop_map(
        |patients| {
            HistoryCollection::from_histories(patients.into_iter().enumerate().map(|(i, es)| {
                let mut h = History::new(Patient {
                    id: PatientId(i as u64 + 1),
                    birth_date: Date::new(1940, 1, 1).unwrap(),
                    sex: Sex::Female,
                });
                h.insert_all(es);
                h
            }))
        },
    )
}

fn arb_viewport() -> impl Strategy<Value = Viewport> {
    (arb_time(), arb_time(), 1.0f64..200.0, 50.0f64..2000.0, 50.0f64..2000.0)
        .prop_map(|(a, b, rows, w, h)| Viewport::new(a, b, rows, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Layout never panics, and every hit bbox is finite and ordered.
    #[test]
    fn layout_is_total_and_geometry_is_sane(
        c in arb_collection(),
        vp in arb_viewport(),
    ) {
        let view = TimelineView::new(&c, TimelineOptions::default());
        let (scene, hits) = view.layout(&vp);
        prop_assert!(scene.width.is_finite() && scene.height.is_finite());
        for r in hits.iter() {
            let (x0, y0, x1, y1) = r.bbox;
            prop_assert!(x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite());
            prop_assert!(x0 <= x1 + 1e-9 && y0 <= y1 + 1e-9);
            prop_assert!(r.history_index < c.len());
        }
        // SVG rendering is total, non-empty, and well-formed at the ends.
        let svg = crate::svg::render(&scene);
        prop_assert!(svg.starts_with("<svg "));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
    }

    /// Every hit record's details round-trip through hit testing at its
    /// own centre (the details-on-demand contract).
    #[test]
    fn hit_testing_finds_every_record_at_its_centre(c in arb_collection()) {
        let stats = c.stats();
        let (Some(from), Some(to)) = (stats.first, stats.last) else {
            return Ok(());
        };
        let vp = Viewport::new(from, to + Duration::days(1), 20.0, 800.0, 400.0);
        let view = TimelineView::new(&c, TimelineOptions::default());
        let (_, hits) = view.layout(&vp);
        for r in hits.iter() {
            let cx = (r.bbox.0 + r.bbox.2) / 2.0;
            let cy = (r.bbox.1 + r.bbox.3) / 2.0;
            let found = hits.hit_test(cx, cy);
            // Topmost element wins, so we may find a different record —
            // but we must find *something* there.
            prop_assert!(found.is_some(), "nothing at the centre of {:?}", r.bbox);
        }
    }

    /// Viewport mapping is monotone: later times map to x at least as
    /// large.
    #[test]
    fn viewport_x_is_monotone(vp in arb_viewport(), a in arb_time(), b in arb_time()) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(vp.x_of(a) <= vp.x_of(b) + 1e-9);
    }

    /// Zoom in then out by the same factor restores the span length
    /// (allowing a couple of seconds of rounding).
    #[test]
    fn zoom_round_trips_span(vp in arb_viewport(), factor in 1.1f64..8.0) {
        let mut v = vp;
        let focus = v.time_from + Duration::seconds(v.span().as_seconds() / 2);
        let before = v.span().as_seconds();
        v.zoom_time(factor, focus);
        v.zoom_time(1.0 / factor, focus);
        let after = v.span().as_seconds();
        // The minimum-span clamp may stop tiny spans from shrinking, and
        // each zoom truncates the two half-spans to whole seconds; the
        // zoom-out multiplies the zoom-in's truncation by `factor`, so the
        // drift bound scales with it.
        if before > 240 {
            let bound = (2.0 * factor + 4.0) as i64;
            prop_assert!((before - after).abs() <= bound, "span {before} → {after}");
        }
    }
}
