//! Colors and the categorical palette.
//!
//! §II.B: "choosing good colors and distinct forms, and avoiding the need
//! for conjunction search". The medication palette assigns one hue per ATC
//! anatomical main group; hues are spread around the circle at full
//! saturation steps so that any two classes differ preattentively (the
//! `pastas-perception` crate validates pairwise distinctness of exactly
//! this palette).

/// An sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red, 0–255.
    pub r: u8,
    /// Green, 0–255.
    pub g: u8,
    /// Blue, 0–255.
    pub b: u8,
}

impl Color {
    /// Construct from components.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b }
    }

    /// CSS hex form (`#rrggbb`).
    pub fn hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }

    /// Relative luminance (WCAG), 0.0–1.0.
    pub fn luminance(self) -> f64 {
        fn chan(c: u8) -> f64 {
            let c = c as f64 / 255.0;
            if c <= 0.03928 {
                c / 12.92
            } else {
                ((c + 0.055) / 1.055).powf(2.4)
            }
        }
        0.2126 * chan(self.r) + 0.7152 * chan(self.g) + 0.0722 * chan(self.b)
    }
}

/// The 14 medication colors, one per ATC anatomical main group, in
/// [`pastas_codes::atc::LEVEL1_GROUPS`] order. Hand-tuned qualitative
/// palette (ColorBrewer-adjacent) with adjacent-index hue separation.
pub const MEDICATION_PALETTE: [Color; 14] = [
    Color::rgb(0x1f, 0x77, 0xb4), // A Alimentary — blue
    Color::rgb(0xd6, 0x27, 0x28), // B Blood — red
    Color::rgb(0x2c, 0xa0, 0x2c), // C Cardiovascular — green
    Color::rgb(0xff, 0x7f, 0x0e), // D Dermatologicals — orange
    Color::rgb(0x94, 0x67, 0xbd), // G Genito-urinary — purple
    Color::rgb(0x8c, 0x56, 0x4b), // H Hormones — brown
    Color::rgb(0xe3, 0x77, 0xc2), // J Antiinfectives — pink
    Color::rgb(0x7f, 0x7f, 0x7f), // L Antineoplastic — gray
    Color::rgb(0xbc, 0xbd, 0x22), // M Musculo-skeletal — olive
    Color::rgb(0x17, 0xbe, 0xcf), // N Nervous — cyan
    Color::rgb(0x39, 0x4b, 0xa0), // P Antiparasitic — indigo
    Color::rgb(0x84, 0xc9, 0x8b), // R Respiratory — light green
    Color::rgb(0xff, 0xbb, 0x78), // S Sensory — light orange
    Color::rgb(0x5b, 0x3a, 0x8c), // V Various — violet
];

/// Background band colors (kept pale so glyphs stay readable on top).
pub const BAND_HOSPITAL: Color = Color::rgb(0xf4, 0xc7, 0xc7); // pale red
/// Municipal-care band color.
pub const BAND_MUNICIPAL: Color = Color::rgb(0xc7, 0xd9, 0xf4); // pale blue
/// Rehabilitation band color.
pub const BAND_REHAB: Color = Color::rgb(0xd9, 0xf4, 0xc7); // pale green
/// Medication-exposure band color.
pub const BAND_MEDICATION: Color = Color::rgb(0xf4, 0xe9, 0xc7); // pale amber

/// The gray history bar of Fig. 1.
pub const ROW_BAR: Color = Color::rgb(0xe8, 0xe8, 0xe8);
/// Default glyph ink.
pub const GLYPH_INK: Color = Color::rgb(0x33, 0x33, 0x33);
/// Axis and label ink.
pub const AXIS_INK: Color = Color::rgb(0x55, 0x55, 0x55);
/// Alignment-anchor rule color.
pub const ANCHOR_RULE: Color = Color::rgb(0xcc, 0x00, 0x00);

/// Color for a medication color-class index (ATC main-group position).
pub fn medication_color(class_index: u8) -> Color {
    MEDICATION_PALETTE[class_index as usize % MEDICATION_PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_rendering() {
        assert_eq!(Color::rgb(0x1f, 0x77, 0xb4).hex(), "#1f77b4");
        assert_eq!(Color::rgb(0, 0, 0).hex(), "#000000");
        assert_eq!(Color::rgb(255, 255, 255).hex(), "#ffffff");
    }

    #[test]
    fn luminance_ordering() {
        assert!(Color::rgb(255, 255, 255).luminance() > 0.99);
        assert!(Color::rgb(0, 0, 0).luminance() < 0.01);
        assert!(BAND_HOSPITAL.luminance() > GLYPH_INK.luminance(), "bands pale, ink dark");
    }

    #[test]
    fn palette_covers_all_atc_groups_distinctly() {
        assert_eq!(MEDICATION_PALETTE.len(), pastas_codes::atc::LEVEL1_GROUPS.len());
        for (i, a) in MEDICATION_PALETTE.iter().enumerate() {
            for b in &MEDICATION_PALETTE[i + 1..] {
                assert_ne!(a, b, "palette colors must be unique");
            }
        }
    }

    #[test]
    fn glyphs_contrast_with_bands() {
        // Every band is light enough for dark glyphs on top (WCAG-ish 3:1).
        for band in [BAND_HOSPITAL, BAND_MUNICIPAL, BAND_REHAB, BAND_MEDICATION, ROW_BAR] {
            let contrast = (band.luminance() + 0.05) / (GLYPH_INK.luminance() + 0.05);
            assert!(contrast > 3.0, "{} contrast {contrast}", band.hex());
        }
    }

    #[test]
    fn medication_color_wraps_safely() {
        assert_eq!(medication_color(0), MEDICATION_PALETTE[0]);
        assert_eq!(medication_color(14), MEDICATION_PALETTE[0]);
        assert_eq!(medication_color(255), MEDICATION_PALETTE[255 % 14]);
    }
}
