//! The viewport: pan plus the paper's two zoom sliders.
//!
//! §IV.B: "two sliders were added to the user interface … The sliders
//! allow the user to zoom both vertically and horizontally, in order to
//! see many patients and/or many details (long time-span) at the same
//! time."

use pastas_time::{DateTime, Duration};

/// The visible window onto the cohort: a time span (horizontal) and a row
/// range (vertical), mapped to a pixel canvas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    /// Left edge of the visible time span.
    pub time_from: DateTime,
    /// Right edge of the visible time span.
    pub time_to: DateTime,
    /// First visible row (fractional during smooth scroll).
    pub row_offset: f64,
    /// Number of visible rows (the vertical zoom: fewer rows = taller
    /// bars = more detail).
    pub rows_visible: f64,
    /// Canvas width in pixels.
    pub width_px: f64,
    /// Canvas height in pixels.
    pub height_px: f64,
}

impl Viewport {
    /// A viewport showing `[from, to]` × `rows` on a canvas.
    pub fn new(from: DateTime, to: DateTime, rows: f64, width_px: f64, height_px: f64) -> Viewport {
        let (from, to) = if from <= to { (from, to) } else { (to, from) };
        Viewport {
            time_from: from,
            time_to: to,
            row_offset: 0.0,
            rows_visible: rows.max(1.0),
            width_px,
            height_px,
        }
    }

    /// Visible span.
    pub fn span(&self) -> Duration {
        self.time_to - self.time_from
    }

    /// Map an instant to an x pixel (may fall outside the canvas).
    pub fn x_of(&self, t: DateTime) -> f64 {
        let span = self.span().as_seconds() as f64;
        if span <= 0.0 {
            return 0.0;
        }
        (t - self.time_from).as_seconds() as f64 / span * self.width_px
    }

    /// Inverse of [`Viewport::x_of`].
    pub fn time_at(&self, x: f64) -> DateTime {
        let span = self.span().as_seconds() as f64;
        let secs = (x / self.width_px * span) as i64;
        self.time_from + Duration::seconds(secs)
    }

    /// Height of one row in pixels.
    pub fn row_height(&self) -> f64 {
        self.height_px / self.rows_visible
    }

    /// Top y of a row (rows indexed from the top of the collection order).
    pub fn y_of_row(&self, row: usize) -> f64 {
        (row as f64 - self.row_offset) * self.row_height()
    }

    /// The row under a y pixel, if inside the canvas.
    pub fn row_at(&self, y: f64) -> Option<usize> {
        if !(0.0..self.height_px).contains(&y) {
            return None;
        }
        let row = y / self.row_height() + self.row_offset;
        (row >= 0.0).then_some(row as usize)
    }

    /// The inclusive row range currently visible, clipped to `total` rows.
    pub fn visible_rows(&self, total: usize) -> std::ops::Range<usize> {
        let first = self.row_offset.floor().max(0.0) as usize;
        let last = ((self.row_offset + self.rows_visible).ceil() as usize).min(total);
        first..last.max(first)
    }

    /// Horizontal zoom around a focal instant: `factor > 1` zooms in.
    pub fn zoom_time(&mut self, factor: f64, focus: DateTime) {
        let factor = factor.clamp(1e-3, 1e3);
        let left = (focus - self.time_from).as_seconds() as f64 / factor;
        let right = (self.time_to - focus).as_seconds() as f64 / factor;
        // Keep at least one minute of span so the mapping stays invertible.
        if left + right < 60.0 {
            return;
        }
        self.time_from = focus + pastas_time::Duration::seconds(-(left as i64));
        self.time_to = focus + pastas_time::Duration::seconds(right as i64);
    }

    /// Vertical zoom: `factor > 1` shows fewer rows (more detail).
    pub fn zoom_rows(&mut self, factor: f64) {
        self.rows_visible = (self.rows_visible / factor.clamp(1e-3, 1e3)).max(1.0);
    }

    /// Pan horizontally by a duration (positive = later).
    pub fn pan_time(&mut self, by: Duration) {
        self.time_from = self.time_from + by;
        self.time_to = self.time_to + by;
    }

    /// Pan vertically by rows (positive = down), clamped to `[0, total)`.
    pub fn pan_rows(&mut self, by: f64, total: usize) {
        self.row_offset =
            (self.row_offset + by).clamp(0.0, (total as f64 - 1.0).max(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_time::Date;

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn vp() -> Viewport {
        Viewport::new(t(2013, 1, 1), t(2015, 1, 1), 20.0, 1000.0, 600.0)
    }

    #[test]
    fn x_mapping_is_affine_and_invertible() {
        let v = vp();
        assert_eq!(v.x_of(t(2013, 1, 1)), 0.0);
        assert!((v.x_of(t(2015, 1, 1)) - 1000.0).abs() < 1e-9);
        let mid = v.x_of(t(2014, 1, 1));
        assert!((499.0..501.0).contains(&mid), "mid {mid}");
        let back = v.time_at(mid);
        assert_eq!(back.date(), Date::new(2014, 1, 1).unwrap());
    }

    #[test]
    fn row_mapping() {
        let v = vp();
        assert_eq!(v.row_height(), 30.0);
        assert_eq!(v.y_of_row(0), 0.0);
        assert_eq!(v.y_of_row(3), 90.0);
        assert_eq!(v.row_at(45.0), Some(1));
        assert_eq!(v.row_at(-5.0), None);
        assert_eq!(v.row_at(600.0), None);
    }

    #[test]
    fn visible_rows_clip_to_total() {
        let mut v = vp();
        assert_eq!(v.visible_rows(100), 0..20);
        assert_eq!(v.visible_rows(10), 0..10);
        v.pan_rows(95.0, 100);
        assert_eq!(v.visible_rows(100).end, 100);
    }

    #[test]
    fn horizontal_zoom_keeps_focus() {
        let mut v = vp();
        let focus = t(2014, 1, 1);
        let x_before = v.x_of(focus);
        v.zoom_time(2.0, focus);
        let x_after = v.x_of(focus);
        assert!((x_before - x_after).abs() < 1.0, "focus stays put");
        assert_eq!(v.span().whole_days(), 365, "span halved");
    }

    #[test]
    fn vertical_zoom_bounds() {
        let mut v = vp();
        v.zoom_rows(4.0);
        assert_eq!(v.rows_visible, 5.0);
        v.zoom_rows(100.0);
        assert_eq!(v.rows_visible, 1.0, "never below one row");
        v.zoom_rows(0.1);
        assert_eq!(v.rows_visible, 10.0, "zooming out widens");
    }

    #[test]
    fn panning() {
        let mut v = vp();
        v.pan_time(Duration::days(30));
        assert_eq!(v.time_from.date(), Date::new(2013, 1, 31).unwrap());
        v.pan_rows(-5.0, 100);
        assert_eq!(v.row_offset, 0.0, "clamped at top");
        v.pan_rows(1000.0, 100);
        assert_eq!(v.row_offset, 99.0, "clamped at bottom");
    }

    #[test]
    fn zoom_never_collapses_span() {
        let mut v = vp();
        for _ in 0..100 {
            v.zoom_time(10.0, t(2014, 1, 1));
        }
        assert!(v.span().as_seconds() >= 60);
        let x = v.x_of(t(2014, 1, 1));
        assert!(x.is_finite());
    }

    #[test]
    fn reversed_bounds_are_normalized() {
        let v = Viewport::new(t(2015, 1, 1), t(2013, 1, 1), 10.0, 100.0, 100.0);
        assert!(v.time_from < v.time_to);
    }
}
