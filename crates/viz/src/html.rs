//! Interactive personal-timeline export — the pastas.no artefact.
//!
//! §Abstract: "We have also used the tool to produce interactive personal
//! health time-lines (for more than 10,000 individuals) on the web."
//! This module renders one patient's history as a **self-contained** HTML
//! page: embedded SVG, a details panel fed by the same details-on-demand
//! strings as the workbench, and zoom buttons — no external assets, so the
//! file can be handed to the patient (the paper's feedback study mailed
//! patients their own trajectories).

use crate::svg;
use crate::timeline::{TimelineOptions, TimelineView};
use crate::viewport::Viewport;
use pastas_model::{History, HistoryCollection};
use pastas_time::Duration;

/// Options for the personal export.
#[derive(Debug, Clone)]
pub struct PersonalTimelineOptions {
    /// Page width in px.
    pub width: f64,
    /// Timeline height in px.
    pub height: f64,
    /// Page title (the patient never sees internal ids unless you put
    /// them here).
    pub title: String,
}

impl Default for PersonalTimelineOptions {
    fn default() -> PersonalTimelineOptions {
        PersonalTimelineOptions {
            width: 960.0,
            height: 180.0,
            title: "Your health timeline".to_owned(),
        }
    }
}

/// Render one patient's interactive timeline page.
pub fn personal_timeline(history: &History, opts: &PersonalTimelineOptions) -> String {
    let collection = HistoryCollection::from_histories([history.clone()]);
    let (from, to) = match (history.first_time(), history.last_time()) {
        (Some(a), Some(b)) if a < b => (a, b),
        (Some(a), _) => (a, a + Duration::days(30)),
        _ => {
            // lint:allow(transitive-no-panic-hot-path) literal 2013-01-01 is a valid date
            let d = pastas_time::Date::new(2013, 1, 1).expect("valid");
            (d.at_midnight(), d.add_days(365).at_midnight())
        }
    };
    // A little margin on each side.
    let margin = Duration::days(((to - from).whole_days() / 20).max(7));
    let vp = Viewport::new(from + -margin, to + margin, 1.0, opts.width, opts.height);
    let tl_opts = TimelineOptions { row_labels: false, ..Default::default() };
    let view = TimelineView::new(&collection, tl_opts);
    let (scene, hits) = view.layout(&vp);

    let mut regions = String::new();
    for r in hits.iter() {
        let (x0, y0, x1, y1) = r.bbox;
        regions.push_str(&format!(
            "{{\"x0\":{:.1},\"y0\":{:.1},\"x1\":{:.1},\"y1\":{:.1},\"d\":\"{}\"}},",
            x0,
            y0,
            x1,
            y1,
            js_escape(&r.details)
        ));
    }
    regions.pop(); // trailing comma

    page(&opts.title, &svg::render(&scene), &regions, scene.width, scene.height)
}

fn js_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '<' => out.push_str("\\u003c"),
            _ => out.push(c),
        }
    }
    out
}

fn page(title: &str, svg_body: &str, regions_json: &str, w: f64, h: f64) -> String {
    format!(
        r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 1.5rem; color: #222; }}
#wrap {{ overflow-x: auto; border: 1px solid #ddd; }}
#panel {{ min-height: 2.2em; padding: .4em .6em; background: #f7f7f7;
          border: 1px solid #ddd; border-top: none; font-size: .9em; }}
#controls button {{ margin-right: .4em; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div id="controls">
  <button onclick="zoom(1.25)">Zoom in</button>
  <button onclick="zoom(0.8)">Zoom out</button>
  <span id="z"></span>
</div>
<div id="wrap">{svg}</div>
<div id="panel">Hover over the timeline to see details.</div>
<script>
const regions = [{regions}];
let scale = 1;
const wrap = document.getElementById('wrap');
const svgEl = wrap.querySelector('svg');
const panel = document.getElementById('panel');
function zoom(f) {{
  scale = Math.min(16, Math.max(0.25, scale * f));
  svgEl.setAttribute('width', {w} * scale);
  svgEl.setAttribute('height', {h} * scale);
  document.getElementById('z').textContent = Math.round(scale * 100) + '%';
}}
svgEl.addEventListener('mousemove', (ev) => {{
  const r = svgEl.getBoundingClientRect();
  const x = (ev.clientX - r.left) / scale;
  const y = (ev.clientY - r.top) / scale;
  let hit = null;
  for (const g of regions) {{
    if (x >= g.x0 - 2 && x <= g.x1 + 2 && y >= g.y0 - 2 && y <= g.y1 + 2) hit = g;
  }}
  panel.textContent = hit ? hit.d : 'Hover over the timeline to see details.';
}});
</script>
</body>
</html>
"#,
        title = html_escape(title),
        svg = svg_body,
        regions = regions_json,
        w = w,
        h = h,
    )
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, Patient, PatientId, Payload, Sex, SourceKind};
    use pastas_time::Date;

    fn history() -> History {
        let mut h = History::new(Patient {
            id: PatientId(77),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        for m in [2u32, 5, 9] {
            h.insert(Entry::event(
                Date::new(2013, m, 10).unwrap().at_midnight(),
                Payload::Diagnosis(Code::icpc("T90")),
                SourceKind::PrimaryCare,
            ));
        }
        h
    }

    #[test]
    fn page_is_self_contained() {
        let page = personal_timeline(&history(), &PersonalTimelineOptions::default());
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("<svg "));
        assert!(page.contains("const regions ="));
        // The only URL is the SVG xmlns declaration (not a fetch).
        assert_eq!(page.matches("http").count(), 1, "no external references");
        assert!(page.contains("xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(!page.contains("src="), "no external scripts");
    }

    #[test]
    fn details_are_embedded() {
        let page = personal_timeline(&history(), &PersonalTimelineOptions::default());
        assert!(page.contains("diagnosis T90"), "details-on-demand strings embedded");
        assert_eq!(page.matches("\"d\":").count(), 3, "one region per entry");
    }

    #[test]
    fn title_is_escaped() {
        let opts = PersonalTimelineOptions {
            title: "Tom & Jerry <script>".into(),
            ..Default::default()
        };
        let page = personal_timeline(&history(), &opts);
        assert!(page.contains("Tom &amp; Jerry &lt;script&gt;"));
        assert!(!page.contains("Jerry <script>"));
    }

    #[test]
    fn empty_history_still_renders() {
        let h = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Male,
        });
        let page = personal_timeline(&h, &PersonalTimelineOptions::default());
        assert!(page.contains("<svg "));
    }

    #[test]
    fn js_escaping() {
        assert_eq!(js_escape("a\"b\\c\nd<e"), "a\\\"b\\\\c\\nd\\u003ce");
    }
}
