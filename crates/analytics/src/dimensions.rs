//! Bucket definitions for the cohort dimensions.
//!
//! Every dimension here is a *partition*: each patient lands in exactly
//! one bucket, so the bucket totals of every histogram sum to the cohort
//! size — the invariant the property tests in [`crate::proptests`] hold
//! the parallel pass to. Buckets are identified by small dense indices so
//! the aggregation pass is pure integer indexing into `u32` accumulator
//! arrays; the label functions here are only touched when a finished
//! profile is rendered.

use pastas_codes::icd10::CHAPTERS;
use pastas_codes::atc::LEVEL1_GROUPS;
use pastas_model::SourceKind;

/// Number of age-band buckets: decades `0–9` … `80–89`, then `90+`.
pub const AGE_BANDS: usize = 10;

/// Number of sex buckets (`Sex` is a two-variant enum).
pub const SEX_BANDS: usize = 2;

/// Number of dominant-source buckets: the five [`SourceKind`]s plus a
/// trailing `none` bucket for patients with an empty history.
pub const SOURCE_BANDS: usize = SourceKind::ALL.len() + 1;

/// Upper edges (exclusive) of the events-per-patient bands; the last band
/// is open-ended.
const ENTRY_EDGES: [usize; 7] = [1, 5, 10, 25, 50, 100, 250];

/// Number of events-per-patient buckets.
pub const ENTRY_BANDS: usize = ENTRY_EDGES.len() + 1;

/// Number of history-span buckets: five duration bands plus `none` for
/// empty histories.
pub const SPAN_BANDS: usize = 6;

/// Number of dominant-ICD-chapter buckets: the 22 ICD-10 chapters plus a
/// trailing `none` for patients with no ICD-10-coded entry.
pub const ICD_BANDS: usize = CHAPTERS.len() + 1;

/// Number of dominant-ATC-group buckets: the 14 anatomical main groups
/// plus a trailing `none` for patients with no prescription.
pub const ATC_BANDS: usize = LEVEL1_GROUPS.len() + 1;

/// How many calendar years of first-contact history get their own bucket.
pub const FIRST_CONTACT_YEARS: usize = 15;

/// Number of first-contact-year buckets: `earlier`, one per year in the
/// window `[reference − 14, reference]`, and a trailing `none`.
pub const FIRST_CONTACT_BANDS: usize = FIRST_CONTACT_YEARS + 2;

/// Bucket index for an age in whole years (negative ages clamp to the
/// first band, ages past 90 into the last).
pub fn age_bucket(age: i32) -> usize {
    (age.max(0) as usize / 10).min(AGE_BANDS - 1)
}

/// Label of age bucket `i`.
pub fn age_label(i: usize) -> String {
    if i + 1 == AGE_BANDS {
        format!("{}+", i * 10)
    } else {
        format!("{}-{}", i * 10, i * 10 + 9)
    }
}

/// Bucket index for an events-per-patient count.
pub fn entry_bucket(n: usize) -> usize {
    ENTRY_EDGES.iter().position(|&edge| n < edge).unwrap_or(ENTRY_BANDS - 1)
}

/// Label of events-per-patient bucket `i`.
pub fn entry_label(i: usize) -> String {
    let lo = if i == 0 { 0 } else { ENTRY_EDGES[i - 1] };
    match ENTRY_EDGES.get(i) {
        Some(&hi) if hi == lo + 1 => format!("{lo}"),
        Some(&hi) => format!("{lo}-{}", hi - 1),
        None => format!("{lo}+"),
    }
}

/// Upper edges (exclusive, in days) of the history-span bands.
const SPAN_EDGES: [f64; 4] = [365.25, 2.0 * 365.25, 5.0 * 365.25, 10.0 * 365.25];

/// Bucket index for an observed history span in days; `None` (an empty
/// history) lands in the trailing `none` bucket.
pub fn span_bucket(days: Option<f64>) -> usize {
    match days {
        None => SPAN_BANDS - 1,
        Some(d) => SPAN_EDGES.iter().position(|&edge| d < edge).unwrap_or(SPAN_BANDS - 2),
    }
}

/// Label of history-span bucket `i`.
pub fn span_label(i: usize) -> String {
    match i {
        0 => "<1y".to_owned(),
        1 => "1-2y".to_owned(),
        2 => "2-5y".to_owned(),
        3 => "5-10y".to_owned(),
        4 => "10y+".to_owned(),
        _ => "none".to_owned(),
    }
}

/// Label of dominant-source bucket `i`.
pub fn source_label(i: usize) -> String {
    SourceKind::ALL.get(i).map(|s| s.label().to_owned()).unwrap_or_else(|| "none".to_owned())
}

/// Label of dominant-ICD-chapter bucket `i` (the chapter's roman numeral;
/// titles are surfaced as tooltips by the viz layer).
pub fn icd_label(i: usize) -> String {
    CHAPTERS.get(i).map(|c| c.numeral.to_owned()).unwrap_or_else(|| "none".to_owned())
}

/// Label of dominant-ATC-group bucket `i` (the anatomical letter).
pub fn atc_label(i: usize) -> String {
    LEVEL1_GROUPS.get(i).map(|&(g, _)| g.to_string()).unwrap_or_else(|| "none".to_owned())
}

/// Bucket index for a first-contact calendar year relative to the
/// reference year. Years before the window land in `earlier` (bucket 0);
/// years after the reference clamp into the reference bucket (the data's
/// reference date is the collection's last event, so this only fires for
/// degenerate hand-built fixtures).
pub fn first_contact_bucket(reference_year: i32, year: i32) -> usize {
    let floor = reference_year - (FIRST_CONTACT_YEARS as i32 - 1);
    if year < floor {
        0
    } else {
        1 + (year - floor).min(FIRST_CONTACT_YEARS as i32 - 1) as usize
    }
}

/// The `none` bucket of the first-contact dimension (empty history).
pub const FIRST_CONTACT_NONE: usize = FIRST_CONTACT_BANDS - 1;

/// Label of first-contact bucket `i` for a given reference year.
pub fn first_contact_label(reference_year: i32, i: usize) -> String {
    let floor = reference_year - (FIRST_CONTACT_YEARS as i32 - 1);
    if i == 0 {
        format!("<{floor}")
    } else if i == FIRST_CONTACT_NONE {
        "none".to_owned()
    } else {
        format!("{}", floor + (i as i32 - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_buckets_partition() {
        assert_eq!(age_bucket(-3), 0);
        assert_eq!(age_bucket(0), 0);
        assert_eq!(age_bucket(9), 0);
        assert_eq!(age_bucket(10), 1);
        assert_eq!(age_bucket(89), 8);
        assert_eq!(age_bucket(90), 9);
        assert_eq!(age_bucket(140), 9);
        assert_eq!(age_label(9), "90+");
        assert_eq!(age_label(0), "0-9");
    }

    #[test]
    fn entry_buckets_partition() {
        assert_eq!(entry_bucket(0), 0);
        assert_eq!(entry_bucket(1), 1);
        assert_eq!(entry_bucket(4), 1);
        assert_eq!(entry_bucket(5), 2);
        assert_eq!(entry_bucket(249), 6);
        assert_eq!(entry_bucket(250), 7);
        assert_eq!(entry_label(0), "0");
        assert_eq!(entry_label(1), "1-4");
        assert_eq!(entry_label(7), "250+");
    }

    #[test]
    fn span_buckets_partition() {
        assert_eq!(span_bucket(None), SPAN_BANDS - 1);
        assert_eq!(span_bucket(Some(0.0)), 0);
        assert_eq!(span_bucket(Some(400.0)), 1);
        assert_eq!(span_bucket(Some(4000.0)), 4);
        assert_eq!(span_label(5), "none");
    }

    #[test]
    fn first_contact_buckets_partition() {
        assert_eq!(first_contact_bucket(2013, 1990), 0);
        assert_eq!(first_contact_bucket(2013, 1999), 1);
        assert_eq!(first_contact_bucket(2013, 2013), FIRST_CONTACT_YEARS);
        assert_eq!(first_contact_bucket(2013, 2020), FIRST_CONTACT_YEARS);
        assert_eq!(first_contact_label(2013, 0), "<1999");
        assert_eq!(first_contact_label(2013, 1), "1999");
        assert_eq!(first_contact_label(2013, FIRST_CONTACT_YEARS), "2013");
        assert_eq!(first_contact_label(2013, FIRST_CONTACT_NONE), "none");
    }

    #[test]
    fn band_counts_line_up_with_code_tables() {
        assert_eq!(ICD_BANDS, 23);
        assert_eq!(ATC_BANDS, 15);
        assert_eq!(SOURCE_BANDS, 6);
        assert_eq!(FIRST_CONTACT_BANDS, 17);
    }
}
