//! Columnar cohort analytics: the dimension-breakdown pass behind the
//! paper's iterative refinement loop.
//!
//! The paper's users select a cohort, inspect its *composition*, and
//! refine the criteria — the counts → explore → materialize →
//! dimension-breakdown workflow. This crate computes the inspection
//! step: nine dimension histograms (age band, sex, dominant event
//! source, events-per-patient band, history-span band, dominant ICD-10
//! chapter, dominant ATC main group, first-contact year, top-k codes —
//! plus a condition breakdown resolved through the integration ontology)
//! over the sharded columnar `EventStore` in **one parallel pass**.
//!
//! The design is dense ids end to end: [`dimensions`] fixes small bucket
//! vocabularies per dimension, a per-arena table maps every interned
//! `CodeId` to its chapter/group/condition/global ids once per pass, and
//! the fold indexes `u32` accumulator arrays — no strings, no hashing,
//! no allocation inside the per-entry loop. Partial accumulators merge
//! by vector addition via `pastas_par::par_fold`, so the profile is
//! deterministic and independent of thread count, which the property
//! tests check against the naive serial oracle
//! ([`cohort_profile_serial`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimensions;
pub mod profile;
mod tables;

#[cfg(test)]
mod proptests;

pub use profile::{
    cohort_monthly, cohort_profile, cohort_profile_prepared, cohort_profile_serial,
    CohortProfile, Histogram, DEFAULT_TOP_K,
};
pub use tables::Tables as DimensionTables;
