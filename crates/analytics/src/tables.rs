//! Per-arena dimension tables: one `CodeId → packed dimension record`
//! column, built once per collection and reusable across profile calls.
//!
//! `CodeId`s are arena-local (each shard of a sharded collection interns
//! its own symbol table), so the tables are keyed by arena: for every
//! distinct `EventStore` the collection's histories view, one
//! [`ArenaTables`] maps each interned code to its ICD-10 chapter, ATC
//! main group, condition bitmask and global vocabulary id — packed into
//! a single 12-byte record so a coded entry's contribution to every
//! code-derived dimension is **one** array read (one cache line), not
//! four scattered ones. The hot aggregation loop never touches a string
//! or a hash map.

use pastas_codes::atc::AtcCode;
use pastas_codes::icd10::Icd10Code;
use pastas_codes::{Code, CodeSystem};
use pastas_model::{EventStore, History, HistoryCollection};
use pastas_ontology::integration::{IntegrationOntology, CONDITIONS};
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel for "this code has no bucket in the dimension".
pub(crate) const NO_BUCKET: u8 = u8::MAX;

/// Everything the dimension pass needs to know about one interned code.
#[derive(Clone, Copy)]
pub(crate) struct CodeDims {
    /// ICD-10 chapter index (`NO_BUCKET` for non-ICD codes).
    pub chapter: u8,
    /// ATC main-group index (`NO_BUCKET` for non-ATC codes).
    pub atc: u8,
    /// Bit `i` set ⇔ the code indicates `CONDITIONS[i]`.
    pub cond_mask: u32,
    /// Dense id into the profile-wide vocabulary.
    pub global: u32,
}

/// One arena's code-id-indexed dimension column.
pub(crate) struct ArenaTables {
    /// Packed dimension record per interned code.
    pub codes: Vec<CodeDims>,
}

/// Dimension tables for every distinct arena of a collection, plus the
/// merged global code vocabulary. Build once per collection (the
/// workbench memoizes one per snapshot) and reuse across profile calls —
/// construction parses every interned code and consults the ontology,
/// which is milliseconds of fixed cost the per-request path should not
/// pay.
pub struct Tables {
    /// `(Arc::as_ptr of the arena, its tables)`, first-seen order. A
    /// handful of entries even at 10M patients, so lookups are a hinted
    /// linear scan rather than a per-history hash.
    arenas: Vec<(usize, ArenaTables)>,
    /// Display labels (`"ICPC2:T90"`), indexed by global code id.
    pub(crate) vocab: Vec<String>,
}

impl Tables {
    /// Build the tables for `collection`, resolving condition membership
    /// through `ontology` (reuse a saturated instance — construction is
    /// expensive).
    pub fn build(collection: &HistoryCollection, ontology: &IntegrationOntology) -> Tables {
        const _: () = assert!(CONDITIONS.len() <= 32, "condition mask is a u32");
        let mut seen: HashMap<usize, ()> = HashMap::new();
        let mut stores: Vec<(usize, &Arc<EventStore>)> = Vec::new();
        for history in collection.histories() {
            let key = Arc::as_ptr(history.store()) as usize;
            if seen.insert(key, ()).is_none() {
                stores.push((key, history.store()));
            }
        }

        let mut vocab: Vec<String> = Vec::new();
        let mut global_ids: HashMap<(CodeSystem, String), u32> = HashMap::new();
        let mut arenas = Vec::with_capacity(stores.len());
        for (key, store) in stores {
            let interner = store.interner();
            let mut codes = Vec::with_capacity(interner.len());
            for code in interner.iter() {
                let gid = *global_ids.entry((code.system, code.value.clone())).or_insert_with(
                    || {
                        vocab.push(code.to_string());
                        (vocab.len() - 1) as u32
                    },
                );
                codes.push(CodeDims {
                    chapter: chapter_of(code),
                    atc: atc_group_of(code),
                    cond_mask: condition_mask(ontology, code),
                    global: gid,
                });
            }
            arenas.push((key, ArenaTables { codes }));
        }
        Tables { arenas, vocab }
    }

    /// The tables of the arena backing `history`. `hint` is the caller's
    /// last hit — positions arrive sorted, so consecutive histories
    /// nearly always share an arena and the scan is O(1) amortized.
    pub(crate) fn for_history(&self, history: &History, hint: &mut usize) -> &ArenaTables {
        let key = Arc::as_ptr(history.store()) as usize;
        if let Some((k, tables)) = self.arenas.get(*hint) {
            if *k == key {
                return tables;
            }
        }
        let idx = self
            .arenas
            .iter()
            .position(|&(k, _)| k == key)
            // lint:allow(transitive-no-panic-hot-path) Tables::build registers every arena the snapshot's histories point at
            .expect("history's arena is in the tables");
        *hint = idx;
        &self.arenas[idx].1
    }
}

/// ICD-10 chapter index of a code, or `NO_BUCKET`.
pub(crate) fn chapter_of(code: &Code) -> u8 {
    if code.system != CodeSystem::Icd10 {
        return NO_BUCKET;
    }
    Icd10Code::parse(&code.value)
        .and_then(|c| c.chapter_index())
        .map(|i| i as u8)
        .unwrap_or(NO_BUCKET)
}

/// ATC main-group index of a code, or `NO_BUCKET`.
pub(crate) fn atc_group_of(code: &Code) -> u8 {
    if code.system != CodeSystem::Atc {
        return NO_BUCKET;
    }
    AtcCode::parse(&code.value).map(|c| c.main_group_index() as u8).unwrap_or(NO_BUCKET)
}

/// Bitmask over [`CONDITIONS`] of the conditions a code indicates.
pub(crate) fn condition_mask(ontology: &IntegrationOntology, code: &Code) -> u32 {
    let mut mask = 0u32;
    for name in ontology.conditions_of(code) {
        if let Some(i) = IntegrationOntology::condition_index(name) {
            mask |= 1 << i;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chapter_and_group_sentinels() {
        assert_eq!(chapter_of(&Code::icd10("E11")), 3); // chapter IV
        assert_eq!(chapter_of(&Code::icpc("T90")), NO_BUCKET);
        assert_eq!(atc_group_of(&Code::atc("C07AB02")), 2); // C = cardiovascular
        assert_eq!(atc_group_of(&Code::icd10("E11")), NO_BUCKET);
    }

    #[test]
    fn condition_mask_unifies_systems() {
        let ontology = IntegrationOntology::new();
        let gp = condition_mask(&ontology, &Code::icpc("T90"));
        let hospital = condition_mask(&ontology, &Code::icd10("E11"));
        let diabetes = IntegrationOntology::condition_index("Diabetes").expect("tracked");
        assert_ne!(gp & (1 << diabetes), 0, "T90 indicates diabetes");
        assert_ne!(hospital & (1 << diabetes), 0, "E11 indicates diabetes");
        assert_eq!(condition_mask(&ontology, &Code::atc("C07AB02")) >> CONDITIONS.len(), 0);
    }
}
