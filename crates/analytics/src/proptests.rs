//! Property tests: the parallel sharded dimension pass must agree with
//! the serial naive per-history fold on arbitrary collections, cohorts
//! and thread counts, and every partition histogram's bucket totals must
//! sum to the cohort size.

use crate::profile::{cohort_monthly, cohort_profile, cohort_profile_serial};
use pastas_ontology::integration::IntegrationOntology;
use pastas_synth::{generate_collection, SynthConfig};
use pastas_time::Date;
use proptest::prelude::*;

/// Thread counts the parallel pass must be invariant over (1 is the
/// exact serial chunking).
const THREADS: [usize; 2] = [1, 4];

/// Tiny deterministic PRNG (splitmix64), same scheme as the query
/// crate's proptests — the vendored proptest has no Vec strategies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A random sorted cohort: every position kept with probability ~`keep`
/// in 16ths — the shape `select_positions` hands the profile pass.
fn random_cohort(rng: &mut Rng, len: usize, keep: u64) -> Vec<u32> {
    (0..len as u32).filter(|_| rng.next() % 16 < keep).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn parallel_profile_equals_serial_oracle(
        collection_seed in 0u64..50,
        cohort_seed in 0u64..u64::MAX,
        patients in 60usize..220,
        shard_patients in 40usize..120,
        keep in 1u64..16,
    ) {
        // Multi-arena on purpose: shard_patients < patients forces the
        // per-arena table translation the single-arena tests never hit.
        let config = SynthConfig { shard_patients, ..SynthConfig::with_patients(patients) };
        let collection = generate_collection(config, collection_seed);
        let ontology = IntegrationOntology::new();
        let reference = collection
            .stats()
            .last
            .map(|dt| dt.date())
            .unwrap_or_else(|| Date::new(2013, 1, 1).expect("valid"));
        let mut rng = Rng(cohort_seed);
        let positions = random_cohort(&mut rng, collection.len(), keep);

        let serial =
            cohort_profile_serial(&collection, &ontology, &positions, reference, 25);
        let serial_monthly = {
            // The serial reference for the timeline: thread count 1.
            pastas_par::with_threads(1, || cohort_monthly(&collection, &positions))
        };
        for threads in THREADS {
            let (profile, monthly) = pastas_par::with_threads(threads, || {
                (
                    cohort_profile(&collection, &ontology, &positions, reference, 25),
                    cohort_monthly(&collection, &positions),
                )
            });
            prop_assert_eq!(&profile, &serial, "threads {}", threads);
            prop_assert_eq!(&monthly, &serial_monthly, "threads {}", threads);

            // Partition invariant: every single-assignment histogram's
            // buckets sum to the cohort size.
            prop_assert_eq!(profile.cohort_size, positions.len() as u64);
            for h in profile.histograms().iter().filter(|h| h.partition) {
                let total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
                prop_assert_eq!(
                    total, profile.cohort_size,
                    "histogram {} must partition (threads {})", h.name, threads
                );
            }
        }
    }
}
