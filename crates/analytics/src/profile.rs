//! The one-pass cohort dimension aggregation and its serial oracle.
//!
//! [`cohort_profile`] folds the selected histories — given as sorted
//! positions into the collection, exactly what the query planner returns
//! — into a [`CohortProfile`] in a single parallel pass: each worker
//! carries a dense [`Accum`] of `u32` bucket arrays (plus a
//! vocabulary-sized count column for top-k codes) and the partial
//! accumulators merge by vector addition, so the result is independent
//! of chunking and thread count. [`cohort_profile_serial`] is the
//! deliberately naive per-history reference implementation the property
//! tests diff against.

use crate::dimensions::*;
use crate::tables::{ArenaTables, Tables, NO_BUCKET};
use pastas_model::{History, HistoryCollection, Sex, SourceKind};
use pastas_ontology::integration::{IntegrationOntology, CONDITIONS};
use pastas_time::Date;
use std::collections::BTreeMap;

/// How many top codes a profile reports by default.
pub const DEFAULT_TOP_K: usize = 20;

/// One rendered histogram of a finished profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Dimension name (stable, used as JSON key and panel title).
    pub name: &'static str,
    /// `(bucket label, patient count)` in bucket order.
    pub buckets: Vec<(String, u64)>,
    /// True if every cohort member lands in exactly one bucket, so the
    /// counts sum to the cohort size. False for the per-patient-distinct
    /// breakdowns (top codes, conditions) where one patient may count in
    /// several buckets.
    pub partition: bool,
}

/// The nine-dimension composition summary of a materialized cohort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortProfile {
    /// Number of selected patients.
    pub cohort_size: u64,
    /// Total entries across the selected histories.
    pub total_entries: u64,
    /// Reference date ages and first-contact years are relative to.
    pub reference: Date,
    /// Patients per age decade at the reference date.
    pub age_bands: Vec<u64>,
    /// Patients by registered sex (`[female, male]`).
    pub sex: Vec<u64>,
    /// Patients by most frequent event source (+ trailing `none`).
    pub dominant_source: Vec<u64>,
    /// Patients by events-per-patient band.
    pub entry_bands: Vec<u64>,
    /// Patients by observed history span band (+ trailing `none`).
    pub span_bands: Vec<u64>,
    /// Patients by dominant ICD-10 chapter (+ trailing `none`).
    pub icd_chapters: Vec<u64>,
    /// Patients by dominant ATC main group (+ trailing `none`).
    pub atc_groups: Vec<u64>,
    /// Patients by first-contact calendar year (`earlier` + window +
    /// trailing `none`).
    pub first_contact: Vec<u64>,
    /// `(code label, patients with the code)`, count-descending, ties
    /// broken by label — per-patient-distinct, not a partition.
    pub top_codes: Vec<(String, u64)>,
    /// `(condition name, patients indicating it)` in `CONDITIONS` order —
    /// per-patient-distinct, not a partition.
    pub conditions: Vec<(String, u64)>,
}

impl CohortProfile {
    /// The profile's histograms in display order.
    pub fn histograms(&self) -> Vec<Histogram> {
        let ref_year = self.reference.year();
        let labelled = |name: &'static str, counts: &[u64], label: &dyn Fn(usize) -> String| {
            Histogram {
                name,
                buckets: counts.iter().enumerate().map(|(i, &c)| (label(i), c)).collect(),
                partition: true,
            }
        };
        let mut out = vec![
            labelled("age_band", &self.age_bands, &age_label),
            labelled("sex", &self.sex, &|i| {
                if i == 0 { "female".to_owned() } else { "male".to_owned() }
            }),
            labelled("dominant_source", &self.dominant_source, &source_label),
            labelled("entries_per_patient", &self.entry_bands, &entry_label),
            labelled("history_span", &self.span_bands, &span_label),
            labelled("icd_chapter", &self.icd_chapters, &icd_label),
            labelled("atc_group", &self.atc_groups, &atc_label),
            labelled("first_contact_year", &self.first_contact, &|i| {
                first_contact_label(ref_year, i)
            }),
        ];
        out.push(Histogram {
            name: "top_codes",
            buckets: self.top_codes.clone(),
            partition: false,
        });
        out.push(Histogram {
            name: "conditions",
            buckets: self.conditions.iter().map(|(n, c)| (n.clone(), *c)).collect(),
            partition: false,
        });
        out
    }

    /// The profile as a JSON document (hand-written like the rest of the
    /// serve layer; labels are escaped).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "{{\"cohort_size\":{},\"total_entries\":{},\"reference\":\"{}\",\"histograms\":[",
            self.cohort_size, self.total_entries, self.reference
        ));
        for (i, h) in self.histograms().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"partition\":{},\"buckets\":[",
                h.name, h.partition
            ));
            for (j, (label, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[\"{}\",{count}]", escape_json(label)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escape for bucket labels.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The dense per-worker accumulator: every dimension is a small `u32`
/// array indexed by bucket id; top-k and condition columns are sized by
/// the global vocabulary. Merging two accumulators is vector addition,
/// so the parallel fold is associative and chunk-shape independent.
struct Accum {
    cohort: u32,
    entries: u64,
    age: [u32; AGE_BANDS],
    sex: [u32; SEX_BANDS],
    source: [u32; SOURCE_BANDS],
    entry_bands: [u32; ENTRY_BANDS],
    span: [u32; SPAN_BANDS],
    chapters: [u32; ICD_BANDS],
    atc: [u32; ATC_BANDS],
    first_contact: [u32; FIRST_CONTACT_BANDS],
    /// Patients carrying each global code (per-patient-distinct).
    code_counts: Vec<u32>,
    /// Last history serial that touched each code — the stamp trick that
    /// makes per-patient-distinct counting allocation-free in the loop.
    code_stamp: Vec<u32>,
    cond_counts: [u32; CONDITIONS.len()],
    /// Serial of the history currently being folded (per worker).
    stamp: u32,
    /// Last arena-table index hit, fed back to [`Tables::for_history`].
    arena_hint: usize,
}

impl Accum {
    fn new(vocab_len: usize) -> Accum {
        Accum {
            cohort: 0,
            entries: 0,
            age: [0; AGE_BANDS],
            sex: [0; SEX_BANDS],
            source: [0; SOURCE_BANDS],
            entry_bands: [0; ENTRY_BANDS],
            span: [0; SPAN_BANDS],
            chapters: [0; ICD_BANDS],
            atc: [0; ATC_BANDS],
            first_contact: [0; FIRST_CONTACT_BANDS],
            code_counts: vec![0; vocab_len],
            code_stamp: vec![u32::MAX; vocab_len],
            cond_counts: [0; CONDITIONS.len()],
            stamp: 0,
            arena_hint: 0,
        }
    }

    /// Fold one history into the accumulator.
    fn add(&mut self, history: &History, tables: &ArenaTables, reference: Date) {
        self.cohort += 1;
        self.entries += history.len() as u64;
        self.age[age_bucket(history.age_at(reference))] += 1;
        self.sex[match history.patient().sex {
            Sex::Female => 0,
            Sex::Male => 1,
        }] += 1;
        self.entry_bands[entry_bucket(history.len())] += 1;
        self.first_contact[match history.first_time() {
            Some(t) => first_contact_bucket(reference.year(), t.date().year()),
            None => FIRST_CONTACT_NONE,
        }] += 1;

        let mut per_source = [0u32; SourceKind::ALL.len()];
        let mut per_chapter = [0u32; ICD_BANDS - 1];
        let mut per_atc = [0u32; ATC_BANDS - 1];
        let mut cond_mask = 0u32;
        // One fused columnar pass: provenance, code-derived buckets and
        // the span's max end time together, so `history.span()` (a
        // second full traversal of the end column) never runs here. The
        // max is tracked as a monotone integer key — one branchless
        // `max` per entry instead of the field-wise `DateTime` compare,
        // with 0 meaning "no entries".
        let mut last_end_key = 0u64;
        for (source, code, end) in history.entries().scan() {
            per_source[source.dense_index()] += 1;
            last_end_key = last_end_key.max(end.sort_key());
            if let Some(id) = code {
                // One packed record per code: every code-derived bucket
                // comes out of a single 12-byte read.
                let dims = tables.codes[id.0 as usize];
                if dims.chapter != NO_BUCKET {
                    per_chapter[dims.chapter as usize] += 1;
                }
                if dims.atc != NO_BUCKET {
                    per_atc[dims.atc as usize] += 1;
                }
                cond_mask |= dims.cond_mask;
                let gid = dims.global as usize;
                if self.code_stamp[gid] != self.stamp {
                    self.code_stamp[gid] = self.stamp;
                    self.code_counts[gid] += 1;
                }
            }
        }
        let span_days = history
            .first_time()
            .zip(pastas_time::DateTime::from_sort_key(last_end_key))
            .map(|(first, last)| (last - first).as_days_f64());
        self.span[span_bucket(span_days)] += 1;
        self.source[dominant(&per_source).unwrap_or(SOURCE_BANDS - 1)] += 1;
        self.chapters[dominant(&per_chapter).unwrap_or(ICD_BANDS - 1)] += 1;
        self.atc[dominant(&per_atc).unwrap_or(ATC_BANDS - 1)] += 1;
        let mut mask = cond_mask;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            self.cond_counts[i] += 1;
            mask &= mask - 1;
        }
        self.stamp = self.stamp.wrapping_add(1);
    }

    /// Merge a partial accumulator (vector addition; stamps don't carry).
    fn merge(mut self, other: Accum) -> Accum {
        fn add_into(a: &mut [u32], b: &[u32]) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        self.cohort += other.cohort;
        self.entries += other.entries;
        add_into(&mut self.age, &other.age);
        add_into(&mut self.sex, &other.sex);
        add_into(&mut self.source, &other.source);
        add_into(&mut self.entry_bands, &other.entry_bands);
        add_into(&mut self.span, &other.span);
        add_into(&mut self.chapters, &other.chapters);
        add_into(&mut self.atc, &other.atc);
        add_into(&mut self.first_contact, &other.first_contact);
        add_into(&mut self.code_counts, &other.code_counts);
        add_into(&mut self.cond_counts, &other.cond_counts);
        self
    }
}

/// Index of the most frequent bucket, lowest index winning ties; `None`
/// if every count is zero (empty history / no coded entries).
fn dominant(counts: &[u32]) -> Option<usize> {
    let (best, &max) = counts
        .iter()
        .enumerate()
        .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))?;
    (max > 0).then_some(best)
}

/// Compute the full dimension profile of the cohort at `positions`
/// (sorted indices into `collection.histories()`, as returned by the
/// query planner) in one parallel pass.
///
/// `ontology` resolves condition membership — pass a saturated instance
/// (e.g. `Workbench::ontology()`); construction is expensive.
pub fn cohort_profile(
    collection: &HistoryCollection,
    ontology: &IntegrationOntology,
    positions: &[u32],
    reference: Date,
    top_k: usize,
) -> CohortProfile {
    let tables = Tables::build(collection, ontology);
    cohort_profile_prepared(collection, &tables, positions, reference, top_k)
}

/// [`cohort_profile`] against pre-built dimension tables. Building the
/// tables walks every interned code through the parsers and the
/// ontology — milliseconds of fixed cost at scale — so callers that
/// profile the same immutable snapshot repeatedly (the serve workbench)
/// build once and pass the tables here.
pub fn cohort_profile_prepared(
    collection: &HistoryCollection,
    tables: &Tables,
    positions: &[u32],
    reference: Date,
    top_k: usize,
) -> CohortProfile {
    let histories = collection.histories();
    let folded = pastas_par::par_fold(
        positions,
        || Accum::new(tables.vocab.len()),
        |mut acc, &pos| {
            let history = &histories[pos as usize];
            let arena = tables.for_history(history, &mut acc.arena_hint);
            acc.add(history, arena, reference);
            acc
        },
        Accum::merge,
    );
    finish(folded, &tables.vocab, reference, top_k)
}

/// Widen a folded accumulator into the public profile.
fn finish(acc: Accum, vocab: &[String], reference: Date, top_k: usize) -> CohortProfile {
    let widen = |a: &[u32]| a.iter().map(|&v| u64::from(v)).collect::<Vec<u64>>();
    let mut codes: Vec<(String, u64)> = vocab
        .iter()
        .zip(&acc.code_counts)
        .filter(|&(_, &count)| count > 0)
        .map(|(label, &count)| (label.clone(), u64::from(count)))
        .collect();
    codes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    codes.truncate(top_k);
    CohortProfile {
        cohort_size: u64::from(acc.cohort),
        total_entries: acc.entries,
        reference,
        age_bands: widen(&acc.age),
        sex: widen(&acc.sex),
        dominant_source: widen(&acc.source),
        entry_bands: widen(&acc.entry_bands),
        span_bands: widen(&acc.span),
        icd_chapters: widen(&acc.chapters),
        atc_groups: widen(&acc.atc),
        first_contact: widen(&acc.first_contact),
        top_codes: codes,
        conditions: CONDITIONS
            .iter()
            .zip(&acc.cond_counts)
            .map(|(&(name, ..), &count)| (name.to_owned(), u64::from(count)))
            .collect(),
    }
}

/// The serial naive reference: one history at a time, sets and maps
/// instead of stamps and dense columns, no sharding, no `pastas_par`.
/// Exists so the property tests can diff the parallel pass against an
/// independently structured implementation.
pub fn cohort_profile_serial(
    collection: &HistoryCollection,
    ontology: &IntegrationOntology,
    positions: &[u32],
    reference: Date,
    top_k: usize,
) -> CohortProfile {
    use std::collections::HashSet;
    let histories = collection.histories();
    let mut acc = Accum::new(0);
    let mut code_patients: BTreeMap<String, u64> = BTreeMap::new();
    let mut cond_counts = [0u64; CONDITIONS.len()];
    for &pos in positions {
        let history = &histories[pos as usize];
        acc.cohort += 1;
        acc.entries += history.len() as u64;
        acc.age[age_bucket(history.age_at(reference))] += 1;
        acc.sex[match history.patient().sex {
            Sex::Female => 0,
            Sex::Male => 1,
        }] += 1;
        acc.entry_bands[entry_bucket(history.len())] += 1;
        acc.span[span_bucket(history.span().map(|d| d.as_days_f64()))] += 1;
        acc.first_contact[match history.first_time() {
            Some(t) => first_contact_bucket(reference.year(), t.date().year()),
            None => FIRST_CONTACT_NONE,
        }] += 1;

        let mut per_source = [0u32; SourceKind::ALL.len()];
        let mut per_chapter = [0u32; ICD_BANDS - 1];
        let mut per_atc = [0u32; ATC_BANDS - 1];
        let mut seen: HashSet<String> = HashSet::new();
        let mut conditions: HashSet<&'static str> = HashSet::new();
        for entry in history.entries().iter() {
            per_source[entry.source().dense_index()] += 1;
            if let Some(code) = entry.code() {
                let chapter = crate::tables::chapter_of(code);
                if chapter != NO_BUCKET {
                    per_chapter[chapter as usize] += 1;
                }
                let group = crate::tables::atc_group_of(code);
                if group != NO_BUCKET {
                    per_atc[group as usize] += 1;
                }
                conditions.extend(ontology.conditions_of(code));
                seen.insert(code.to_string());
            }
        }
        acc.source[dominant(&per_source).unwrap_or(SOURCE_BANDS - 1)] += 1;
        acc.chapters[dominant(&per_chapter).unwrap_or(ICD_BANDS - 1)] += 1;
        acc.atc[dominant(&per_atc).unwrap_or(ATC_BANDS - 1)] += 1;
        for label in seen {
            *code_patients.entry(label).or_insert(0) += 1;
        }
        for name in conditions {
            if let Some(i) = IntegrationOntology::condition_index(name) {
                cond_counts[i] += 1;
            }
        }
    }
    let mut profile = finish(acc, &[], reference, top_k);
    let mut codes: Vec<(String, u64)> = code_patients.into_iter().collect();
    codes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    codes.truncate(top_k);
    profile.top_codes = codes;
    profile.conditions = CONDITIONS
        .iter()
        .zip(&cond_counts)
        .map(|(&(name, ..), &count)| (name.to_owned(), count))
        .collect();
    profile
}

/// Monthly event counts over the cohort at `positions`: one
/// `(first-of-month, entries starting that month)` row per month between
/// the cohort's first and last entry, gaps filled with zeros. One
/// parallel pass; merge is map addition.
pub fn cohort_monthly(collection: &HistoryCollection, positions: &[u32]) -> Vec<(Date, u64)> {
    let histories = collection.histories();
    let folded = pastas_par::par_fold(
        positions,
        BTreeMap::<(i32, u32), u64>::new,
        |mut acc, &pos| {
            for entry in histories[pos as usize].entries().iter() {
                let d = entry.start().date();
                *acc.entry((d.year(), d.month())).or_insert(0) += 1;
            }
            acc
        },
        |mut a, b| {
            for (k, v) in b {
                *a.entry(k).or_insert(0) += v;
            }
            a
        },
    );
    let (Some((&first, _)), Some((&last, _))) =
        (folded.first_key_value(), folded.last_key_value())
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let (mut year, mut month) = first;
    loop {
        // lint:allow(transitive-no-panic-hot-path) month stays in 1..=12 by the rollover below; day 1 is valid in every month
        let date = Date::new(year, month, 1).expect("month key is valid");
        out.push((date, folded.get(&(year, month)).copied().unwrap_or(0)));
        if (year, month) == last {
            break;
        }
        month += 1;
        if month > 12 {
            month = 1;
            year += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_synth::{generate_collection, SynthConfig};

    fn fixture() -> (HistoryCollection, IntegrationOntology, Date) {
        let collection = generate_collection(SynthConfig::with_patients(120), 23);
        let reference = collection
            .stats()
            .last
            .map(|dt| dt.date())
            .unwrap_or_else(|| Date::new(2013, 1, 1).expect("valid"));
        (collection, IntegrationOntology::new(), reference)
    }

    #[test]
    fn partitions_sum_to_cohort_size() {
        let (collection, ontology, reference) = fixture();
        let positions: Vec<u32> = (0..collection.len() as u32).collect();
        let p = cohort_profile(&collection, &ontology, &positions, reference, DEFAULT_TOP_K);
        assert_eq!(p.cohort_size, collection.len() as u64);
        for h in p.histograms().iter().filter(|h| h.partition) {
            let total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, p.cohort_size, "histogram {} must partition", h.name);
        }
    }

    #[test]
    fn parallel_equals_serial_on_full_cohort() {
        let (collection, ontology, reference) = fixture();
        let positions: Vec<u32> = (0..collection.len() as u32).collect();
        let par = cohort_profile(&collection, &ontology, &positions, reference, DEFAULT_TOP_K);
        let ser =
            cohort_profile_serial(&collection, &ontology, &positions, reference, DEFAULT_TOP_K);
        assert_eq!(par, ser);
    }

    #[test]
    fn empty_cohort_profiles_cleanly() {
        let (collection, ontology, reference) = fixture();
        let p = cohort_profile(&collection, &ontology, &[], reference, DEFAULT_TOP_K);
        assert_eq!(p.cohort_size, 0);
        assert!(p.top_codes.is_empty());
        assert!(cohort_monthly(&collection, &[]).is_empty());
        assert!(p.to_json().starts_with("{\"cohort_size\":0,"));
    }

    #[test]
    fn monthly_timeline_is_contiguous_and_totals_entries() {
        let (collection, _, _) = fixture();
        let positions: Vec<u32> = (0..collection.len() as u32).collect();
        let months = cohort_monthly(&collection, &positions);
        let total: u64 = months.iter().map(|&(_, c)| c).sum();
        let entries: u64 = positions
            .iter()
            .map(|&p| collection.histories()[p as usize].len() as u64)
            .sum();
        assert_eq!(total, entries);
        for pair in months.windows(2) {
            let (a, b) = (pair[0].0, pair[1].0);
            assert_eq!(a.months_between(b).abs(), 1, "months must be contiguous");
        }
    }
}
