//! Property-based tests for the calendar core.

use crate::{Date, DateTime, Duration};
use proptest::prelude::*;

fn arb_date() -> impl Strategy<Value = Date> {
    // Day numbers covering years ~1800..~2200, the clinically relevant span.
    (-62_000i64..84_000).prop_map(|n| Date::from_day_number(n).unwrap())
}

proptest! {
    #[test]
    fn day_number_round_trips(n in Date::MIN.day_number()..=Date::MAX.day_number()) {
        let d = Date::from_day_number(n).unwrap();
        prop_assert_eq!(d.day_number(), n);
    }

    #[test]
    fn ymd_round_trips(d in arb_date()) {
        let again = Date::new(d.year(), d.month(), d.day()).unwrap();
        prop_assert_eq!(again, d);
    }

    #[test]
    fn day_number_is_monotone(a in arb_date(), b in arb_date()) {
        prop_assert_eq!(a < b, a.day_number() < b.day_number());
    }

    #[test]
    fn add_days_is_invertible(d in arb_date(), k in -100_000i64..100_000) {
        prop_assert_eq!(d.add_days(k).add_days(-k), d);
    }

    #[test]
    fn weekday_advances_by_one(d in arb_date()) {
        let next = d.add_days(1);
        let w = d.weekday().number();
        let wn = next.weekday().number();
        prop_assert_eq!(wn, if w == 7 { 1 } else { w + 1 });
    }

    #[test]
    fn ordinal_matches_days_since_jan1(d in arb_date()) {
        let jan1 = Date::new(d.year(), 1, 1).unwrap();
        prop_assert_eq!(i64::from(d.ordinal()), d.days_since(jan1) + 1);
    }

    #[test]
    fn add_months_keeps_day_when_possible(d in arb_date(), k in -600i32..600) {
        let moved = d.add_months(k);
        if d.day() <= moved.days_in_month() {
            prop_assert_eq!(moved.day(), d.day());
        } else {
            prop_assert_eq!(moved.day(), moved.days_in_month());
        }
    }

    #[test]
    fn months_between_brackets_the_date(a in arb_date(), b in arb_date()) {
        let k = b.months_between(a);
        prop_assert!(a.add_months(k) <= b, "floor bound violated");
        prop_assert!(a.add_months(k + 1) > b, "tightness violated");
    }

    #[test]
    fn date_display_parse_round_trips(d in arb_date()) {
        prop_assert_eq!(Date::parse_iso(&d.to_string()).unwrap(), d);
    }

    #[test]
    fn datetime_second_number_round_trips(s in -200_000_000_000i64..200_000_000_000) {
        let t = DateTime::from_second_number(s).unwrap();
        prop_assert_eq!(t.second_number(), s);
    }

    #[test]
    fn datetime_display_parse_round_trips(s in -200_000_000_000i64..200_000_000_000) {
        let t = DateTime::from_second_number(s).unwrap();
        prop_assert_eq!(DateTime::parse_iso(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn datetime_add_then_subtract(s in -1_000_000_000i64..1_000_000_000,
                                  delta in -10_000_000i64..10_000_000) {
        let t = DateTime::from_second_number(s).unwrap();
        let moved = t + Duration::seconds(delta);
        prop_assert_eq!(moved - t, Duration::seconds(delta));
    }

    #[test]
    fn duration_display_never_panics(secs in i64::MIN/2..i64::MAX/2) {
        let _ = Duration::seconds(secs).to_string();
    }
}
