//! Civil (proleptic Gregorian) dates, datetimes and durations.
//!
//! The PAsTAs workbench timestamps every clinical entry. The paper's data
//! model distinguishes *point events* ("single day contacts, usually with a
//! recorded diagnosis") from *intervals* ("notions such as Hospital stay"),
//! and its aligned-axis mode measures time in **months before and after an
//! alignment point**. This crate provides exactly the calendar machinery
//! those features need, with no external dependencies:
//!
//! * [`Date`] — a validated civil date with day-number conversion
//!   (Hinnant-style algorithms), weekday, ordinal-day and leap-year support;
//! * [`DateTime`] — a date plus second-of-day;
//! * [`Duration`] — a signed span in seconds;
//! * month arithmetic with end-of-month clamping ([`Date::add_months`],
//!   [`Date::months_between`]) for the aligned axis;
//! * ISO-8601 parsing and formatting.
//!
//! All types are `Copy`, ordered, and hashable, so they can be used directly
//! as index keys in the query layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod date;
mod datetime;
mod duration;
mod parse;

pub use date::{Date, Weekday, DAYS_PER_400_YEARS};
pub use datetime::DateTime;
pub use duration::Duration;
pub use parse::ParseError;

/// Number of days since the civil epoch 1970-01-01 (negative before it).
///
/// This is the canonical machine representation of a date inside indexes and
/// the visualization viewport: pixel positions on the calendar axis are an
/// affine function of the day number.
pub type DayNumber = i64;

/// Seconds since 1970-01-01T00:00:00 (civil, no leap seconds).
pub type SecondNumber = i64;

#[cfg(test)]
mod proptests;
