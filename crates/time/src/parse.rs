//! ISO-8601 parsing for dates and datetimes.
//!
//! The heterogeneous source files carry timestamps in a handful of close
//! dialects (`YYYY-MM-DD`, `YYYY-MM-DDTHH:MM:SS`, space-separated). The
//! parser here is strict about field widths and values but tolerant about
//! the `T`/space separator and an optional seconds field.

use crate::{Date, DateTime};
use std::fmt;

/// Error produced when a date or datetime string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The string does not have the expected `YYYY-MM-DD[*HH:MM[:SS]]` shape.
    Malformed {
        /// The offending input (truncated for display).
        input: String,
    },
    /// Shape was fine but a field was out of range (month 13, hour 25, …).
    OutOfRange {
        /// The offending input (truncated for display).
        input: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed { input } => write!(f, "malformed date/time: {input:?}"),
            ParseError::OutOfRange { input } => {
                write!(f, "date/time field out of range: {input:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn truncate(s: &str) -> String {
    s.chars().take(40).collect()
}

fn digits(s: &str, n: usize) -> Option<u32> {
    if s.len() != n || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

pub(crate) fn parse_date(s: &str) -> Result<Date, ParseError> {
    let malformed = || ParseError::Malformed { input: truncate(s) };
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let mut parts = body.splitn(3, '-');
    let y = parts.next().and_then(|p| digits(p, 4)).ok_or_else(malformed)?;
    let m = parts.next().and_then(|p| digits(p, 2)).ok_or_else(malformed)?;
    let d = parts.next().and_then(|p| digits(p, 2)).ok_or_else(malformed)?;
    let year = if neg { -(y as i32) } else { y as i32 };
    Date::new(year, m, d).ok_or(ParseError::OutOfRange { input: truncate(s) })
}

pub(crate) fn parse_datetime(s: &str) -> Result<DateTime, ParseError> {
    let malformed = || ParseError::Malformed { input: truncate(s) };
    // Find the date/time separator: 'T' or ' ' after the date part.
    // A date alone is accepted and treated as midnight.
    let sep = s
        .char_indices()
        .find(|&(i, c)| i >= 8 && (c == 'T' || c == ' '))
        .map(|(i, _)| i);
    let (date_part, time_part) = match sep {
        Some(i) => (&s[..i], Some(&s[i + 1..])),
        None => (s, None),
    };
    let date = parse_date(date_part)?;
    let Some(time) = time_part else {
        return Ok(date.at_midnight());
    };
    let mut fields = time.splitn(3, ':');
    let h = fields.next().and_then(|p| digits(p, 2)).ok_or_else(malformed)?;
    let mi = fields.next().and_then(|p| digits(p, 2)).ok_or_else(malformed)?;
    let sec = match fields.next() {
        Some(p) => digits(p, 2).ok_or_else(malformed)?,
        None => 0,
    };
    DateTime::new(date, h, mi, sec).ok_or(ParseError::OutOfRange { input: truncate(s) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_dates() {
        assert_eq!(Date::parse_iso("2016-05-04").unwrap(), Date::new(2016, 5, 4).unwrap());
        assert_eq!(Date::parse_iso("-0044-03-15").unwrap(), Date::new(-44, 3, 15).unwrap());
    }

    #[test]
    fn rejects_malformed_dates() {
        for bad in ["", "2016", "2016-05", "2016/05/04", "16-05-04", "2016-5-04", "2016-05-4",
                    "2016-05-04x", "abcd-ef-gh"] {
            assert!(
                matches!(Date::parse_iso(bad), Err(ParseError::Malformed { .. })),
                "expected Malformed for {bad:?}"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_dates() {
        for bad in ["2016-13-01", "2016-00-10", "2015-02-29", "2016-04-31"] {
            assert!(
                matches!(Date::parse_iso(bad), Err(ParseError::OutOfRange { .. })),
                "expected OutOfRange for {bad:?}"
            );
        }
    }

    #[test]
    fn parses_datetimes_with_both_separators() {
        let want = DateTime::new(Date::new(2016, 5, 4).unwrap(), 9, 30, 15).unwrap();
        assert_eq!(DateTime::parse_iso("2016-05-04T09:30:15").unwrap(), want);
        assert_eq!(DateTime::parse_iso("2016-05-04 09:30:15").unwrap(), want);
    }

    #[test]
    fn seconds_are_optional_and_date_means_midnight() {
        let noon = DateTime::parse_iso("2016-05-04T12:00").unwrap();
        assert_eq!((noon.hour(), noon.minute(), noon.second()), (12, 0, 0));
        let mid = DateTime::parse_iso("2016-05-04").unwrap();
        assert_eq!((mid.hour(), mid.minute(), mid.second()), (0, 0, 0));
    }

    #[test]
    fn rejects_bad_clock_fields() {
        assert!(DateTime::parse_iso("2016-05-04T24:00:00").is_err());
        assert!(DateTime::parse_iso("2016-05-04T12:60:00").is_err());
        assert!(DateTime::parse_iso("2016-05-04T12:00:61").is_err());
        assert!(DateTime::parse_iso("2016-05-04T1:00:00").is_err());
    }

    #[test]
    fn round_trips_display() {
        for s in ["2016-05-04T09:30:15", "1970-01-01T00:00:00", "2099-12-31T23:59:59"] {
            assert_eq!(DateTime::parse_iso(s).unwrap().to_string(), s);
        }
    }
}
