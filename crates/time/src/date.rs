//! Civil dates on the proleptic Gregorian calendar.

use crate::{DayNumber, Duration};
use std::fmt;

/// Days in 400 Gregorian years — the full leap cycle.
pub const DAYS_PER_400_YEARS: i64 = 146_097;

/// A day of the week. `Monday` is day 1, per ISO-8601.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday = 1,
    Tuesday = 2,
    Wednesday = 3,
    Thursday = 4,
    Friday = 5,
    Saturday = 6,
    Sunday = 7,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// ISO weekday number, 1 = Monday … 7 = Sunday.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// True for Saturday and Sunday. Emergency-care synthesis uses this:
    /// out-of-hours GP contacts cluster on weekends.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

/// A validated civil date (proleptic Gregorian calendar).
///
/// Internally a `(year, month, day)` triple; the year is bounded to
/// `[-9999, 9999]`, which comfortably covers clinical data and lets the
/// day-number arithmetic stay far away from `i64` overflow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i16,
    month: u8,
    day: u8,
}

impl Date {
    /// The earliest representable date.
    pub const MIN: Date = Date { year: -9999, month: 1, day: 1 };
    /// The latest representable date.
    pub const MAX: Date = Date { year: 9999, month: 12, day: 31 };

    /// Construct a date, validating the calendar.
    ///
    /// Returns `None` for out-of-range years, bad months, or days that do
    /// not exist in the given month (e.g. 2001-02-29).
    pub fn new(year: i32, month: u32, day: u32) -> Option<Date> {
        if !(-9999..=9999).contains(&year) || !(1..=12).contains(&month) {
            return None;
        }
        let dim = days_in_month(year, month as u8);
        if day == 0 || day > u32::from(dim) {
            return None;
        }
        Some(Date { year: year as i16, month: month as u8, day: day as u8 })
    }

    /// Construct from a day number (days since 1970-01-01).
    ///
    /// Returns `None` if the result falls outside [`Date::MIN`]..=[`Date::MAX`].
    pub fn from_day_number(days: DayNumber) -> Option<Date> {
        // Hinnant's civil_from_days, shifted so the era starts 0000-03-01.
        let z = days.checked_add(719_468)?;
        let era = z.div_euclid(DAYS_PER_400_YEARS);
        let doe = z.rem_euclid(DAYS_PER_400_YEARS); // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        let year = y + i64::from(m <= 2);
        if !(-9999..=9999).contains(&year) {
            return None;
        }
        Some(Date { year: year as i16, month: m as u8, day: d as u8 })
    }

    /// Days since 1970-01-01 (negative before the epoch).
    pub fn day_number(self) -> DayNumber {
        // Hinnant's days_from_civil.
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let era = y.div_euclid(400);
        let yoe = y.rem_euclid(400); // [0, 399]
        let mp = if m > 2 { m - 3 } else { m + 9 };
        let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * DAYS_PER_400_YEARS + doe - 719_468
    }

    /// The calendar year.
    pub fn year(self) -> i32 {
        i32::from(self.year)
    }

    /// The month, 1–12.
    pub fn month(self) -> u32 {
        u32::from(self.month)
    }

    /// The day of month, 1–31.
    pub fn day(self) -> u32 {
        u32::from(self.day)
    }

    /// The day of week.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday (ISO 4).
        let w = (self.day_number() + 3).rem_euclid(7) + 1;
        match w {
            1 => Weekday::Monday,
            2 => Weekday::Tuesday,
            3 => Weekday::Wednesday,
            4 => Weekday::Thursday,
            5 => Weekday::Friday,
            6 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// ISO-8601 week date: `(week-year, week number 1–53)`.
    ///
    /// Utilization statistics are often reported per ISO week; the week
    /// belongs to the year containing its Thursday.
    pub fn iso_week(self) -> (i32, u32) {
        let thursday = self.add_days(i64::from(4 - i32::from(self.weekday().number())));
        let year = thursday.year();
        let jan1 = Date::new(year, 1, 1).expect("valid");
        let week = (thursday.days_since(jan1) / 7 + 1) as u32;
        (year, week)
    }

    /// Ordinal day within the year, 1-based (1..=365/366).
    pub fn ordinal(self) -> u32 {
        const CUM: [u32; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];
        let mut o = CUM[self.month as usize - 1] + u32::from(self.day);
        if self.month > 2 && is_leap_year(self.year()) {
            o += 1;
        }
        o
    }

    /// True if this date's year is a leap year.
    pub fn is_leap_year(self) -> bool {
        is_leap_year(self.year())
    }

    /// Number of days in this date's month.
    pub fn days_in_month(self) -> u32 {
        u32::from(days_in_month(self.year(), self.month))
    }

    /// Add (or subtract, if negative) a number of days, saturating at the
    /// representable bounds.
    pub fn add_days(self, days: i64) -> Date {
        match Date::from_day_number(self.day_number().saturating_add(days)) {
            Some(d) => d,
            None if days < 0 => Date::MIN,
            None => Date::MAX,
        }
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(self, other: Date) -> i64 {
        self.day_number() - other.day_number()
    }

    /// Add a signed number of months, clamping the day to the target month's
    /// length (2020-01-31 + 1 month = 2020-02-29).
    ///
    /// This is the arithmetic behind the aligned axis: tick `k` sits at
    /// `anchor.add_months(k)`.
    pub fn add_months(self, months: i32) -> Date {
        let zero_based = i64::from(self.year) * 12 + i64::from(self.month) - 1;
        let total = zero_based + i64::from(months);
        let year = total.div_euclid(12);
        let month = (total.rem_euclid(12) + 1) as u32;
        if !(-9999..=9999).contains(&year) {
            return if months < 0 { Date::MIN } else { Date::MAX };
        }
        let year = year as i32;
        let day = u32::from(self.day).min(u32::from(days_in_month(year, month as u8)));
        // lint:allow(transitive-no-panic-hot-path) year range-checked above, month in 1..=12 by rem_euclid, day clamped to the month
        Date::new(year, month, day).expect("clamped day is always valid")
    }

    /// Whole months from `other` to `self`, with uniform **floor** semantics:
    /// the unique `k` such that
    /// `other.add_months(k) <= self < other.add_months(k + 1)`.
    ///
    /// This is the bucketing rule of the aligned axis: an event one day
    /// *before* the anchor falls in month bucket `-1`, one day after in
    /// bucket `0`.
    pub fn months_between(self, other: Date) -> i32 {
        let mut k = (i32::from(self.year) - i32::from(other.year)) * 12
            + (i32::from(self.month) - i32::from(other.month));
        // The month-count estimate can be off by one in either direction
        // because of day-of-month clamping; nudge until the floor invariant
        // holds. Each loop runs at most twice.
        while other.add_months(k) > self {
            k -= 1;
        }
        while other.add_months(k + 1) <= self {
            k += 1;
        }
        k
    }

    /// First day of this date's month.
    pub fn first_of_month(self) -> Date {
        Date { day: 1, ..self }
    }

    /// Last day of this date's month.
    pub fn last_of_month(self) -> Date {
        Date { day: days_in_month(self.year(), self.month), ..self }
    }

    /// Midnight at the start of this date.
    pub fn at_midnight(self) -> crate::DateTime {
        // lint:allow(transitive-no-panic-hot-path) 00:00:00 is within range on every date
        crate::DateTime::new(self, 0, 0, 0).expect("midnight is always valid")
    }

    /// A specific time of day on this date.
    pub fn at(self, hour: u32, minute: u32, second: u32) -> Option<crate::DateTime> {
        crate::DateTime::new(self, hour, minute, second)
    }

    /// Parse an ISO-8601 calendar date (`YYYY-MM-DD`).
    pub fn parse_iso(s: &str) -> Result<Date, crate::ParseError> {
        crate::parse::parse_date(s)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.year < 0 {
            write!(f, "-{:04}-{:02}-{:02}", -i32::from(self.year), self.month, self.day)
        } else {
            write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
        }
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

impl std::ops::Add<Duration> for Date {
    type Output = Date;
    fn add(self, rhs: Duration) -> Date {
        self.add_days(rhs.whole_days())
    }
}

impl std::ops::Sub<Date> for Date {
    type Output = Duration;
    fn sub(self, rhs: Date) -> Duration {
        Duration::days(self.days_since(rhs))
    }
}

/// True if `year` is a Gregorian leap year.
pub(crate) fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

pub(crate) fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = Date::new(1970, 1, 1).unwrap();
        assert_eq!(d.day_number(), 0);
        assert_eq!(Date::from_day_number(0), Some(d));
    }

    #[test]
    fn known_day_numbers() {
        // Reference values from Hinnant's paper and `date -d ... +%s`.
        assert_eq!(Date::new(2000, 1, 1).unwrap().day_number(), 10_957);
        assert_eq!(Date::new(2016, 5, 16).unwrap().day_number(), 16_937);
        assert_eq!(Date::new(1969, 12, 31).unwrap().day_number(), -1);
        assert_eq!(Date::new(1900, 1, 1).unwrap().day_number(), -25_567);
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2001, 2, 29).is_none());
        assert!(Date::new(2000, 2, 29).is_some()); // 400-divisible year
        assert!(Date::new(1900, 2, 29).is_none()); // 100- but not 400-divisible
        assert!(Date::new(2020, 13, 1).is_none());
        assert!(Date::new(2020, 0, 1).is_none());
        assert!(Date::new(2020, 4, 31).is_none());
        assert!(Date::new(2020, 4, 0).is_none());
        assert!(Date::new(10_000, 1, 1).is_none());
        assert!(Date::new(-10_000, 1, 1).is_none());
    }

    #[test]
    fn weekday_known_values() {
        assert_eq!(Date::new(1970, 1, 1).unwrap().weekday(), Weekday::Thursday);
        assert_eq!(Date::new(2016, 5, 16).unwrap().weekday(), Weekday::Monday); // ICDE 2016 opening
        assert_eq!(Date::new(2000, 1, 1).unwrap().weekday(), Weekday::Saturday);
        assert_eq!(Date::new(1969, 12, 28).unwrap().weekday(), Weekday::Sunday);
    }

    #[test]
    fn weekend_flag() {
        assert!(Weekday::Saturday.is_weekend());
        assert!(Weekday::Sunday.is_weekend());
        assert!(!Weekday::Wednesday.is_weekend());
    }

    #[test]
    fn iso_weeks_match_reference_values() {
        // Reference values from the ISO-8601 week calendar.
        assert_eq!(Date::new(2016, 1, 1).unwrap().iso_week(), (2015, 53), "Fri 2016-01-01");
        assert_eq!(Date::new(2016, 1, 4).unwrap().iso_week(), (2016, 1), "Mon starts W01");
        assert_eq!(Date::new(2015, 12, 31).unwrap().iso_week(), (2015, 53));
        assert_eq!(Date::new(2014, 12, 29).unwrap().iso_week(), (2015, 1), "Mon belongs to 2015");
        assert_eq!(Date::new(2013, 6, 15).unwrap().iso_week(), (2013, 24));
        assert_eq!(Date::new(2020, 12, 31).unwrap().iso_week(), (2020, 53), "2020 has 53 weeks");
        assert_eq!(Date::new(2021, 1, 1).unwrap().iso_week(), (2020, 53));
    }

    #[test]
    fn ordinal_day() {
        assert_eq!(Date::new(2020, 1, 1).unwrap().ordinal(), 1);
        assert_eq!(Date::new(2020, 12, 31).unwrap().ordinal(), 366);
        assert_eq!(Date::new(2019, 12, 31).unwrap().ordinal(), 365);
        assert_eq!(Date::new(2020, 3, 1).unwrap().ordinal(), 61);
        assert_eq!(Date::new(2019, 3, 1).unwrap().ordinal(), 60);
    }

    #[test]
    fn add_days_and_difference() {
        let d = Date::new(2015, 2, 27).unwrap();
        assert_eq!(d.add_days(2), Date::new(2015, 3, 1).unwrap());
        assert_eq!(d.add_days(-58), Date::new(2014, 12, 31).unwrap());
        assert_eq!(Date::new(2015, 3, 1).unwrap().days_since(d), 2);
    }

    #[test]
    fn add_days_saturates() {
        assert_eq!(Date::MAX.add_days(10), Date::MAX);
        assert_eq!(Date::MIN.add_days(-10), Date::MIN);
        assert_eq!(Date::MAX.add_days(i64::MAX), Date::MAX);
        assert_eq!(Date::MIN.add_days(i64::MIN), Date::MIN);
    }

    #[test]
    fn month_arithmetic_clamps() {
        let d = Date::new(2020, 1, 31).unwrap();
        assert_eq!(d.add_months(1), Date::new(2020, 2, 29).unwrap());
        assert_eq!(d.add_months(3), Date::new(2020, 4, 30).unwrap());
        assert_eq!(d.add_months(-2), Date::new(2019, 11, 30).unwrap());
        assert_eq!(d.add_months(12), Date::new(2021, 1, 31).unwrap());
    }

    #[test]
    fn month_arithmetic_crosses_years() {
        let d = Date::new(2020, 11, 15).unwrap();
        assert_eq!(d.add_months(2), Date::new(2021, 1, 15).unwrap());
        assert_eq!(d.add_months(-11), Date::new(2019, 12, 15).unwrap());
        assert_eq!(d.add_months(-23), Date::new(2018, 12, 15).unwrap());
    }

    #[test]
    fn months_between_floor_semantics() {
        let a = Date::new(2020, 1, 31).unwrap();
        // 2020-02-29 is not a "full month" after 2020-01-31 under add_months
        // (clamped), it *is* reached at k=1.
        assert_eq!(Date::new(2020, 2, 29).unwrap().months_between(a), 1);
        assert_eq!(Date::new(2020, 2, 28).unwrap().months_between(a), 0);
        assert_eq!(Date::new(2020, 3, 1).unwrap().months_between(a), 1);
        let b = Date::new(2020, 6, 15).unwrap();
        assert_eq!(Date::new(2020, 6, 14).unwrap().months_between(b), -1);
        assert_eq!(Date::new(2020, 5, 15).unwrap().months_between(b), -1);
        assert_eq!(Date::new(2020, 5, 16).unwrap().months_between(b), -1);
        assert_eq!(Date::new(2020, 5, 14).unwrap().months_between(b), -2);
        assert_eq!(Date::new(2020, 6, 16).unwrap().months_between(b), 0);
        assert_eq!(Date::new(2020, 7, 15).unwrap().months_between(b), 1);
        assert_eq!(b.months_between(b), 0);
    }

    #[test]
    fn first_and_last_of_month() {
        let d = Date::new(2020, 2, 15).unwrap();
        assert_eq!(d.first_of_month(), Date::new(2020, 2, 1).unwrap());
        assert_eq!(d.last_of_month(), Date::new(2020, 2, 29).unwrap());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Date::new(2016, 5, 4).unwrap().to_string(), "2016-05-04");
        assert_eq!(Date::new(-44, 3, 15).unwrap().to_string(), "-0044-03-15");
    }

    #[test]
    fn operator_sugar() {
        let a = Date::new(2020, 1, 1).unwrap();
        let b = Date::new(2020, 1, 8).unwrap();
        assert_eq!(b - a, Duration::days(7));
        assert_eq!(a + Duration::days(7), b);
    }
}
