//! Civil datetimes (date + second of day).

use crate::{Date, Duration, SecondNumber};
use std::fmt;

const SECS_PER_DAY: i64 = 86_400;

/// A civil datetime: a [`Date`] plus a second-of-day in `0..86_400`.
///
/// The workbench treats times as local civil time; the paper's sources all
/// report Norwegian civil timestamps and no cross-timezone reasoning is
/// needed, so there is deliberately no timezone machinery here.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    date: Date,
    /// Seconds since midnight, `0..86_400`.
    secs: u32,
}

impl DateTime {
    /// Construct from a date and clock time. Returns `None` for out-of-range
    /// clock fields.
    pub fn new(date: Date, hour: u32, minute: u32, second: u32) -> Option<DateTime> {
        if hour >= 24 || minute >= 60 || second >= 60 {
            return None;
        }
        Some(DateTime { date, secs: hour * 3_600 + minute * 60 + second })
    }

    /// Construct from seconds since the epoch 1970-01-01T00:00:00.
    pub fn from_second_number(secs: SecondNumber) -> Option<DateTime> {
        let days = secs.div_euclid(SECS_PER_DAY);
        let sod = secs.rem_euclid(SECS_PER_DAY) as u32;
        Some(DateTime { date: Date::from_day_number(days)?, secs: sod })
    }

    /// Seconds since the epoch 1970-01-01T00:00:00.
    pub fn second_number(self) -> SecondNumber {
        self.date.day_number() * SECS_PER_DAY + i64::from(self.secs)
    }

    /// The calendar date.
    pub fn date(self) -> Date {
        self.date
    }

    /// Hour of day, 0–23.
    pub fn hour(self) -> u32 {
        self.secs / 3_600
    }

    /// Minute of hour, 0–59.
    pub fn minute(self) -> u32 {
        (self.secs % 3_600) / 60
    }

    /// Second of minute, 0–59.
    pub fn second(self) -> u32 {
        self.secs % 60
    }

    /// Add a (possibly negative) duration, saturating at the calendar bounds.
    /// Deliberately an inherent method, not `std::ops::Add`: operators
    /// should not silently saturate.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, d: Duration) -> DateTime {
        let target = self.second_number().saturating_add(d.as_seconds());
        match DateTime::from_second_number(target) {
            Some(t) => t,
            None if d.is_negative() => DateTime { date: Date::MIN, secs: 0 },
            None => DateTime { date: Date::MAX, secs: SECS_PER_DAY as u32 - 1 },
        }
    }

    /// Signed duration from `other` to `self`.
    pub fn since(self, other: DateTime) -> Duration {
        Duration::seconds(self.second_number() - other.second_number())
    }

    /// A monotone `u64` encoding: `a < b ⇔ a.sort_key() < b.sort_key()`.
    ///
    /// Packs `(year, month, day, second-of-day)` into disjoint bit fields
    /// (no day-number arithmetic), so hot loops can track a running
    /// maximum with a single branchless integer `max` instead of the
    /// field-wise `Ord` chain — the analytics span pass does this per
    /// entry. Always nonzero (the month field is ≥ 1), so `0` serves as
    /// a natural "no timestamp yet" sentinel. Invert with
    /// [`Self::from_sort_key`].
    pub fn sort_key(self) -> u64 {
        let year = (i64::from(self.date.year()) + 10_000) as u64; // 15 bits
        (year << 26)
            | (u64::from(self.date.month()) << 22) // 4 bits
            | (u64::from(self.date.day()) << 17) // 5 bits
            | u64::from(self.secs) // 17 bits
    }

    /// Decode a [`Self::sort_key`] back into the datetime. `None` for
    /// values no `sort_key` call produces (including the `0` sentinel).
    pub fn from_sort_key(key: u64) -> Option<DateTime> {
        let date = Date::new(
            ((key >> 26) as i64 - 10_000) as i32,
            (key >> 22) as u32 & 0xf,
            (key >> 17) as u32 & 0x1f,
        )?;
        let secs = key as u32 & 0x1_ffff;
        if key >> 41 != 0 || i64::from(secs) >= SECS_PER_DAY {
            return None;
        }
        Some(DateTime { date, secs })
    }

    /// Parse ISO-8601: `YYYY-MM-DD`, `YYYY-MM-DDTHH:MM` or
    /// `YYYY-MM-DDTHH:MM:SS` (also accepts a space separator, which the
    /// registry CSV extracts use).
    pub fn parse_iso(s: &str) -> Result<DateTime, crate::ParseError> {
        crate::parse::parse_datetime(s)
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}T{:02}:{:02}:{:02}",
            self.date,
            self.hour(),
            self.minute(),
            self.second()
        )
    }
}

impl fmt::Debug for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DateTime({self})")
    }
}

impl std::ops::Add<Duration> for DateTime {
    type Output = DateTime;
    fn add(self, rhs: Duration) -> DateTime {
        self.add(rhs)
    }
}

impl std::ops::Sub<DateTime> for DateTime {
    type Output = Duration;
    fn sub(self, rhs: DateTime) -> Duration {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, dd: u32) -> Date {
        Date::new(y, m, dd).unwrap()
    }

    #[test]
    fn epoch_round_trip() {
        let t = DateTime::new(d(1970, 1, 1), 0, 0, 0).unwrap();
        assert_eq!(t.second_number(), 0);
        assert_eq!(DateTime::from_second_number(0), Some(t));
    }

    #[test]
    fn known_second_number() {
        // 2016-05-16T12:00:00 UTC == 1463400000
        let t = DateTime::new(d(2016, 5, 16), 12, 0, 0).unwrap();
        assert_eq!(t.second_number(), 1_463_400_000);
    }

    #[test]
    fn sort_key_orders_like_ord_and_round_trips() {
        let times = [
            DateTime::new(d(-9999, 1, 1), 0, 0, 0).unwrap(),
            DateTime::new(d(1969, 12, 31), 23, 59, 59).unwrap(),
            DateTime::new(d(1970, 1, 1), 0, 0, 0).unwrap(),
            DateTime::new(d(2016, 5, 16), 11, 59, 59).unwrap(),
            DateTime::new(d(2016, 5, 16), 12, 0, 0).unwrap(),
            DateTime::new(d(2016, 5, 17), 0, 0, 0).unwrap(),
            DateTime::new(d(2016, 6, 1), 0, 0, 0).unwrap(),
            DateTime::new(d(2017, 1, 1), 0, 0, 0).unwrap(),
            DateTime::new(d(9999, 12, 31), 23, 59, 59).unwrap(),
        ];
        for a in &times {
            assert!(a.sort_key() > 0, "0 stays free as a sentinel");
            assert_eq!(DateTime::from_sort_key(a.sort_key()), Some(*a));
            for b in &times {
                assert_eq!(a.cmp(b), a.sort_key().cmp(&b.sort_key()), "{a} vs {b}");
            }
        }
        assert_eq!(DateTime::from_sort_key(0), None);
        assert_eq!(DateTime::from_sort_key(u64::MAX), None);
    }

    #[test]
    fn clock_field_validation() {
        assert!(DateTime::new(d(2020, 1, 1), 24, 0, 0).is_none());
        assert!(DateTime::new(d(2020, 1, 1), 0, 60, 0).is_none());
        assert!(DateTime::new(d(2020, 1, 1), 0, 0, 60).is_none());
        assert!(DateTime::new(d(2020, 1, 1), 23, 59, 59).is_some());
    }

    #[test]
    fn accessors() {
        let t = DateTime::new(d(2020, 6, 1), 14, 35, 9).unwrap();
        assert_eq!(t.hour(), 14);
        assert_eq!(t.minute(), 35);
        assert_eq!(t.second(), 9);
        assert_eq!(t.date(), d(2020, 6, 1));
    }

    #[test]
    fn negative_epoch_seconds() {
        let t = DateTime::from_second_number(-1).unwrap();
        assert_eq!(t.date(), d(1969, 12, 31));
        assert_eq!((t.hour(), t.minute(), t.second()), (23, 59, 59));
    }

    #[test]
    fn arithmetic_crosses_midnight() {
        let t = DateTime::new(d(2020, 1, 1), 23, 30, 0).unwrap();
        let u = t + Duration::hours(1);
        assert_eq!(u.date(), d(2020, 1, 2));
        assert_eq!(u.hour(), 0);
        assert_eq!(u.minute(), 30);
        assert_eq!(u - t, Duration::hours(1));
    }

    #[test]
    fn display() {
        let t = DateTime::new(d(2016, 5, 4), 9, 5, 0).unwrap();
        assert_eq!(t.to_string(), "2016-05-04T09:05:00");
    }
}
