//! Signed time spans.

use std::fmt;

/// A signed span of time with second resolution.
///
/// Clinical data rarely needs sub-second precision; the workbench uses
/// durations for interval lengths (hospital stays), query gap constraints
/// ("readmission within 30 days") and axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    seconds: i64,
}

/// Seconds per day.
const SECS_PER_DAY: i64 = 86_400;

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration { seconds: 0 };

    /// Construct from whole seconds.
    pub const fn seconds(seconds: i64) -> Duration {
        Duration { seconds }
    }

    /// Construct from whole minutes (saturating).
    pub const fn minutes(minutes: i64) -> Duration {
        Duration { seconds: minutes.saturating_mul(60) }
    }

    /// Construct from whole hours (saturating).
    pub const fn hours(hours: i64) -> Duration {
        Duration { seconds: hours.saturating_mul(3_600) }
    }

    /// Construct from whole days (saturating).
    pub const fn days(days: i64) -> Duration {
        Duration { seconds: days.saturating_mul(SECS_PER_DAY) }
    }

    /// Construct from whole ISO weeks (saturating).
    pub const fn weeks(weeks: i64) -> Duration {
        Duration { seconds: weeks.saturating_mul(7 * SECS_PER_DAY) }
    }

    /// Total seconds.
    pub const fn as_seconds(self) -> i64 {
        self.seconds
    }

    /// Whole days, truncated toward zero.
    pub const fn whole_days(self) -> i64 {
        self.seconds / SECS_PER_DAY
    }

    /// Whole hours, truncated toward zero.
    pub const fn whole_hours(self) -> i64 {
        self.seconds / 3_600
    }

    /// The duration in (possibly fractional) days.
    pub fn as_days_f64(self) -> f64 {
        self.seconds as f64 / SECS_PER_DAY as f64
    }

    /// True if exactly zero.
    pub const fn is_zero(self) -> bool {
        self.seconds == 0
    }

    /// True if strictly negative.
    pub const fn is_negative(self) -> bool {
        self.seconds < 0
    }

    /// Absolute value (saturating).
    pub const fn abs(self) -> Duration {
        Duration { seconds: self.seconds.saturating_abs() }
    }

    /// Checked addition.
    pub fn checked_add(self, other: Duration) -> Option<Duration> {
        self.seconds.checked_add(other.seconds).map(Duration::seconds)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration { seconds: self.seconds.saturating_add(rhs.seconds) }
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration { seconds: self.seconds.saturating_sub(rhs.seconds) }
    }
}

impl std::ops::Neg for Duration {
    type Output = Duration;
    fn neg(self) -> Duration {
        Duration { seconds: self.seconds.saturating_neg() }
    }
}

impl std::ops::Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration { seconds: self.seconds.saturating_mul(rhs) }
    }
}

impl fmt::Display for Duration {
    /// Human-oriented rendering used by details-on-demand panels:
    /// `"3d 4h"`, `"-45m"`, `"12s"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = self.seconds;
        if s < 0 {
            write!(f, "-")?;
            s = -s;
        }
        let days = s / SECS_PER_DAY;
        let hours = (s % SECS_PER_DAY) / 3_600;
        let minutes = (s % 3_600) / 60;
        let secs = s % 60;
        let mut wrote = false;
        if days > 0 {
            write!(f, "{days}d")?;
            wrote = true;
        }
        if hours > 0 {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "{hours}h")?;
            wrote = true;
        }
        if minutes > 0 {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "{minutes}m")?;
            wrote = true;
        }
        if secs > 0 || !wrote {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "{secs}s")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::days(1), Duration::hours(24));
        assert_eq!(Duration::hours(1), Duration::minutes(60));
        assert_eq!(Duration::minutes(1), Duration::seconds(60));
        assert_eq!(Duration::weeks(2), Duration::days(14));
    }

    #[test]
    fn accessors() {
        let d = Duration::days(2) + Duration::hours(5);
        assert_eq!(d.whole_days(), 2);
        assert_eq!(d.whole_hours(), 53);
        assert_eq!(d.as_seconds(), 2 * 86_400 + 5 * 3_600);
        assert!((Duration::hours(12).as_days_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_sign() {
        let d = Duration::days(1) - Duration::days(3);
        assert!(d.is_negative());
        assert_eq!(d.abs(), Duration::days(2));
        assert_eq!(-d, Duration::days(2));
        assert_eq!(Duration::days(3) * 2, Duration::days(6));
        assert!(Duration::ZERO.is_zero());
    }

    #[test]
    fn saturating_bounds() {
        let big = Duration::seconds(i64::MAX);
        assert_eq!(big + Duration::seconds(1), big);
        assert!(big.checked_add(Duration::seconds(1)).is_none());
        assert!(Duration::seconds(1).checked_add(Duration::seconds(1)).is_some());
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Duration::ZERO.to_string(), "0s");
        assert_eq!(Duration::seconds(12).to_string(), "12s");
        assert_eq!(Duration::minutes(-45).to_string(), "-45m");
        assert_eq!((Duration::days(3) + Duration::hours(4)).to_string(), "3d 4h");
        assert_eq!(
            (Duration::days(1) + Duration::hours(2) + Duration::minutes(3) + Duration::seconds(4))
                .to_string(),
            "1d 2h 3m 4s"
        );
    }
}
