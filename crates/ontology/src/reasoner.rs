//! An EL-flavoured OWL reasoner.
//!
//! The two PAsTAs formalizations use exactly the constructs of the EL
//! family: atomic classes, conjunction on the left-hand side, and
//! existential restrictions — enough to express code-hierarchy subsumption
//! (`ICPC2:T90 ⊑ ICPC2:T`), cross-source bridging (`∃hasCode.Diabetes ⊑
//! DiabetesContact`) and presentation roll-ups (`ATC:C07⊑ BetaBlocker ⊑
//! CardiovascularAgent`). For that fragment, classification by
//! *completion-rule saturation* is sound, complete and polynomial
//! (Baader, Brandt & Lutz, IJCAI 2005):
//!
//! ```text
//! CR1:  X ⊑ A,  A ⊑ B            ⟹  X ⊑ B
//! CR2:  X ⊑ A1, X ⊑ A2, A1⊓A2⊑B  ⟹  X ⊑ B
//! CR3:  X ⊑ A,  A ⊑ ∃r.B         ⟹  X →r B
//! CR4:  X →r Y, Y ⊑ A, ∃r.A ⊑ B  ⟹  X ⊑ B
//! ```
//!
//! Individuals are handled as nominal classes (the standard reduction), so
//! **realization** (computing every class each ABox individual belongs to)
//! falls out of the same saturation.

use std::collections::{HashMap, HashSet, VecDeque};

/// A dense class handle (atomic class or individual-as-nominal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// A dense role (object property) handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoleId(pub u32);

/// A normalized EL axiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axiom {
    /// `A ⊑ B`.
    Sub(ClassId, ClassId),
    /// `A1 ⊓ A2 ⊑ B`.
    SubConj(ClassId, ClassId, ClassId),
    /// `A ⊑ ∃r.B`.
    SubExists(ClassId, RoleId, ClassId),
    /// `∃r.A ⊑ B`.
    ExistsSub(RoleId, ClassId, ClassId),
    /// `r ⊑ s` (role hierarchy).
    SubRole(RoleId, RoleId),
}

/// The EL reasoner: axioms in, saturated subsumptions out.
#[derive(Debug, Default, Clone)]
pub struct Reasoner {
    axioms: Vec<Axiom>,
    class_count: u32,
    role_count: u32,
    /// `subs[x]` = all A with x ⊑ A (after saturation; includes x itself).
    subs: Vec<HashSet<ClassId>>,
    /// Role edges X →r Y discovered by CR3.
    edges: HashSet<(ClassId, RoleId, ClassId)>,
    saturated: bool,
}

impl Reasoner {
    /// An empty reasoner.
    pub fn new() -> Reasoner {
        Reasoner::default()
    }

    /// Allocate a fresh class handle.
    pub fn new_class(&mut self) -> ClassId {
        let id = ClassId(self.class_count);
        self.class_count += 1;
        self.saturated = false;
        id
    }

    /// Allocate a fresh role handle.
    pub fn new_role(&mut self) -> RoleId {
        let id = RoleId(self.role_count);
        self.role_count += 1;
        self.saturated = false;
        id
    }

    /// Number of classes allocated.
    pub fn class_count(&self) -> u32 {
        self.class_count
    }

    /// Add a normalized axiom.
    pub fn add(&mut self, axiom: Axiom) {
        self.axioms.push(axiom);
        self.saturated = false;
    }

    /// Convenience: `a ⊑ b`.
    pub fn sub(&mut self, a: ClassId, b: ClassId) {
        self.add(Axiom::Sub(a, b));
    }

    /// Run completion-rule saturation to fixpoint.
    ///
    /// Queue-driven semi-naive evaluation: each derived fact `X ⊑ A` or
    /// `X →r Y` is processed once against the (indexed) axioms. Total work
    /// is polynomial in |axioms| × |classes|.
    pub fn saturate(&mut self) {
        let n = self.class_count as usize;
        self.subs = (0..n).map(|i| HashSet::from([ClassId(i as u32)])).collect();
        self.edges.clear();

        // Axiom indexes.
        let mut sub_by_lhs: HashMap<ClassId, Vec<ClassId>> = HashMap::new();
        let mut conj_by_lhs: HashMap<ClassId, Vec<(ClassId, ClassId)>> = HashMap::new();
        let mut exists_by_lhs: HashMap<ClassId, Vec<(RoleId, ClassId)>> = HashMap::new();
        let mut gci_by_filler: HashMap<ClassId, Vec<(RoleId, ClassId)>> = HashMap::new();
        let mut super_roles: HashMap<RoleId, Vec<RoleId>> = HashMap::new();
        for &ax in &self.axioms {
            match ax {
                Axiom::Sub(a, b) => sub_by_lhs.entry(a).or_default().push(b),
                Axiom::SubConj(a1, a2, b) => {
                    conj_by_lhs.entry(a1).or_default().push((a2, b));
                    conj_by_lhs.entry(a2).or_default().push((a1, b));
                }
                Axiom::SubExists(a, r, b) => exists_by_lhs.entry(a).or_default().push((r, b)),
                Axiom::ExistsSub(r, a, b) => gci_by_filler.entry(a).or_default().push((r, b)),
                Axiom::SubRole(r, s) => super_roles.entry(r).or_default().push(s),
            }
        }
        // Close the role hierarchy (small) transitively.
        let role_closure: HashMap<RoleId, Vec<RoleId>> = (0..self.role_count)
            .map(|r| {
                let r = RoleId(r);
                let mut seen = HashSet::from([r]);
                let mut queue = vec![r];
                while let Some(x) = queue.pop() {
                    for &s in super_roles.get(&x).into_iter().flatten() {
                        if seen.insert(s) {
                            queue.push(s);
                        }
                    }
                }
                (r, seen.into_iter().collect())
            })
            .collect();

        // Incoming role edges indexed by target, for CR4 on new subs.
        let mut edges_by_target: HashMap<ClassId, Vec<(ClassId, RoleId)>> = HashMap::new();
        // Outgoing, for CR4 on new edges handled directly below.

        #[derive(Clone, Copy)]
        enum Fact {
            Sub(ClassId, ClassId),
            Edge(ClassId, RoleId, ClassId),
        }

        let mut queue: VecDeque<Fact> = (0..n)
            .map(|i| Fact::Sub(ClassId(i as u32), ClassId(i as u32)))
            .collect();

        while let Some(fact) = queue.pop_front() {
            match fact {
                Fact::Sub(x, a) => {
                    // CR1
                    for &b in sub_by_lhs.get(&a).into_iter().flatten() {
                        if self.subs[x.0 as usize].insert(b) {
                            queue.push_back(Fact::Sub(x, b));
                        }
                    }
                    // CR2
                    for &(a2, b) in conj_by_lhs.get(&a).into_iter().flatten() {
                        if self.subs[x.0 as usize].contains(&a2)
                            && self.subs[x.0 as usize].insert(b)
                        {
                            queue.push_back(Fact::Sub(x, b));
                        }
                    }
                    // CR3
                    for &(r, b) in exists_by_lhs.get(&a).into_iter().flatten() {
                        for &rr in role_closure.get(&r).map(|v| v.as_slice()).unwrap_or(&[]) {
                            if self.edges.insert((x, rr, b)) {
                                queue.push_back(Fact::Edge(x, rr, b));
                            }
                        }
                    }
                    // CR4 (new sub makes existing incoming edges fire)
                    for &(src, r) in edges_by_target.get(&x).into_iter().flatten() {
                        for &(gr, b) in gci_by_filler.get(&a).into_iter().flatten() {
                            if gr == r && self.subs[src.0 as usize].insert(b) {
                                queue.push_back(Fact::Sub(src, b));
                            }
                        }
                    }
                }
                Fact::Edge(x, r, y) => {
                    edges_by_target.entry(y).or_default().push((x, r));
                    // CR4 (new edge against everything y is already ⊑)
                    let supers: Vec<ClassId> = self.subs[y.0 as usize].iter().copied().collect();
                    for a in supers {
                        for &(gr, b) in gci_by_filler.get(&a).into_iter().flatten() {
                            if gr == r && self.subs[x.0 as usize].insert(b) {
                                queue.push_back(Fact::Sub(x, b));
                            }
                        }
                    }
                }
            }
        }
        self.saturated = true;
    }

    /// True if `a ⊑ b` is entailed. Panics if [`Reasoner::saturate`] has
    /// not been run since the last mutation.
    pub fn is_subsumed(&self, a: ClassId, b: ClassId) -> bool {
        assert!(self.saturated, "call saturate() before querying");
        self.subs[a.0 as usize].contains(&b)
    }

    /// All entailed superclasses of `a` (including `a`).
    pub fn superclasses(&self, a: ClassId) -> &HashSet<ClassId> {
        assert!(self.saturated, "call saturate() before querying");
        &self.subs[a.0 as usize]
    }

    /// All classes `x` with `x ⊑ b` (subsumees, including `b` itself).
    /// Linear scan — fine for classification reports; the hot path is
    /// `is_subsumed`.
    pub fn subsumees(&self, b: ClassId) -> Vec<ClassId> {
        assert!(self.saturated, "call saturate() before querying");
        (0..self.class_count)
            .map(ClassId)
            .filter(|&x| self.subs[x.0 as usize].contains(&b))
            .collect()
    }

    /// Entailed role edges `x →r y` (from CR3).
    pub fn role_edges(&self) -> &HashSet<(ClassId, RoleId, ClassId)> {
        assert!(self.saturated, "call saturate() before querying");
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(r: &mut Reasoner, n: usize) -> Vec<ClassId> {
        (0..n).map(|_| r.new_class()).collect()
    }

    #[test]
    fn cr1_transitive_chain() {
        let mut r = Reasoner::new();
        let c = classes(&mut r, 4);
        r.sub(c[0], c[1]);
        r.sub(c[1], c[2]);
        r.sub(c[2], c[3]);
        r.saturate();
        assert!(r.is_subsumed(c[0], c[3]));
        assert!(r.is_subsumed(c[1], c[3]));
        assert!(!r.is_subsumed(c[3], c[0]));
        assert!(r.is_subsumed(c[0], c[0])); // reflexive
    }

    #[test]
    fn cr2_conjunction() {
        let mut r = Reasoner::new();
        let c = classes(&mut r, 4); // A1, A2, B, X... use c3 as X
        r.add(Axiom::SubConj(c[0], c[1], c[2]));
        r.sub(c[3], c[0]);
        r.saturate();
        assert!(!r.is_subsumed(c[3], c[2]), "only one conjunct present");
        r.sub(c[3], c[1]);
        r.saturate();
        assert!(r.is_subsumed(c[3], c[2]), "both conjuncts present");
    }

    #[test]
    fn cr3_cr4_existential_round_trip() {
        // Contact ⊑ ∃hasCode.T90, ∃hasCode.Diabetes ⊑ DiabetesContact,
        // T90 ⊑ Diabetes  ⟹  Contact ⊑ DiabetesContact.
        let mut r = Reasoner::new();
        let contact = r.new_class();
        let t90 = r.new_class();
        let diabetes = r.new_class();
        let diabetes_contact = r.new_class();
        let has_code = r.new_role();
        r.add(Axiom::SubExists(contact, has_code, t90));
        r.add(Axiom::ExistsSub(has_code, diabetes, diabetes_contact));
        r.sub(t90, diabetes);
        r.saturate();
        assert!(r.is_subsumed(contact, diabetes_contact));
        assert!(!r.is_subsumed(t90, diabetes_contact));
    }

    #[test]
    fn role_hierarchy_propagates_existentials() {
        // X ⊑ ∃r.A, r ⊑ s, ∃s.A ⊑ B  ⟹  X ⊑ B.
        let mut re = Reasoner::new();
        let x = re.new_class();
        let a = re.new_class();
        let b = re.new_class();
        let r = re.new_role();
        let s = re.new_role();
        re.add(Axiom::SubRole(r, s));
        re.add(Axiom::SubExists(x, r, a));
        re.add(Axiom::ExistsSub(s, a, b));
        re.saturate();
        assert!(re.is_subsumed(x, b));
    }

    #[test]
    fn subsumees_inverse_of_superclasses() {
        let mut r = Reasoner::new();
        let c = classes(&mut r, 5);
        r.sub(c[0], c[4]);
        r.sub(c[1], c[4]);
        r.sub(c[2], c[1]);
        r.saturate();
        let subs = r.subsumees(c[4]);
        assert!(subs.contains(&c[0]) && subs.contains(&c[1]) && subs.contains(&c[2]));
        assert!(subs.contains(&c[4]));
        assert!(!subs.contains(&c[3]));
    }

    #[test]
    fn order_of_axioms_does_not_matter() {
        // CR4 must fire whether the edge or the sub arrives first.
        for flip in [false, true] {
            let mut r = Reasoner::new();
            let x = r.new_class();
            let y = r.new_class();
            let a = r.new_class();
            let b = r.new_class();
            let role = r.new_role();
            let axioms = [
                Axiom::SubExists(x, role, y),
                Axiom::Sub(y, a),
                Axiom::ExistsSub(role, a, b),
            ];
            if flip {
                for ax in axioms.iter().rev() {
                    r.add(*ax);
                }
            } else {
                for ax in axioms {
                    r.add(ax);
                }
            }
            r.saturate();
            assert!(r.is_subsumed(x, b), "flip={flip}");
        }
    }

    #[test]
    fn saturation_handles_deep_chains() {
        // Output size for a chain is Θ(n²) (every class subsumes its whole
        // suffix), so keep n modest here; the E10 bench measures scale.
        let mut r = Reasoner::new();
        let cs = classes(&mut r, 1_000);
        for w in cs.windows(2) {
            r.sub(w[0], w[1]);
        }
        r.saturate();
        assert!(r.is_subsumed(cs[0], cs[999]));
        assert_eq!(r.superclasses(cs[0]).len(), 1_000);
    }

    #[test]
    fn saturation_handles_wide_trees() {
        // 4000 leaves under 40 groups under one root: realistic code-
        // hierarchy shape; output is linear here.
        let mut r = Reasoner::new();
        let root = r.new_class();
        let groups = classes(&mut r, 40);
        for &g in &groups {
            r.sub(g, root);
        }
        let mut leaves = Vec::new();
        for i in 0..4_000 {
            let leaf = r.new_class();
            r.sub(leaf, groups[i % groups.len()]);
            leaves.push(leaf);
        }
        r.saturate();
        assert!(r.is_subsumed(leaves[0], root));
        assert_eq!(r.superclasses(leaves[7]).len(), 3);
    }

    #[test]
    #[should_panic(expected = "saturate")]
    fn querying_unsaturated_panics() {
        let mut r = Reasoner::new();
        let a = r.new_class();
        let b = r.new_class();
        r.sub(a, b);
        let _ = r.is_subsumed(a, b);
    }
}
