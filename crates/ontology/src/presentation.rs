//! The **visual presentation** ontology — the second of the paper's two
//! OWL formalizations.
//!
//! Where the integration ontology answers "what is this entry, clinically?",
//! this one answers "how is it drawn?". It fixes the mapping from entry
//! classes to *glyph families* (Fig. 1: "small rectangles and arrows
//! indicating diagnoses and blood pressure measurements"), from interval
//! classes to *background bands*, and from ATC groups to *color classes*
//! ("The colors in the visualization show different classes of
//! medication"). The shapes are drawn from Ware's preattentive-feature
//! catalogue (§II.B.2) so that searching for one family of marks stays in
//! the preattentive regime; `pastas-perception` validates that property.
//!
//! Abstraction ("beta blocker" vs "atenolol" — the LifeLines example the
//! paper cites) is served by [`PresentationOntology::abstract_label`].

use crate::integration::code_class_name;
use pastas_codes::{atc::AtcCode, catalog, Code, CodeSystem};
use pastas_model::{EntryView, EpisodeKind, PayloadRef};

/// Glyph families for point events — simple, preattentively distinct
/// shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlyphShape {
    /// Diagnoses — the "small rectangles" of Fig. 1.
    Square,
    /// Measurements — the "arrows" of Fig. 1.
    Arrow,
    /// Medication dispensings.
    Triangle,
    /// Free-text notes.
    Cross,
    /// Anything else.
    Circle,
}

impl GlyphShape {
    /// Short name used in SVG class attributes.
    pub fn name(self) -> &'static str {
        match self {
            GlyphShape::Square => "square",
            GlyphShape::Arrow => "arrow",
            GlyphShape::Triangle => "triangle",
            GlyphShape::Cross => "cross",
            GlyphShape::Circle => "circle",
        }
    }
}

/// Background band families for interval entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandKind {
    /// Hospital episodes (inpatient, outpatient, day treatment).
    Hospital,
    /// Municipal care (home care, nursing home).
    Municipal,
    /// Rehabilitation.
    Rehabilitation,
    /// Derived medication-exposure periods.
    Medication,
}

impl BandKind {
    /// Short name used in SVG class attributes.
    pub fn name(self) -> &'static str {
        match self {
            BandKind::Hospital => "hospital",
            BandKind::Municipal => "municipal",
            BandKind::Rehabilitation => "rehabilitation",
            BandKind::Medication => "medication",
        }
    }
}

/// A medication color class: one of the 14 ATC level-1 anatomical groups,
/// as a dense index into the categorical palette.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColorClass(pub u8);

impl ColorClass {
    /// The ATC main-group letter of this color class.
    pub fn group_letter(self) -> char {
        pastas_codes::atc::LEVEL1_GROUPS[self.0 as usize].0
    }

    /// The ATC main-group name (legend label).
    pub fn group_name(self) -> &'static str {
        pastas_codes::atc::LEVEL1_GROUPS[self.0 as usize].1
    }
}

/// The presentation ontology.
///
/// All mappings below are *entailments of the presentation TBox*: a
/// dispensing of `C07AB02` is colored as a cardiovascular agent because
/// `ATC:C07AB02 ⊑ ATC:C ⊑ viz:Color/C`. The hierarchy walking is done by
/// the codes crate; this type packages the ontology-level decisions.
#[derive(Debug, Default)]
pub struct PresentationOntology {}

impl PresentationOntology {
    /// Build the presentation ontology.
    pub fn new() -> PresentationOntology {
        PresentationOntology {}
    }

    /// The glyph family for a point entry's payload. Accepts `&Payload`
    /// or a borrowed [`PayloadRef`] from the columnar store.
    pub fn glyph_for<'a>(&self, payload: impl Into<PayloadRef<'a>>) -> GlyphShape {
        match payload.into() {
            PayloadRef::Diagnosis(_) => GlyphShape::Square,
            PayloadRef::Measurement { .. } => GlyphShape::Arrow,
            PayloadRef::Medication(_) => GlyphShape::Triangle,
            PayloadRef::Note(_) => GlyphShape::Cross,
            PayloadRef::Episode(_) => GlyphShape::Circle,
        }
    }

    /// The band family for an interval entry, if it is drawn as a band.
    /// Accepts `&Payload` or a borrowed [`PayloadRef`].
    pub fn band_for<'a>(&self, payload: impl Into<PayloadRef<'a>>) -> Option<BandKind> {
        match payload.into() {
            PayloadRef::Episode(k) => Some(match k {
                EpisodeKind::Inpatient | EpisodeKind::Outpatient | EpisodeKind::DayTreatment => {
                    BandKind::Hospital
                }
                EpisodeKind::HomeCare | EpisodeKind::NursingHome => BandKind::Municipal,
                EpisodeKind::Rehabilitation => BandKind::Rehabilitation,
                EpisodeKind::MedicationExposure => BandKind::Medication,
            }),
            PayloadRef::Medication(_) => Some(BandKind::Medication),
            _ => None,
        }
    }

    /// The color class of a medication code: its ATC level-1 group.
    /// `None` for non-ATC or unparseable codes.
    pub fn color_class(&self, code: &Code) -> Option<ColorClass> {
        if code.system != CodeSystem::Atc {
            return None;
        }
        let atc = AtcCode::parse(&code.value)?;
        let idx = pastas_codes::atc::LEVEL1_GROUPS
            .iter()
            .position(|&(g, _)| g == atc.main_group())?;
        Some(ColorClass(idx as u8))
    }

    /// The color class of an entry (medication payloads only).
    pub fn entry_color_class<E: EntryView>(&self, entry: E) -> Option<ColorClass> {
        match entry.payload_ref() {
            PayloadRef::Medication(c) => self.color_class(c),
            _ => None,
        }
    }

    /// LifeLines-style abstraction: the display label of a code at an
    /// abstraction `level` (ATC level 1–5; for diagnoses, level ≤ 1 gives
    /// the chapter, anything else the code itself). Falls back to the code
    /// string when the catalog has no name.
    pub fn abstract_label(&self, code: &Code, level: u8) -> String {
        match code.system {
            CodeSystem::Atc => {
                let Some(atc) = AtcCode::parse(&code.value) else {
                    return code.value.clone();
                };
                let truncated =
                    atc.at_level(level.clamp(1, 5)).unwrap_or(atc);
                catalog::name_of(CodeSystem::Atc, &truncated.text)
                    .map(str::to_owned)
                    .unwrap_or(truncated.text)
            }
            _ => {
                let value = if level <= 1 {
                    code.parent().map(|p| p.value).unwrap_or_else(|| code.value.clone())
                } else {
                    code.value.clone()
                };
                catalog::name_of(code.system, &value).map(str::to_owned).unwrap_or(value)
            }
        }
    }

    /// The presentation-class name of an entry for serialized scenes,
    /// e.g. `"viz:Glyph/square"` or `"viz:Band/hospital"`.
    pub fn presentation_class<E: EntryView>(&self, entry: E) -> String {
        if entry.is_interval() {
            if let Some(band) = self.band_for(entry.payload_ref()) {
                return format!("viz:Band/{}", band.name());
            }
        }
        format!("viz:Glyph/{}", self.glyph_for(entry.payload_ref()).name())
    }

    /// TBox axioms of the presentation ontology in `(sub, super)` string
    /// form — exported for the integration tests that check the two
    /// formalizations stay structurally disjoint.
    pub fn axioms(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("viz:Glyph/square".into(), "viz:Glyph".into()),
            ("viz:Glyph/arrow".into(), "viz:Glyph".into()),
            ("viz:Glyph/triangle".into(), "viz:Glyph".into()),
            ("viz:Glyph/cross".into(), "viz:Glyph".into()),
            ("viz:Glyph/circle".into(), "viz:Glyph".into()),
            ("viz:Band/hospital".into(), "viz:Band".into()),
            ("viz:Band/municipal".into(), "viz:Band".into()),
            ("viz:Band/rehabilitation".into(), "viz:Band".into()),
            ("viz:Band/medication".into(), "viz:Band".into()),
        ];
        for (g, _) in pastas_codes::atc::LEVEL1_GROUPS {
            out.push((format!("{}:{}", CodeSystem::Atc.tag(), g), format!("viz:Color/{g}")));
            out.push((format!("viz:Color/{g}"), "viz:Color".into()));
        }
        out
    }
}

/// The presentation-ontology name of a code class (shared with the
/// integration ontology; both formalizations refer to codes the same way).
pub fn viz_code_class(code: &Code) -> String {
    code_class_name(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_model::{Entry, Payload, SourceKind};
    use pastas_time::Date;

    fn t() -> pastas_time::DateTime {
        Date::new(2020, 1, 1).unwrap().at_midnight()
    }

    #[test]
    fn glyphs_match_figure_1() {
        let o = PresentationOntology::new();
        assert_eq!(o.glyph_for(&Payload::Diagnosis(Code::icpc("T90"))), GlyphShape::Square);
        assert_eq!(
            o.glyph_for(&Payload::Measurement {
                kind: pastas_model::MeasurementKind::SystolicBp,
                value: 140.0
            }),
            GlyphShape::Arrow
        );
        assert_eq!(o.glyph_for(&Payload::Medication(Code::atc("C07AB02"))), GlyphShape::Triangle);
    }

    #[test]
    fn bands_by_episode_kind() {
        let o = PresentationOntology::new();
        assert_eq!(o.band_for(&Payload::Episode(EpisodeKind::Inpatient)), Some(BandKind::Hospital));
        assert_eq!(o.band_for(&Payload::Episode(EpisodeKind::HomeCare)), Some(BandKind::Municipal));
        assert_eq!(
            o.band_for(&Payload::Episode(EpisodeKind::MedicationExposure)),
            Some(BandKind::Medication)
        );
        assert_eq!(o.band_for(&Payload::Diagnosis(Code::icpc("T90"))), None);
    }

    #[test]
    fn color_classes_follow_atc_main_group() {
        let o = PresentationOntology::new();
        let beta = o.color_class(&Code::atc("C07AB02")).unwrap();
        let statin = o.color_class(&Code::atc("C10AA01")).unwrap();
        let ssri = o.color_class(&Code::atc("N06AB04")).unwrap();
        assert_eq!(beta, statin, "same anatomical group, same color");
        assert_ne!(beta, ssri, "different groups, different colors");
        assert_eq!(beta.group_letter(), 'C');
        assert_eq!(ssri.group_name(), "Nervous system");
        assert_eq!(o.color_class(&Code::icpc("T90")), None);
    }

    #[test]
    fn abstraction_levels() {
        let o = PresentationOntology::new();
        let metoprolol = Code::atc("C07AB02");
        assert_eq!(o.abstract_label(&metoprolol, 5), "Metoprolol");
        assert_eq!(o.abstract_label(&metoprolol, 2), "Beta blocking agents");
        assert_eq!(o.abstract_label(&metoprolol, 1), "Cardiovascular system");
        let t90 = Code::icpc("T90");
        assert_eq!(o.abstract_label(&t90, 2), "Diabetes non-insulin dependent");
        assert_eq!(o.abstract_label(&t90, 1), "Endocrine, metabolic and nutritional");
    }

    #[test]
    fn presentation_classes() {
        let o = PresentationOntology::new();
        let e = Entry::event(t(), Payload::Diagnosis(Code::icpc("T90")), SourceKind::PrimaryCare);
        assert_eq!(o.presentation_class(&e), "viz:Glyph/square");
        let stay = Entry::interval(
            t(),
            t() + pastas_time::Duration::days(2),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        );
        assert_eq!(o.presentation_class(&stay), "viz:Band/hospital");
    }

    #[test]
    fn axioms_cover_every_glyph_band_and_group() {
        let o = PresentationOntology::new();
        let axioms = o.axioms();
        assert!(axioms.len() >= 9 + 28);
        assert!(axioms.iter().all(|(a, b)| !a.is_empty() && !b.is_empty()));
        // The viz namespace never leaks into pastas-int classes.
        assert!(axioms.iter().all(|(a, b)| !a.starts_with("pastas-int:")
            && !b.starts_with("pastas-int:")));
    }
}
