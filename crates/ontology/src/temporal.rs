//! Temporal reasoning: Allen's interval algebra and Simple Temporal
//! Networks.
//!
//! This is the CNTRO-like layer (§II.D): "designed to capture, represent
//! and reason with the temporal semantics of events, intervals and their
//! constraints in EHR. In retrospect, we have implemented much of the same
//! functionality … Currently, we are investigating the use of constraint
//! logic programming to handle interval reasoning." We provide both halves:
//!
//! * **Qualitative** — [`AllenRel`] (the 13 base relations), relation sets
//!   as bitmasks, converse, and composition. The composition table is not
//!   hand-transcribed: it is **derived by enumeration** over all order
//!   types of three intervals (six endpoints take at most six distinct
//!   values, so endpoints in `0..6` cover every qualitative configuration —
//!   the derivation is exact by construction). [`AllenNetwork`] runs
//!   path-consistency propagation over constraint networks.
//! * **Quantitative** — [`Stn`], a Simple Temporal Network: time points
//!   with difference constraints `t_j − t_i ≤ w`, Floyd–Warshall closure,
//!   consistency checking and implied-bound queries. Query gap constraints
//!   ("readmitted **within 30 days**") compile to STN edges.

use pastas_time::DateTime;
use std::sync::OnceLock;

/// One of Allen's 13 base interval relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AllenRel {
    /// `A` ends before `B` starts.
    Before = 0,
    /// `A` ends exactly when `B` starts.
    Meets = 1,
    /// `A` starts first, they overlap, `B` ends last.
    Overlaps = 2,
    /// Same start, `A` ends first.
    Starts = 3,
    /// `A` strictly inside `B`.
    During = 4,
    /// Same end, `A` starts later.
    Finishes = 5,
    /// Identical intervals.
    Equal = 6,
    /// Converse of Finishes.
    FinishedBy = 7,
    /// Converse of During.
    Contains = 8,
    /// Converse of Starts.
    StartedBy = 9,
    /// Converse of Overlaps.
    OverlappedBy = 10,
    /// Converse of Meets.
    MetBy = 11,
    /// Converse of Before.
    After = 12,
}

impl AllenRel {
    /// All 13 base relations.
    pub const ALL: [AllenRel; 13] = [
        AllenRel::Before,
        AllenRel::Meets,
        AllenRel::Overlaps,
        AllenRel::Starts,
        AllenRel::During,
        AllenRel::Finishes,
        AllenRel::Equal,
        AllenRel::FinishedBy,
        AllenRel::Contains,
        AllenRel::StartedBy,
        AllenRel::OverlappedBy,
        AllenRel::MetBy,
        AllenRel::After,
    ];

    /// The converse relation (`A r B ⟺ B r⁻¹ A`).
    pub fn converse(self) -> AllenRel {
        match self {
            AllenRel::Before => AllenRel::After,
            AllenRel::Meets => AllenRel::MetBy,
            AllenRel::Overlaps => AllenRel::OverlappedBy,
            AllenRel::Starts => AllenRel::StartedBy,
            AllenRel::During => AllenRel::Contains,
            AllenRel::Finishes => AllenRel::FinishedBy,
            AllenRel::Equal => AllenRel::Equal,
            AllenRel::FinishedBy => AllenRel::Finishes,
            AllenRel::Contains => AllenRel::During,
            AllenRel::StartedBy => AllenRel::Starts,
            AllenRel::OverlappedBy => AllenRel::Overlaps,
            AllenRel::MetBy => AllenRel::Meets,
            AllenRel::After => AllenRel::Before,
        }
    }

    /// The relation holding between intervals `[a0, a1]` and `[b0, b1]`
    /// (both must satisfy `start < end`).
    pub fn between(a0: i64, a1: i64, b0: i64, b1: i64) -> AllenRel {
        debug_assert!(a0 < a1 && b0 < b1, "degenerate interval");
        use std::cmp::Ordering::*;
        match (a0.cmp(&b0), a1.cmp(&b1)) {
            (Equal, Equal) => AllenRel::Equal,
            (Equal, Less) => AllenRel::Starts,
            (Equal, Greater) => AllenRel::StartedBy,
            (Less, Equal) => AllenRel::FinishedBy,
            (Greater, Equal) => AllenRel::Finishes,
            (Less, Less) => {
                if a1 < b0 {
                    AllenRel::Before
                } else if a1 == b0 {
                    AllenRel::Meets
                } else {
                    AllenRel::Overlaps
                }
            }
            (Greater, Greater) => {
                if b1 < a0 {
                    AllenRel::After
                } else if b1 == a0 {
                    AllenRel::MetBy
                } else {
                    AllenRel::OverlappedBy
                }
            }
            (Less, Greater) => AllenRel::Contains,
            (Greater, Less) => AllenRel::During,
        }
    }

    /// The relation between two clinical entries' time extents. Point
    /// events are widened to one-second intervals so the algebra's
    /// `start < end` precondition holds.
    pub fn between_times(a: (DateTime, DateTime), b: (DateTime, DateTime)) -> AllenRel {
        let widen = |(s, e): (DateTime, DateTime)| {
            let s = s.second_number();
            let e = e.second_number();
            if s == e {
                (s, e + 1)
            } else {
                (s, e)
            }
        };
        let (a0, a1) = widen(a);
        let (b0, b1) = widen(b);
        AllenRel::between(a0, a1, b0, b1)
    }

    /// Short name used in serialized constraints: `b m o s d f eq fi di si
    /// oi mi a`.
    pub fn symbol(self) -> &'static str {
        match self {
            AllenRel::Before => "b",
            AllenRel::Meets => "m",
            AllenRel::Overlaps => "o",
            AllenRel::Starts => "s",
            AllenRel::During => "d",
            AllenRel::Finishes => "f",
            AllenRel::Equal => "eq",
            AllenRel::FinishedBy => "fi",
            AllenRel::Contains => "di",
            AllenRel::StartedBy => "si",
            AllenRel::OverlappedBy => "oi",
            AllenRel::MetBy => "mi",
            AllenRel::After => "a",
        }
    }
}

/// A set of Allen base relations, as a 13-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllenSet(pub u16);

impl AllenSet {
    /// The empty (inconsistent) set.
    pub const EMPTY: AllenSet = AllenSet(0);
    /// The full (uninformative) set of all 13 relations.
    pub const FULL: AllenSet = AllenSet((1 << 13) - 1);

    /// A singleton set.
    pub fn of(rel: AllenRel) -> AllenSet {
        AllenSet(1 << rel as u16)
    }

    /// Build from several base relations.
    pub fn from_rels(rels: &[AllenRel]) -> AllenSet {
        rels.iter().fold(AllenSet::EMPTY, |s, &r| s.union(AllenSet::of(r)))
    }

    /// Membership test.
    pub fn contains(self, rel: AllenRel) -> bool {
        self.0 & (1 << rel as u16) != 0
    }

    /// Set intersection.
    pub fn intersect(self, other: AllenSet) -> AllenSet {
        AllenSet(self.0 & other.0)
    }

    /// Set union.
    pub fn union(self, other: AllenSet) -> AllenSet {
        AllenSet(self.0 | other.0)
    }

    /// True if no relation is possible (the network is inconsistent).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of possible base relations.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Converse of every member.
    pub fn converse(self) -> AllenSet {
        AllenRel::ALL
            .into_iter()
            .filter(|&r| self.contains(r))
            .fold(AllenSet::EMPTY, |s, r| s.union(AllenSet::of(r.converse())))
    }

    /// Composition: all relations possible between `A` and `C` given
    /// `A self B` and `B other C`.
    pub fn compose(self, other: AllenSet) -> AllenSet {
        let table = composition_table();
        let mut out = AllenSet::EMPTY;
        for r1 in AllenRel::ALL {
            if !self.contains(r1) {
                continue;
            }
            for r2 in AllenRel::ALL {
                if other.contains(r2) {
                    out = out.union(table[r1 as usize][r2 as usize]);
                }
            }
        }
        out
    }

    /// Iterate the member relations.
    pub fn iter(self) -> impl Iterator<Item = AllenRel> {
        AllenRel::ALL.into_iter().filter(move |&r| self.contains(r))
    }
}

impl std::fmt::Display for AllenSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", r.symbol())?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// The 13×13 composition table, derived once by enumerating all order
/// types of three intervals over endpoints `0..6`.
///
/// Completeness argument: three intervals have six endpoints; any
/// qualitative configuration is order-isomorphic to one whose endpoint
/// values lie in `{0..5}`. Enumerating all `(A, B, C)` with endpoints in
/// that range therefore realizes every consistent triple of relations, so
/// the table collects exactly `r1 ∘ r2` for every pair.
fn composition_table() -> &'static [[AllenSet; 13]; 13] {
    static TABLE: OnceLock<[[AllenSet; 13]; 13]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[AllenSet::EMPTY; 13]; 13];
        let intervals: Vec<(i64, i64)> =
            (0..6).flat_map(|s| ((s + 1)..6).map(move |e| (s, e))).collect();
        for &(a0, a1) in &intervals {
            for &(b0, b1) in &intervals {
                let r1 = AllenRel::between(a0, a1, b0, b1);
                for &(c0, c1) in &intervals {
                    let r2 = AllenRel::between(b0, b1, c0, c1);
                    let r3 = AllenRel::between(a0, a1, c0, c1);
                    table[r1 as usize][r2 as usize] =
                        table[r1 as usize][r2 as usize].union(AllenSet::of(r3));
                }
            }
        }
        table
    })
}

/// A qualitative constraint network over intervals, solved by
/// path consistency (PC-2 style queue propagation).
#[derive(Debug, Clone)]
pub struct AllenNetwork {
    n: usize,
    /// `c[i][j]` = possible relations from interval i to interval j.
    c: Vec<Vec<AllenSet>>,
}

impl AllenNetwork {
    /// A network over `n` intervals with all constraints initially FULL.
    pub fn new(n: usize) -> AllenNetwork {
        let mut c = vec![vec![AllenSet::FULL; n]; n];
        for (i, row) in c.iter_mut().enumerate() {
            row[i] = AllenSet::of(AllenRel::Equal);
        }
        AllenNetwork { n, c }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the network has no intervals.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Constrain the relation from `i` to `j` (intersecting with any
    /// existing constraint; the converse direction is kept in sync).
    pub fn constrain(&mut self, i: usize, j: usize, rels: AllenSet) {
        self.c[i][j] = self.c[i][j].intersect(rels);
        self.c[j][i] = self.c[i][j].converse();
    }

    /// Current constraint from `i` to `j`.
    pub fn relation(&self, i: usize, j: usize) -> AllenSet {
        self.c[i][j]
    }

    /// Run path consistency. Returns `false` if an empty constraint was
    /// derived (the network is inconsistent).
    pub fn propagate(&mut self) -> bool {
        let mut queue: Vec<(usize, usize)> = (0..self.n)
            .flat_map(|i| (0..self.n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .collect();
        while let Some((i, j)) = queue.pop() {
            for k in 0..self.n {
                if k == i || k == j {
                    continue;
                }
                // Tighten c[i][k] through j.
                let through = self.c[i][j].compose(self.c[j][k]);
                let tightened = self.c[i][k].intersect(through);
                if tightened != self.c[i][k] {
                    if tightened.is_empty() {
                        self.c[i][k] = tightened;
                        return false;
                    }
                    self.c[i][k] = tightened;
                    self.c[k][i] = tightened.converse();
                    queue.push((i, k));
                }
                // Tighten c[k][j] through i.
                let through = self.c[k][i].compose(self.c[i][j]);
                let tightened = self.c[k][j].intersect(through);
                if tightened != self.c[k][j] {
                    if tightened.is_empty() {
                        self.c[k][j] = tightened;
                        return false;
                    }
                    self.c[k][j] = tightened;
                    self.c[j][k] = tightened.converse();
                    queue.push((k, j));
                }
            }
        }
        true
    }
}

/// A Simple Temporal Network: time points with binary difference
/// constraints `t_j − t_i ∈ [lo, hi]`.
#[derive(Debug, Clone)]
pub struct Stn {
    /// `d[i][j]` = tightest known upper bound on `t_j − t_i`.
    d: Vec<Vec<i64>>,
    closed: bool,
}

/// Effectively-infinite bound (avoids overflow in additions).
const INF: i64 = i64::MAX / 4;

impl Stn {
    /// A network over `n` time points with no constraints.
    pub fn new(n: usize) -> Stn {
        let mut d = vec![vec![INF; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0;
        }
        Stn { d, closed: false }
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.d.len()
    }

    /// True if the network has no time points.
    pub fn is_empty(&self) -> bool {
        self.d.is_empty()
    }

    /// Add `t_j − t_i ≤ w`.
    pub fn add_upper(&mut self, i: usize, j: usize, w: i64) {
        if w < self.d[i][j] {
            self.d[i][j] = w;
        }
        self.closed = false;
    }

    /// Add `t_j − t_i ∈ [lo, hi]`.
    pub fn add_range(&mut self, i: usize, j: usize, lo: i64, hi: i64) {
        self.add_upper(i, j, hi);
        self.add_upper(j, i, -lo);
    }

    /// Floyd–Warshall closure. Returns `false` if inconsistent (a negative
    /// self-loop exists).
    pub fn close(&mut self) -> bool {
        let n = self.d.len();
        for k in 0..n {
            for i in 0..n {
                let dik = self.d[i][k];
                if dik == INF {
                    continue;
                }
                for j in 0..n {
                    let alt = dik.saturating_add(self.d[k][j]);
                    if alt < self.d[i][j] {
                        self.d[i][j] = alt;
                    }
                }
            }
        }
        self.closed = true;
        (0..n).all(|i| self.d[i][i] >= 0)
    }

    /// Implied bounds on `t_j − t_i` as `(lo, hi)`; `None` stands for
    /// unbounded on that side. Requires [`Stn::close`].
    pub fn bounds(&self, i: usize, j: usize) -> (Option<i64>, Option<i64>) {
        assert!(self.closed, "call close() before querying");
        let hi = (self.d[i][j] < INF).then_some(self.d[i][j]);
        let lo = (self.d[j][i] < INF).then_some(-self.d[j][i]);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_time::Date;

    #[test]
    fn between_covers_all_thirteen() {
        // Canonical endpoint patterns for each relation.
        type Case = (AllenRel, (i64, i64), (i64, i64));
        let cases: [Case; 13] = [
            (AllenRel::Before, (0, 1), (2, 3)),
            (AllenRel::Meets, (0, 1), (1, 2)),
            (AllenRel::Overlaps, (0, 2), (1, 3)),
            (AllenRel::Starts, (0, 1), (0, 2)),
            (AllenRel::During, (1, 2), (0, 3)),
            (AllenRel::Finishes, (1, 2), (0, 2)),
            (AllenRel::Equal, (0, 1), (0, 1)),
            (AllenRel::FinishedBy, (0, 2), (1, 2)),
            (AllenRel::Contains, (0, 3), (1, 2)),
            (AllenRel::StartedBy, (0, 2), (0, 1)),
            (AllenRel::OverlappedBy, (1, 3), (0, 2)),
            (AllenRel::MetBy, (1, 2), (0, 1)),
            (AllenRel::After, (2, 3), (0, 1)),
        ];
        for (rel, a, b) in cases {
            assert_eq!(AllenRel::between(a.0, a.1, b.0, b.1), rel);
            // Converse law.
            assert_eq!(AllenRel::between(b.0, b.1, a.0, a.1), rel.converse());
        }
    }

    #[test]
    fn converse_is_involutive() {
        for r in AllenRel::ALL {
            assert_eq!(r.converse().converse(), r);
        }
    }

    #[test]
    fn known_compositions() {
        let t = |a: AllenRel, b: AllenRel| AllenSet::of(a).compose(AllenSet::of(b));
        // before ∘ before = {before}
        assert_eq!(t(AllenRel::Before, AllenRel::Before), AllenSet::of(AllenRel::Before));
        // meets ∘ meets = {before}
        assert_eq!(t(AllenRel::Meets, AllenRel::Meets), AllenSet::of(AllenRel::Before));
        // during ∘ during = {during}
        assert_eq!(t(AllenRel::During, AllenRel::During), AllenSet::of(AllenRel::During));
        // equal is the identity
        for r in AllenRel::ALL {
            assert_eq!(t(AllenRel::Equal, r), AllenSet::of(r));
            assert_eq!(t(r, AllenRel::Equal), AllenSet::of(r));
        }
        // before ∘ after = full (classic maximally uninformative cell)
        assert_eq!(t(AllenRel::Before, AllenRel::After), AllenSet::FULL);
        // overlaps ∘ overlaps = {before, meets, overlaps}
        assert_eq!(
            t(AllenRel::Overlaps, AllenRel::Overlaps),
            AllenSet::from_rels(&[AllenRel::Before, AllenRel::Meets, AllenRel::Overlaps])
        );
        // starts ∘ during = {during}
        assert_eq!(t(AllenRel::Starts, AllenRel::During), AllenSet::of(AllenRel::During));
        // meets ∘ during = {overlaps, starts, during}
        assert_eq!(
            t(AllenRel::Meets, AllenRel::During),
            AllenSet::from_rels(&[AllenRel::Overlaps, AllenRel::Starts, AllenRel::During])
        );
    }

    #[test]
    fn composition_table_respects_converse_duality() {
        // (r1 ∘ r2)⁻¹ == r2⁻¹ ∘ r1⁻¹ for all pairs.
        for r1 in AllenRel::ALL {
            for r2 in AllenRel::ALL {
                let lhs = AllenSet::of(r1).compose(AllenSet::of(r2)).converse();
                let rhs = AllenSet::of(r2.converse()).compose(AllenSet::of(r1.converse()));
                assert_eq!(lhs, rhs, "{:?} ∘ {:?}", r1, r2);
            }
        }
    }

    #[test]
    fn set_operations() {
        let s = AllenSet::from_rels(&[AllenRel::Before, AllenRel::Meets]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(AllenRel::Before));
        assert!(!s.contains(AllenRel::After));
        assert_eq!(s.converse(), AllenSet::from_rels(&[AllenRel::After, AllenRel::MetBy]));
        assert_eq!(s.intersect(AllenSet::of(AllenRel::Meets)), AllenSet::of(AllenRel::Meets));
        assert!(AllenSet::EMPTY.is_empty());
        assert_eq!(AllenSet::FULL.len(), 13);
        assert_eq!(s.to_string(), "{b,m}");
    }

    #[test]
    fn network_derives_transitive_before() {
        // A before B, B before C ⟹ A before C.
        let mut net = AllenNetwork::new(3);
        net.constrain(0, 1, AllenSet::of(AllenRel::Before));
        net.constrain(1, 2, AllenSet::of(AllenRel::Before));
        assert!(net.propagate());
        assert_eq!(net.relation(0, 2), AllenSet::of(AllenRel::Before));
        assert_eq!(net.relation(2, 0), AllenSet::of(AllenRel::After));
    }

    #[test]
    fn network_detects_inconsistency() {
        // A before B, B before C, C before A — a cycle.
        let mut net = AllenNetwork::new(3);
        net.constrain(0, 1, AllenSet::of(AllenRel::Before));
        net.constrain(1, 2, AllenSet::of(AllenRel::Before));
        net.constrain(2, 0, AllenSet::of(AllenRel::Before));
        assert!(!net.propagate());
    }

    #[test]
    fn network_narrows_disjunctions() {
        // A {before,after} B, B before C, A during C ⟹ A after B impossible?
        // Actually: A during C and B before C leaves both; but C before B
        // forces A before B to drop.
        let mut net = AllenNetwork::new(3);
        net.constrain(0, 1, AllenSet::from_rels(&[AllenRel::Before, AllenRel::After]));
        net.constrain(2, 1, AllenSet::of(AllenRel::Before)); // C before B
        net.constrain(0, 2, AllenSet::of(AllenRel::During)); // A during C
        assert!(net.propagate());
        // A inside C and C entirely before B ⟹ A before B.
        assert_eq!(net.relation(0, 1), AllenSet::of(AllenRel::Before));
    }

    #[test]
    fn between_times_widens_points() {
        let d1 = Date::new(2020, 1, 1).unwrap().at_midnight();
        let d2 = Date::new(2020, 1, 5).unwrap().at_midnight();
        // Two point events on different days: before.
        assert_eq!(AllenRel::between_times((d1, d1), (d2, d2)), AllenRel::Before);
        // Same instant: equal.
        assert_eq!(AllenRel::between_times((d1, d1), (d1, d1)), AllenRel::Equal);
        // Point at the start of an interval: starts.
        assert_eq!(AllenRel::between_times((d1, d1), (d1, d2)), AllenRel::Starts);
    }

    #[test]
    fn stn_consistency_and_bounds() {
        // t1 - t0 in [5, 10]; t2 - t1 in [3, 4].
        let mut stn = Stn::new(3);
        stn.add_range(0, 1, 5, 10);
        stn.add_range(1, 2, 3, 4);
        assert!(stn.close());
        assert_eq!(stn.bounds(0, 2), (Some(8), Some(14)));
        assert_eq!(stn.bounds(2, 0), (Some(-14), Some(-8)));
    }

    #[test]
    fn stn_detects_inconsistency() {
        // t1 >= t0 + 10 but also t1 <= t0 + 5.
        let mut stn = Stn::new(2);
        stn.add_range(0, 1, 10, 20);
        stn.add_upper(0, 1, 5);
        assert!(!stn.close());
    }

    #[test]
    fn stn_unconstrained_is_unbounded() {
        let mut stn = Stn::new(2);
        assert!(stn.close());
        assert_eq!(stn.bounds(0, 1), (None, None));
    }

    #[test]
    fn readmission_constraint_example() {
        // Discharge D, readmission R with R - D in [0, 30] days (secs).
        // Index contact C with D - C in [1, 14].
        let day = 86_400;
        let mut stn = Stn::new(3); // 0=C, 1=D, 2=R
        stn.add_range(0, 1, day, 14 * day);
        stn.add_range(1, 2, 0, 30 * day);
        assert!(stn.close());
        let (lo, hi) = stn.bounds(0, 2);
        assert_eq!(lo, Some(day));
        assert_eq!(hi, Some(44 * day));
    }
}
