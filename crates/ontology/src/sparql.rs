//! A SPARQL-flavoured basic-graph-pattern engine over the triple store.
//!
//! The workbench's "database-technical issues" (§I) include ad-hoc queries
//! over the materialized ABox: *"which patients have an entry typed
//! HospitalContact whose code is subsumed by cond:Diabetes?"*. This module
//! answers conjunctive triple patterns with variables — the SELECT core of
//! SPARQL — using greedy most-selective-first join ordering over the
//! store's three indexes.

use crate::store::{Term, TripleStore};
use std::collections::HashMap;

/// One position of a triple pattern: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// A named variable (dense ids; the caller assigns meaning).
    Var(u32),
    /// A constant term.
    Const(Term),
}

impl Pattern {
    fn resolve(self, binding: &Binding) -> Option<Term> {
        match self {
            Pattern::Const(t) => Some(t),
            Pattern::Var(v) => binding.get(&v).copied(),
        }
    }
}

/// A triple pattern.
pub type TriplePattern = (Pattern, Pattern, Pattern);

/// One solution: variable → term.
pub type Binding = HashMap<u32, Term>;

/// Evaluate a basic graph pattern: the conjunction of `patterns`, returning
/// every binding of the variables that makes all patterns match.
///
/// Join order is chosen greedily at each step: the pattern with the most
/// bound positions under the current binding is evaluated next, which keeps
/// intermediate result sets small on star-shaped queries (the common shape
/// here: many patterns sharing the entry variable).
pub fn solve(store: &TripleStore, patterns: &[TriplePattern]) -> Vec<Binding> {
    let mut results = Vec::new();
    let mut remaining: Vec<TriplePattern> = patterns.to_vec();
    let binding = Binding::new();
    if patterns.is_empty() {
        return vec![binding];
    }
    join(store, &mut remaining, binding, &mut results);
    results
}

fn boundness(p: &TriplePattern, b: &Binding) -> u32 {
    [p.0, p.1, p.2]
        .iter()
        .map(|pat| match pat {
            Pattern::Const(_) => 1,
            Pattern::Var(v) => u32::from(b.contains_key(v)),
        })
        .sum()
}

fn join(
    store: &TripleStore,
    remaining: &mut Vec<TriplePattern>,
    binding: Binding,
    out: &mut Vec<Binding>,
) {
    if remaining.is_empty() {
        out.push(binding);
        return;
    }
    // Pick the most-bound pattern.
    let best = remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| boundness(p, &binding))
        .map(|(i, _)| i)
        .expect("non-empty");
    let pattern = remaining.swap_remove(best);
    let (sp, pp, op) = pattern;
    let s = sp.resolve(&binding);
    let p = pp.resolve(&binding);
    let o = op.resolve(&binding);
    for (ts, tp, to) in store.matching(s, p, o) {
        let mut b = binding.clone();
        if !bind(&mut b, sp, ts) || !bind(&mut b, pp, tp) || !bind(&mut b, op, to) {
            continue;
        }
        join(store, remaining, b, out);
    }
    remaining.push(pattern);
}

/// Bind a variable (or check a constant); false on conflict.
fn bind(b: &mut Binding, pat: Pattern, term: Term) -> bool {
    match pat {
        Pattern::Const(t) => t == term,
        Pattern::Var(v) => match b.get(&v) {
            Some(&existing) => existing == term,
            None => {
                b.insert(v, term);
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{Iri, Vocabulary};

    fn setup() -> (TripleStore, Vocabulary) {
        let mut v = Vocabulary::new();
        let mut s = TripleStore::new();
        let r = |v: &mut Vocabulary, n: &str| Term::Resource(v.intern(n));
        let typ = r(&mut v, "rdf:type");
        let code = r(&mut v, "hasCode");
        let of = r(&mut v, "ofPatient");
        let contact = r(&mut v, "Contact");
        let dispensing = r(&mut v, "Dispensing");
        let t90 = r(&mut v, "T90");
        let c07 = r(&mut v, "C07AB02");
        let p1 = r(&mut v, "P1");
        let p2 = r(&mut v, "P2");
        for (e, ty, cd, pat) in [
            ("e1", contact, t90, p1),
            ("e2", dispensing, c07, p1),
            ("e3", contact, t90, p2),
        ] {
            let e = r(&mut v, e);
            s.insert(e, typ, ty);
            s.insert(e, code, cd);
            s.insert(e, of, pat);
        }
        (s, v)
    }

    fn c(v: &Vocabulary, n: &str) -> Pattern {
        Pattern::Const(Term::Resource(v.get(n).unwrap()))
    }

    #[test]
    fn single_pattern_queries() {
        let (s, v) = setup();
        // ?e rdf:type Contact
        let out = solve(&s, &[(Pattern::Var(0), c(&v, "rdf:type"), c(&v, "Contact"))]);
        assert_eq!(out.len(), 2);
        // All bindings are entries typed Contact.
        for b in &out {
            let Term::Resource(iri) = b[&0] else { panic!() };
            assert!(v.name(iri).starts_with('e'));
        }
    }

    #[test]
    fn star_join_finds_the_diabetic_contacts_of_p1() {
        let (s, v) = setup();
        // ?e type Contact . ?e hasCode T90 . ?e ofPatient P1
        let out = solve(
            &s,
            &[
                (Pattern::Var(0), c(&v, "rdf:type"), c(&v, "Contact")),
                (Pattern::Var(0), c(&v, "hasCode"), c(&v, "T90")),
                (Pattern::Var(0), c(&v, "ofPatient"), c(&v, "P1")),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][&0], Term::Resource(v.get("e1").unwrap()));
    }

    #[test]
    fn multi_variable_join() {
        let (s, v) = setup();
        // Patients with a Contact: ?e type Contact . ?e ofPatient ?p
        let out = solve(
            &s,
            &[
                (Pattern::Var(0), c(&v, "rdf:type"), c(&v, "Contact")),
                (Pattern::Var(0), c(&v, "ofPatient"), Pattern::Var(1)),
            ],
        );
        let mut patients: Vec<Iri> = out
            .iter()
            .map(|b| match b[&1] {
                Term::Resource(i) => i,
                _ => panic!(),
            })
            .collect();
        patients.sort();
        patients.dedup();
        assert_eq!(patients.len(), 2);
    }

    #[test]
    fn shared_variable_enforces_equality() {
        let (s, v) = setup();
        // A patient with both a Contact and a Dispensing:
        // ?a type Contact . ?a ofPatient ?p . ?b type Dispensing . ?b ofPatient ?p
        let out = solve(
            &s,
            &[
                (Pattern::Var(0), c(&v, "rdf:type"), c(&v, "Contact")),
                (Pattern::Var(0), c(&v, "ofPatient"), Pattern::Var(2)),
                (Pattern::Var(1), c(&v, "rdf:type"), c(&v, "Dispensing")),
                (Pattern::Var(1), c(&v, "ofPatient"), Pattern::Var(2)),
            ],
        );
        assert_eq!(out.len(), 1, "only P1 has both");
        assert_eq!(out[0][&2], Term::Resource(v.get("P1").unwrap()));
    }

    #[test]
    fn no_match_returns_empty() {
        let (s, v) = setup();
        let out = solve(
            &s,
            &[
                (Pattern::Var(0), c(&v, "rdf:type"), c(&v, "Dispensing")),
                (Pattern::Var(0), c(&v, "ofPatient"), c(&v, "P2")),
            ],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn empty_bgp_yields_the_unit_binding() {
        let (s, _) = setup();
        let out = solve(&s, &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_empty());
    }

    #[test]
    fn repeated_variable_within_one_pattern() {
        let mut v = Vocabulary::new();
        let mut s = TripleStore::new();
        let a = Term::Resource(v.intern("a"));
        let b = Term::Resource(v.intern("b"));
        let p = Term::Resource(v.intern("p"));
        s.insert(a, p, a); // reflexive
        s.insert(a, p, b);
        // ?x p ?x — only the reflexive triple matches.
        let out = solve(&s, &[(Pattern::Var(0), Pattern::Const(p), Pattern::Var(0))]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][&0], a);
    }
}
