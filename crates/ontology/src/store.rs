//! An indexed triple store.
//!
//! Holds the materialized form of both formalizations. Three B-tree
//! indexes (SPO, POS, OSP) answer every single-pattern query with a range
//! scan; the `pastas-query` layer composes them into the temporal filters
//! of the workbench.

use crate::vocab::Iri;
use std::collections::BTreeSet;

/// An RDF term: a resource or a literal.
///
/// Literals are interned strings too (dates are stored in ISO form so that
/// lexicographic order equals temporal order), distinguished by a tag so a
/// literal can never collide with a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A resource (class, property, individual).
    Resource(Iri),
    /// A literal (value interned in the same vocabulary).
    Literal(Iri),
}

impl Term {
    fn key(self) -> (u8, u32) {
        match self {
            Term::Resource(i) => (0, i.0),
            Term::Literal(i) => (1, i.0),
        }
    }

    fn from_key((tag, id): (u8, u32)) -> Term {
        match tag {
            0 => Term::Resource(Iri(id)),
            _ => Term::Literal(Iri(id)),
        }
    }
}

type K = (u8, u32);
type TripleKey = (K, K, K);

/// A triple store with SPO/POS/OSP indexes.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    spo: BTreeSet<TripleKey>,
    pos: BTreeSet<TripleKey>,
    osp: BTreeSet<TripleKey>,
}

const K_MIN: K = (0, 0);
const K_MAX: K = (u8::MAX, u32::MAX);

impl TripleStore {
    /// An empty store.
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Insert a triple; returns `true` if it was new.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let (s, p, o) = (s.key(), p.key(), o.key());
        if !self.spo.insert((s, p, o)) {
            return false;
        }
        self.pos.insert((p, o, s));
        self.osp.insert((o, s, p));
        true
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// True if the exact triple is present.
    pub fn contains(&self, s: Term, p: Term, o: Term) -> bool {
        self.spo.contains(&(s.key(), p.key(), o.key()))
    }

    /// All triples matching a pattern (`None` = wildcard), as
    /// `(subject, predicate, object)`.
    ///
    /// Picks the most selective index for the bound positions; a fully
    /// unbound pattern scans SPO.
    pub fn matching(
        &self,
        s: Option<Term>,
        p: Option<Term>,
        o: Option<Term>,
    ) -> Vec<(Term, Term, Term)> {
        let mut out = Vec::new();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains(s, p, o) {
                    out.push((s, p, o));
                }
            }
            (Some(s), p, o) => {
                let (sk, pmin, pmax) = (s.key(), range_of(p), range_of(o));
                for &(sk2, pk, ok) in self.spo.range((sk, pmin.0, K_MIN)..=(sk, pmin.1, K_MAX)) {
                    let _ = sk2;
                    if pk >= pmin.0 && pk <= pmin.1 && ok >= pmax.0 && ok <= pmax.1 {
                        out.push((Term::from_key(sk), Term::from_key(pk), Term::from_key(ok)));
                    }
                }
            }
            (None, Some(p), o) => {
                let (pk, orange) = (p.key(), range_of(o));
                for &(_, ok, sk) in self.pos.range((pk, orange.0, K_MIN)..=(pk, orange.1, K_MAX)) {
                    out.push((Term::from_key(sk), Term::from_key(pk), Term::from_key(ok)));
                }
            }
            (None, None, Some(o)) => {
                let ok = o.key();
                for &(_, sk, pk) in self.osp.range((ok, K_MIN, K_MIN)..=(ok, K_MAX, K_MAX)) {
                    out.push((Term::from_key(sk), Term::from_key(pk), Term::from_key(ok)));
                }
            }
            (None, None, None) => {
                for &(sk, pk, ok) in &self.spo {
                    out.push((Term::from_key(sk), Term::from_key(pk), Term::from_key(ok)));
                }
            }
        }
        out
    }

    /// Objects of `(s, p, ?)`.
    pub fn objects(&self, s: Term, p: Term) -> Vec<Term> {
        let (sk, pk) = (s.key(), p.key());
        self.spo
            .range((sk, pk, K_MIN)..=(sk, pk, K_MAX))
            .map(|&(_, _, ok)| Term::from_key(ok))
            .collect()
    }

    /// Subjects of `(?, p, o)`.
    pub fn subjects(&self, p: Term, o: Term) -> Vec<Term> {
        let (pk, ok) = (p.key(), o.key());
        self.pos
            .range((pk, ok, K_MIN)..=(pk, ok, K_MAX))
            .map(|&(_, _, sk)| Term::from_key(sk))
            .collect()
    }

    /// Iterate over all triples.
    pub fn iter(&self) -> impl Iterator<Item = (Term, Term, Term)> + '_ {
        self.spo
            .iter()
            .map(|&(s, p, o)| (Term::from_key(s), Term::from_key(p), Term::from_key(o)))
    }
}

fn range_of(t: Option<Term>) -> (K, K) {
    match t {
        Some(t) => (t.key(), t.key()),
        None => (K_MIN, K_MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> Term {
        Term::Resource(Iri(i))
    }

    fn lit(i: u32) -> Term {
        Term::Literal(Iri(i))
    }

    #[test]
    fn insert_deduplicates() {
        let mut s = TripleStore::new();
        assert!(s.insert(r(1), r(2), r(3)));
        assert!(!s.insert(r(1), r(2), r(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn literals_and_resources_are_distinct() {
        let mut s = TripleStore::new();
        s.insert(r(1), r(2), r(3));
        s.insert(r(1), r(2), lit(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(r(1), r(2), lit(3)));
    }

    #[test]
    fn pattern_queries_use_all_shapes() {
        let mut s = TripleStore::new();
        s.insert(r(1), r(10), r(100));
        s.insert(r(1), r(10), r(101));
        s.insert(r(1), r(11), r(100));
        s.insert(r(2), r(10), r(100));

        assert_eq!(s.matching(Some(r(1)), None, None).len(), 3);
        assert_eq!(s.matching(Some(r(1)), Some(r(10)), None).len(), 2);
        assert_eq!(s.matching(None, Some(r(10)), None).len(), 3);
        assert_eq!(s.matching(None, Some(r(10)), Some(r(100))).len(), 2);
        assert_eq!(s.matching(None, None, Some(r(100))).len(), 3);
        assert_eq!(s.matching(None, None, None).len(), 4);
        assert_eq!(s.matching(Some(r(1)), None, Some(r(100))).len(), 2);
        assert_eq!(s.matching(Some(r(9)), None, None).len(), 0);
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let mut s = TripleStore::new();
        s.insert(r(1), r(10), r(100));
        s.insert(r(1), r(10), r(101));
        s.insert(r(2), r(10), r(100));
        assert_eq!(s.objects(r(1), r(10)), vec![r(100), r(101)]);
        assert_eq!(s.subjects(r(10), r(100)), vec![r(1), r(2)]);
        assert!(s.objects(r(3), r(10)).is_empty());
    }

    #[test]
    fn iteration_covers_everything() {
        let mut s = TripleStore::new();
        for i in 0..10 {
            s.insert(r(i), r(100), r(i + 1));
        }
        assert_eq!(s.iter().count(), 10);
    }
}
