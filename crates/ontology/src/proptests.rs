//! Property tests for the reasoning and temporal layers.

use crate::reasoner::{Axiom, ClassId, Reasoner, RoleId};
use crate::temporal::{AllenNetwork, AllenRel, AllenSet, Stn};
use proptest::prelude::*;

const N_CLASSES: u32 = 8;
const N_ROLES: u32 = 2;

fn arb_axiom() -> impl Strategy<Value = Axiom> {
    let class = 0..N_CLASSES;
    let role = 0..N_ROLES;
    prop_oneof![
        (class.clone(), class.clone()).prop_map(|(a, b)| Axiom::Sub(ClassId(a), ClassId(b))),
        (class.clone(), class.clone(), class.clone())
            .prop_map(|(a, b, c)| Axiom::SubConj(ClassId(a), ClassId(b), ClassId(c))),
        (class.clone(), role.clone(), class.clone())
            .prop_map(|(a, r, b)| Axiom::SubExists(ClassId(a), RoleId(r), ClassId(b))),
        (role.clone(), class.clone(), class.clone())
            .prop_map(|(r, a, b)| Axiom::ExistsSub(RoleId(r), ClassId(a), ClassId(b))),
        (role.clone(), role).prop_map(|(r, s)| Axiom::SubRole(RoleId(r), RoleId(s))),
    ]
}

fn saturated(axioms: &[Axiom]) -> Reasoner {
    let mut r = Reasoner::new();
    for _ in 0..N_CLASSES {
        r.new_class();
    }
    for _ in 0..N_ROLES {
        r.new_role();
    }
    for &ax in axioms {
        r.add(ax);
    }
    r.saturate();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Monotonicity: adding axioms never removes entailments.
    #[test]
    fn saturation_is_monotone(
        base in proptest::collection::vec(arb_axiom(), 0..12),
        extra in proptest::collection::vec(arb_axiom(), 0..6),
    ) {
        let r1 = saturated(&base);
        let mut all = base.clone();
        all.extend(extra);
        let r2 = saturated(&all);
        for a in 0..N_CLASSES {
            for b in 0..N_CLASSES {
                if r1.is_subsumed(ClassId(a), ClassId(b)) {
                    prop_assert!(
                        r2.is_subsumed(ClassId(a), ClassId(b)),
                        "entailment {a} ⊑ {b} lost after adding axioms"
                    );
                }
            }
        }
    }

    /// Subsumption is reflexive and transitive after saturation.
    #[test]
    fn subsumption_is_a_preorder(axioms in proptest::collection::vec(arb_axiom(), 0..15)) {
        let r = saturated(&axioms);
        for a in 0..N_CLASSES {
            prop_assert!(r.is_subsumed(ClassId(a), ClassId(a)), "reflexivity {a}");
        }
        for a in 0..N_CLASSES {
            for b in 0..N_CLASSES {
                for c in 0..N_CLASSES {
                    if r.is_subsumed(ClassId(a), ClassId(b))
                        && r.is_subsumed(ClassId(b), ClassId(c))
                    {
                        prop_assert!(
                            r.is_subsumed(ClassId(a), ClassId(c)),
                            "transitivity {a} ⊑ {b} ⊑ {c}"
                        );
                    }
                }
            }
        }
    }

    /// Axiom order never changes the saturation result.
    #[test]
    fn saturation_is_order_independent(axioms in proptest::collection::vec(arb_axiom(), 0..15)) {
        let r1 = saturated(&axioms);
        let mut rev = axioms.clone();
        rev.reverse();
        let r2 = saturated(&rev);
        for a in 0..N_CLASSES {
            for b in 0..N_CLASSES {
                prop_assert_eq!(
                    r1.is_subsumed(ClassId(a), ClassId(b)),
                    r2.is_subsumed(ClassId(a), ClassId(b))
                );
            }
        }
    }

    /// Relations observed from concrete intervals always form a consistent
    /// network (soundness of the composition table under propagation).
    #[test]
    fn concrete_interval_relations_are_path_consistent(
        bounds in proptest::collection::vec((0i64..40, 1i64..12), 2..7)
    ) {
        let intervals: Vec<(i64, i64)> = bounds.iter().map(|&(s, len)| (s, s + len)).collect();
        let n = intervals.len();
        let mut net = AllenNetwork::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let rel = AllenRel::between(
                    intervals[i].0,
                    intervals[i].1,
                    intervals[j].0,
                    intervals[j].1,
                );
                net.constrain(i, j, AllenSet::of(rel));
            }
        }
        prop_assert!(net.propagate(), "concrete model declared inconsistent");
    }

    /// Composition soundness: the observed relation of (A, C) is always a
    /// member of compose(rel(A,B), rel(B,C)).
    #[test]
    fn composition_contains_every_concrete_outcome(
        a in (0i64..30, 1i64..8),
        b in (0i64..30, 1i64..8),
        c in (0i64..30, 1i64..8),
    ) {
        let (a, b, c) = ((a.0, a.0 + a.1), (b.0, b.0 + b.1), (c.0, c.0 + c.1));
        let ab = AllenRel::between(a.0, a.1, b.0, b.1);
        let bc = AllenRel::between(b.0, b.1, c.0, c.1);
        let ac = AllenRel::between(a.0, a.1, c.0, c.1);
        let composed = AllenSet::of(ab).compose(AllenSet::of(bc));
        prop_assert!(composed.contains(ac), "{ab:?} ∘ {bc:?} missing {ac:?}");
    }

    /// An STN built from consistent bounds is consistent and its implied
    /// bounds contain the generating assignment.
    #[test]
    fn stn_bounds_contain_the_generating_assignment(
        times in proptest::collection::vec(0i64..10_000, 2..6),
        slack in 1i64..50,
    ) {
        let n = times.len();
        let mut stn = Stn::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let diff = times[j] - times[i];
                stn.add_range(i, j, diff - slack, diff + slack);
            }
        }
        prop_assert!(stn.close(), "consistent by construction");
        for i in 0..n {
            for j in 0..n {
                let (lo, hi) = stn.bounds(i, j);
                let actual = times[j] - times[i];
                if let Some(lo) = lo {
                    prop_assert!(actual >= lo);
                }
                if let Some(hi) = hi {
                    prop_assert!(actual <= hi);
                }
            }
        }
    }
}
