//! IRI interning and the PAsTAs vocabulary.

use std::collections::HashMap;

/// An interned IRI — a dense handle into a [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(pub u32);

/// A two-way IRI interner.
///
/// All ontology machinery works on dense [`Iri`] handles; strings appear
/// only at the edges (loading and display). Interning keeps the saturation
/// working set small — at 168k patients the ABox holds millions of triples.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    names: Vec<String>,
    ids: HashMap<String, Iri>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Intern a name, returning its handle (idempotent).
    pub fn intern(&mut self, name: &str) -> Iri {
        if let Some(&iri) = self.ids.get(name) {
            return iri;
        }
        let iri = Iri(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), iri);
        iri
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Iri> {
        self.ids.get(name).copied()
    }

    /// The string form of a handle.
    pub fn name(&self, iri: Iri) -> &str {
        &self.names[iri.0 as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Well-known IRI strings of the PAsTAs namespaces.
///
/// Two namespaces mirror the two formalizations: `pastas-int:` for the
/// integration & alignment ontology, `pastas-viz:` for the presentation
/// ontology. Code-system classes live under their system prefix.
pub mod ns {
    /// RDF `type` predicate.
    pub const RDF_TYPE: &str = "rdf:type";
    /// RDFS `subClassOf` predicate.
    pub const RDFS_SUBCLASS: &str = "rdfs:subClassOf";
    /// RDFS human-readable label.
    pub const RDFS_LABEL: &str = "rdfs:label";

    /// Integration-ontology namespace prefix.
    pub const INT: &str = "pastas-int:";
    /// Presentation-ontology namespace prefix.
    pub const VIZ: &str = "pastas-viz:";

    /// Predicate: entry has clinical code.
    pub const HAS_CODE: &str = "pastas-int:hasCode";
    /// Predicate: entry recorded by source.
    pub const FROM_SOURCE: &str = "pastas-int:fromSource";
    /// Predicate: entry belongs to patient.
    pub const OF_PATIENT: &str = "pastas-int:ofPatient";
    /// Predicate: entry starts at (ISO datetime literal).
    pub const STARTS_AT: &str = "pastas-int:startsAt";
    /// Predicate: entry ends at (ISO datetime literal).
    pub const ENDS_AT: &str = "pastas-int:endsAt";
    /// Predicate: same real-world condition as (the ICPC↔ICD bridge).
    pub const SAME_CONDITION: &str = "pastas-int:sameConditionAs";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("pastas-int:Contact");
        let b = v.intern("pastas-int:Contact");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn round_trips_names() {
        let mut v = Vocabulary::new();
        let a = v.intern("x");
        let b = v.intern("y");
        assert_eq!(v.name(a), "x");
        assert_eq!(v.name(b), "y");
        assert_eq!(v.get("x"), Some(a));
        assert_eq!(v.get("z"), None);
    }

    #[test]
    fn handles_are_dense() {
        let mut v = Vocabulary::new();
        for i in 0..100 {
            let iri = v.intern(&format!("n{i}"));
            assert_eq!(iri.0, i);
        }
    }
}
