//! The **integration & alignment** ontology — the first of the paper's two
//! OWL formalizations.
//!
//! Its job is to make heterogeneous records commensurable: every source
//! record becomes a `PatientEntry` subclass, every clinical code becomes a
//! class embedded in its hierarchy, and the ICPC↔ICD bridge makes a GP's
//! `T90` and a hospital's `E11.9` both subsumed by `cond:Diabetes`. The
//! bridge is expressed with genuine EL axioms (`entryWith:C ⊑ ∃hasCode.C`,
//! `∃hasCode.cond:X ⊑ entryFor:X`) so classification is carried entirely by
//! the reasoner's completion rules rather than ad-hoc lookups.

use crate::reasoner::{Axiom, ClassId, Reasoner, RoleId};
use crate::store::{Term, TripleStore};
use crate::vocab::{ns, Iri, Vocabulary};
use pastas_codes::Code;
use pastas_model::{EntryView, EpisodeKind, History, PayloadRef, SourceKind};
use std::collections::HashMap;

/// The chronic and acute conditions the cohort study tracks, with the
/// ICPC-2 codes and ICD-10 categories that indicate each.
pub const CONDITIONS: [(&str, &[&str], &[&str], bool); 17] = [
    // (name, icpc codes, icd categories, chronic?)
    ("Diabetes", &["T89", "T90"], &["E10", "E11", "E14"], true),
    ("Hypertension", &["K86", "K87"], &["I10", "I11", "I12", "I13", "I15"], true),
    ("IschaemicHeartDisease", &["K74", "K75", "K76"], &["I20", "I21", "I24", "I25"], true),
    ("HeartFailure", &["K77"], &["I50"], true),
    ("AtrialFibrillation", &["K78"], &["I48"], true),
    ("Stroke", &["K89", "K90"], &["I63", "I64", "G45"], true),
    ("COPD", &["R95"], &["J44"], true),
    ("Asthma", &["R96"], &["J45", "J46"], true),
    ("Depression", &["P76"], &["F32", "F33"], true),
    ("Anxiety", &["P74"], &["F41"], true),
    ("Dementia", &["P70"], &["F03"], true),
    ("RheumatoidArthritis", &["L88"], &["M05", "M06"], true),
    ("Osteoarthrosis", &["L89", "L90"], &["M16", "M17"], true),
    ("ChronicKidneyDisease", &["U99"], &["N18"], true),
    ("Migraine", &["N89"], &["G43"], true),
    ("Hypothyroidism", &["T86"], &["E03"], true),
    ("Pneumonia", &["R81"], &["J18"], false),
];

/// The integration & alignment ontology with its saturated reasoner.
#[derive(Debug)]
pub struct IntegrationOntology {
    vocab: Vocabulary,
    reasoner: Reasoner,
    classes: HashMap<Iri, ClassId>,
    /// Reverse map: ClassId index → interned name.
    class_names: Vec<Iri>,
    /// Codes whose hierarchy + bridge axioms have been emitted.
    registered_codes: std::collections::HashSet<String>,
    has_code: RoleId,
    saturated: bool,
}

impl IntegrationOntology {
    /// Build the schema: structural entry classes, condition classes, the
    /// catalog code hierarchies, and the cross-system bridge; then
    /// saturate.
    pub fn new() -> IntegrationOntology {
        let mut o = IntegrationOntology {
            vocab: Vocabulary::new(),
            reasoner: Reasoner::new(),
            classes: HashMap::new(),
            class_names: Vec::new(),
            registered_codes: std::collections::HashSet::new(),
            has_code: RoleId(0),
            saturated: false,
        };
        o.has_code = o.reasoner.new_role();
        o.build_structural_schema();
        o.build_condition_schema();
        // Pre-register every catalog code so the common case needs no
        // mutation after construction.
        for (c, _) in pastas_codes::catalog::ICPC_NAMES {
            o.register_code(&Code::icpc(c));
        }
        for (c, _) in pastas_codes::catalog::ICD_NAMES {
            o.register_code(&Code::icd10(c));
        }
        for (c, _) in pastas_codes::catalog::ATC_NAMES {
            o.register_code(&Code::atc(c));
        }
        // Every code the condition table mentions must be fully registered
        // (hierarchy + bridge), even when it is not in the display catalog.
        for (_, icpc, icd, _) in CONDITIONS {
            for c in icpc {
                o.register_code(&Code::icpc(c));
            }
            for c in icd {
                o.register_code(&Code::icd10(c));
            }
        }
        o.saturate();
        o
    }

    /// The interned vocabulary (read access for display).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Get-or-create the class for a name.
    fn class(&mut self, name: &str) -> ClassId {
        let iri = self.vocab.intern(name);
        if let Some(&c) = self.classes.get(&iri) {
            return c;
        }
        let c = self.reasoner.new_class();
        self.classes.insert(iri, c);
        debug_assert_eq!(self.class_names.len(), c.0 as usize);
        self.class_names.push(iri);
        self.saturated = false;
        c
    }

    /// Look up an existing class by name.
    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.classes.get(&self.vocab.get(name)?).copied()
    }

    fn sub(&mut self, a: &str, b: &str) {
        let (a, b) = (self.class(a), self.class(b));
        self.reasoner.sub(a, b);
        self.saturated = false;
    }

    fn build_structural_schema(&mut self) {
        // Entry taxonomy.
        for (a, b) in [
            ("pastas-int:Contact", "pastas-int:PatientEntry"),
            ("pastas-int:PrimaryCareContact", "pastas-int:Contact"),
            ("pastas-int:OutOfHoursContact", "pastas-int:PrimaryCareContact"),
            ("pastas-int:SpecialistContact", "pastas-int:Contact"),
            ("pastas-int:HospitalContact", "pastas-int:Contact"),
            ("pastas-int:Dispensing", "pastas-int:PatientEntry"),
            ("pastas-int:Observation", "pastas-int:PatientEntry"),
            ("pastas-int:NoteEntry", "pastas-int:PatientEntry"),
            ("pastas-int:CareEpisode", "pastas-int:PatientEntry"),
            ("pastas-int:HospitalEpisode", "pastas-int:CareEpisode"),
            ("pastas-int:InpatientStay", "pastas-int:HospitalEpisode"),
            ("pastas-int:OutpatientSeries", "pastas-int:HospitalEpisode"),
            ("pastas-int:DayTreatment", "pastas-int:HospitalEpisode"),
            ("pastas-int:MunicipalEpisode", "pastas-int:CareEpisode"),
            ("pastas-int:HomeCare", "pastas-int:MunicipalEpisode"),
            ("pastas-int:NursingHome", "pastas-int:MunicipalEpisode"),
            ("pastas-int:Rehabilitation", "pastas-int:CareEpisode"),
            ("pastas-int:MedicationPeriod", "pastas-int:CareEpisode"),
        ] {
            self.sub(a, b);
        }
    }

    fn build_condition_schema(&mut self) {
        self.sub("cond:ChronicCondition", "cond:Condition");
        self.sub("cond:AcuteCondition", "cond:Condition");
        for (name, icpc, icd, chronic) in CONDITIONS {
            let cond_name = format!("cond:{name}");
            let parent = if chronic { "cond:ChronicCondition" } else { "cond:AcuteCondition" };
            self.sub(&cond_name, parent);
            for c in icpc {
                let code_class = format!("ICPC2:{c}");
                self.sub(&code_class, &cond_name);
            }
            for c in icd {
                let code_class = format!("ICD10:{c}");
                self.sub(&code_class, &cond_name);
            }
            // The existential bridge: any entry whose code falls under the
            // condition is an entry for it.
            let cond = self.class(&cond_name);
            let entry_for = self.class(&format!("pastas-int:EntryFor/{name}"));
            self.reasoner.add(Axiom::ExistsSub(self.has_code, cond, entry_for));
        }
    }

    /// Register a code: creates its class, walks the hierarchy up to the
    /// root adding subsumption axioms, and links the entry-with-code class
    /// through `hasCode`. Idempotent. Call [`Self::saturate`] after a batch.
    pub fn register_code(&mut self, code: &Code) -> ClassId {
        let name = code_class_name(code);
        if self.registered_codes.contains(&name) {
            return self.lookup(&name).expect("registered code has a class");
        }
        self.registered_codes.insert(name.clone());
        let class = self.class(&name);
        // Hierarchy axioms up to the root.
        let mut cur = code.clone();
        let mut cur_class = class;
        while let Some(parent) = cur.parent() {
            let parent_class = self.class(&code_class_name(&parent));
            self.reasoner.sub(cur_class, parent_class);
            cur_class = parent_class;
            cur = parent;
        }
        // entryWith:C ⊑ ∃hasCode.C — the lhs is what classify_entry asks
        // the reasoner about.
        let entry_with = self.class(&entry_with_name(code));
        self.reasoner.add(Axiom::SubExists(entry_with, self.has_code, class));
        self.saturated = false;
        class
    }

    /// (Re-)saturate after registering codes.
    pub fn saturate(&mut self) {
        self.reasoner.saturate();
        self.saturated = true;
    }

    /// True if `a ⊑ b` for two class names (false if either is unknown).
    pub fn is_subclass(&self, a: &str, b: &str) -> bool {
        match (self.lookup(a), self.lookup(b)) {
            (Some(a), Some(b)) => self.reasoner.is_subsumed(a, b),
            _ => false,
        }
    }

    /// The conditions a code indicates, via subsumption (so `E11.9` rolls
    /// up through `E11` to `Diabetes`). Unregistered codes yield nothing.
    pub fn conditions_of(&self, code: &Code) -> Vec<&'static str> {
        let Some(class) = self.lookup(&code_class_name(code)) else {
            return Vec::new();
        };
        CONDITIONS
            .iter()
            .filter(|(name, ..)| {
                self.lookup(&format!("cond:{name}"))
                    .is_some_and(|cond| self.reasoner.is_subsumed(class, cond))
            })
            .map(|&(name, ..)| name)
            .collect()
    }

    /// True if the code indicates the named condition.
    pub fn code_indicates(&self, code: &Code, condition: &str) -> bool {
        self.conditions_of(code).contains(&condition)
    }

    /// The tracked condition names in [`CONDITIONS`] order — the dense
    /// ids the analytics accumulators index by.
    pub fn condition_names() -> impl ExactSizeIterator<Item = &'static str> {
        CONDITIONS.iter().map(|&(name, ..)| name)
    }

    /// Position of a condition name within [`CONDITIONS`], if tracked.
    pub fn condition_index(name: &str) -> Option<usize> {
        CONDITIONS.iter().position(|&(n, ..)| n == name)
    }

    /// The structural class name for an entry (by payload × source).
    ///
    /// Generic over [`EntryView`] so both owned `&Entry` values and
    /// zero-copy [`pastas_model::EntryRef`] views classify without
    /// materializing a payload.
    pub fn structural_class<E: EntryView>(entry: E) -> &'static str {
        match (entry.payload_ref(), entry.source()) {
            (PayloadRef::Diagnosis(_), SourceKind::PrimaryCare) => "pastas-int:PrimaryCareContact",
            (PayloadRef::Diagnosis(_), SourceKind::Specialist) => "pastas-int:SpecialistContact",
            (PayloadRef::Diagnosis(_), _) => "pastas-int:HospitalContact",
            (PayloadRef::Medication(_), _) => "pastas-int:Dispensing",
            (PayloadRef::Measurement { .. }, _) => "pastas-int:Observation",
            (PayloadRef::Note(_), _) => "pastas-int:NoteEntry",
            (PayloadRef::Episode(k), _) => match k {
                EpisodeKind::Inpatient => "pastas-int:InpatientStay",
                EpisodeKind::Outpatient => "pastas-int:OutpatientSeries",
                EpisodeKind::DayTreatment => "pastas-int:DayTreatment",
                EpisodeKind::HomeCare => "pastas-int:HomeCare",
                EpisodeKind::NursingHome => "pastas-int:NursingHome",
                EpisodeKind::Rehabilitation => "pastas-int:Rehabilitation",
                EpisodeKind::MedicationExposure => "pastas-int:MedicationPeriod",
            },
        }
    }

    /// Every class name an entry belongs to: its structural classes plus,
    /// when it carries a registered code, everything the reasoner derives
    /// through the `hasCode` bridge (condition `EntryFor/...` classes).
    pub fn classify_entry<E: EntryView>(&self, entry: E) -> Vec<String> {
        let mut out = Vec::new();
        // Structural chain.
        let structural = Self::structural_class(entry);
        if let Some(c) = self.lookup(structural) {
            for &sup in self.reasoner.superclasses(c) {
                out.push(self.name_of(sup));
            }
        } else {
            out.push(structural.to_owned());
        }
        // Code-derived classes via the entryWith bridge.
        if let Some(code) = entry.code_ref() {
            if let Some(ew) = self.lookup(&entry_with_name(code)) {
                for &sup in self.reasoner.superclasses(ew) {
                    let name = self.name_of(sup);
                    // The entryWith:* helper classes are internal.
                    if !name.starts_with("entryWith:") {
                        out.push(name);
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn name_of(&self, class: ClassId) -> String {
        self.class_names
            .get(class.0 as usize)
            .map(|&iri| self.vocab.name(iri).to_owned())
            .unwrap_or_else(|| format!("?{}", class.0))
    }

    /// Materialize a history as ABox triples (the E10 scale experiment):
    /// type, code, patient, source, and time assertions per entry.
    pub fn assert_history(&self, history: &History, store: &mut TripleStore, vocab: &mut Vocabulary) {
        let patient = Term::Resource(vocab.intern(&history.id().to_string()));
        let rdf_type = Term::Resource(vocab.intern(ns::RDF_TYPE));
        let has_code = Term::Resource(vocab.intern(ns::HAS_CODE));
        let of_patient = Term::Resource(vocab.intern(ns::OF_PATIENT));
        let from_source = Term::Resource(vocab.intern(ns::FROM_SOURCE));
        let starts_at = Term::Resource(vocab.intern(ns::STARTS_AT));
        let ends_at = Term::Resource(vocab.intern(ns::ENDS_AT));
        for (i, e) in history.entries().iter().enumerate() {
            let id = format!("{}#e{}", history.id(), i);
            let entry = Term::Resource(vocab.intern(&id));
            store.insert(entry, of_patient, patient);
            let class = Term::Resource(vocab.intern(Self::structural_class(e)));
            store.insert(entry, rdf_type, class);
            if let Some(code) = e.code() {
                let code_term = Term::Resource(vocab.intern(&code_class_name(code)));
                store.insert(entry, has_code, code_term);
            }
            store.insert(entry, from_source, Term::Resource(vocab.intern(e.source().label())));
            store.insert(entry, starts_at, Term::Literal(vocab.intern(&e.start().to_string())));
            if e.is_interval() {
                store.insert(entry, ends_at, Term::Literal(vocab.intern(&e.end().to_string())));
            }
        }
    }
}

impl Default for IntegrationOntology {
    fn default() -> Self {
        Self::new()
    }
}

/// The ontology class name of a code: `"ICPC2:T90"`, `"ICD10:E11"`, …
pub fn code_class_name(code: &Code) -> String {
    format!("{}:{}", code.system.tag(), code.value)
}

fn entry_with_name(code: &Code) -> String {
    format!("entryWith:{}:{}", code.system.tag(), code.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_model::{Patient, PatientId, Sex};
    use pastas_time::Date;

    fn onto() -> IntegrationOntology {
        IntegrationOntology::new()
    }

    #[test]
    fn code_hierarchy_is_lifted_to_subsumption() {
        let o = onto();
        assert!(o.is_subclass("ICPC2:T90", "ICPC2:T"));
        assert!(o.is_subclass("ATC:C07AB02", "ATC:C07"));
        assert!(o.is_subclass("ATC:C07AB02", "ATC:C"));
        assert!(o.is_subclass("ICD10:E11", "ICD10:E10-E14"));
        assert!(o.is_subclass("ICD10:E11", "ICD10:IV"));
        assert!(!o.is_subclass("ICPC2:T90", "ICPC2:K"));
    }

    #[test]
    fn cross_system_bridge() {
        let o = onto();
        // The T90/E11 pair both roll up to the Diabetes condition class.
        assert!(o.is_subclass("ICPC2:T90", "cond:Diabetes"));
        assert!(o.is_subclass("ICD10:E11", "cond:Diabetes"));
        assert!(o.is_subclass("cond:Diabetes", "cond:ChronicCondition"));
        assert_eq!(o.conditions_of(&Code::icpc("T90")), vec!["Diabetes"]);
        assert_eq!(o.conditions_of(&Code::icd10("E11")), vec!["Diabetes"]);
        assert!(o.code_indicates(&Code::icpc("R95"), "COPD"));
        assert!(!o.code_indicates(&Code::icpc("R95"), "Diabetes"));
    }

    #[test]
    fn subcategory_rolls_up_through_category() {
        let mut o = onto();
        o.register_code(&Code::icd10("E11.9"));
        o.saturate();
        assert!(o.is_subclass("ICD10:E11.9", "cond:Diabetes"));
        assert_eq!(o.conditions_of(&Code::icd10("E11.9")), vec!["Diabetes"]);
    }

    #[test]
    fn unknown_codes_are_harmless() {
        let o = onto();
        assert!(o.conditions_of(&Code::icpc("A77")).is_empty());
        assert!(!o.is_subclass("ICPC2:A77", "cond:Diabetes"));
    }

    #[test]
    fn structural_classification() {
        use pastas_model::{Entry, Payload};
        let t = Date::new(2020, 1, 1).unwrap().at_midnight();
        let e = Entry::event(t, Payload::Diagnosis(Code::icpc("T90")), SourceKind::PrimaryCare);
        assert_eq!(IntegrationOntology::structural_class(&e), "pastas-int:PrimaryCareContact");
        let stay = Entry::interval(
            t,
            t + pastas_time::Duration::days(3),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        );
        assert_eq!(IntegrationOntology::structural_class(&stay), "pastas-int:InpatientStay");
    }

    #[test]
    fn classify_entry_combines_structure_and_condition() {
        use pastas_model::{Entry, Payload};
        let o = onto();
        let t = Date::new(2020, 1, 1).unwrap().at_midnight();
        let e = Entry::event(t, Payload::Diagnosis(Code::icpc("T90")), SourceKind::PrimaryCare);
        let classes = o.classify_entry(&e);
        for expected in [
            "pastas-int:PrimaryCareContact",
            "pastas-int:Contact",
            "pastas-int:PatientEntry",
            "pastas-int:EntryFor/Diabetes",
        ] {
            assert!(classes.iter().any(|c| c == expected), "missing {expected}: {classes:?}");
        }
        // No diabetes class on an unrelated code.
        let e2 = Entry::event(t, Payload::Diagnosis(Code::icpc("K74")), SourceKind::PrimaryCare);
        let classes2 = o.classify_entry(&e2);
        assert!(classes2.iter().any(|c| c == "pastas-int:EntryFor/IschaemicHeartDisease"));
        assert!(!classes2.iter().any(|c| c == "pastas-int:EntryFor/Diabetes"));
    }

    #[test]
    fn abox_materialization() {
        use pastas_model::{Entry, Payload};
        let o = onto();
        let mut h = History::new(Patient {
            id: PatientId(5),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        let t = Date::new(2020, 1, 1).unwrap().at_midnight();
        h.insert(Entry::event(t, Payload::Diagnosis(Code::icpc("T90")), SourceKind::PrimaryCare));
        h.insert(Entry::interval(
            t,
            t + pastas_time::Duration::days(3),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        ));
        let mut store = TripleStore::new();
        let mut vocab = Vocabulary::new();
        o.assert_history(&h, &mut store, &mut vocab);
        // Event: type + code + patient + source + start = 5; interval adds
        // end but has no code: type + patient + source + start + end = 5.
        assert_eq!(store.len(), 10);
        let rdf_type = Term::Resource(vocab.get(ns::RDF_TYPE).unwrap());
        let contact = Term::Resource(vocab.get("pastas-int:PrimaryCareContact").unwrap());
        assert_eq!(store.subjects(rdf_type, contact).len(), 1);
    }

    #[test]
    fn condition_table_codes_are_valid() {
        for (name, icpc, icd, _) in CONDITIONS {
            for c in icpc {
                assert!(Code::icpc(c).is_valid(), "{name}: bad ICPC {c}");
            }
            for c in icd {
                assert!(Code::icd10(c).is_valid(), "{name}: bad ICD {c}");
            }
        }
    }
}
