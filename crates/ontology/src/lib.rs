//! OWL-style knowledge representation and reasoning for PAsTAs.
//!
//! The paper: "The prototype represents and reasons with patient events in
//! different OWL-formalizations according to the perspective and use: One
//! for **integration and alignment** of patient records and observations;
//! Another for **visual presentation** of individual or cohort
//! trajectories." And §II.D notes the authors re-implemented much of
//! CNTRO's temporal-semantics machinery and were "investigating the use of
//! constraint logic programming to handle interval reasoning".
//!
//! There is no mature OWL reasoner in Rust, so this crate builds the stack
//! from scratch, sized to exactly what those two formalizations need:
//!
//! * [`vocab`] — an IRI interner and the PAsTAs vocabulary;
//! * [`store`] — an indexed RDF-style triple store (SPO/POS/OSP) with
//!   pattern matching;
//! * [`reasoner`] — an EL-flavoured reasoner: normalized TBox axioms
//!   (`A ⊑ B`, `A ⊓ B ⊑ C`, `A ⊑ ∃r.B`, `∃r.A ⊑ B`), completion-rule
//!   saturation for classification, and ABox realization;
//! * [`integration`] — the integration & alignment ontology: source record
//!   classes, the code hierarchies lifted to subsumption axioms, and the
//!   ICPC↔ICD condition bridge;
//! * [`presentation`] — the visual presentation ontology: glyph families,
//!   medication color classes, interval band categories;
//! * [`temporal`] — Allen's interval algebra with an *enumeratively
//!   derived* (and therefore provably exact) composition table, plus
//!   path-consistency constraint propagation and a Simple Temporal Network
//!   solver — the CNTRO-like layer;
//! * [`sparql`] — a basic-graph-pattern (SPARQL SELECT core) engine over
//!   the materialized ABox.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod integration;
pub mod presentation;
pub mod reasoner;
pub mod sparql;
pub mod store;
pub mod temporal;
pub mod vocab;

pub use reasoner::{Axiom, ClassId, Reasoner, RoleId};
pub use store::{Term, TripleStore};
pub use vocab::{Iri, Vocabulary};

#[cfg(test)]
mod proptests;
