//! Property-based tests: the index-accelerated parallel selection path
//! must agree with the naive serial scan on arbitrary synthetic
//! collections, queries and thread counts.

use crate::index::{select_scan, CodeIndex};
use crate::query::QueryBuilder;
use crate::SortKey;
use pastas_synth::{generate_collection, SynthConfig};
use proptest::prelude::*;

/// Patterns covering the probe shapes: exact literal, prefix run,
/// alternation, char class, full wildcard, and a value that never matches.
const PATTERNS: [&str; 7] = ["T90", "K.*", "T90|K74", "E1[014].*", "[KR].*", ".*", "Z99"];

const THREADS: [usize; 3] = [1, 2, 8];

fn build_query(pattern: &str, negate: bool) -> crate::HistoryQuery {
    let b = QueryBuilder::new();
    let b = if negate {
        b.lacks_code(pattern).expect("valid pattern")
    } else {
        b.has_code(pattern).expect("valid pattern")
    };
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn indexed_parallel_select_agrees_with_serial_scan(
        seed in 0u64..200,
        patients in 300u32..900,
        pattern_i in 0u32..7,
        negate_i in 0u32..2,
    ) {
        let negate = negate_i == 1;
        let c = generate_collection(SynthConfig::with_patients(patients as usize), seed);
        let idx = CodeIndex::build(&c);
        idx.debug_validate();
        let q = build_query(PATTERNS[pattern_i as usize], negate);
        let reference = pastas_par::with_threads(1, || select_scan(&c, &q));
        for threads in THREADS {
            let via_index = pastas_par::with_threads(threads, || idx.select(&c, &q));
            let via_scan = pastas_par::with_threads(threads, || select_scan(&c, &q));
            prop_assert_eq!(&via_index, &reference, "index path, threads {}", threads);
            prop_assert_eq!(&via_scan, &reference, "scan path, threads {}", threads);
        }
    }

    #[test]
    fn parallel_sort_agrees_with_itself_serial(
        seed in 0u64..200,
        patients in 300u32..900,
        key_i in 0u32..4,
    ) {
        let c = generate_collection(SynthConfig::with_patients(patients as usize), seed);
        let key = match key_i {
            0 => SortKey::PatientId,
            1 => SortKey::FirstEntry,
            2 => SortKey::EntryCount,
            _ => SortKey::Span,
        };
        let serial = pastas_par::with_threads(1, || crate::sort_histories(&c, &key));
        for threads in THREADS {
            let par = pastas_par::with_threads(threads, || crate::sort_histories(&c, &key));
            prop_assert_eq!(&par, &serial, "threads {}", threads);
        }
    }
}
