//! Property-based tests: the planner-accelerated parallel selection path
//! must agree with the naive serial scan on arbitrary synthetic
//! collections, queries and thread counts (including patient-range
//! sharded stores and multi-shard indexes), query normalization must be
//! idempotent and semantics-preserving on arbitrary query ASTs, and the
//! compressed bitmap's set algebra must agree with the sorted-vec
//! merges it replaced.

use crate::bitmap::Bitmap;
use crate::index::{select_scan, CodeIndex};
use crate::normalize::normalize;
use crate::plan::QueryPlan;
use crate::predicate::EntryPredicate;
use crate::query::{HistoryQuery, QueryBuilder};
use crate::temporal::{GapBound, TemporalPattern};
use crate::SortKey;
use pastas_synth::{generate_collection, SynthConfig};
use pastas_time::{Date, Duration};
use proptest::prelude::*;

/// Patterns covering the probe shapes: exact literal, prefix run,
/// alternation, char class, full wildcard, and a value that never matches.
const PATTERNS: [&str; 7] = ["T90", "K.*", "T90|K74", "E1[014].*", "[KR].*", ".*", "Z99"];

const THREADS: [usize; 3] = [1, 2, 8];

fn build_query(pattern: &str, negate: bool) -> crate::HistoryQuery {
    let b = QueryBuilder::new();
    let b = if negate {
        b.lacks_code(pattern).expect("valid pattern")
    } else {
        b.has_code(pattern).expect("valid pattern")
    };
    b.build()
}

/// Tiny deterministic PRNG (splitmix64) so random query ASTs can be
/// derived from a single proptest-driven `u64` — the vendored proptest
/// has no recursive strategy combinator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random query AST of bounded depth, exercising every leaf kind
/// (counts both ways, temporal patterns, demographics) and every
/// combinator including `Not`.
fn random_query(rng: &mut Rng, depth: u32) -> HistoryQuery {
    let leaf_only = depth == 0;
    let choice = if leaf_only { rng.below(8) } else { rng.below(11) };
    let pattern = |rng: &mut Rng| PATTERNS[rng.below(PATTERNS.len() as u64) as usize];
    match choice {
        0 => HistoryQuery::All,
        1 => HistoryQuery::any(EntryPredicate::code_regex(pattern(rng)).expect("valid pattern")),
        2 => HistoryQuery::none(EntryPredicate::code_regex(pattern(rng)).expect("valid pattern")),
        3 => HistoryQuery::CountAtLeast(
            EntryPredicate::code_regex(pattern(rng)).expect("valid pattern"),
            rng.below(4) as usize,
        ),
        4 => HistoryQuery::CountAtMost(
            EntryPredicate::code_regex(pattern(rng)).expect("valid pattern"),
            rng.below(3) as usize,
        ),
        5 => HistoryQuery::CountAtLeast(EntryPredicate::IsDiagnosis, 1 + rng.below(4) as usize),
        6 => {
            let at = Date::new(2013, 1, 1).expect("valid date");
            let min = rng.below(60) as i32;
            HistoryQuery::AgeBetween { at, min, max: min + rng.below(50) as i32 }
        }
        7 => HistoryQuery::Pattern(
            TemporalPattern::starting_with(
                EntryPredicate::code_regex(pattern(rng)).expect("valid pattern"),
            )
            .then(
                GapBound::within(Duration::days(30 + rng.below(300) as i64)),
                EntryPredicate::IsDiagnosis,
            ),
        ),
        8 => HistoryQuery::Not(Box::new(random_query(rng, depth - 1))),
        n => {
            let arity = 2 + rng.below(2) as usize;
            let children = (0..arity).map(|_| random_query(rng, depth - 1)).collect();
            if n == 9 {
                HistoryQuery::And(children)
            } else {
                HistoryQuery::Or(children)
            }
        }
    }
}

/// A random temporal pattern of 1–3 steps mixing gap and Allen
/// connectors, so both the streaming automaton and the indexed
/// (random-access) mode are exercised; gap minima may be negative
/// (overlap allowed).
fn random_pattern(rng: &mut Rng) -> TemporalPattern {
    use pastas_ontology::temporal::AllenRel;
    let pred = |rng: &mut Rng| -> EntryPredicate {
        match rng.below(6) {
            0 => EntryPredicate::IsDiagnosis,
            1 => EntryPredicate::IsMedication,
            2 => EntryPredicate::IsInterval,
            3 => EntryPredicate::Any,
            _ => EntryPredicate::code_regex(PATTERNS[rng.below(PATTERNS.len() as u64) as usize])
                .expect("valid pattern"),
        }
    };
    let mut pat = TemporalPattern::starting_with(pred(rng));
    for _ in 0..rng.below(3) {
        if rng.below(4) == 0 {
            let rel = match rng.below(4) {
                0 => AllenRel::Before,
                1 => AllenRel::Overlaps,
                2 => AllenRel::During,
                _ => AllenRel::Meets,
            };
            pat = pat.then_related(rel, pred(rng));
        } else {
            let min = rng.below(60) as i64 - 10;
            let max = min + rng.below(365) as i64;
            pat = pat.then(
                GapBound { min: Duration::days(min), max: Duration::days(max) },
                pred(rng),
            );
        }
    }
    pat
}

/// A random sorted-unique position set in one of several shapes chosen
/// to stress each container kind and the 65,536 chunk boundary:
/// sparse (array containers), dense windows (bits containers), run-heavy
/// (runs containers), and boundary-straddling mixtures.
fn random_set(rng: &mut Rng, shape: u64) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    match shape {
        // Sparse uniform over three chunks: array containers.
        0 => {
            let n = rng.below(3_000);
            for _ in 0..n {
                out.push(rng.below(200_000) as u32);
            }
        }
        // Dense window inside one chunk: a bits container.
        1 => {
            let base = rng.below(3) as u32 * 65_536;
            let n = 5_000 + rng.below(20_000);
            for _ in 0..n {
                out.push(base + rng.below(40_000) as u32);
            }
        }
        // Run-heavy, with runs allowed to straddle the chunk boundary.
        2 => {
            let mut pos = rng.below(1_000) as u32;
            for _ in 0..(1 + rng.below(40)) {
                let len = 1 + rng.below(5_000) as u32;
                out.extend(pos..pos + len);
                pos += len + 1 + rng.below(9_000) as u32;
            }
        }
        // Tight cluster right at the chunk boundary.
        3 => {
            for _ in 0..rng.below(2_000) {
                out.push(60_000 + rng.below(12_000) as u32);
            }
        }
        // Large scattered array filling one chunk (stays Array: ≤ 4096
        // values, non-compressible scatter).
        4 => {
            for _ in 0..(3_000 + rng.below(1_000)) {
                out.push(rng.below(65_536) as u32);
            }
        }
        // Tiny same-chunk set: paired with shape 4 this forces the ≥16x
        // array×array skew that routes intersect through the gallop.
        _ => {
            for _ in 0..(1 + rng.below(150)) {
                out.push(rng.below(65_536) as u32);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn bitmap_round_trips_and_ops_agree_with_sorted_vec_merges(
        seed in 0u64..u64::MAX,
        shape_a in 0u64..6,
        shape_b in 0u64..6,
    ) {
        let mut rng = Rng(seed);
        let a = random_set(&mut rng, shape_a);
        let b = random_set(&mut rng, shape_b);
        let ba = Bitmap::from_sorted(&a);
        let bb = Bitmap::from_sorted(&b);
        ba.debug_validate();
        bb.debug_validate();
        // Round trip: Vec<u32> ⇄ containers is lossless.
        prop_assert_eq!(&ba.to_vec(), &a);
        prop_assert_eq!(&bb.to_vec(), &b);
        prop_assert_eq!(ba.len(), a.len());
        // Differential set algebra vs the retired sorted-vec merges.
        let and = ba.intersect(&bb);
        let or = ba.union(&bb);
        and.debug_validate();
        or.debug_validate();
        prop_assert_eq!(and.to_vec(), crate::plan::reference::intersect2(&a, &b));
        prop_assert_eq!(or.to_vec(), crate::plan::reference::union2(&a, &b));
        let n = a.last().copied().unwrap_or(0).max(b.last().copied().unwrap_or(0)) + 1;
        let not_a = ba.complement_up_to(n);
        not_a.debug_validate();
        prop_assert_eq!(not_a.to_vec(), crate::plan::reference::complement(&a, n));
        // Iterator decode agrees with bulk decode.
        prop_assert_eq!(or.iter().collect::<Vec<u32>>(), or.to_vec());
    }

    #[test]
    fn sharded_planner_agrees_with_scan_on_random_asts(
        ast_seed in 0u64..u64::MAX,
        collection_seed in 0u64..100,
        patients in 300u32..700,
        depth in 1u32..3,
    ) {
        // Multi-arena store (an arena per 128 patients) AND multi-shard
        // index (a reduced 256-row shard width so the per-shard fan-out
        // runs without generating 65k+ patients).
        let config = SynthConfig {
            shard_patients: 128,
            ..SynthConfig::with_patients(patients as usize)
        };
        let c = generate_collection(config, collection_seed);
        prop_assert!(c.sharded_store().shard_count() > 1);
        let idx = CodeIndex::build_with_shard_rows(&c, 256);
        idx.debug_validate();
        // The reduced-width index answers exactly like the full-width one.
        let full = CodeIndex::build(&c);
        let broad = pastas_regex::Regex::new("[KR].*").expect("valid pattern");
        prop_assert_eq!(
            idx.candidates_for_regex(&broad).to_vec(),
            full.candidates_for_regex(&broad).to_vec()
        );
        let q = random_query(&mut Rng(ast_seed), depth);
        let plan = QueryPlan::build(&idx, &c, &q);
        let reference = pastas_par::with_threads(1, || select_scan(&c, &q));
        for threads in THREADS {
            let planned = pastas_par::with_threads(threads, || plan.execute(&c, &idx));
            prop_assert_eq!(
                &planned, &reference,
                "threads {}, query {:?}, plan:\n{}", threads, q, plan.render()
            );
        }
        let (explained, explain) = plan.execute_explain(&c, &idx);
        prop_assert_eq!(&explained, &reference);
        prop_assert_eq!(explain.root.rows, reference.len());
    }

    #[test]
    fn indexed_parallel_select_agrees_with_serial_scan(
        seed in 0u64..200,
        patients in 300u32..900,
        pattern_i in 0u32..7,
        negate_i in 0u32..2,
    ) {
        let negate = negate_i == 1;
        let c = generate_collection(SynthConfig::with_patients(patients as usize), seed);
        let idx = CodeIndex::build(&c);
        idx.debug_validate();
        let q = build_query(PATTERNS[pattern_i as usize], negate);
        let reference = pastas_par::with_threads(1, || select_scan(&c, &q));
        for threads in THREADS {
            let via_index = pastas_par::with_threads(threads, || idx.select(&c, &q));
            let via_scan = pastas_par::with_threads(threads, || select_scan(&c, &q));
            prop_assert_eq!(&via_index, &reference, "index path, threads {}", threads);
            prop_assert_eq!(&via_scan, &reference, "scan path, threads {}", threads);
        }
    }

    #[test]
    fn planner_agrees_with_scan_on_random_asts(
        ast_seed in 0u64..u64::MAX,
        collection_seed in 0u64..100,
        patients in 200u32..600,
        depth in 1u32..4,
    ) {
        let c = generate_collection(SynthConfig::with_patients(patients as usize), collection_seed);
        let idx = CodeIndex::build(&c);
        let q = random_query(&mut Rng(ast_seed), depth);
        let plan = QueryPlan::build(&idx, &c, &q);
        let reference = pastas_par::with_threads(1, || select_scan(&c, &q));
        for threads in THREADS {
            let planned = pastas_par::with_threads(threads, || plan.execute(&c, &idx));
            prop_assert_eq!(
                &planned, &reference,
                "threads {}, query {:?}, plan:\n{}", threads, q, plan.render()
            );
        }
        // The explain path returns the same positions it annotates.
        let (explained, explain) = plan.execute_explain(&c, &idx);
        prop_assert_eq!(&explained, &reference);
        prop_assert_eq!(explain.root.rows, reference.len());
    }

    #[test]
    fn normalization_is_idempotent_and_preserves_semantics(
        ast_seed in 0u64..u64::MAX,
        collection_seed in 0u64..100,
        depth in 1u32..4,
    ) {
        let q = random_query(&mut Rng(ast_seed), depth);
        let once = normalize(&q);
        let twice = normalize(&once);
        prop_assert_eq!(
            once.fingerprint(), twice.fingerprint(),
            "normalize not idempotent on {:?}", q
        );
        let c = generate_collection(SynthConfig::with_patients(150), collection_seed);
        for h in &c {
            prop_assert_eq!(q.matches(h), once.matches(h), "{:?} vs {:?}", &q, &once);
        }
    }

    /// Streaming differential: a random interleaving of delta appends
    /// (mutating existing patients and appending new ones), compactions,
    /// and queries must answer every query exactly like the naive oracle
    /// — a scan of the current collection, which by construction holds
    /// all events applied so far — and, after a final compaction, must
    /// converge to the same index a from-scratch rebuild produces.
    #[test]
    fn streaming_interleavings_agree_with_rebuild_oracle(
        op_seed in 0u64..u64::MAX,
        collection_seed in 0u64..100,
        ast_seed in 0u64..u64::MAX,
    ) {
        use pastas_codes::Code;
        use pastas_model::{Entry, OpenEpoch, Patient, PatientId, Payload, Sex, SourceKind};
        const CODES: [&str; 6] = ["T90", "K74", "K86", "Z98", "A01", "E10"];
        let mut c = generate_collection(
            SynthConfig { shard_patients: 64, ..SynthConfig::with_patients(150) },
            collection_seed,
        );
        let mut idx = CodeIndex::build_with_shard_rows(&c, 64);
        let mut rng = Rng(op_seed);
        let mut next_new = 0u64;
        for step in 0..6u64 {
            if rng.below(4) < 3 {
                // Delta batch: 1–3 per-patient appends, mixing existing
                // patients (history mutation) with brand-new ones.
                let mut epoch = OpenEpoch::new();
                for _ in 0..(1 + rng.below(3)) {
                    let patient = if rng.below(2) == 0 {
                        *c.histories()[rng.below(c.len() as u64) as usize].patient()
                    } else {
                        next_new += 1;
                        Patient {
                            id: PatientId(5_000_000 + next_new),
                            birth_date: Date::new(1950, 6, 15).expect("valid date"),
                            sex: if next_new.is_multiple_of(2) { Sex::Female } else { Sex::Male },
                        }
                    };
                    let entries: Vec<Entry> = (0..rng.below(3))
                        .map(|_| {
                            let code = CODES[rng.below(CODES.len() as u64) as usize];
                            let y = 2010 + rng.below(7) as i32;
                            let m = 1 + rng.below(12) as u32;
                            Entry::event(
                                Date::new(y, m, 1).expect("valid date").at_midnight(),
                                Payload::Diagnosis(Code::icpc(code)),
                                SourceKind::PrimaryCare,
                            )
                        })
                        .collect();
                    epoch.append(patient, entries);
                }
                epoch.debug_validate();
                let touched = epoch.seal_into(&mut c);
                let dirty: Vec<u32> = touched
                    .iter()
                    .map(|&id| c.position_of(id).expect("sealed patient has a position") as u32)
                    .collect();
                idx = idx.with_delta(&c, &dirty);
            } else {
                idx = idx.compact();
            }
            idx.debug_validate();
            let q = random_query(&mut Rng(ast_seed ^ step), 2);
            let plan = QueryPlan::build(&idx, &c, &q);
            let reference = pastas_par::with_threads(1, || select_scan(&c, &q));
            for threads in THREADS {
                let planned = pastas_par::with_threads(threads, || plan.execute(&c, &idx));
                prop_assert_eq!(
                    &planned, &reference,
                    "step {}, threads {}, query {:?}, plan:\n{}", step, threads, q, plan.render()
                );
            }
        }
        // Quiesce: one final compaction converges to the rebuilt index.
        let compacted = idx.compact();
        compacted.debug_validate();
        prop_assert!(compacted.side_is_empty());
        let fresh = CodeIndex::build_with_shard_rows(&c, 64);
        let q = random_query(&mut Rng(ast_seed), 2);
        let via_compacted = QueryPlan::build(&compacted, &c, &q).execute(&c, &compacted);
        let via_fresh = QueryPlan::build(&fresh, &c, &q).execute(&c, &fresh);
        prop_assert_eq!(via_compacted, via_fresh);
    }

    /// Tentpole differential: the compiled token automaton agrees with
    /// the retired per-history naive matcher — hit-for-hit on
    /// `find_matches` and on `matches` — over random patterns ×
    /// collections, at 1 and 4 worker threads (the thread-local VM
    /// scratch must stay clean across parallel workers).
    #[test]
    fn temporal_automaton_agrees_with_naive_oracle(
        pattern_seed in 0u64..u64::MAX,
        collection_seed in 0u64..100,
        patients in 100u32..400,
    ) {
        let pat = random_pattern(&mut Rng(pattern_seed));
        let c = generate_collection(
            SynthConfig::with_patients(patients as usize),
            collection_seed,
        );
        let histories = c.histories();
        let naive_hits: Vec<_> = histories.iter().map(|h| pat.naive_find_matches(h)).collect();
        let naive_hit: Vec<bool> = histories.iter().map(|h| pat.naive_matches(h)).collect();
        prop_assert_eq!(
            naive_hits.iter().map(|hs| !hs.is_empty()).collect::<Vec<_>>(),
            naive_hit.clone(),
            "oracle self-consistency"
        );
        for threads in [1usize, 4] {
            let (auto_hits, auto_hit) = pastas_par::with_threads(threads, || {
                (
                    pastas_par::par_map_min(histories, 1, |h| pat.find_matches(h)),
                    pastas_par::par_map_min(histories, 1, |h| pat.matches(h)),
                )
            });
            prop_assert_eq!(&auto_hits, &naive_hits, "find_matches, threads {}", threads);
            prop_assert_eq!(&auto_hit, &naive_hit, "matches, threads {}", threads);
        }
    }

    #[test]
    fn parallel_sort_agrees_with_itself_serial(
        seed in 0u64..200,
        patients in 300u32..900,
        key_i in 0u32..4,
    ) {
        let c = generate_collection(SynthConfig::with_patients(patients as usize), seed);
        let key = match key_i {
            0 => SortKey::PatientId,
            1 => SortKey::FirstEntry,
            2 => SortKey::EntryCount,
            _ => SortKey::Span,
        };
        let serial = pastas_par::with_threads(1, || crate::sort_histories(&c, &key));
        for threads in THREADS {
            let par = pastas_par::with_threads(threads, || crate::sort_histories(&c, &key));
            prop_assert_eq!(&par, &serial, "threads {}", threads);
        }
    }
}
