//! Compressed roaring-style posting lists.
//!
//! `Vec<u32>` postings were the memory and merge ceiling on the road from
//! 168k to 10M patients: a negated clause materializes millions of
//! positions, and every `Intersect`/`Union` walks them one `u32` at a
//! time. This module replaces them with the classic roaring layout:
//! positions are partitioned by their high 16 bits into *containers*,
//! and each container picks the cheapest of three encodings for its low
//! 16 bits:
//!
//! * **Array** — a sorted `Vec<u16>` (≤ [`ARRAY_MAX`] values): sparse
//!   sets, 2 B per position;
//! * **Bits** — a fixed 8 KiB bit set with a cached popcount: dense
//!   mid-range sets, word-at-a-time boolean algebra;
//! * **Runs** — sorted, non-overlapping, non-adjacent inclusive
//!   `(start, last)` intervals: the shape complements produce (a
//!   `lacks(T90)` cohort is a handful of runs, not a million integers).
//!
//! Every constructor and operator normalizes each container to the
//! smallest of the three encodings (ties broken deterministically: a
//! flat encoding wins byte-size ties over runs, and array wins over
//! bits), so two bitmaps holding the same set
//! are structurally identical — the property the shard fan-out's
//! determinism tests lean on. Set operations ([`Bitmap::intersect`],
//! [`Bitmap::union`], [`Bitmap::complement_up_to`]) run container by
//! container on the compressed form: galloping intersection for skewed
//! array×array pairs, word-AND/OR for bits×bits, interval merges for
//! runs — no decode to `Vec<u32>` in the middle of the algebra (the
//! `budget-enforced-alloc` lint enforces this).

use std::cmp::Ordering;

/// Largest array-container cardinality; one more value converts to the
/// 8 KiB bits encoding (the classic roaring threshold: 4096 × 2 B =
/// 8 KiB, the break-even point).
pub const ARRAY_MAX: usize = 4096;

/// Words per bits container (1024 × 64 = 65536 positions).
const WORDS: usize = 1 << 10;

/// Bytes of an encoded bits container (the normalization break-even).
const BITS_BYTES: usize = WORDS * 8;

/// A fixed 65536-position bit set with its cardinality cached — the
/// dense container encoding.
#[derive(Clone, PartialEq, Eq)]
pub(crate) struct Bits {
    words: [u64; WORDS],
    /// Cached popcount over `words` ([`Bitmap::debug_validate`] checks it).
    ones: u32,
}

impl Bits {
    fn zeroed() -> Box<Bits> {
        Box::new(Bits { words: [0; WORDS], ones: 0 })
    }

    #[inline]
    fn contains(&self, v: u16) -> bool {
        // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
        self.words[(v >> 6) as usize] & (1u64 << (v & 63)) != 0
    }

    #[inline]
    fn set(&mut self, v: u16) {
        // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
        self.words[(v >> 6) as usize] |= 1u64 << (v & 63);
    }

    fn recount(&mut self) {
        self.ones = self.words.iter().map(|w| w.count_ones()).sum();
    }

    /// Number of runs of consecutive set bits (for normalization).
    fn run_count(&self) -> usize {
        let mut runs = 0u32;
        let mut carry = 0u64; // high bit of the previous word
        for &w in &self.words {
            runs += (w & !((w << 1) | carry)).count_ones();
            carry = w >> 63;
        }
        runs as usize
    }

    fn to_array(&self) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.ones as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push(((wi as u32) << 6 | bit) as u16);
                w &= w - 1;
            }
        }
        out
    }

    fn to_runs(&self) -> Vec<(u16, u16)> {
        let mut out = Vec::new();
        let mut open: Option<u32> = None;
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            let base = (wi as u32) << 6;
            // Word-skip fast paths keep the dense case cheap.
            if w == u64::MAX {
                match open {
                    Some(_) => {}
                    None => open = Some(base),
                }
                continue;
            }
            if w == 0 {
                if let Some(s) = open.take() {
                    out.push((s as u16, (base - 1) as u16));
                }
                continue;
            }
            for bit in 0..64u32 {
                let set = w & 1 != 0;
                w >>= 1;
                match (set, open) {
                    (true, None) => open = Some(base + bit),
                    (false, Some(s)) => {
                        out.push((s as u16, (base + bit - 1) as u16));
                        open = None;
                    }
                    _ => {}
                }
            }
        }
        if let Some(s) = open {
            out.push((s as u16, u16::MAX));
        }
        out
    }
}

impl std::fmt::Debug for Bits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bits({} ones)", self.ones)
    }
}

/// One 65536-position chunk in its cheapest encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Container {
    /// Sorted, unique low-16 values (≤ [`ARRAY_MAX`]).
    Array(Vec<u16>),
    /// 8 KiB bit set with cached cardinality.
    Bits(Box<Bits>),
    /// Sorted, non-overlapping, non-adjacent inclusive intervals.
    Runs(Vec<(u16, u16)>),
}

impl Container {
    fn len(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bits(b) => b.ones as usize,
            Container::Runs(r) => {
                r.iter().map(|&(s, l)| l as usize - s as usize + 1).sum()
            }
        }
    }

    fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&v).is_ok(),
            Container::Bits(b) => b.contains(v),
            Container::Runs(r) => r
                .binary_search_by(|&(s, l)| {
                    if v < s {
                        Ordering::Greater
                    } else if v > l {
                        Ordering::Less
                    } else {
                        Ordering::Equal
                    }
                })
                .is_ok(),
        }
    }

    /// Number of values ≤ `v`.
    fn rank(&self, v: u16) -> usize {
        match self {
            Container::Array(a) => a.partition_point(|&x| x <= v),
            Container::Bits(b) => {
                let wi = (v >> 6) as usize;
                // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
                let full: u32 = b.words[..wi].iter().map(|w| w.count_ones()).sum();
                let shift = 63 - (v & 63) as u32;
                // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
                full as usize + ((b.words[wi] << shift).count_ones()) as usize
            }
            Container::Runs(r) => {
                let mut n = 0usize;
                for &(s, l) in r {
                    if v < s {
                        break;
                    }
                    n += (v.min(l) - s) as usize + 1;
                }
                n
            }
        }
    }

    /// The `i`-th smallest value (0-based; `i < self.len()`).
    fn select(&self, i: usize) -> u16 {
        match self {
            // lint:allow(no-panic-hot-path) caller contract: i < self.len()
            Container::Array(a) => a[i],
            Container::Bits(b) => {
                let mut remaining = i as u32;
                for (wi, &w) in b.words.iter().enumerate() {
                    let ones = w.count_ones();
                    if remaining < ones {
                        let mut word = w;
                        for _ in 0..remaining {
                            word &= word - 1;
                        }
                        return ((wi as u32) << 6 | word.trailing_zeros()) as u16;
                    }
                    remaining -= ones;
                }
                // lint:allow(no-panic-hot-path) i < len guarantees a hit above
                unreachable!("select index within cached cardinality")
            }
            Container::Runs(r) => {
                let mut remaining = i;
                for &(s, l) in r {
                    let n = (l - s) as usize + 1;
                    if remaining < n {
                        return s + remaining as u16;
                    }
                    remaining -= n;
                }
                // lint:allow(no-panic-hot-path) i < len guarantees a hit above
                unreachable!("select index within run cardinality")
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.capacity() * 2,
            Container::Bits(_) => std::mem::size_of::<Bits>(),
            Container::Runs(r) => r.capacity() * 4,
        }
    }
}

// ---------------------------------------------------------------------------
// Container normalization: always the cheapest encoding
// ---------------------------------------------------------------------------

/// Encoded byte sizes → canonical encoding. Runs are chosen only when
/// strictly smaller: on a byte-size tie the flat encoding (array, then
/// bits) wins — a deterministic total order so equal sets are
/// structurally equal at any thread count or op order.
fn runs_win(n: usize, r: usize) -> bool {
    let runs_bytes = 4 * r;
    let best_flat = if n <= ARRAY_MAX { 2 * n } else { BITS_BYTES };
    runs_bytes < best_flat
}

/// Runs of consecutive values in a sorted unique array.
fn array_run_count(vals: &[u16]) -> usize {
    let mut runs = 0usize;
    let mut prev: Option<u16> = None;
    for &v in vals {
        if prev != v.checked_sub(1) {
            runs += 1;
        }
        prev = Some(v);
    }
    runs
}

fn array_to_runs(vals: &[u16]) -> Vec<(u16, u16)> {
    let mut out = Vec::new();
    for &v in vals {
        match out.last_mut() {
            Some((_, l)) if *l + 1 == v => *l = v,
            _ => out.push((v, v)),
        }
    }
    out
}

fn array_to_bits(vals: &[u16]) -> Box<Bits> {
    let mut b = Bits::zeroed();
    for &v in vals {
        b.set(v);
    }
    b.ones = vals.len() as u32;
    b
}

fn runs_to_bits(runs: &[(u16, u16)]) -> Box<Bits> {
    let mut b = Bits::zeroed();
    for &(s, l) in runs {
        let (s, l) = (s as usize, l as usize);
        let (ws, wl) = (s >> 6, l >> 6);
        let first = u64::MAX << (s & 63);
        let last = u64::MAX >> (63 - (l & 63));
        if ws == wl {
            // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
            b.words[ws] |= first & last;
        } else {
            // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
            b.words[ws] |= first;
            // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
            for w in &mut b.words[ws + 1..wl] {
                *w = u64::MAX;
            }
            // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
            b.words[wl] |= last;
        }
    }
    b.recount();
    b
}

/// Canonicalize a sorted unique value list (any cardinality ≤ 65536).
fn norm_array(vals: Vec<u16>) -> Container {
    let n = vals.len();
    let r = array_run_count(&vals);
    if runs_win(n, r) {
        Container::Runs(array_to_runs(&vals))
    } else if n <= ARRAY_MAX {
        Container::Array(vals)
    } else {
        Container::Bits(array_to_bits(&vals))
    }
}

/// Canonicalize a bit set whose `ones` cache is current.
fn norm_bits(bits: Box<Bits>) -> Container {
    let n = bits.ones as usize;
    let r = bits.run_count();
    if runs_win(n, r) {
        Container::Runs(bits.to_runs())
    } else if n <= ARRAY_MAX {
        Container::Array(bits.to_array())
    } else {
        Container::Bits(bits)
    }
}

/// Canonicalize sorted, non-overlapping, non-adjacent runs.
fn norm_runs(runs: Vec<(u16, u16)>) -> Container {
    let n: usize = runs.iter().map(|&(s, l)| l as usize - s as usize + 1).sum();
    if runs_win(n, runs.len()) {
        Container::Runs(runs)
    } else if n <= ARRAY_MAX {
        let mut vals = Vec::with_capacity(n);
        for &(s, l) in &runs {
            vals.extend(s..=l);
        }
        Container::Array(vals)
    } else {
        Container::Bits(runs_to_bits(&runs))
    }
}

// ---------------------------------------------------------------------------
// Container set algebra
// ---------------------------------------------------------------------------

/// Array ∩ array. Gallops from the smaller side when the size ratio is
/// large (the skewed case: a rare code against a broad chapter), linear
/// merge otherwise.
fn and_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    if small.len() * 16 < large.len() {
        // Galloping: exponential probe then binary search, resuming from
        // the previous hit so the whole pass is O(s · log(l/s)).
        let mut lo = 0usize;
        for &v in small {
            let mut step = 1usize;
            let mut hi = lo;
            // lint:allow(no-panic-hot-path) hi < large.len() checked first
            while hi < large.len() && large[hi] < v {
                lo = hi;
                hi += step;
                step <<= 1;
            }
            // The probe loop exits at the first `hi` with large[hi] >= v,
            // so the match may sit exactly at `hi` — the search range must
            // include it (lo..=hi), hence the +1 before clamping.
            let hi = (hi + 1).min(large.len());
            // lint:allow(no-panic-hot-path) lo ≤ hi ≤ large.len() by the clamp above
            match large[lo..hi].binary_search(&v) {
                Ok(i) => {
                    out.push(v);
                    lo += i + 1;
                }
                Err(i) => lo += i,
            }
            if lo >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while let (Some(&x), Some(&y)) = (small.get(i), large.get(j)) {
            match x.cmp(&y) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    out.push(x);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

fn or_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    loop {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => match x.cmp(&y) {
                Ordering::Less => {
                    out.push(x);
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(y);
                    j += 1;
                }
                Ordering::Equal => {
                    out.push(x);
                    i += 1;
                    j += 1;
                }
            },
            (Some(_), None) => {
                // lint:allow(no-panic-hot-path) a.get(i) was Some, so i < a.len()
                out.extend_from_slice(&a[i..]);
                break;
            }
            (None, Some(_)) => {
                // lint:allow(no-panic-hot-path) b.get(j) was Some, so j < b.len()
                out.extend_from_slice(&b[j..]);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

fn and_array_runs(vals: &[u16], runs: &[(u16, u16)]) -> Vec<u16> {
    let mut out = Vec::new();
    let mut ri = 0usize;
    for &v in vals {
        // lint:allow(no-panic-hot-path) ri < runs.len() checked first
        while ri < runs.len() && runs[ri].1 < v {
            ri += 1;
        }
        match runs.get(ri) {
            Some(&(s, _)) if v >= s => out.push(v),
            Some(_) => {}
            None => break,
        }
    }
    out
}

fn and_runs(a: &[(u16, u16)], b: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while let (Some(&(sa, la)), Some(&(sb, lb))) = (a.get(i), b.get(j)) {
        let s = sa.max(sb);
        let l = la.min(lb);
        if s <= l {
            out.push((s, l));
        }
        if la <= lb {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Merge + coalesce two canonical run lists (u32 arithmetic so a run
/// ending at 65535 cannot overflow the adjacency check).
fn or_runs(a: &[(u16, u16)], b: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out: Vec<(u16, u16)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    loop {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x.0 <= y.0 {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        match out.last_mut() {
            Some(last) if next.0 as u32 <= last.1 as u32 + 1 => {
                last.1 = last.1.max(next.1);
            }
            _ => out.push(next),
        }
    }
    out
}

/// Complement of canonical runs within `0..=last`.
fn not_runs(runs: &[(u16, u16)], last: u16) -> Vec<(u16, u16)> {
    let mut out = Vec::with_capacity(runs.len() + 1);
    let mut next = 0u32;
    for &(s, l) in runs {
        if (s as u32) > next {
            out.push((next as u16, s - 1));
        }
        next = l as u32 + 1;
    }
    if next <= last as u32 {
        out.push((next as u16, last));
    }
    out
}

fn and(a: &Container, b: &Container) -> Container {
    use Container::{Array, Bits as B, Runs};
    match (a, b) {
        (Array(x), Array(y)) => norm_array(and_arrays(x, y)),
        (Array(x), B(w)) | (B(w), Array(x)) => {
            norm_array(x.iter().copied().filter(|&v| w.contains(v)).collect())
        }
        (Array(x), Runs(r)) | (Runs(r), Array(x)) => norm_array(and_array_runs(x, r)),
        (B(x), B(y)) => {
            let mut out = Bits::zeroed();
            for ((o, &p), &q) in out.words.iter_mut().zip(&x.words).zip(&y.words) {
                *o = p & q;
            }
            out.recount();
            norm_bits(out)
        }
        (B(w), Runs(r)) | (Runs(r), B(w)) => {
            // Keep only the bits inside some run: AND against the runs'
            // bit image (word fills, no per-position work).
            let mut out = runs_to_bits(r);
            for (o, &p) in out.words.iter_mut().zip(&w.words) {
                *o &= p;
            }
            out.recount();
            norm_bits(out)
        }
        (Runs(x), Runs(y)) => norm_runs(and_runs(x, y)),
    }
}

fn or(a: &Container, b: &Container) -> Container {
    use Container::{Array, Bits as B, Runs};
    match (a, b) {
        (Array(x), Array(y)) => norm_array(or_arrays(x, y)),
        (Runs(x), Runs(y)) => norm_runs(or_runs(x, y)),
        (B(x), B(y)) => {
            let mut out = Bits::zeroed();
            for ((o, &p), &q) in out.words.iter_mut().zip(&x.words).zip(&y.words) {
                *o = p | q;
            }
            out.recount();
            norm_bits(out)
        }
        (Array(x), B(w)) | (B(w), Array(x)) => {
            let mut out = Box::new((**w).clone());
            for &v in x {
                out.set(v);
            }
            out.recount();
            norm_bits(out)
        }
        (Runs(r), B(w)) | (B(w), Runs(r)) => {
            let mut out = runs_to_bits(r);
            for (o, &p) in out.words.iter_mut().zip(&w.words) {
                *o |= p;
            }
            out.recount();
            norm_bits(out)
        }
        (Array(x), Runs(r)) | (Runs(r), Array(x)) => {
            let mut out = runs_to_bits(r);
            for &v in x {
                out.set(v);
            }
            out.recount();
            norm_bits(out)
        }
    }
}

/// Complement within `0..=last` (the final chunk of a bounded universe).
fn not(c: &Container, last: u16) -> Container {
    match c {
        Container::Array(a) => norm_runs(not_runs(&array_to_runs(a), last)),
        Container::Runs(r) => norm_runs(not_runs(r, last)),
        Container::Bits(b) => {
            let mut out = Bits::zeroed();
            for (o, &w) in out.words.iter_mut().zip(&b.words) {
                *o = !w;
            }
            // Clear everything above `last`.
            let wl = (last >> 6) as usize;
            // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
            out.words[wl] &= u64::MAX >> (63 - (last & 63));
            // lint:allow(no-panic-hot-path) u16 >> 6 < 1024 == WORDS by construction
            for w in &mut out.words[wl + 1..] {
                *w = 0;
            }
            out.recount();
            norm_bits(out)
        }
    }
}

// ---------------------------------------------------------------------------
// The bitmap
// ---------------------------------------------------------------------------

/// A compressed set of `u32` positions: sorted `(high-16-bits, container)`
/// pairs, each container holding the chunk's low 16 bits in its cheapest
/// encoding. Structural equality is set equality (all constructors
/// normalize).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    containers: Vec<(u16, Container)>,
    len: usize,
}

impl Bitmap {
    /// The empty set.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// The full universe `0..n`.
    pub fn full(n: u32) -> Bitmap {
        if n == 0 {
            return Bitmap::new();
        }
        let last = n - 1;
        let mut containers = Vec::with_capacity((last >> 16) as usize + 1);
        for key in 0..=(last >> 16) as u16 {
            let chunk_last =
                if u32::from(key) == last >> 16 { last as u16 } else { u16::MAX };
            containers.push((key, norm_runs(vec![(0, chunk_last)])));
        }
        Bitmap { containers, len: n as usize }
    }

    /// Build from a strictly ascending position slice.
    pub fn from_sorted(values: &[u32]) -> Bitmap {
        let mut b = BitmapBuilder::new();
        for &v in values {
            b.push(v);
        }
        b.finish()
    }

    /// Number of positions in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no position is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        let key = (v >> 16) as u16;
        self.containers
            .binary_search_by_key(&key, |&(k, _)| k)
            // lint:allow(no-panic-hot-path) Ok(i) from binary_search is in bounds
            .is_ok_and(|i| self.containers[i].1.contains(v as u16))
    }

    /// Number of positions ≤ `v`.
    ///
    /// Fast path: one pass over container *headers* — per-container
    /// cardinalities are cached, so only the single container holding
    /// `v` is ranked internally (O(1) for bitset containers, binary
    /// search for arrays). Prefer this over decoding: `rank`/[`select`]
    /// on the compressed form are how consumers (the analytics
    /// dimension pass, pagination) count and slice cohorts without ever
    /// materializing a `Vec<u32>`.
    ///
    /// [`select`]: Bitmap::select
    pub fn rank(&self, v: u32) -> usize {
        let key = (v >> 16) as u16;
        let mut n = 0usize;
        for (k, c) in &self.containers {
            match k.cmp(&key) {
                Ordering::Less => n += c.len(),
                Ordering::Equal => n += c.rank(v as u16),
                Ordering::Greater => break,
            }
        }
        n
    }

    /// The `i`-th smallest position (0-based), if `i < len`.
    ///
    /// Fast path: skips whole containers by their cached cardinality
    /// and descends into exactly one — the dual of [`rank`](Bitmap::rank).
    /// For *sequential* access use [`iter`](Bitmap::iter) (chunked
    /// decode, amortized O(1) per position) or a single hoisted
    /// [`decode_into`](Bitmap::decode_into); calling `select(i)` in a
    /// dense loop re-walks the header prefix every time, and calling
    /// `to_vec()` in a loop defeats the compression outright (the
    /// `budget-enforced-alloc` lint flags the latter in `query/` and
    /// `analytics/`).
    pub fn select(&self, i: usize) -> Option<u32> {
        if i >= self.len {
            return None;
        }
        let mut remaining = i;
        for (k, c) in &self.containers {
            let n = c.len();
            if remaining < n {
                return Some((u32::from(*k) << 16) | u32::from(c.select(remaining)));
            }
            remaining -= n;
        }
        None
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &Bitmap) -> Bitmap {
        let mut containers = Vec::with_capacity(self.containers.len().min(other.containers.len()));
        let mut len = 0usize;
        let (mut i, mut j) = (0, 0);
        while let (Some((ka, ca)), Some((kb, cb))) =
            (self.containers.get(i), other.containers.get(j))
        {
            match ka.cmp(kb) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    let c = and(ca, cb);
                    let n = c.len();
                    if n > 0 {
                        len += n;
                        containers.push((*ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Bitmap { containers, len }
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        let mut containers = Vec::with_capacity(self.containers.len() + other.containers.len());
        let mut len = 0usize;
        let (mut i, mut j) = (0, 0);
        loop {
            let entry = match (self.containers.get(i), other.containers.get(j)) {
                (Some((ka, ca)), Some((kb, cb))) => match ka.cmp(kb) {
                    Ordering::Less => {
                        i += 1;
                        (*ka, ca.clone())
                    }
                    Ordering::Greater => {
                        j += 1;
                        (*kb, cb.clone())
                    }
                    Ordering::Equal => {
                        i += 1;
                        j += 1;
                        (*ka, or(ca, cb))
                    }
                },
                (Some((ka, ca)), None) => {
                    i += 1;
                    (*ka, ca.clone())
                }
                (None, Some((kb, cb))) => {
                    j += 1;
                    (*kb, cb.clone())
                }
                (None, None) => break,
            };
            len += entry.1.len();
            containers.push(entry);
        }
        Bitmap { containers, len }
    }

    /// `{0..n} \ self`. Positions of `self` at or beyond `n` must not
    /// exist (postings only ever hold positions inside the universe).
    pub fn complement_up_to(&self, n: u32) -> Bitmap {
        if n == 0 {
            return Bitmap::new();
        }
        let last = n - 1;
        let high = (last >> 16) as u16;
        let mut containers = Vec::with_capacity(high as usize + 1);
        let mut len = 0usize;
        let mut i = 0usize;
        for key in 0..=high {
            let chunk_last = if key == high { last as u16 } else { u16::MAX };
            let c = match self.containers.get(i) {
                Some((k, c)) if *k == key => {
                    i += 1;
                    not(c, chunk_last)
                }
                _ => norm_runs(vec![(0, chunk_last)]),
            };
            let n = c.len();
            if n > 0 {
                len += n;
                containers.push((key, c));
            }
        }
        Bitmap { containers, len }
    }

    /// Append every position, offset by `base`, to `out` in ascending
    /// order — the shard-merge decode path (`base` is the shard's first
    /// global position).
    pub fn decode_into(&self, base: u32, out: &mut Vec<u32>) {
        out.reserve(self.len);
        for (k, c) in &self.containers {
            let hi = u32::from(*k) << 16;
            match c {
                Container::Array(a) => {
                    out.extend(a.iter().map(|&v| base + (hi | u32::from(v))));
                }
                Container::Bits(b) => {
                    for (wi, &word) in b.words.iter().enumerate() {
                        let mut w = word;
                        let wbase = base + (hi | (wi as u32) << 6);
                        while w != 0 {
                            out.push(wbase + w.trailing_zeros());
                            w &= w - 1;
                        }
                    }
                }
                Container::Runs(r) => {
                    for &(s, l) in r {
                        out.extend((base + (hi | u32::from(s)))..=(base + (hi | u32::from(l))));
                    }
                }
            }
        }
    }

    /// Decode to a sorted `Vec<u32>`. Fine at boundaries (tests, final
    /// result assembly); never call this between set operations — that is
    /// exactly the allocation the compressed form exists to avoid, and
    /// the `budget-enforced-alloc` lint flags it inside loops.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.decode_into(0, &mut out);
        out
    }

    /// Iterate positions in ascending order without materializing.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter { bitmap: self, ci: 0, state: IterState::fresh() }
    }

    /// Append `other`'s positions, offset by `base`. Every offset
    /// position must exceed every existing one (shards ascend).
    ///
    /// Production shard bases are 65536-aligned, where this is a pure
    /// container concatenation with rebased keys — no decode, containers
    /// move wholesale. An unaligned `base` (reduced-width test indexes
    /// only) falls back to decoding and rebuilding.
    pub fn append_shard(&mut self, base: u32, other: &Bitmap) {
        if base & 0xFFFF == 0 {
            let shift = (base >> 16) as u16;
            for (k, c) in &other.containers {
                let key = shift + *k;
                debug_assert!(
                    self.containers.last().is_none_or(|(last, _)| *last < key),
                    "shard containers must append in ascending key order"
                );
                self.containers.push((key, c.clone()));
            }
            self.len += other.len;
        } else {
            let mut vals = Vec::with_capacity(self.len + other.len);
            self.decode_into(0, &mut vals);
            other.decode_into(base, &mut vals);
            *self = Bitmap::from_sorted(&vals);
        }
    }

    /// Heap bytes of the compressed form (container headers + payloads).
    pub fn heap_bytes(&self) -> usize {
        self.containers.capacity() * std::mem::size_of::<(u16, Container)>()
            + self.containers.iter().map(|(_, c)| c.heap_bytes()).sum::<usize>()
    }

    /// Bytes the same set costs as an uncompressed `Vec<u32>`.
    pub fn uncompressed_bytes_est(&self) -> usize {
        self.len * 4
    }

    /// How many containers use each encoding: `(array, bits, runs)`.
    pub fn container_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for (_, c) in &self.containers {
            match c {
                Container::Array(_) => counts.0 += 1,
                Container::Bits(_) => counts.1 += 1,
                Container::Runs(_) => counts.2 += 1,
            }
        }
        counts
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Panics unless keys ascend strictly, no container is empty or
    /// over-full, the cached lengths are consistent, and each container
    /// honours its encoding's invariants: arrays sorted and unique (and
    /// ≤ [`ARRAY_MAX`]), bits cardinality matching the actual popcount,
    /// runs sorted, non-overlapping and non-adjacent.
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        let mut total = 0usize;
        let mut prev_key: Option<u16> = None;
        for (key, c) in &self.containers {
            assert!(
                prev_key.is_none_or(|p| p < *key),
                "bitmap: container keys out of order at {key}"
            );
            prev_key = Some(*key);
            let n = c.len();
            assert!(n > 0, "bitmap: empty container at key {key}");
            total += n;
            match c {
                Container::Array(a) => {
                    assert!(a.len() <= ARRAY_MAX, "bitmap: array container over-full");
                    for w in a.windows(2) {
                        assert!(
                            // lint:allow(no-panic-hot-path) windows(2) yields pairs
                            w[0] < w[1],
                            "bitmap: array container out of order or duplicated at key {key}"
                        );
                    }
                }
                Container::Bits(b) => {
                    let pop: u32 = b.words.iter().map(|w| w.count_ones()).sum();
                    assert_eq!(
                        b.ones, pop,
                        "bitmap: bits container cached cardinality != popcount at key {key}"
                    );
                    assert!(
                        pop as usize > ARRAY_MAX,
                        "bitmap: bits container below the array threshold at key {key}"
                    );
                }
                Container::Runs(r) => {
                    assert!(!r.is_empty(), "bitmap: empty run list at key {key}");
                    for &(s, l) in r {
                        assert!(s <= l, "bitmap: reversed run at key {key}");
                    }
                    for w in r.windows(2) {
                        assert!(
                            // lint:allow(no-panic-hot-path) windows(2) yields pairs
                            (w[0].1 as u32) + 1 < w[1].0 as u32,
                            "bitmap: overlapping or adjacent runs at key {key}"
                        );
                    }
                }
            }
        }
        assert_eq!(self.len, total, "bitmap: cached length != container total");
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}
}

impl FromIterator<u32> for Bitmap {
    /// Collect from strictly ascending positions.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Bitmap {
        let mut b = BitmapBuilder::new();
        for v in iter {
            b.push(v);
        }
        b.finish()
    }
}

/// Push-based constructor for strictly ascending positions — the index
/// build's path (chunk values accumulate as `u16` and seal into a
/// normalized container when the position crosses a chunk boundary).
#[derive(Debug, Default)]
pub struct BitmapBuilder {
    containers: Vec<(u16, Container)>,
    key: u16,
    chunk: Vec<u16>,
    len: usize,
    last: Option<u32>,
}

impl BitmapBuilder {
    /// An empty builder.
    pub fn new() -> BitmapBuilder {
        BitmapBuilder::default()
    }

    /// Append a position. Must be strictly greater than every previous
    /// push (debug-asserted).
    pub fn push(&mut self, v: u32) {
        debug_assert!(
            self.last.is_none_or(|p| p < v),
            "BitmapBuilder positions must ascend strictly"
        );
        self.last = Some(v);
        let key = (v >> 16) as u16;
        if key != self.key && !self.chunk.is_empty() {
            let vals = std::mem::take(&mut self.chunk);
            self.containers.push((self.key, norm_array(vals)));
        }
        self.key = key;
        self.chunk.push(v as u16);
        self.len += 1;
    }

    /// Seal the final chunk and return the bitmap.
    pub fn finish(mut self) -> Bitmap {
        if !self.chunk.is_empty() {
            self.containers.push((self.key, norm_array(self.chunk)));
        }
        Bitmap { containers: self.containers, len: self.len }
    }
}

enum IterState {
    /// Index into the current array / expanded position in runs / word
    /// cursor in bits.
    Array(usize),
    Bits { wi: usize, word: u64 },
    Runs { ri: usize, next: u32 },
}

impl IterState {
    fn fresh() -> IterState {
        IterState::Array(0)
    }
}

/// Ascending-order position iterator over a [`Bitmap`].
pub struct BitmapIter<'a> {
    bitmap: &'a Bitmap,
    ci: usize,
    state: IterState,
}

impl Iterator for BitmapIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            let (key, c) = self.bitmap.containers.get(self.ci)?;
            let hi = u32::from(*key) << 16;
            match c {
                Container::Array(a) => {
                    let IterState::Array(i) = &mut self.state else {
                        self.state = IterState::Array(0);
                        continue;
                    };
                    if let Some(&v) = a.get(*i) {
                        *i += 1;
                        return Some(hi | u32::from(v));
                    }
                }
                Container::Bits(b) => {
                    let IterState::Bits { wi, word } = &mut self.state else {
                        // lint:allow(no-panic-hot-path) WORDS == 1024 words always exist
                        self.state = IterState::Bits { wi: 0, word: b.words[0] };
                        continue;
                    };
                    loop {
                        if *word != 0 {
                            let bit = word.trailing_zeros();
                            *word &= *word - 1;
                            return Some(hi | (*wi as u32) << 6 | bit);
                        }
                        *wi += 1;
                        match b.words.get(*wi) {
                            Some(&w) => *word = w,
                            None => break,
                        }
                    }
                }
                Container::Runs(r) => {
                    let IterState::Runs { ri, next } = &mut self.state else {
                        // lint:allow(no-panic-hot-path) run containers are never empty
                        self.state = IterState::Runs { ri: 0, next: u32::from(r[0].0) };
                        continue;
                    };
                    if let Some(&(s, l)) = r.get(*ri) {
                        let v = (*next).max(u32::from(s));
                        if v <= u32::from(l) {
                            *next = v + 1;
                            return Some(hi | v);
                        }
                        *ri += 1;
                        if let Some(&(s2, _)) = r.get(*ri) {
                            *next = u32::from(s2);
                        }
                        continue;
                    }
                }
            }
            self.ci += 1;
            self.state = IterState::fresh();
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.bitmap.len))
    }
}

impl<'a> IntoIterator for &'a Bitmap {
    type Item = u32;
    type IntoIter = BitmapIter<'a>;
    fn into_iter(self) -> BitmapIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — the same tiny deterministic generator the proptests
    /// use; no external randomness in tests.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn sorted_set(rng: &mut Rng, max: u32, approx: usize) -> Vec<u32> {
        let mut v: Vec<u32> =
            (0..approx).map(|_| rng.below(u64::from(max)) as u32).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// A run-heavy shape: long consecutive stretches with gaps.
    fn runny_set(rng: &mut Rng, max: u32) -> Vec<u32> {
        let mut v = Vec::new();
        let mut pos = 0u32;
        while pos < max {
            let run = rng.below(2_000) as u32 + 1;
            let gap = rng.below(5_000) as u32 + 1;
            v.extend(pos..(pos + run).min(max));
            pos += run + gap;
        }
        v
    }

    #[test]
    fn round_trip_preserves_values() {
        let mut rng = Rng(7);
        for max in [100u32, 70_000, 300_000] {
            for approx in [0usize, 5, 900, 6_000] {
                let vals = sorted_set(&mut rng, max, approx);
                let bm = Bitmap::from_sorted(&vals);
                bm.debug_validate();
                assert_eq!(bm.to_vec(), vals);
                assert_eq!(bm.len(), vals.len());
                assert_eq!(bm.iter().collect::<Vec<_>>(), vals);
            }
        }
    }

    #[test]
    fn container_boundary_values_round_trip() {
        // Values straddling chunk edges and the array→bits threshold.
        let mut vals: Vec<u32> = vec![0, 1, 65_535, 65_536, 65_537, 131_071, 131_072];
        vals.extend(200_000..200_000 + ARRAY_MAX as u32 + 10); // force bits.. wait, runs
        let bm = Bitmap::from_sorted(&vals);
        bm.debug_validate();
        assert_eq!(bm.to_vec(), vals);
        // A dense-but-scattered chunk exceeds ARRAY_MAX and becomes bits.
        let scattered: Vec<u32> = (0..(ARRAY_MAX as u32 + 100)).map(|i| i * 3).collect();
        let bm = Bitmap::from_sorted(&scattered);
        bm.debug_validate();
        let (_, bits, _) = bm.container_counts();
        assert!(bits >= 1, "scattered 4196 values over 12k span must use bits");
        assert_eq!(bm.to_vec(), scattered);
    }

    #[test]
    fn run_heavy_sets_choose_runs() {
        let vals: Vec<u32> = (10..60_000).collect();
        let bm = Bitmap::from_sorted(&vals);
        bm.debug_validate();
        let (_, _, runs) = bm.container_counts();
        assert_eq!(runs, 1, "one dense run must encode as a run container");
        // Dominated by the container header; the payload is one 4-byte run.
        assert!(bm.heap_bytes() < 512, "run encoding is tiny, got {}", bm.heap_bytes());
        assert_eq!(bm.to_vec(), vals);
    }

    #[test]
    fn full_and_complement() {
        for n in [0u32, 1, 100, 65_536, 65_537, 200_000] {
            let full = Bitmap::full(n);
            full.debug_validate();
            assert_eq!(full.len(), n as usize);
            let none = full.complement_up_to(n);
            none.debug_validate();
            assert!(none.is_empty(), "complement of full is empty at {n}");
            let refill = Bitmap::new().complement_up_to(n);
            assert_eq!(refill, full, "complement of empty is full at {n}");
        }
    }

    #[test]
    fn equal_sets_are_structurally_equal() {
        // Same set via different construction routes must compare equal —
        // the canonical-form guarantee the determinism tests rely on.
        let vals: Vec<u32> = (0..50_000).filter(|v| v % 7 != 0).collect();
        let built = Bitmap::from_sorted(&vals);
        let multiples: Vec<u32> = (0..50_000).filter(|v| v % 7 == 0).collect();
        let complemented = Bitmap::from_sorted(&multiples).complement_up_to(50_000);
        assert_eq!(built, complemented);
        let unioned = {
            let (a, b): (Vec<u32>, Vec<u32>) = vals.iter().partition(|&&v| v % 2 == 0);
            Bitmap::from_sorted(&a).union(&Bitmap::from_sorted(&b))
        };
        assert_eq!(built, unioned);
    }

    #[test]
    fn rank_and_select_are_inverse() {
        let mut rng = Rng(42);
        let vals = sorted_set(&mut rng, 400_000, 3_000);
        let bm = Bitmap::from_sorted(&vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(bm.select(i), Some(v), "select({i})");
            assert_eq!(bm.rank(v), i + 1, "rank({v})");
        }
        assert_eq!(bm.select(vals.len()), None);
        assert_eq!(bm.rank(0), usize::from(vals.first() == Some(&0)));
        // Rank of a value below the first element is 0.
        if let Some(&first) = vals.first() {
            if first > 0 {
                assert_eq!(bm.rank(first - 1), 0);
            }
        }
    }

    #[test]
    fn contains_matches_membership() {
        let vals = vec![0u32, 3, 65_535, 65_536, 131_072, 400_001];
        let bm = Bitmap::from_sorted(&vals);
        for &v in &vals {
            assert!(bm.contains(v));
        }
        for v in [1u32, 2, 65_534, 65_537, 400_000, 400_002] {
            assert!(!bm.contains(v), "{v}");
        }
    }

    /// Differential: bitmap ops versus the sorted-vec reference merges in
    /// `plan.rs`, over random, boundary-straddling and run-heavy shapes.
    #[test]
    fn ops_agree_with_sorted_vec_merges() {
        use crate::plan::reference;
        let mut rng = Rng(2016);
        let universe = 300_000u32;
        for case in 0..40 {
            let a = match case % 4 {
                0 => sorted_set(&mut rng, universe, 4_000),
                1 => runny_set(&mut rng, universe),
                2 => sorted_set(&mut rng, 70_000, 8_000),
                _ => Vec::new(),
            };
            let b = match case % 3 {
                0 => runny_set(&mut rng, universe),
                1 => sorted_set(&mut rng, universe, 50),
                _ => sorted_set(&mut rng, universe, 9_000),
            };
            let (ba, bb) = (Bitmap::from_sorted(&a), Bitmap::from_sorted(&b));
            let i = ba.intersect(&bb);
            let u = ba.union(&bb);
            let c = ba.complement_up_to(universe);
            i.debug_validate();
            u.debug_validate();
            c.debug_validate();
            assert_eq!(i.to_vec(), reference::intersect2(&a, &b), "case {case} ∩");
            assert_eq!(u.to_vec(), reference::union2(&a, &b), "case {case} ∪");
            assert_eq!(c.to_vec(), reference::complement(&a, universe), "case {case} ¬");
            // Ops commute.
            assert_eq!(i, bb.intersect(&ba), "case {case} ∩ commutes");
            assert_eq!(u, bb.union(&ba), "case {case} ∪ commutes");
        }
    }

    #[test]
    fn galloping_intersection_handles_skew() {
        // A tiny array against a huge one takes the galloping path. The
        // large side must be non-compressible (no consecutive values) so
        // normalization keeps it an Array container rather than Runs —
        // otherwise the intersect routes to the array×runs merge and the
        // gallop ships untested.
        let small: Vec<u32> = vec![0, 2_000, 3_999, 4_000, 7_998];
        let large: Vec<u32> = (0..4_000).map(|i| i * 2).collect();
        let (bs, bl) = (Bitmap::from_sorted(&small), Bitmap::from_sorted(&large));
        assert_eq!(bs.container_counts(), (1, 0, 0), "small side must be an array");
        assert_eq!(bl.container_counts(), (1, 0, 0), "large side must be an array");
        // Regression: 0 == large[0] exercises the gallop's empty-probe
        // resume point (v == large[lo]), which once dropped the match.
        assert_eq!(bs.intersect(&bl).to_vec(), vec![0, 2_000, 4_000, 7_998]);
        assert_eq!(bl.intersect(&bs).to_vec(), vec![0, 2_000, 4_000, 7_998]);
    }

    /// Differential sweep over skewed same-chunk array×array pairs — the
    /// galloping path with matches forced at resume points (`v ==
    /// large[lo]`), a shape the random generators in
    /// `ops_agree_with_sorted_vec_merges` almost never produce.
    #[test]
    fn galloping_intersection_agrees_with_reference() {
        use crate::plan::reference;
        for seed in 0..8u64 {
            let mut rng = Rng(seed * 7 + 1);
            // ~3900 scattered values in one chunk: Array, not Runs/Bits.
            let large = sorted_set(&mut rng, 60_000, 4_000);
            // Every 64th large value is a guaranteed hit (including
            // large[0], the empty-probe case), plus scattered misses.
            let mut small: Vec<u32> = large.iter().copied().step_by(64).collect();
            small.extend((0..16).map(|_| rng.below(60_000) as u32));
            small.sort_unstable();
            small.dedup();
            let (bs, bl) = (Bitmap::from_sorted(&small), Bitmap::from_sorted(&large));
            assert_eq!(bl.container_counts(), (1, 0, 0), "seed {seed}: large not array");
            assert_eq!(bs.container_counts(), (1, 0, 0), "seed {seed}: small not array");
            assert!(small.len() * 16 < large.len(), "seed {seed}: skew below gallop cutoff");
            let got = bs.intersect(&bl);
            got.debug_validate();
            assert_eq!(got.to_vec(), reference::intersect2(&small, &large), "seed {seed}");
            assert_eq!(got, bl.intersect(&bs), "seed {seed}: ∩ commutes");
        }
    }

    #[test]
    fn append_shard_concatenates_without_decoding() {
        let a: Vec<u32> = (0..1_000).map(|v| v * 3).collect();
        let b: Vec<u32> = (0..500).map(|v| v * 5).collect();
        let mut merged = Bitmap::new();
        merged.append_shard(0, &Bitmap::from_sorted(&a));
        merged.append_shard(1 << 16, &Bitmap::from_sorted(&b));
        merged.debug_validate();
        let mut expect = a;
        expect.extend(b.iter().map(|v| v + (1 << 16)));
        assert_eq!(merged.to_vec(), expect);
    }

    #[test]
    fn compression_beats_vec_u32_on_posting_shapes() {
        // A 7.7%-selectivity posting over 65536 rows (the paper's cohort
        // density) must compress well below 4 B/position.
        let mut rng = Rng(13);
        let vals = sorted_set(&mut rng, 65_536, 5_000);
        let bm = Bitmap::from_sorted(&vals);
        assert!(
            bm.heap_bytes() * 2 <= bm.uncompressed_bytes_est(),
            "compressed {} B vs vec {} B",
            bm.heap_bytes(),
            bm.uncompressed_bytes_est()
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of order or duplicated")]
    fn debug_validate_catches_unsorted_array() {
        // Non-consecutive values, so normalization keeps the array form.
        let mut bm = Bitmap::from_sorted(&[1, 5, 9]);
        if let Container::Array(a) = &mut bm.containers[0].1 {
            a.swap(0, 2);
        }
        bm.debug_validate();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cached cardinality != popcount")]
    fn debug_validate_catches_stale_popcount() {
        let scattered: Vec<u32> = (0..(ARRAY_MAX as u32 + 100)).map(|i| i * 3).collect();
        let mut bm = Bitmap::from_sorted(&scattered);
        if let Container::Bits(b) = &mut bm.containers[0].1 {
            b.words[0] ^= 1;
        }
        bm.debug_validate();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overlapping or adjacent runs")]
    fn debug_validate_catches_adjacent_runs() {
        let vals: Vec<u32> = (10..60_000).collect();
        let mut bm = Bitmap::from_sorted(&vals);
        if let Container::Runs(r) = &mut bm.containers[0].1 {
            let (s, l) = r[0];
            let mid = s + (l - s) / 2;
            *r = vec![(s, mid), (mid + 1, l)]; // adjacent split
        }
        bm.debug_validate();
    }
}
