//! Cohort identification and exploration operators.
//!
//! §IV: "Interactive operations on this diagram include **extraction of
//! sub-collections, sorting and aligning histories, filtering events, and
//! searching for temporal patterns**." This crate is the headless engine
//! behind all four, plus the Fig. 4 query builder:
//!
//! * [`predicate`] — entry-level predicates, including the regex code
//!   filters of §IV.A (`F.*|H.*`) with boolean composition;
//! * [`query`] — history-level queries and the fluent [`QueryBuilder`];
//! * [`temporal`] — temporal pattern search: ordered event sequences with
//!   gap constraints ("T90 then hospitalization within 90 days");
//! * [`bitmap`] — compressed roaring-style posting bitmaps: set algebra
//!   on array/bits/run containers without materializing positions;
//! * [`index`] — the inverted code index, sharded by patient range with
//!   compressed postings, that keeps selection interactive from 168k to
//!   10M patients (the indexed-vs-scan ablation of E5/E8 compares
//!   against the naive path);
//! * [`normalize`] — logical rewriting into one canonical form per query
//!   meaning (negation at the leaves, flat sorted clauses);
//! * [`plan`] — the physical planner/executor: set algebra over posting
//!   lists with residual verification and `Explain` introspection;
//! * [`ops`] — the workbench operators: select, sort, align.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod index;
pub mod normalize;
pub mod plan;
#[cfg(test)]
mod proptests;
pub mod ops;
pub mod parse;
pub mod predicate;
pub mod query;
pub mod stats;
pub mod temporal;

pub use bitmap::Bitmap;
pub use index::{CodeIndex, IndexFootprint};
pub use normalize::{canonical_fingerprint, normalize};
pub use ops::{align_on, sort_histories, Alignment, SortKey};
pub use plan::{Explain, ExplainNode, PlanNode, QueryPlan};
pub use predicate::EntryPredicate;
pub use parse::parse_query;
pub use query::{HistoryQuery, QueryBuilder};
pub use temporal::{GapBound, StepConstraint, TemporalPattern};
