//! Physical query plans: set algebra over the posting index.
//!
//! The paper's headline workflow — carve 13,000 patients out of 168,000
//! by combining code selections, exclusions, and demographic bounds — is
//! a multi-clause boolean query. The old path accelerated exactly one
//! shape (a conjunction containing a positive code regex) and fell back
//! to a full scan for everything else; a `has(X) and lacks(Y)` cohort
//! enumerated all histories. This module replaces that special case with
//! a two-stage pipeline:
//!
//! 1. **Logical**: [`crate::normalize::normalize`] rewrites the query to
//!    a canonical form (negation at the leaves, flat sorted clauses) so
//!    equivalent queries share one plan and one cache key.
//! 2. **Physical**: [`QueryPlan::build`] maps each canonical leaf to an
//!    operator — posting fetch for code-regex leaves (positive *and*
//!    negative, via intersect/union/complement on compressed roaring
//!    containers — no position list materializes mid-algebra), residual
//!    evaluation over the candidate set
//!    for demographic/count/temporal leaves — with a posting-size
//!    cardinality estimate choosing index-vs-scan per subtree.
//!
//! Execution ([`QueryPlan::execute`]) evaluates the operator tree **per
//! index shard** on compressed bitmaps ([`crate::bitmap::Bitmap`]): each
//! patient-range shard of the index evaluates the whole tree over its
//! own shard-relative position space (where containers stay dense),
//! multi-shard collections fan the shards out on [`pastas_par`], and the
//! shard-local results concatenate in shard order — which *is* the
//! global ascending order, no merge or sort needed. Residual
//! verification runs chunked and order-preserving, so results are
//! deterministic at any thread count. Every node records candidate
//! counts and wall time into an [`Explain`] tree (summed across shards)
//! for `EXPLAIN`-style debugging and the serve layer's `?explain=1`.

use crate::bitmap::Bitmap;
use crate::index::{CodeIndex, IndexShard};
use crate::normalize::{is_never, normalize};
use crate::predicate::EntryPredicate;
use crate::query::HistoryQuery;
use pastas_model::HistoryCollection;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-thread minimum candidates before residual verification goes
/// parallel (same threshold as the index's candidate verification).
const PAR_MIN_CANDIDATES: usize = 256;

// ---------------------------------------------------------------------------
// Sorted-vec merges (side-index execution + bitmap test oracle)
// ---------------------------------------------------------------------------

/// Merge-based set algebra over sorted, deduplicated `u32` postings.
/// Production set operations over the *main* shards run on
/// [`crate::bitmap::Bitmap`]'s compressed containers; these linear
/// merges serve two roles: the execution engine of the side-index
/// residual pass (`exec_side` — dirty sets are small, so sorted vecs
/// beat container overhead), and the independent oracle the bitmap's
/// differential tests (unit and property) compare against.
pub(crate) mod reference {
    /// `a ∩ b` of two strictly ascending lists.
    pub(crate) fn intersect2(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while let (Some(&x), Some(&y)) = (a.get(i), b.get(j)) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// `a ∪ b` of two strictly ascending lists.
    pub(crate) fn union2(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        loop {
            match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) => match x.cmp(&y) {
                    std::cmp::Ordering::Less => {
                        out.push(x);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(y);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(x);
                        i += 1;
                        j += 1;
                    }
                },
                (Some(_), None) => {
                    // lint:allow(no-panic-hot-path) i never passes a.len() by the merge
                    out.extend_from_slice(&a[i..]);
                    break;
                }
                (None, Some(_)) => {
                    // lint:allow(no-panic-hot-path) j never passes b.len() by the merge
                    out.extend_from_slice(&b[j..]);
                    break;
                }
                (None, None) => break,
            }
        }
        out
    }

    /// `U \ a` where the universe is `0..rows`, `a` strictly ascending.
    #[cfg(test)]
    pub(crate) fn complement(a: &[u32], rows: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity((rows as usize).saturating_sub(a.len()));
        let mut next = 0u32;
        for &x in a {
            out.extend(next..x.min(rows));
            next = x.saturating_add(1);
        }
        out.extend(next..rows);
        out
    }

    /// `a \ b` of two strictly ascending lists.
    pub(crate) fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len());
        let mut j = 0;
        for &x in a {
            while b.get(j).is_some_and(|&y| y < x) {
                j += 1;
            }
            if b.get(j) != Some(&x) {
                out.push(x);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The physical operator tree
// ---------------------------------------------------------------------------

/// One physical operator. Every node evaluates to a strictly ascending
/// set of history positions.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Every position `0..rows`.
    AllRows,
    /// The empty set (a query normalization proved can match nothing).
    Empty,
    /// Union of the posting lists selected by a set of code-regex
    /// patterns — the leaf the inverted index answers directly.
    IndexFetch {
        /// Regex patterns whose matching vocabulary postings are unioned.
        patterns: Vec<String>,
    },
    /// `0..rows` minus the child's set (negated code clauses).
    Complement(Box<PlanNode>),
    /// `∩` of the children, evaluated smallest-estimate first.
    Intersect(Vec<PlanNode>),
    /// `∪` of the children.
    Union(Vec<PlanNode>),
    /// Evaluate a residual query per candidate history from the child's
    /// set (parallel, order-preserving) — counts, demographics, temporal
    /// patterns, anything the postings alone cannot decide.
    Filter {
        /// The residual query verified against each candidate.
        query: HistoryQuery,
        /// Candidate source.
        input: Box<PlanNode>,
    },
    /// Full scan: evaluate the query against every history. The planner
    /// emits this only when no clause is index-servable (or the index
    /// provably cannot prune); the serve layer counts these.
    FullScan {
        /// The query evaluated per history.
        query: HistoryQuery,
    },
    /// Temporal-pattern verification over an index prefilter: the child
    /// intersects each pattern step's candidate postings (every step must
    /// be matched by *some* entry, so a matching history lies in every
    /// step's posting union), and the compiled automaton runs only on the
    /// surviving candidates.
    PatternScan {
        /// The `Pattern` query the automaton verifies per candidate.
        query: HistoryQuery,
        /// The per-step posting intersection feeding candidates.
        input: Box<PlanNode>,
    },
}

impl PlanNode {
    fn is_full_scan(&self) -> bool {
        matches!(self, PlanNode::FullScan { .. })
    }

    /// Does any node of this subtree enumerate all histories with
    /// per-history predicate evaluation?
    pub fn contains_full_scan(&self) -> bool {
        match self {
            PlanNode::FullScan { .. } => true,
            PlanNode::Complement(c) => c.contains_full_scan(),
            PlanNode::Filter { input, .. } | PlanNode::PatternScan { input, .. } => {
                input.contains_full_scan()
            }
            PlanNode::Intersect(cs) | PlanNode::Union(cs) => {
                cs.iter().any(PlanNode::contains_full_scan)
            }
            _ => false,
        }
    }

    /// Operator name for Explain / rendering.
    fn op(&self) -> &'static str {
        match self {
            PlanNode::AllRows => "AllRows",
            PlanNode::Empty => "Empty",
            PlanNode::IndexFetch { .. } => "IndexFetch",
            PlanNode::Complement(_) => "Complement",
            PlanNode::Intersect(_) => "Intersect",
            PlanNode::Union(_) => "Union",
            PlanNode::Filter { .. } => "Filter",
            PlanNode::FullScan { .. } => "FullScan",
            PlanNode::PatternScan { .. } => "PatternScan",
        }
    }

    /// Human-readable operand summary for Explain / rendering.
    fn detail(&self) -> String {
        match self {
            PlanNode::IndexFetch { patterns } => patterns.join(" ∪ "),
            PlanNode::Filter { query, .. }
            | PlanNode::FullScan { query }
            | PlanNode::PatternScan { query, .. } => query.fingerprint(),
            _ => String::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

/// How completely a set of code-regex patterns covers an entry
/// predicate: `Exact` means *entry matches predicate ⇔ entry's code
/// matches one of the patterns*; `Superset` means ⇐ only (the postings
/// bound the candidates but each needs verification).
enum CodeCover {
    Exact(Vec<String>),
    Superset(Vec<String>),
}

/// The code-regex cover of a predicate, if one exists. Conservative:
/// `None` when no posting set bounds the matching entries.
fn code_cover(p: &EntryPredicate) -> Option<CodeCover> {
    match p {
        EntryPredicate::CodeMatches(re) => Some(CodeCover::Exact(vec![re.pattern().to_owned()])),
        EntryPredicate::Or(ps) => {
            // Every branch must be covered; the union covers the Or.
            // Exact only if every branch is exact.
            let mut patterns = Vec::new();
            let mut exact = true;
            for q in ps {
                match code_cover(q)? {
                    CodeCover::Exact(mut pats) => patterns.append(&mut pats),
                    CodeCover::Superset(mut pats) => {
                        exact = false;
                        patterns.append(&mut pats);
                    }
                }
            }
            Some(if exact { CodeCover::Exact(patterns) } else { CodeCover::Superset(patterns) })
        }
        EntryPredicate::And(ps) => {
            // Any single conjunct's cover bounds the conjunction.
            ps.iter().find_map(code_cover).map(|c| match c {
                CodeCover::Exact(pats) | CodeCover::Superset(pats) => CodeCover::Superset(pats),
            })
        }
        _ => None,
    }
}

/// A compiled physical plan for one query over one collection + index.
///
/// Built by [`QueryPlan::build`]; executed by [`QueryPlan::execute`] /
/// [`QueryPlan::execute_explain`]. The plan also carries the query's
/// canonical fingerprint (the selection-cache key).
#[derive(Debug, Clone)]
pub struct QueryPlan {
    root: PlanNode,
    fingerprint: String,
}

impl QueryPlan {
    /// Normalize `query` and compile it into a physical operator tree
    /// against `index`. Cheap: posting sizes are estimated (no posting
    /// list is materialized) and no regex is compiled at plan time.
    pub fn build(
        index: &CodeIndex,
        collection: &HistoryCollection,
        query: &HistoryQuery,
    ) -> QueryPlan {
        let normalized = normalize(query);
        let fingerprint = normalized.fingerprint();
        let rows = collection.len() as u32;
        let root = plan_node(index, rows, &normalized);
        QueryPlan { root, fingerprint }
    }

    /// The normalized query's canonical fingerprint — the selection-cache
    /// key. Commuted / double-negated / `lacks`-vs-`not has` variants of
    /// one query agree.
    pub fn canonical_fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The operator tree's root.
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// True if executing this plan evaluates the query against *every*
    /// history (the path the planner exists to avoid). The serve layer's
    /// `select_scan_fallbacks` counter is this, per selection.
    pub fn uses_full_scan(&self) -> bool {
        self.root.contains_full_scan()
    }

    /// Render the static operator tree (no counts/timings — see
    /// [`QueryPlan::execute_explain`] for the executed form).
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, 0, &mut out);
        out
    }

    /// Execute the plan, returning matching history positions in display
    /// order (ascending, deduplicated — identical to
    /// [`crate::index::select_scan`]).
    pub fn execute(&self, collection: &HistoryCollection, index: &CodeIndex) -> Vec<u32> {
        self.exec(collection, index, false).0
    }

    /// Execute and additionally return aggregate execution statistics
    /// (pattern candidate / automaton-run totals for the serve layer's
    /// gauges).
    pub fn execute_stats(
        &self,
        collection: &HistoryCollection,
        index: &CodeIndex,
    ) -> (Vec<u32>, ExecStats) {
        let (positions, _, stats) = self.exec(collection, index, false);
        (positions, stats)
    }

    /// Execute and record per-node candidate counts and wall time.
    pub fn execute_explain(
        &self,
        collection: &HistoryCollection,
        index: &CodeIndex,
    ) -> (Vec<u32>, Explain) {
        let (positions, explain, _) = self.execute_explain_stats(collection, index);
        (positions, explain)
    }

    /// [`QueryPlan::execute_explain`] plus the aggregate [`ExecStats`].
    pub fn execute_explain_stats(
        &self,
        collection: &HistoryCollection,
        index: &CodeIndex,
    ) -> (Vec<u32>, Explain, ExecStats) {
        let (positions, node, stats) = self.exec(collection, index, true);
        let explain = Explain {
            root: match node {
                Some(n) => n,
                None => ExplainNode {
                    op: "?".to_owned(),
                    detail: String::new(),
                    rows: positions.len(),
                    elapsed_us: 0,
                    counters: Vec::new(),
                    children: Vec::new(),
                },
            },
        };
        (positions, explain, stats)
    }

    fn exec(
        &self,
        collection: &HistoryCollection,
        index: &CodeIndex,
        trace: bool,
    ) -> (Vec<u32>, Option<ExplainNode>, ExecStats) {
        // Lower once: IndexFetch pattern sets resolve to vocabulary slots
        // before the shard fan-out, so the vocabulary walk (and the regex
        // compile-cache lock) happens once per plan, not once per shard.
        let lowered = lower(&self.root, index, trace);
        let counters = PatternCounters::default();
        let shards = index.shards();
        // Per-shard evaluation of the whole tree. Shards partition the
        // position space in ascending order, so concatenating shard-local
        // results (rebased by each shard's first global position) IS the
        // global ascending result. With several shards the fan-out layer
        // is the shard loop itself; each worker pins its inner operators
        // to one thread (`with_threads(1)`) so residual verification does
        // not multiply the pool. A single shard keeps the inner
        // parallelism instead (chunked residual verification).
        let results: Vec<(Bitmap, Option<ExplainNode>)> = if shards.len() > 1 {
            pastas_par::par_map_min(shards, 1, |shard| {
                pastas_par::with_threads(1, || {
                    exec_shard(&lowered, collection, shard, trace, &counters)
                })
            })
        } else {
            shards
                .iter()
                .map(|shard| exec_shard(&lowered, collection, shard, trace, &counters))
                .collect()
        };
        let mut positions = Vec::new();
        let mut explain: Option<ExplainNode> = None;
        for (shard, (bitmap, node)) in shards.iter().zip(results) {
            bitmap.decode_into(shard.base, &mut positions);
            match (&mut explain, node) {
                (Some(acc), Some(n)) => merge_explain(acc, n),
                (acc @ None, n) => *acc = n,
                _ => {}
            }
        }
        // Side-index residual pass (LSM read path). Dirty rows' main-pass
        // answers are stale (their histories changed after the shards were
        // built) and appended rows are outside the shard tiling entirely,
        // so: final = (main \ dirty) ∪ side-eval(plan over dirty universe).
        if !index.side_is_empty() {
            // lint:allow(no-wallclock-determinism) explain timing annotation only, results unaffected
            let t0 = trace.then(std::time::Instant::now);
            let side = exec_side(&lowered, collection, index, &counters);
            let side_rows = side.len();
            positions =
                reference::union2(&reference::difference(&positions, index.side_dirty()), &side);
            if let Some(root) = &mut explain {
                root.rows = positions.len();
                root.children.push(ExplainNode {
                    op: "SidePass".to_owned(),
                    detail: format!("dirty={}", index.side_dirty().len()),
                    rows: side_rows,
                    elapsed_us: t0
                        .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
                        .unwrap_or(0),
                    counters: Vec::new(),
                    children: Vec::new(),
                });
            }
        }
        let stats = ExecStats {
            pattern_candidates: counters.candidates.load(Ordering::Relaxed),
            pattern_automaton_runs: counters.runs.load(Ordering::Relaxed),
        };
        (positions, explain, stats)
    }
}

/// Sum a shard's executed tree into the accumulated one. All shards run
/// the same lowered tree, so nodes line up by position; the one
/// exception is `Intersect`'s empty-accumulator early break, which can
/// truncate a shard's child list — unmatched children append.
fn merge_explain(acc: &mut ExplainNode, mut other: ExplainNode) {
    acc.rows += other.rows;
    acc.elapsed_us += other.elapsed_us;
    // Counters sum by name: shards report the same counter set, but
    // match defensively in case a shard skipped a child.
    for (name, v) in other.counters {
        match acc.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += v,
            None => acc.counters.push((name, v)),
        }
    }
    let extra = other.children.split_off(other.children.len().min(acc.children.len()));
    for (a, b) in acc.children.iter_mut().zip(other.children) {
        merge_explain(a, b);
    }
    acc.children.extend(extra);
}

fn render_node(node: &PlanNode, depth: usize, out: &mut String) {
    use std::fmt::Write as _;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let detail = node.detail();
    if detail.is_empty() {
        let _ = writeln!(out, "{}", node.op());
    } else {
        let _ = writeln!(out, "{}({})", node.op(), detail);
    }
    match node {
        PlanNode::Complement(c) => render_node(c, depth + 1, out),
        PlanNode::Filter { input, .. } | PlanNode::PatternScan { input, .. } => {
            render_node(input, depth + 1, out)
        }
        PlanNode::Intersect(cs) | PlanNode::Union(cs) => {
            for c in cs {
                render_node(c, depth + 1, out);
            }
        }
        _ => {}
    }
}

/// Compile one canonical (normalized) query node.
fn plan_node(index: &CodeIndex, rows: u32, q: &HistoryQuery) -> PlanNode {
    match q {
        HistoryQuery::All => PlanNode::AllRows,
        HistoryQuery::Not(_) if is_never(q) => PlanNode::Empty,
        HistoryQuery::CountAtLeast(p, n) => match code_cover(p) {
            // Postings are exactly "histories with ≥1 matching entry",
            // so an exact cover at n == 1 needs no verification at all.
            Some(CodeCover::Exact(patterns)) if *n == 1 => PlanNode::IndexFetch { patterns },
            Some(CodeCover::Exact(patterns) | CodeCover::Superset(patterns)) => PlanNode::Filter {
                query: q.clone(),
                input: Box::new(PlanNode::IndexFetch { patterns }),
            },
            None => PlanNode::FullScan { query: q.clone() },
        },
        HistoryQuery::CountAtMost(p, n) => match code_cover(p) {
            // "No matching entry" is exactly the complement of the
            // posting union.
            Some(CodeCover::Exact(patterns)) if *n == 0 => {
                PlanNode::Complement(Box::new(PlanNode::IndexFetch { patterns }))
            }
            // count ≤ n can only *fail* inside the fetch set: outside it
            // a history has zero covered entries, hence zero matching
            // ones. Result = complement(fetch) ∪ verified(fetch).
            Some(CodeCover::Exact(patterns) | CodeCover::Superset(patterns)) => {
                PlanNode::Union(vec![
                    PlanNode::Complement(Box::new(PlanNode::IndexFetch {
                        patterns: patterns.clone(),
                    })),
                    PlanNode::Filter {
                        query: q.clone(),
                        input: Box::new(PlanNode::IndexFetch { patterns }),
                    },
                ])
            }
            None => PlanNode::FullScan { query: q.clone() },
        },
        // A positive temporal pattern prefilters through the index: each
        // step's code cover bounds the candidates, their intersection
        // feeds the automaton. (A *negated* pattern falls through to the
        // Not arm below — absence of a step is not bounded by postings.)
        HistoryQuery::Pattern(pat) => plan_pattern(q, pat),
        // Post-normalization, Not only wraps residual leaves (Pattern /
        // AgeBetween / SexIs); a scan with the negation folded in beats
        // Complement(FullScan) — one pass, no extra merge.
        HistoryQuery::Not(_)
        | HistoryQuery::AgeBetween { .. }
        | HistoryQuery::SexIs(_) => PlanNode::FullScan { query: q.clone() },
        HistoryQuery::And(qs) => plan_and(index, rows, qs),
        HistoryQuery::Or(qs) => plan_or(index, rows, qs),
    }
}

/// Plan one positive temporal pattern: intersect the per-step candidate
/// postings (sound because a matching history satisfies *every* step
/// with some entry, hence lies in every step's posting union, whether
/// the cover is exact or a superset) and verify the survivors with the
/// compiled automaton. Steps whose predicate has no code cover simply
/// contribute no prefilter; if no step is covered at all, the honest
/// plan is a full scan.
fn plan_pattern(q: &HistoryQuery, pat: &crate::temporal::TemporalPattern) -> PlanNode {
    let mut fetches: Vec<PlanNode> = Vec::new();
    let mut seen: Vec<Vec<String>> = Vec::new();
    for pred in pat.step_predicates() {
        if let Some(CodeCover::Exact(patterns) | CodeCover::Superset(patterns)) = code_cover(pred)
        {
            // Two steps with the same cover prefilter identically once.
            if !seen.contains(&patterns) {
                seen.push(patterns.clone());
                fetches.push(PlanNode::IndexFetch { patterns });
            }
        }
    }
    let input = match fetches.len() {
        0 => return PlanNode::FullScan { query: q.clone() },
        1 => match fetches.pop() {
            Some(only) => only,
            // lint:allow(no-panic-hot-path) len == 1 proved by the match arm
            None => unreachable!(),
        },
        _ => PlanNode::Intersect(fetches),
    };
    PlanNode::PatternScan { query: q.clone(), input: Box::new(input) }
}

fn plan_and(index: &CodeIndex, rows: u32, qs: &[HistoryQuery]) -> PlanNode {
    let mut indexed: Vec<(u32, PlanNode)> = Vec::new();
    let mut residual: Vec<HistoryQuery> = Vec::new();
    for q in qs {
        let p = plan_node(index, rows, q);
        if p.is_full_scan() {
            residual.push(q.clone());
        } else {
            indexed.push((estimate(index, rows, &p), p));
        }
    }
    if indexed.is_empty() {
        // No clause is index-servable: one scan evaluates the whole
        // conjunction per history (short-circuiting inside matches()).
        return PlanNode::FullScan { query: HistoryQuery::And(qs.to_vec()) };
    }
    // Cost heuristic, index-vs-scan: if even the most selective indexed
    // clause cannot prune below the full collection (e.g. every clause
    // is a near-universal complement) and residual predicates remain,
    // verifying "candidates" is a full scan wearing a costume — emit the
    // honest plan.
    let best = indexed.iter().map(|(e, _)| *e).min().unwrap_or(rows);
    if best >= rows && !residual.is_empty() {
        return PlanNode::FullScan { query: HistoryQuery::And(qs.to_vec()) };
    }
    // Evaluate cheapest-first so the merge works on small sets early.
    // Stable sort: equal estimates keep the canonical clause order, so
    // plans are deterministic.
    indexed.sort_by_key(|(e, _)| *e);
    let mut plans: Vec<PlanNode> = indexed.into_iter().map(|(_, p)| p).collect();
    let base = if plans.len() == 1 {
        match plans.pop() {
            Some(only) => only,
            // lint:allow(no-panic-hot-path) len == 1 proved by the branch
            None => unreachable!(),
        }
    } else {
        PlanNode::Intersect(plans)
    };
    if residual.is_empty() {
        base
    } else {
        let query = if residual.len() == 1 {
            match residual.pop() {
                Some(only) => only,
                // lint:allow(no-panic-hot-path) len == 1 proved by the branch
                None => unreachable!(),
            }
        } else {
            HistoryQuery::And(residual)
        };
        PlanNode::Filter { query, input: Box::new(base) }
    }
}

fn plan_or(index: &CodeIndex, rows: u32, qs: &[HistoryQuery]) -> PlanNode {
    let mut parts: Vec<PlanNode> = Vec::new();
    let mut scans: Vec<HistoryQuery> = Vec::new();
    for q in qs {
        let p = plan_node(index, rows, q);
        if p.is_full_scan() {
            scans.push(q.clone());
        } else {
            parts.push(p);
        }
    }
    // Merge all scan-only branches into ONE pass over the collection.
    if !scans.is_empty() {
        let query = if scans.len() == 1 {
            match scans.pop() {
                Some(only) => only,
                // lint:allow(no-panic-hot-path) len == 1 proved by the branch
                None => unreachable!(),
            }
        } else {
            HistoryQuery::Or(scans)
        };
        parts.push(PlanNode::FullScan { query });
    }
    match parts.len() {
        0 => PlanNode::Empty,
        1 => match parts.pop() {
            Some(only) => only,
            // lint:allow(no-panic-hot-path) len == 1 proved by the match arm
            None => unreachable!(),
        },
        _ => PlanNode::Union(parts),
    }
}

/// Upper-bound cardinality estimate of a subtree, from posting-list
/// sizes only (no list is materialized; O(vocabulary) worst case).
fn estimate(index: &CodeIndex, rows: u32, node: &PlanNode) -> u32 {
    match node {
        PlanNode::AllRows => rows,
        PlanNode::Empty => 0,
        PlanNode::IndexFetch { patterns } => {
            u32::try_from(index.estimated_candidates(patterns)).unwrap_or(rows).min(rows)
        }
        // Complement of an upper bound is a lower bound — for the
        // common Complement(IndexFetch) the postings sum *is* close
        // to exact (duplicates only from multi-pattern overlap).
        PlanNode::Complement(c) => rows.saturating_sub(estimate(index, rows, c)),
        PlanNode::Intersect(cs) => cs.iter().map(|c| estimate(index, rows, c)).min().unwrap_or(0),
        PlanNode::Union(cs) => cs
            .iter()
            .map(|c| estimate(index, rows, c))
            .fold(0u32, u32::saturating_add)
            .min(rows),
        PlanNode::Filter { input, .. } | PlanNode::PatternScan { input, .. } => {
            estimate(index, rows, input)
        }
        PlanNode::FullScan { .. } => rows,
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// The lowered, shard-executable form of one [`PlanNode`]: pattern sets
/// resolved to vocabulary slots, Explain labels precomputed.
struct ExecNode<'q> {
    op: &'static str,
    /// Explain label; computed only when tracing (the fingerprint of a
    /// residual query is not free).
    detail: String,
    kind: ExecKind<'q>,
}

enum ExecKind<'q> {
    AllRows,
    Empty,
    /// Union of the postings of these vocabulary slots (sorted, unique):
    /// main-index slots for the shard pass, side-index slots for the
    /// dirty-row residual pass.
    Fetch {
        slots: Vec<u32>,
        side_slots: Vec<u32>,
    },
    Complement(Box<ExecNode<'q>>),
    Intersect(Vec<ExecNode<'q>>),
    Union(Vec<ExecNode<'q>>),
    Filter { query: &'q HistoryQuery, input: Box<ExecNode<'q>> },
    /// Temporal-pattern verification: like `Filter`, but each candidate
    /// runs the compiled automaton, and the candidate / run totals feed
    /// [`ExecStats`] (the serve layer's pattern gauges).
    PatternScan { query: &'q HistoryQuery, input: Box<ExecNode<'q>> },
    FullScan { query: &'q HistoryQuery },
}

/// Cross-shard tallies of PatternScan work. Atomics because the shard
/// fan-out runs workers in parallel; relaxed ordering suffices — the
/// totals are read only after the fan-out joins.
#[derive(Default)]
struct PatternCounters {
    candidates: AtomicU64,
    runs: AtomicU64,
}

/// Aggregate execution statistics of one plan run, summed across shards
/// and the side pass. Zero for plans without temporal patterns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Histories that survived the index prefilter and were handed to a
    /// temporal-pattern automaton.
    pub pattern_candidates: u64,
    /// Compiled-automaton executions (one per candidate verified).
    pub pattern_automaton_runs: u64,
}

/// Resolve a plan tree for execution. Pattern compilation cannot fail
/// here — `IndexFetch` is only emitted for patterns the planner compiled
/// — but an (impossible) failure degrades to an empty fetch, which is
/// still sound for the same reason the old executor's was.
fn lower<'q>(node: &'q PlanNode, index: &CodeIndex, trace: bool) -> ExecNode<'q> {
    let kind = match node {
        PlanNode::AllRows => ExecKind::AllRows,
        PlanNode::Empty => ExecKind::Empty,
        PlanNode::IndexFetch { patterns } => ExecKind::Fetch {
            slots: index.slots_for_patterns(patterns).unwrap_or_default(),
            side_slots: index.side_slots_for_patterns(patterns),
        },
        PlanNode::Complement(c) => ExecKind::Complement(Box::new(lower(c, index, trace))),
        PlanNode::Intersect(cs) => {
            ExecKind::Intersect(cs.iter().map(|c| lower(c, index, trace)).collect())
        }
        PlanNode::Union(cs) => {
            ExecKind::Union(cs.iter().map(|c| lower(c, index, trace)).collect())
        }
        PlanNode::Filter { query, input } => {
            ExecKind::Filter { query, input: Box::new(lower(input, index, trace)) }
        }
        PlanNode::PatternScan { query, input } => {
            ExecKind::PatternScan { query, input: Box::new(lower(input, index, trace)) }
        }
        PlanNode::FullScan { query } => ExecKind::FullScan { query },
    };
    ExecNode {
        op: node.op(),
        detail: if trace { node.detail() } else { String::new() },
        kind,
    }
}

/// Evaluate a lowered tree over one index shard. Everything is
/// shard-relative: the universe is `0..shard.rows`, fetches use the
/// shard's postings, and residual predicates look histories up at
/// `shard.base + relative`. The result bitmap's positions are
/// shard-relative too — the caller rebases while concatenating.
fn exec_shard(
    node: &ExecNode<'_>,
    collection: &HistoryCollection,
    shard: &IndexShard,
    trace: bool,
    counters: &PatternCounters,
) -> (Bitmap, Option<ExplainNode>) {
    // Explain timings are observability, not results: the positions a
    // plan returns are deterministic at any thread count; only the
    // elapsed_us annotations vary run to run.
    // lint:allow(no-wallclock-determinism) explain timing annotation only, results unaffected
    let started = if trace { Some(std::time::Instant::now()) } else { None };
    let mut children: Vec<ExplainNode> = Vec::new();
    let mut child = |result: (Bitmap, Option<ExplainNode>)| -> Bitmap {
        if let Some(n) = result.1 {
            children.push(n);
        }
        result.0
    };
    let mut node_counters: Vec<(String, u64)> = Vec::new();
    let out = match &node.kind {
        ExecKind::AllRows => Bitmap::full(shard.rows),
        ExecKind::Empty => Bitmap::new(),
        ExecKind::Fetch { slots, .. } => shard.union_slots(slots),
        ExecKind::Complement(c) => {
            let inner = child(exec_shard(c, collection, shard, trace, counters));
            inner.complement_up_to(shard.rows)
        }
        ExecKind::Intersect(cs) => {
            let mut acc: Option<Bitmap> = None;
            for c in cs {
                if acc.as_ref().is_some_and(Bitmap::is_empty) {
                    break; // ∩ with ∅ stays ∅ — skip remaining children.
                }
                let set = child(exec_shard(c, collection, shard, trace, counters));
                acc = Some(match acc {
                    Some(prev) => prev.intersect(&set),
                    None => set,
                });
            }
            acc.unwrap_or_default()
        }
        ExecKind::Union(cs) => {
            let mut acc = Bitmap::new();
            for c in cs {
                let set = child(exec_shard(c, collection, shard, trace, counters));
                acc = acc.union(&set);
            }
            acc
        }
        ExecKind::PatternScan { query, input } => {
            let input = child(exec_shard(input, collection, shard, trace, counters));
            let mut candidates = Vec::new();
            input.decode_into(0, &mut candidates);
            let n = candidates.len() as u64;
            // One automaton execution per surviving candidate: `matches`
            // compiles the pattern once (OnceLock) and runs the VM with
            // first-accept short-circuit against each history.
            counters.candidates.fetch_add(n, Ordering::Relaxed);
            counters.runs.fetch_add(n, Ordering::Relaxed);
            if trace {
                node_counters.push(("candidates".to_owned(), n));
                node_counters.push(("automaton_runs".to_owned(), n));
            }
            let histories = collection.histories();
            let keep = pastas_par::par_map_min(&candidates, PAR_MIN_CANDIDATES, |&rel| {
                // lint:allow(no-panic-hot-path) candidates are valid shard positions by construction
                query.matches(&histories[(shard.base + rel) as usize])
            });
            candidates
                .into_iter()
                .zip(keep)
                .filter(|&(_, k)| k)
                .map(|(rel, _)| rel)
                .collect()
        }
        ExecKind::Filter { query, input } => {
            let input = child(exec_shard(input, collection, shard, trace, counters));
            // Decode happens once at the set-algebra/verification
            // boundary, not inside the algebra: residual predicates need
            // the actual histories.
            let mut candidates = Vec::new();
            input.decode_into(0, &mut candidates);
            let histories = collection.histories();
            let keep = pastas_par::par_map_min(&candidates, PAR_MIN_CANDIDATES, |&rel| {
                // lint:allow(no-panic-hot-path) candidates are valid shard positions by construction
                query.matches(&histories[(shard.base + rel) as usize])
            });
            candidates
                .into_iter()
                .zip(keep)
                .filter(|&(_, k)| k)
                .map(|(rel, _)| rel)
                .collect()
        }
        ExecKind::FullScan { query } => {
            let span = &collection.histories()
                // lint:allow(no-panic-hot-path) shards tile rows() exactly
                [shard.base as usize..(shard.base + shard.rows) as usize];
            let matched = pastas_par::par_filter_indices_min(span, PAR_MIN_CANDIDATES, |h| {
                query.matches(h)
            });
            Bitmap::from_sorted(&matched)
        }
    };
    let explain = started.map(|t0| ExplainNode {
        op: node.op.to_owned(),
        detail: node.detail.clone(),
        rows: out.len(),
        elapsed_us: u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
        counters: node_counters,
        children,
    });
    (out, explain)
}

/// Evaluate a lowered tree over the side-index's dirty-row universe.
///
/// Mirrors [`exec_shard`] but on *global* positions with sorted-vec
/// merges ([`reference`]) — dirty sets are small, so linear merges beat
/// container overhead. The universe of every operator is the dirty set
/// itself; this is sound because clean rows' histories are unchanged
/// since the main shards were built (the main pass already answered
/// them exactly), and every appended row beyond the main tiling is
/// dirty by construction.
fn exec_side(
    node: &ExecNode<'_>,
    collection: &HistoryCollection,
    index: &CodeIndex,
    counters: &PatternCounters,
) -> Vec<u32> {
    let dirty = index.side_dirty();
    match &node.kind {
        ExecKind::AllRows => dirty.to_vec(),
        ExecKind::Empty => Vec::new(),
        ExecKind::Fetch { side_slots, .. } => {
            let mut acc: Vec<u32> = Vec::new();
            for &slot in side_slots {
                acc = reference::union2(&acc, index.side_postings(slot));
            }
            acc
        }
        ExecKind::Complement(c) => {
            reference::difference(dirty, &exec_side(c, collection, index, counters))
        }
        ExecKind::Intersect(cs) => {
            let mut acc: Option<Vec<u32>> = None;
            for c in cs {
                if acc.as_ref().is_some_and(|a| a.is_empty()) {
                    break; // ∩ with ∅ stays ∅ — skip remaining children.
                }
                let set = exec_side(c, collection, index, counters);
                acc = Some(match acc {
                    Some(prev) => reference::intersect2(&prev, &set),
                    None => set,
                });
            }
            acc.unwrap_or_default()
        }
        ExecKind::Union(cs) => {
            let mut acc = Vec::new();
            for c in cs {
                acc = reference::union2(&acc, &exec_side(c, collection, index, counters));
            }
            acc
        }
        ExecKind::PatternScan { query, input } => {
            let mut candidates = exec_side(input, collection, index, counters);
            let n = candidates.len() as u64;
            counters.candidates.fetch_add(n, Ordering::Relaxed);
            counters.runs.fetch_add(n, Ordering::Relaxed);
            let histories = collection.histories();
            // lint:allow(no-panic-hot-path) dirty positions are < rows by the index invariant
            candidates.retain(|&p| query.matches(&histories[p as usize]));
            candidates
        }
        ExecKind::Filter { query, input } => {
            let mut candidates = exec_side(input, collection, index, counters);
            let histories = collection.histories();
            // lint:allow(no-panic-hot-path) dirty positions are < rows by the index invariant
            candidates.retain(|&p| query.matches(&histories[p as usize]));
            candidates
        }
        ExecKind::FullScan { query } => {
            let histories = collection.histories();
            // lint:allow(no-panic-hot-path) dirty positions are < rows by the index invariant
            dirty.iter().copied().filter(|&p| query.matches(&histories[p as usize])).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

/// One executed operator with its observed candidate count and wall
/// time (inclusive of children).
#[derive(Debug, Clone)]
pub struct ExplainNode {
    /// Operator name (`IndexFetch`, `Intersect`, `Filter`, …).
    pub op: String,
    /// Operand summary (patterns or residual-query fingerprint).
    pub detail: String,
    /// Positions this node produced.
    pub rows: usize,
    /// Wall time in microseconds, children included.
    pub elapsed_us: u64,
    /// Named per-operator tallies (e.g. PatternScan's `candidates` and
    /// `automaton_runs`), summed across shards. Empty for most nodes.
    pub counters: Vec<(String, u64)>,
    /// Child operators in evaluation order.
    pub children: Vec<ExplainNode>,
}

/// The executed operator tree of one selection — candidate counts and
/// timings per node, for debugging and the serve layer's `?explain=1`.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The root operator.
    pub root: ExplainNode,
}

impl Explain {
    /// Did execution evaluate the query against every history?
    pub fn used_full_scan(&self) -> bool {
        fn walk(n: &ExplainNode) -> bool {
            n.op == "FullScan" || n.children.iter().any(walk)
        }
        walk(&self.root)
    }

    /// Largest candidate set any per-history verification (Filter or
    /// FullScan) worked through — "how many histories did we actually
    /// have to look at".
    pub fn max_verified_candidates(&self) -> usize {
        fn walk(n: &ExplainNode) -> usize {
            let own = match n.op.as_str() {
                // Filter / PatternScan verify their input's rows; FullScan
                // all rows it produced is a lower bound, so count its
                // output.
                "Filter" | "PatternScan" => n.children.iter().map(|c| c.rows).max().unwrap_or(0),
                "FullScan" => usize::MAX,
                _ => 0,
            };
            n.children.iter().map(walk).fold(own, usize::max)
        }
        walk(&self.root)
    }

    /// Indented text rendering (one operator per line).
    pub fn render_text(&self) -> String {
        fn walk(n: &ExplainNode, depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            for _ in 0..depth {
                out.push_str("  ");
            }
            let _ = write!(out, "{}", n.op);
            if !n.detail.is_empty() {
                let _ = write!(out, "({})", n.detail);
            }
            let _ = write!(out, "  rows={}", n.rows);
            for (name, v) in &n.counters {
                let _ = write!(out, "  {name}={v}");
            }
            let _ = writeln!(out, "  {:.3} ms", n.elapsed_us as f64 / 1e3);
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(&self.root, 0, &mut out);
        out
    }

    /// JSON rendering (nested objects mirroring the operator tree).
    pub fn render_json(&self) -> String {
        fn walk(n: &ExplainNode, out: &mut String) {
            use std::fmt::Write as _;
            let _ = write!(
                out,
                "{{\"op\":{},\"detail\":{},\"rows\":{},\"elapsed_us\":{}",
                json_str(&n.op),
                json_str(&n.detail),
                n.rows,
                n.elapsed_us
            );
            if !n.counters.is_empty() {
                out.push_str(",\"counters\":{");
                for (i, (name, v)) in n.counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", json_str(name), v);
                }
                out.push('}');
            }
            out.push_str(",\"children\":[");
            for (i, c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                walk(c, out);
            }
            out.push_str("]}");
        }
        let mut out = String::with_capacity(256);
        walk(&self.root, &mut out);
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::select_scan;
    use crate::query::QueryBuilder;
    use pastas_synth::{generate_collection, SynthConfig};
    use pastas_time::Date;

    #[test]
    fn reference_set_algebra_merges() {
        use reference::{complement, intersect2, union2};
        assert_eq!(intersect2(&[1, 3, 5, 9], &[2, 3, 9, 12]), vec![3, 9]);
        assert_eq!(intersect2(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(union2(&[1, 5], &[2, 5, 7]), vec![1, 2, 5, 7]);
        assert_eq!(union2(&[], &[]), Vec::<u32>::new());
        assert_eq!(complement(&[0, 2, 3], 6), vec![1, 4, 5]);
        assert_eq!(complement(&[], 3), vec![0, 1, 2]);
        assert_eq!(complement(&[0, 1, 2], 3), Vec::<u32>::new());
    }

    fn setup(n: usize) -> (pastas_model::HistoryCollection, CodeIndex) {
        let c = generate_collection(SynthConfig::with_patients(n), 71);
        let idx = CodeIndex::build(&c);
        (c, idx)
    }

    #[test]
    fn negated_clause_is_index_served() {
        let (c, idx) = setup(400);
        let q = QueryBuilder::new().lacks_code("T90").unwrap().build();
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "{}", plan.render());
        assert_eq!(plan.execute(&c, &idx), select_scan(&c, &q));
    }

    #[test]
    fn has_and_lacks_never_enumerates_all_histories() {
        // The regression the planner exists for: a positive + negative
        // code conjunction used to fall back to the full scan.
        let (c, idx) = setup(400);
        let q = QueryBuilder::new()
            .has_code("K86|K87")
            .unwrap()
            .lacks_code("T90")
            .unwrap()
            .build();
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "{}", plan.render());
        let (positions, explain) = plan.execute_explain(&c, &idx);
        assert!(!explain.used_full_scan(), "{}", explain.render_text());
        assert!(
            explain.max_verified_candidates() < c.len(),
            "verified {} of {}:\n{}",
            explain.max_verified_candidates(),
            c.len(),
            explain.render_text()
        );
        assert_eq!(positions, select_scan(&c, &q));
        assert!(!positions.is_empty(), "hypertensives without diabetes exist");
    }

    #[test]
    fn compound_negated_counted_query_agrees_with_scan() {
        let (c, idx) = setup(500);
        let q = QueryBuilder::new()
            .has_code("T90|T89")
            .unwrap()
            .lacks_code("K74")
            .unwrap()
            .count_at_least(EntryPredicate::IsDiagnosis, 3)
            .age_between(Date::new(2013, 1, 1).unwrap(), 40, 95)
            .build();
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "{}", plan.render());
        assert_eq!(plan.execute(&c, &idx), select_scan(&c, &q));
    }

    #[test]
    fn count_at_least_two_filters_fetch_candidates() {
        let (c, idx) = setup(400);
        let q = HistoryQuery::CountAtLeast(EntryPredicate::code_regex("T90").unwrap(), 2);
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "{}", plan.render());
        assert!(plan.render().starts_with("Filter"), "{}", plan.render());
        assert_eq!(plan.execute(&c, &idx), select_scan(&c, &q));
    }

    #[test]
    fn count_at_most_nonzero_unions_complement_with_verified_fetch() {
        let (c, idx) = setup(400);
        let q = HistoryQuery::CountAtMost(EntryPredicate::code_regex("A.*").unwrap(), 1);
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "{}", plan.render());
        assert_eq!(plan.execute(&c, &idx), select_scan(&c, &q));
    }

    #[test]
    fn or_with_residual_branch_still_unions_exactly() {
        let (c, idx) = setup(400);
        let q = HistoryQuery::Or(vec![
            QueryBuilder::new().has_code("T90").unwrap().build(),
            HistoryQuery::SexIs(pastas_model::Sex::Female),
        ]);
        let plan = QueryPlan::build(&idx, &c, &q);
        // The Sex branch can only scan, but the scan evaluates just that
        // branch, and the union with the posting fetch is exact.
        assert!(plan.uses_full_scan());
        assert_eq!(plan.execute(&c, &idx), select_scan(&c, &q));
    }

    #[test]
    fn purely_residual_query_is_one_scan() {
        let (c, idx) = setup(300);
        let q = HistoryQuery::And(vec![
            HistoryQuery::SexIs(pastas_model::Sex::Male),
            HistoryQuery::AgeBetween { at: Date::new(2013, 1, 1).unwrap(), min: 40, max: 90 },
        ]);
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(plan.uses_full_scan());
        assert!(plan.render().starts_with("FullScan"), "{}", plan.render());
        assert_eq!(plan.execute(&c, &idx), select_scan(&c, &q));
    }

    #[test]
    fn all_and_never_plans() {
        let (c, idx) = setup(100);
        let all = QueryPlan::build(&idx, &c, &HistoryQuery::All);
        assert_eq!(all.execute(&c, &idx).len(), 100);
        let never = HistoryQuery::Not(Box::new(HistoryQuery::All));
        let none = QueryPlan::build(&idx, &c, &never);
        assert!(none.execute(&c, &idx).is_empty());
        assert!(!none.uses_full_scan());
    }

    #[test]
    fn commuted_queries_share_plan_fingerprint() {
        let (c, idx) = setup(100);
        let a = QueryBuilder::new().has_code("T90").unwrap().lacks_code("K74").unwrap().build();
        let b = QueryBuilder::new().lacks_code("K74").unwrap().has_code("T90").unwrap().build();
        let pa = QueryPlan::build(&idx, &c, &a);
        let pb = QueryPlan::build(&idx, &c, &b);
        assert_eq!(pa.canonical_fingerprint(), pb.canonical_fingerprint());
        assert_eq!(pa.render(), pb.render(), "same canonical form, same plan");
    }

    #[test]
    fn explain_records_counts_and_structure() {
        let (c, idx) = setup(400);
        let q = QueryBuilder::new().has_code("T90").unwrap().lacks_code("K74").unwrap().build();
        let plan = QueryPlan::build(&idx, &c, &q);
        let (positions, explain) = plan.execute_explain(&c, &idx);
        assert_eq!(explain.root.rows, positions.len());
        assert!(!explain.root.children.is_empty());
        let text = explain.render_text();
        assert!(text.contains("IndexFetch"), "{text}");
        let json = explain.render_json();
        assert!(json.contains("\"op\":\"Intersect\"") || json.contains("\"op\":\"Complement\""));
        // The workspace JSON parser accepts it.
        assert!(pastas_ingest::json::Json::parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let c = generate_collection(SynthConfig::with_patients(1500), 71);
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new()
            .has_code("[KT].*")
            .unwrap()
            .lacks_code("A0.*")
            .unwrap()
            .count_at_least(EntryPredicate::IsDiagnosis, 2)
            .build();
        let plan = QueryPlan::build(&idx, &c, &q);
        let serial = pastas_par::with_threads(1, || plan.execute(&c, &idx));
        for threads in [2, 8] {
            let par = pastas_par::with_threads(threads, || plan.execute(&c, &idx));
            assert_eq!(par, serial, "threads {threads}");
        }
    }

    #[test]
    fn empty_collection_plans_and_executes() {
        let c = pastas_model::HistoryCollection::new();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new().has_code("T90").unwrap().lacks_code("X").unwrap().build();
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(plan.execute(&c, &idx).is_empty());
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    // -- side-index residual pass -----------------------------------------

    /// Mutate one existing patient and append one, returning the
    /// successor index with a populated side-index.
    fn setup_with_side(n: usize) -> (pastas_model::HistoryCollection, CodeIndex) {
        use pastas_codes::Code;
        use pastas_model::{Entry, OpenEpoch, Patient, PatientId, Payload, Sex, SourceKind};
        let mut c = generate_collection(SynthConfig::with_patients(n), 71);
        let idx = CodeIndex::build(&c);
        let diag = |y: i32, code: &str| {
            Entry::event(
                Date::new(y, 3, 1).unwrap().at_midnight(),
                Payload::Diagnosis(Code::icpc(code)),
                SourceKind::PrimaryCare,
            )
        };
        let mut epoch = OpenEpoch::new();
        epoch.append(*c.histories()[2].patient(), vec![diag(2016, "T90")]);
        let appended = Patient {
            id: PatientId(9_000_001),
            birth_date: Date::new(1950, 6, 15).unwrap(),
            sex: Sex::Female,
        };
        epoch.append(appended, vec![diag(2015, "K74"), diag(2016, "Z98")]);
        let touched = epoch.seal_into(&mut c);
        let dirty: Vec<u32> =
            touched.iter().map(|&id| c.position_of(id).unwrap() as u32).collect();
        let idx = idx.with_delta(&c, &dirty);
        idx.debug_validate();
        (c, idx)
    }

    #[test]
    fn every_plan_shape_agrees_with_scan_mid_compaction() {
        let (c, idx) = setup_with_side(400);
        assert!(!idx.side_is_empty());
        let queries = [
            QueryBuilder::new().has_code("T90").unwrap().build(),
            QueryBuilder::new().lacks_code("T90").unwrap().build(),
            QueryBuilder::new().has_code("[KT].*").unwrap().lacks_code("Z98").unwrap().build(),
            HistoryQuery::CountAtLeast(EntryPredicate::code_regex("T90").unwrap(), 2),
            HistoryQuery::CountAtMost(EntryPredicate::code_regex("K.*").unwrap(), 1),
            HistoryQuery::Or(vec![
                QueryBuilder::new().has_code("Z98").unwrap().build(),
                HistoryQuery::SexIs(pastas_model::Sex::Female),
            ]),
            HistoryQuery::And(vec![
                HistoryQuery::SexIs(pastas_model::Sex::Male),
                HistoryQuery::AgeBetween {
                    at: Date::new(2013, 1, 1).unwrap(),
                    min: 40,
                    max: 90,
                },
            ]),
            HistoryQuery::All,
        ];
        for q in &queries {
            let plan = QueryPlan::build(&idx, &c, q);
            assert_eq!(plan.execute(&c, &idx), select_scan(&c, q), "query {q:?}");
        }
    }

    #[test]
    fn explain_reports_the_side_pass_and_final_counts() {
        let (c, idx) = setup_with_side(400);
        let q = QueryBuilder::new().has_code("T90").unwrap().lacks_code("K74").unwrap().build();
        let plan = QueryPlan::build(&idx, &c, &q);
        let (positions, explain) = plan.execute_explain(&c, &idx);
        assert_eq!(explain.root.rows, positions.len(), "root counts the final union");
        let text = explain.render_text();
        assert!(text.contains("SidePass"), "{text}");
        assert!(text.contains("dirty=2"), "{text}");
        assert!(pastas_ingest::json::Json::parse(&explain.render_json()).is_ok());
    }

    #[test]
    fn side_pass_is_deterministic_across_thread_counts() {
        let (c, idx) = setup_with_side(1500);
        let q = QueryBuilder::new()
            .has_code("[KT].*")
            .unwrap()
            .lacks_code("A0.*")
            .unwrap()
            .count_at_least(EntryPredicate::IsDiagnosis, 2)
            .build();
        let plan = QueryPlan::build(&idx, &c, &q);
        let serial = pastas_par::with_threads(1, || plan.execute(&c, &idx));
        for threads in [2, 8] {
            let par = pastas_par::with_threads(threads, || plan.execute(&c, &idx));
            assert_eq!(par, serial, "threads {threads}");
        }
        assert_eq!(serial, select_scan(&c, &q));
    }

    #[test]
    fn reference_difference_subtracts() {
        use reference::difference;
        assert_eq!(difference(&[1, 3, 5, 9], &[3, 9, 12]), vec![1, 5]);
        assert_eq!(difference(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(difference(&[], &[1]), Vec::<u32>::new());
        assert_eq!(difference(&[4, 7], &[1, 4, 7]), Vec::<u32>::new());
    }

    // -- temporal-pattern prefilter ----------------------------------------

    use crate::temporal::{GapBound, TemporalPattern};
    use pastas_time::Duration;

    fn cp(pat: &str) -> EntryPredicate {
        EntryPredicate::code_regex(pat).unwrap()
    }

    #[test]
    fn pattern_with_code_steps_is_index_prefiltered() {
        let (c, idx) = setup(400);
        let pat = TemporalPattern::starting_with(cp("T90"))
            .then(GapBound::any_later(), cp("K74|K75"));
        let q = HistoryQuery::Pattern(pat);
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "{}", plan.render());
        let rendered = plan.render();
        assert!(rendered.starts_with("PatternScan"), "{rendered}");
        assert!(rendered.contains("Intersect"), "{rendered}");
        assert!(rendered.contains("IndexFetch"), "{rendered}");
        let (positions, stats) = plan.execute_stats(&c, &idx);
        assert_eq!(positions, select_scan(&c, &q));
        assert!(
            stats.pattern_candidates > 0 && (stats.pattern_candidates as usize) < c.len(),
            "prefilter should prune: {stats:?}"
        );
        assert_eq!(stats.pattern_automaton_runs, stats.pattern_candidates);
    }

    #[test]
    fn pattern_explain_reports_candidate_counters() {
        let (c, idx) = setup(400);
        let q = HistoryQuery::Pattern(
            TemporalPattern::starting_with(cp("T90"))
                .then(GapBound::within(Duration::days(365)), cp("K74")),
        );
        let plan = QueryPlan::build(&idx, &c, &q);
        let (positions, explain, stats) = plan.execute_explain_stats(&c, &idx);
        assert_eq!(positions, select_scan(&c, &q));
        assert!(!explain.used_full_scan(), "{}", explain.render_text());
        let text = explain.render_text();
        assert!(text.contains("PatternScan"), "{text}");
        assert!(
            text.contains(&format!("candidates={}", stats.pattern_candidates)),
            "{text}\n{stats:?}"
        );
        assert!(
            explain.max_verified_candidates() < c.len(),
            "verified {} of {}",
            explain.max_verified_candidates(),
            c.len()
        );
        let json = explain.render_json();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(pastas_ingest::json::Json::parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn pattern_without_code_cover_scans_honestly() {
        let (c, idx) = setup(300);
        let q = HistoryQuery::Pattern(
            TemporalPattern::starting_with(EntryPredicate::IsInterval)
                .then(GapBound::within(Duration::days(30)), EntryPredicate::IsMedication),
        );
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(plan.uses_full_scan(), "{}", plan.render());
        let (positions, stats) = plan.execute_stats(&c, &idx);
        assert_eq!(positions, select_scan(&c, &q));
        assert_eq!(stats, ExecStats::default(), "no PatternScan ran");
    }

    #[test]
    fn duplicate_step_covers_prefilter_once() {
        let (c, idx) = setup(200);
        let q = HistoryQuery::Pattern(
            TemporalPattern::starting_with(cp("T90"))
                .then(GapBound::any_later(), cp("T90")),
        );
        let plan = QueryPlan::build(&idx, &c, &q);
        let rendered = plan.render();
        assert!(!rendered.contains("Intersect"), "one distinct cover: {rendered}");
        assert_eq!(rendered.matches("IndexFetch").count(), 1, "{rendered}");
        assert_eq!(plan.execute(&c, &idx), select_scan(&c, &q));
    }

    #[test]
    fn pattern_inside_conjunction_keeps_the_prefilter() {
        let (c, idx) = setup(400);
        let q = QueryBuilder::new()
            .lacks_code("Z98")
            .unwrap()
            .pattern(
                TemporalPattern::starting_with(cp("T90"))
                    .then(GapBound::within(Duration::days(400)), cp("K74|T89")),
            )
            .build();
        let plan = QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "{}", plan.render());
        assert!(plan.render().contains("PatternScan"), "{}", plan.render());
        assert_eq!(plan.execute(&c, &idx), select_scan(&c, &q));
    }

    #[test]
    fn pattern_plans_agree_with_scan_mid_compaction() {
        let (c, idx) = setup_with_side(400);
        assert!(!idx.side_is_empty());
        let queries = [
            HistoryQuery::Pattern(
                TemporalPattern::starting_with(cp("T90"))
                    .then(GapBound::any_later(), cp("K74|Z98")),
            ),
            HistoryQuery::Pattern(TemporalPattern::starting_with(cp("Z98"))),
        ];
        for q in &queries {
            let plan = QueryPlan::build(&idx, &c, q);
            assert_eq!(plan.execute(&c, &idx), select_scan(&c, q), "query {q:?}");
        }
    }

    #[test]
    fn pattern_execution_is_deterministic_across_thread_counts() {
        let c = generate_collection(SynthConfig::with_patients(1500), 71);
        let idx = CodeIndex::build(&c);
        let q = HistoryQuery::Pattern(
            TemporalPattern::starting_with(cp("[KT].*"))
                .then(GapBound::within(Duration::days(365)), cp("T90|K74")),
        );
        let plan = QueryPlan::build(&idx, &c, &q);
        let (serial, serial_stats) =
            pastas_par::with_threads(1, || plan.execute_stats(&c, &idx));
        for threads in [2, 8] {
            let (par, par_stats) =
                pastas_par::with_threads(threads, || plan.execute_stats(&c, &idx));
            assert_eq!(par, serial, "threads {threads}");
            assert_eq!(par_stats, serial_stats, "stats at threads {threads}");
        }
        assert_eq!(serial, select_scan(&c, &q));
    }
}
