//! Temporal pattern search: ordered sequences with gap constraints.
//!
//! The workbench's "searching for temporal patterns" (§IV). A pattern is a
//! sequence of entry predicates with a gap bound between consecutive steps:
//! *"first T90 diagnosis, then an inpatient stay within 90 days, then a
//! beta-blocker dispensing within 30 days of discharge"*. Matching is a
//! forward scan per step (earliest-first), which matches the clinical
//! reading and runs in `O(steps × entries)`.

use crate::predicate::EntryPredicate;
use pastas_model::History;
use pastas_ontology::temporal::{AllenRel, AllenSet};
use pastas_time::Duration;

/// A gap constraint between consecutive pattern steps, measured from the
/// previous matched entry's **end** to the next matched entry's **start**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapBound {
    /// Minimum gap (may be negative to allow overlap).
    pub min: Duration,
    /// Maximum gap.
    pub max: Duration,
}

impl GapBound {
    /// Within `d` after the previous step (the common "within 30 days").
    pub fn within(d: Duration) -> GapBound {
        GapBound { min: Duration::ZERO, max: d }
    }

    /// Any later time.
    pub fn any_later() -> GapBound {
        GapBound { min: Duration::ZERO, max: Duration::days(100 * 365) }
    }
}

/// One matched pattern instance: the entry index per step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHit {
    /// Indexes into `history.entries()`, one per step, strictly ordered.
    pub steps: Vec<usize>,
}

/// How one step constrains its position relative to the previous step.
#[derive(Debug, Clone, Copy)]
pub enum StepConstraint {
    /// The next entry's start lies within a gap window after the previous
    /// entry's end.
    Gap(GapBound),
    /// The next entry stands in one of the given Allen relations to the
    /// previous matched entry (CNTRO-style qualitative constraints: e.g.
    /// a medication-exposure interval that `Contains` the hospital stay).
    Allen(AllenSet),
}

/// An ordered temporal pattern.
#[derive(Debug, Clone)]
pub struct TemporalPattern {
    first: EntryPredicate,
    rest: Vec<(StepConstraint, EntryPredicate)>,
}

impl TemporalPattern {
    /// A pattern starting with entries matching `first`.
    pub fn starting_with(first: EntryPredicate) -> TemporalPattern {
        TemporalPattern { first, rest: Vec::new() }
    }

    /// Append a step: the next entry must match `pred` with the gap from
    /// the previous step's end inside `gap`.
    pub fn then(mut self, gap: GapBound, pred: EntryPredicate) -> TemporalPattern {
        self.rest.push((StepConstraint::Gap(gap), pred));
        self
    }

    /// Append a qualitatively-constrained step: the next entry (searched in
    /// start order after the previous match) must stand in one of `rels` to
    /// the previous matched entry.
    pub fn then_allen(mut self, rels: AllenSet, pred: EntryPredicate) -> TemporalPattern {
        self.rest.push((StepConstraint::Allen(rels), pred));
        self
    }

    /// Shorthand for a single base relation.
    pub fn then_related(self, rel: AllenRel, pred: EntryPredicate) -> TemporalPattern {
        self.then_allen(AllenSet::of(rel), pred)
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        1 + self.rest.len()
    }

    /// Always at least one step.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Append this pattern's canonical fingerprint to `out`.
    ///
    /// Gap bounds are written in whole seconds and Allen constraints as
    /// their relation bitmask, so two patterns fingerprint identically
    /// iff they impose the same constraints.
    pub(crate) fn write_fingerprint(&self, out: &mut String) {
        use std::fmt::Write;
        out.push_str("seq(");
        self.first.write_fingerprint(out);
        for (constraint, pred) in &self.rest {
            match constraint {
                StepConstraint::Gap(g) => {
                    let _ =
                        write!(out, "-[{}s..{}s]->", g.min.as_seconds(), g.max.as_seconds());
                }
                StepConstraint::Allen(set) => {
                    let _ = write!(out, "-[allen:{}]->", set.0);
                }
            }
            pred.write_fingerprint(out);
        }
        out.push(')');
    }

    /// Find all **anchor-disjoint** matches: for every entry matching the
    /// first step, the earliest completion of the remaining steps. (This is
    /// the semantics of Fails et al.'s multi-hit event chart, which the
    /// paper discusses: one line per search hit.)
    pub fn find_matches(&self, history: &History) -> Vec<PatternHit> {
        let entries = history.entries();
        let mut hits = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            if !self.first.matches(e) {
                continue;
            }
            if let Some(mut steps) = self.complete_from(history, i) {
                let mut full = vec![i];
                full.append(&mut steps);
                hits.push(PatternHit { steps: full });
            }
        }
        hits
    }

    /// True if the history contains at least one match.
    pub fn matches(&self, history: &History) -> bool {
        let entries = history.entries();
        (0..entries.len())
            .any(|i| self.first.matches(entries.get(i)) && self.complete_from(history, i).is_some())
    }

    /// Earliest-first completion of steps 2.. from anchor index `anchor`.
    ///
    /// Gap steps scan forward from the previous match (later starts only).
    /// Allen steps scan the *whole* history in start order — qualitative
    /// relations like `Contains` are satisfied by entries that start before
    /// the previous match (a medication-exposure band containing a stay
    /// starts earlier than the stay). The relation is evaluated as
    /// `rel(candidate, previous)`.
    fn complete_from(&self, history: &History, anchor: usize) -> Option<Vec<usize>> {
        let entries = history.entries();
        let mut used = vec![anchor];
        let mut prev = anchor;
        let mut out = Vec::with_capacity(self.rest.len());
        for (constraint, pred) in &self.rest {
            let next = match constraint {
                StepConstraint::Gap(gap) => {
                    let lo = entries.get(prev).end() + gap.min;
                    let hi = entries.get(prev).end() + gap.max;
                    (prev + 1..entries.len()).find(|&j| {
                        let e = entries.get(j);
                        let s = e.start();
                        s >= lo && s <= hi && pred.matches(e)
                    })?
                }
                StepConstraint::Allen(rels) => (0..entries.len()).find(|&j| {
                    let e = entries.get(j);
                    !used.contains(&j)
                        && pred.matches(e)
                        && rels.contains(AllenRel::between_times(
                            (e.start(), e.end()),
                            (entries.get(prev).start(), entries.get(prev).end()),
                        ))
                })?,
            };
            out.push(next);
            used.push(next);
            prev = next;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, EpisodeKind, Patient, PatientId, Payload, Sex, SourceKind};
    use pastas_time::Date;

    fn t(y: i32, m: u32, d: u32) -> pastas_time::DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn history(entries: Vec<Entry>) -> History {
        let mut h = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1940, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        h.insert_all(entries);
        h
    }

    fn diag(time: pastas_time::DateTime, code: &str) -> Entry {
        Entry::event(time, Payload::Diagnosis(Code::icpc(code)), SourceKind::PrimaryCare)
    }

    fn stay(a: pastas_time::DateTime, b: pastas_time::DateTime) -> Entry {
        Entry::interval(a, b, Payload::Episode(EpisodeKind::Inpatient), SourceKind::Hospital)
    }

    fn p(code: &str) -> EntryPredicate {
        EntryPredicate::code_regex(code).unwrap()
    }

    #[test]
    fn two_step_within_gap() {
        // T90, then hospitalization within 90 days.
        let h = history(vec![
            diag(t(2013, 1, 10), "T90"),
            stay(t(2013, 3, 1), t(2013, 3, 5)),
        ]);
        let pat = TemporalPattern::starting_with(p("T90"))
            .then(GapBound::within(Duration::days(90)), EntryPredicate::IsInterval);
        assert!(pat.matches(&h));
        let hits = pat.find_matches(&h);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].steps, vec![0, 1]);
    }

    #[test]
    fn gap_excludes_late_events() {
        let h = history(vec![
            diag(t(2013, 1, 10), "T90"),
            stay(t(2013, 8, 1), t(2013, 8, 5)), // ~200 days later
        ]);
        let pat = TemporalPattern::starting_with(p("T90"))
            .then(GapBound::within(Duration::days(90)), EntryPredicate::IsInterval);
        assert!(!pat.matches(&h));
    }

    #[test]
    fn gap_measured_from_interval_end() {
        // Discharge → readmission within 30 days: gap from END of stay 1.
        let h = history(vec![
            stay(t(2013, 1, 1), t(2013, 1, 20)),
            stay(t(2013, 2, 10), t(2013, 2, 15)), // 21 days after discharge
        ]);
        let pat = TemporalPattern::starting_with(EntryPredicate::IsInterval)
            .then(GapBound::within(Duration::days(30)), EntryPredicate::IsInterval);
        assert!(pat.matches(&h), "21 days post-discharge is within 30");
        let tight = TemporalPattern::starting_with(EntryPredicate::IsInterval)
            .then(GapBound::within(Duration::days(20)), EntryPredicate::IsInterval);
        assert!(!tight.matches(&h));
    }

    #[test]
    fn three_step_pathway() {
        let h = history(vec![
            diag(t(2013, 1, 10), "K74"),
            stay(t(2013, 1, 20), t(2013, 1, 27)),
            Entry::event(
                t(2013, 2, 5),
                Payload::Medication(Code::atc("C07AB02")),
                SourceKind::Prescription,
            ),
        ]);
        let pat = TemporalPattern::starting_with(p("K74"))
            .then(GapBound::within(Duration::days(30)), EntryPredicate::IsInterval)
            .then(GapBound::within(Duration::days(30)), EntryPredicate::IsMedication);
        let hits = pat.find_matches(&h);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].steps, vec![0, 1, 2]);
        assert_eq!(pat.len(), 3);
    }

    #[test]
    fn one_hit_per_anchor() {
        // Two T90 codes each followed by a stay → two hits (Fails-style).
        let h = history(vec![
            diag(t(2013, 1, 1), "T90"),
            stay(t(2013, 1, 10), t(2013, 1, 12)),
            diag(t(2013, 6, 1), "T90"),
            stay(t(2013, 6, 10), t(2013, 6, 12)),
        ]);
        let pat = TemporalPattern::starting_with(p("T90"))
            .then(GapBound::within(Duration::days(60)), EntryPredicate::IsInterval);
        let hits = pat.find_matches(&h);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].steps, vec![0, 1]);
        assert_eq!(hits[1].steps, vec![2, 3]);
    }

    #[test]
    fn min_gap_skips_immediate_events() {
        // Require the follow-up to be at least 7 days later.
        let h = history(vec![
            diag(t(2013, 1, 1), "T90"),
            diag(t(2013, 1, 3), "T90"), // too soon
            diag(t(2013, 1, 20), "T90"),
        ]);
        let pat = TemporalPattern::starting_with(p("T90")).then(
            GapBound { min: Duration::days(7), max: Duration::days(365) },
            p("T90"),
        );
        let hits = pat.find_matches(&h);
        // Anchor 0 skips index 1 (2 days) and completes at index 2.
        assert_eq!(hits[0].steps, vec![0, 2]);
    }

    #[test]
    fn empty_history_never_matches() {
        let h = history(vec![]);
        let pat = TemporalPattern::starting_with(EntryPredicate::Any);
        assert!(!pat.matches(&h));
        assert!(pat.find_matches(&h).is_empty());
    }

    #[test]
    fn single_step_pattern_matches_each_hit() {
        let h = history(vec![diag(t(2013, 1, 1), "T90"), diag(t(2013, 2, 1), "T90")]);
        let pat = TemporalPattern::starting_with(p("T90"));
        assert_eq!(pat.find_matches(&h).len(), 2);
    }

    #[test]
    fn allen_step_finds_containing_interval() {
        use pastas_ontology::temporal::AllenRel;
        // A home-care period containing a hospital stay: the home-care
        // interval starts BEFORE the stay, so a gap step could never find
        // it; the Allen `Contains` step does.
        let h = history(vec![
            Entry::interval(
                t(2013, 1, 1),
                t(2013, 12, 1),
                Payload::Episode(EpisodeKind::HomeCare),
                SourceKind::Municipal,
            ),
            stay(t(2013, 5, 1), t(2013, 5, 10)),
        ]);
        let pat = TemporalPattern::starting_with(EntryPredicate::Source(SourceKind::Hospital))
            .then_related(
                AllenRel::Contains,
                EntryPredicate::Source(SourceKind::Municipal),
            );
        let hits = pat.find_matches(&h);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].steps, vec![1, 0], "stay anchors; home care relates");
    }

    #[test]
    fn allen_step_respects_relation_sets() {
        use pastas_ontology::temporal::{AllenRel, AllenSet};
        let h = history(vec![
            stay(t(2013, 1, 1), t(2013, 1, 10)),
            stay(t(2013, 1, 10), t(2013, 1, 20)), // meets the first
            stay(t(2013, 3, 1), t(2013, 3, 5)),   // after the first
        ]);
        // First stay, then something it meets or overlaps.
        let touching = TemporalPattern::starting_with(EntryPredicate::IsInterval).then_allen(
            AllenSet::from_rels(&[AllenRel::MetBy, AllenRel::OverlappedBy]),
            EntryPredicate::IsInterval,
        );
        let hits = touching.find_matches(&h);
        // Anchor 0 completes with entry 1 (which is met-by entry 0).
        assert!(hits.iter().any(|hit| hit.steps == vec![0, 1]), "{hits:?}");
        // Strictly-after never satisfies the touching set from anchor 1…
        // entry 2 is After entry 1 (gap), so anchor 1 has no completion.
        assert!(!hits.iter().any(|hit| hit.steps[0] == 2));
    }

    #[test]
    fn allen_step_never_reuses_an_entry() {
        use pastas_ontology::temporal::AllenRel;
        let h = history(vec![stay(t(2013, 1, 1), t(2013, 1, 10))]);
        // Equal-to-itself would trivially match if reuse were allowed.
        let pat = TemporalPattern::starting_with(EntryPredicate::IsInterval)
            .then_related(AllenRel::Equal, EntryPredicate::IsInterval);
        assert!(!pat.matches(&h));
    }
}
