//! Temporal pattern search: ordered sequences with gap constraints,
//! compiled to token automata.
//!
//! The workbench's "searching for temporal patterns" (§IV). A pattern is a
//! sequence of entry predicates with a gap bound between consecutive steps:
//! *"first T90 diagnosis, then an inpatient stay within 90 days, then a
//! beta-blocker dispensing within 30 days of discharge"*.
//!
//! Patterns no longer interpret their steps per history. A
//! [`TemporalPattern`] compiles once (lazily, cached) into an NFA over
//! history-entry tokens, executed by the generic Pike VM in
//! `pastas_regex::engine`:
//!
//! * **Gap-only patterns** become a linear chain of guarded `Token`
//!   instructions — one per step, capturing the consumed entry's index —
//!   run in a single streaming pass with an anchor thread seeded at every
//!   entry ([`run_every`]). The gap check is the transition guard: a
//!   candidate inside the window **advances**, one before the window
//!   **waits** (the thread skips it, like the old forward scan), and one
//!   past the window **fails** the thread outright — sound because
//!   histories are sorted by start time, so no later entry can fall back
//!   into the window. This preserves the earliest-first (greedy,
//!   non-backtracking) semantics of the retired matcher exactly: a parked
//!   thread advances on precisely the first admissible entry.
//! * **Patterns with Allen steps** compile to *indexed* mode: qualitative
//!   relations like `Contains` are satisfied by entries *before* the
//!   anchor, so they cannot stream; a per-anchor random-access interpreter
//!   with pooled scratch runs instead.
//!
//! Either way [`find_matches`](TemporalPattern::find_matches) and
//! [`matches`](TemporalPattern::matches) are thin wrappers over the
//! automaton; `matches` aborts on the first accepting run. The original
//! per-history scan survives only as the `#[cfg(test)]` differential
//! oracle.

use crate::predicate::EntryPredicate;
use pastas_model::{Entries, EntryRef, History};
use pastas_ontology::temporal::{AllenRel, AllenSet};
use pastas_regex::engine::{self, Bounds, Inst, Outcome, Program, TokenGuard};
use pastas_time::{DateTime, Duration};
use std::cell::RefCell;
use std::sync::OnceLock;

/// A gap constraint between consecutive pattern steps, measured from the
/// previous matched entry's **end** to the next matched entry's **start**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapBound {
    /// Minimum gap (may be negative to allow overlap).
    pub min: Duration,
    /// Maximum gap.
    pub max: Duration,
}

impl GapBound {
    /// Within `d` after the previous step (the common "within 30 days").
    pub fn within(d: Duration) -> GapBound {
        GapBound { min: Duration::ZERO, max: d }
    }

    /// Any later time.
    pub fn any_later() -> GapBound {
        GapBound { min: Duration::ZERO, max: Duration::days(100 * 365) }
    }
}

/// One matched pattern instance: the entry index per step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHit {
    /// Indexes into `history.entries()`, one per step, strictly ordered.
    pub steps: Vec<usize>,
}

/// How one step constrains its position relative to the previous step.
#[derive(Debug, Clone, Copy)]
pub enum StepConstraint {
    /// The next entry's start lies within a gap window after the previous
    /// entry's end.
    Gap(GapBound),
    /// The next entry stands in one of the given Allen relations to the
    /// previous matched entry (CNTRO-style qualitative constraints: e.g.
    /// a medication-exposure interval that `Contains` the hospital stay).
    Allen(AllenSet),
}

/// An ordered temporal pattern.
#[derive(Debug, Clone)]
pub struct TemporalPattern {
    first: EntryPredicate,
    rest: Vec<(StepConstraint, EntryPredicate)>,
    /// Lazily compiled automaton; reset by the builder methods.
    compiled: OnceLock<CompiledPattern>,
}

/// Guard state: the span of the previously consumed entry, observed by
/// the next step's gap check.
#[derive(Debug, Clone, Copy)]
struct PrevSpan {
    #[allow(dead_code)] // start participates once Allen guards stream
    start: DateTime,
    end: DateTime,
}

/// A transition guard over history-entry tokens.
#[derive(Debug, Clone)]
enum StepGuard {
    /// The anchor step. Fails (never waits) on a non-matching entry so
    /// that each seeded thread corresponds to exactly one candidate
    /// anchor — a waiting seed would shadow its right neighbor and
    /// double-count accepts.
    First(EntryPredicate),
    /// A gap-constrained follow-up step.
    Gap {
        /// Window after the previous entry's end.
        gap: GapBound,
        /// Predicate on the candidate entry.
        pred: EntryPredicate,
    },
}

impl<'a> TokenGuard<EntryRef<'a>> for StepGuard {
    type State = PrevSpan;

    fn admit(&self, entry: &EntryRef<'a>, prev: &PrevSpan) -> Outcome<PrevSpan> {
        match self {
            StepGuard::First(pred) => {
                if pred.matches(*entry) {
                    Outcome::Advance(PrevSpan { start: entry.start(), end: entry.end() })
                } else {
                    Outcome::Fail
                }
            }
            StepGuard::Gap { gap, pred } => {
                let lo = prev.end + gap.min;
                let hi = prev.end + gap.max;
                let s = entry.start();
                if s > hi {
                    // Entries are sorted by start: every later entry is
                    // past the window too, so the thread is dead.
                    Outcome::Fail
                } else if s >= lo && pred.matches(*entry) {
                    Outcome::Advance(PrevSpan { start: entry.start(), end: entry.end() })
                } else {
                    Outcome::Wait
                }
            }
        }
    }
}

/// The compiled form of a pattern.
#[derive(Debug, Clone)]
enum CompiledPattern {
    /// Gap-only: a loop-free token program run in one streaming pass.
    Stream(Program<StepGuard>),
    /// Has Allen steps: random access per anchor, cannot stream.
    Indexed,
}

thread_local! {
    /// Reusable VM scratch, one per worker thread — automaton runs over
    /// millions of candidate histories allocate nothing in steady state.
    static VM_SCRATCH: RefCell<engine::Scratch<PrevSpan>> =
        RefCell::new(engine::Scratch::new());
    /// Step buffer for the indexed (Allen) interpreter.
    static STEP_SCRATCH: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

impl TemporalPattern {
    /// A pattern starting with entries matching `first`.
    pub fn starting_with(first: EntryPredicate) -> TemporalPattern {
        TemporalPattern { first, rest: Vec::new(), compiled: OnceLock::new() }
    }

    /// Append a step: the next entry must match `pred` with the gap from
    /// the previous step's end inside `gap`.
    pub fn then(mut self, gap: GapBound, pred: EntryPredicate) -> TemporalPattern {
        self.rest.push((StepConstraint::Gap(gap), pred));
        self.compiled = OnceLock::new();
        self
    }

    /// Append a qualitatively-constrained step: the next entry (searched in
    /// start order after the previous match) must stand in one of `rels` to
    /// the previous matched entry.
    pub fn then_allen(mut self, rels: AllenSet, pred: EntryPredicate) -> TemporalPattern {
        self.rest.push((StepConstraint::Allen(rels), pred));
        self.compiled = OnceLock::new();
        self
    }

    /// Shorthand for a single base relation.
    pub fn then_related(self, rel: AllenRel, pred: EntryPredicate) -> TemporalPattern {
        self.then_allen(AllenSet::of(rel), pred)
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        1 + self.rest.len()
    }

    /// Always at least one step.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Every step's entry predicate, in order. Each must be satisfied by
    /// *some* entry of a matching history, which is what lets the planner
    /// intersect per-step index postings as a sound prefilter.
    pub(crate) fn step_predicates(&self) -> impl Iterator<Item = &EntryPredicate> {
        std::iter::once(&self.first).chain(self.rest.iter().map(|(_, p)| p))
    }

    /// Append this pattern's canonical fingerprint to `out`.
    ///
    /// Gap bounds are written in whole seconds and Allen constraints as
    /// their relation bitmask, so two patterns fingerprint identically
    /// iff they impose the same constraints.
    pub(crate) fn write_fingerprint(&self, out: &mut String) {
        use std::fmt::Write;
        out.push_str("seq(");
        self.first.write_fingerprint(out);
        for (constraint, pred) in &self.rest {
            match constraint {
                StepConstraint::Gap(g) => {
                    let _ =
                        write!(out, "-[{}s..{}s]->", g.min.as_seconds(), g.max.as_seconds());
                }
                StepConstraint::Allen(set) => {
                    let _ = write!(out, "-[allen:{}]->", set.0);
                }
            }
            pred.write_fingerprint(out);
        }
        out.push(')');
    }

    /// Compile (or fetch the cached) automaton.
    fn compiled(&self) -> &CompiledPattern {
        self.compiled.get_or_init(|| {
            if self.rest.iter().any(|(c, _)| matches!(c, StepConstraint::Allen(_))) {
                return CompiledPattern::Indexed;
            }
            let mut insts = Vec::with_capacity(self.len() + 1);
            insts.push(Inst::Token { guard: StepGuard::First(self.first.clone()), slot: Some(0) });
            for (k, (constraint, pred)) in self.rest.iter().enumerate() {
                let gap = match constraint {
                    StepConstraint::Gap(g) => *g,
                    // lint:allow(no-panic-hot-path) compile runs once per pattern, and Allen was excluded above
                    StepConstraint::Allen(_) => unreachable!("Allen patterns are Indexed"),
                };
                insts.push(Inst::Token {
                    guard: StepGuard::Gap { gap, pred: pred.clone() },
                    slot: Some(k + 1),
                });
            }
            insts.push(Inst::Match);
            let program = Program { insts, slots: self.len() };
            debug_assert!(program.is_loop_free());
            CompiledPattern::Stream(program)
        })
    }

    /// Find all **anchor-disjoint** matches: for every entry matching the
    /// first step, the earliest completion of the remaining steps. (This is
    /// the semantics of Fails et al.'s multi-hit event chart, which the
    /// paper discusses: one line per search hit.)
    pub fn find_matches(&self, history: &History) -> Vec<PatternHit> {
        let mut hits = Vec::new();
        self.scan(history, |steps| {
            hits.push(PatternHit { steps: steps.to_vec() });
            true
        });
        // Streaming accepts arrive in completion order; report in anchor
        // order like the event chart draws them.
        hits.sort_by_key(|h| h.steps.first().copied().unwrap_or(0));
        hits
    }

    /// True if the history contains at least one match. Short-circuits on
    /// the first accepting run — no hit vector is materialized.
    pub fn matches(&self, history: &History) -> bool {
        let mut found = false;
        self.scan(history, |_| {
            found = true;
            false
        });
        found
    }

    /// Run the compiled automaton over one history, streaming each hit's
    /// step indexes to `on_hit`; `on_hit` returning `false` aborts.
    fn scan(&self, history: &History, on_hit: impl FnMut(&[usize]) -> bool) {
        let entries = history.entries();
        match self.compiled() {
            CompiledPattern::Stream(program) => {
                let bounds = Bounds { begin: 0, end: entries.len() };
                // The anchor guard ignores its incoming state.
                let init =
                    PrevSpan { start: pastas_time::Date::MIN.at_midnight(), end: pastas_time::Date::MIN.at_midnight() };
                let tokens = entries.iter().enumerate().map(|(i, e)| (i, i + 1, e));
                VM_SCRATCH.with(|scratch| {
                    let mut scratch = scratch.borrow_mut();
                    engine::run_every(program, tokens, bounds, &init, &mut scratch, on_hit);
                });
            }
            CompiledPattern::Indexed => self.scan_indexed(&entries, on_hit),
        }
    }

    /// The indexed interpreter for Allen-bearing patterns: per anchor,
    /// random-access completion with a pooled step buffer.
    fn scan_indexed(&self, entries: &Entries<'_>, mut on_hit: impl FnMut(&[usize]) -> bool) {
        STEP_SCRATCH.with(|buf| {
            let mut steps = buf.borrow_mut();
            for (anchor, e) in entries.iter().enumerate() {
                if !self.first.matches(e) {
                    continue;
                }
                if self.complete_indexed(entries, anchor, &mut steps) && !on_hit(&steps) {
                    break;
                }
            }
        });
    }

    /// Earliest-first completion of steps 2.. from anchor index `anchor`,
    /// written into `steps` (which doubles as the no-reuse set for Allen
    /// steps). Gap steps scan forward from the previous match (later
    /// starts only). Allen steps scan the *whole* history in start order —
    /// qualitative relations like `Contains` are satisfied by entries that
    /// start before the previous match (a medication-exposure band
    /// containing a stay starts earlier than the stay). The relation is
    /// evaluated as `rel(candidate, previous)`.
    fn complete_indexed(
        &self,
        entries: &Entries<'_>,
        anchor: usize,
        steps: &mut Vec<usize>,
    ) -> bool {
        steps.clear();
        steps.push(anchor);
        let mut prev = anchor;
        for (constraint, pred) in &self.rest {
            let next = match constraint {
                StepConstraint::Gap(gap) => {
                    let lo = entries.get(prev).end() + gap.min;
                    let hi = entries.get(prev).end() + gap.max;
                    (prev + 1..entries.len()).find(|&j| {
                        let e = entries.get(j);
                        let s = e.start();
                        s >= lo && s <= hi && pred.matches(e)
                    })
                }
                StepConstraint::Allen(rels) => (0..entries.len()).find(|&j| {
                    let e = entries.get(j);
                    !steps.contains(&j)
                        && pred.matches(e)
                        && rels.contains(AllenRel::between_times(
                            (e.start(), e.end()),
                            (entries.get(prev).start(), entries.get(prev).end()),
                        ))
                }),
            };
            match next {
                Some(j) => {
                    steps.push(j);
                    prev = j;
                }
                None => return false,
            }
        }
        true
    }

    /// The retired per-history scan, kept verbatim as the differential
    /// oracle for the automaton (see `proptests`).
    #[cfg(test)]
    pub(crate) fn naive_find_matches(&self, history: &History) -> Vec<PatternHit> {
        let entries = history.entries();
        let mut hits = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            if !self.first.matches(e) {
                continue;
            }
            if let Some(mut steps) = self.naive_complete_from(history, i) {
                let mut full = vec![i];
                full.append(&mut steps);
                hits.push(PatternHit { steps: full });
            }
        }
        hits
    }

    /// Oracle twin of [`matches`](TemporalPattern::matches).
    #[cfg(test)]
    pub(crate) fn naive_matches(&self, history: &History) -> bool {
        let entries = history.entries();
        (0..entries.len()).any(|i| {
            self.first.matches(entries.get(i)) && self.naive_complete_from(history, i).is_some()
        })
    }

    #[cfg(test)]
    fn naive_complete_from(&self, history: &History, anchor: usize) -> Option<Vec<usize>> {
        let entries = history.entries();
        let mut used = vec![anchor];
        let mut prev = anchor;
        let mut out = Vec::with_capacity(self.rest.len());
        for (constraint, pred) in &self.rest {
            let next = match constraint {
                StepConstraint::Gap(gap) => {
                    let lo = entries.get(prev).end() + gap.min;
                    let hi = entries.get(prev).end() + gap.max;
                    (prev + 1..entries.len()).find(|&j| {
                        let e = entries.get(j);
                        let s = e.start();
                        s >= lo && s <= hi && pred.matches(e)
                    })?
                }
                StepConstraint::Allen(rels) => (0..entries.len()).find(|&j| {
                    let e = entries.get(j);
                    !used.contains(&j)
                        && pred.matches(e)
                        && rels.contains(AllenRel::between_times(
                            (e.start(), e.end()),
                            (entries.get(prev).start(), entries.get(prev).end()),
                        ))
                })?,
            };
            out.push(next);
            used.push(next);
            prev = next;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, EpisodeKind, Patient, PatientId, Payload, Sex, SourceKind};
    use pastas_time::Date;

    fn t(y: i32, m: u32, d: u32) -> pastas_time::DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn history(entries: Vec<Entry>) -> History {
        let mut h = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1940, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        h.insert_all(entries);
        h
    }

    fn diag(time: pastas_time::DateTime, code: &str) -> Entry {
        Entry::event(time, Payload::Diagnosis(Code::icpc(code)), SourceKind::PrimaryCare)
    }

    fn stay(a: pastas_time::DateTime, b: pastas_time::DateTime) -> Entry {
        Entry::interval(a, b, Payload::Episode(EpisodeKind::Inpatient), SourceKind::Hospital)
    }

    fn p(code: &str) -> EntryPredicate {
        EntryPredicate::code_regex(code).unwrap()
    }

    #[test]
    fn two_step_within_gap() {
        // T90, then hospitalization within 90 days.
        let h = history(vec![
            diag(t(2013, 1, 10), "T90"),
            stay(t(2013, 3, 1), t(2013, 3, 5)),
        ]);
        let pat = TemporalPattern::starting_with(p("T90"))
            .then(GapBound::within(Duration::days(90)), EntryPredicate::IsInterval);
        assert!(pat.matches(&h));
        let hits = pat.find_matches(&h);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].steps, vec![0, 1]);
    }

    #[test]
    fn gap_excludes_late_events() {
        let h = history(vec![
            diag(t(2013, 1, 10), "T90"),
            stay(t(2013, 8, 1), t(2013, 8, 5)), // ~200 days later
        ]);
        let pat = TemporalPattern::starting_with(p("T90"))
            .then(GapBound::within(Duration::days(90)), EntryPredicate::IsInterval);
        assert!(!pat.matches(&h));
    }

    #[test]
    fn gap_measured_from_interval_end() {
        // Discharge → readmission within 30 days: gap from END of stay 1.
        let h = history(vec![
            stay(t(2013, 1, 1), t(2013, 1, 20)),
            stay(t(2013, 2, 10), t(2013, 2, 15)), // 21 days after discharge
        ]);
        let pat = TemporalPattern::starting_with(EntryPredicate::IsInterval)
            .then(GapBound::within(Duration::days(30)), EntryPredicate::IsInterval);
        assert!(pat.matches(&h), "21 days post-discharge is within 30");
        let tight = TemporalPattern::starting_with(EntryPredicate::IsInterval)
            .then(GapBound::within(Duration::days(20)), EntryPredicate::IsInterval);
        assert!(!tight.matches(&h));
    }

    #[test]
    fn three_step_pathway() {
        let h = history(vec![
            diag(t(2013, 1, 10), "K74"),
            stay(t(2013, 1, 20), t(2013, 1, 27)),
            Entry::event(
                t(2013, 2, 5),
                Payload::Medication(Code::atc("C07AB02")),
                SourceKind::Prescription,
            ),
        ]);
        let pat = TemporalPattern::starting_with(p("K74"))
            .then(GapBound::within(Duration::days(30)), EntryPredicate::IsInterval)
            .then(GapBound::within(Duration::days(30)), EntryPredicate::IsMedication);
        let hits = pat.find_matches(&h);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].steps, vec![0, 1, 2]);
        assert_eq!(pat.len(), 3);
    }

    #[test]
    fn one_hit_per_anchor() {
        // Two T90 codes each followed by a stay → two hits (Fails-style).
        let h = history(vec![
            diag(t(2013, 1, 1), "T90"),
            stay(t(2013, 1, 10), t(2013, 1, 12)),
            diag(t(2013, 6, 1), "T90"),
            stay(t(2013, 6, 10), t(2013, 6, 12)),
        ]);
        let pat = TemporalPattern::starting_with(p("T90"))
            .then(GapBound::within(Duration::days(60)), EntryPredicate::IsInterval);
        let hits = pat.find_matches(&h);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].steps, vec![0, 1]);
        assert_eq!(hits[1].steps, vec![2, 3]);
    }

    #[test]
    fn min_gap_skips_immediate_events() {
        // Require the follow-up to be at least 7 days later.
        let h = history(vec![
            diag(t(2013, 1, 1), "T90"),
            diag(t(2013, 1, 3), "T90"), // too soon
            diag(t(2013, 1, 20), "T90"),
        ]);
        let pat = TemporalPattern::starting_with(p("T90")).then(
            GapBound { min: Duration::days(7), max: Duration::days(365) },
            p("T90"),
        );
        let hits = pat.find_matches(&h);
        // Anchor 0 skips index 1 (2 days) and completes at index 2.
        assert_eq!(hits[0].steps, vec![0, 2]);
    }

    #[test]
    fn empty_history_never_matches() {
        let h = history(vec![]);
        let pat = TemporalPattern::starting_with(EntryPredicate::Any);
        assert!(!pat.matches(&h));
        assert!(pat.find_matches(&h).is_empty());
    }

    #[test]
    fn single_step_pattern_matches_each_hit() {
        let h = history(vec![diag(t(2013, 1, 1), "T90"), diag(t(2013, 2, 1), "T90")]);
        let pat = TemporalPattern::starting_with(p("T90"));
        assert_eq!(pat.find_matches(&h).len(), 2);
    }

    #[test]
    fn allen_step_finds_containing_interval() {
        use pastas_ontology::temporal::AllenRel;
        // A home-care period containing a hospital stay: the home-care
        // interval starts BEFORE the stay, so a gap step could never find
        // it; the Allen `Contains` step does.
        let h = history(vec![
            Entry::interval(
                t(2013, 1, 1),
                t(2013, 12, 1),
                Payload::Episode(EpisodeKind::HomeCare),
                SourceKind::Municipal,
            ),
            stay(t(2013, 5, 1), t(2013, 5, 10)),
        ]);
        let pat = TemporalPattern::starting_with(EntryPredicate::Source(SourceKind::Hospital))
            .then_related(
                AllenRel::Contains,
                EntryPredicate::Source(SourceKind::Municipal),
            );
        let hits = pat.find_matches(&h);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].steps, vec![1, 0], "stay anchors; home care relates");
    }

    #[test]
    fn allen_step_respects_relation_sets() {
        use pastas_ontology::temporal::{AllenRel, AllenSet};
        let h = history(vec![
            stay(t(2013, 1, 1), t(2013, 1, 10)),
            stay(t(2013, 1, 10), t(2013, 1, 20)), // meets the first
            stay(t(2013, 3, 1), t(2013, 3, 5)),   // after the first
        ]);
        // First stay, then something it meets or overlaps.
        let touching = TemporalPattern::starting_with(EntryPredicate::IsInterval).then_allen(
            AllenSet::from_rels(&[AllenRel::MetBy, AllenRel::OverlappedBy]),
            EntryPredicate::IsInterval,
        );
        let hits = touching.find_matches(&h);
        // Anchor 0 completes with entry 1 (which is met-by entry 0).
        assert!(hits.iter().any(|hit| hit.steps == vec![0, 1]), "{hits:?}");
        // Strictly-after never satisfies the touching set from anchor 1…
        // entry 2 is After entry 1 (gap), so anchor 1 has no completion.
        assert!(!hits.iter().any(|hit| hit.steps[0] == 2));
    }

    #[test]
    fn allen_step_never_reuses_an_entry() {
        use pastas_ontology::temporal::AllenRel;
        let h = history(vec![stay(t(2013, 1, 1), t(2013, 1, 10))]);
        // Equal-to-itself would trivially match if reuse were allowed.
        let pat = TemporalPattern::starting_with(EntryPredicate::IsInterval)
            .then_related(AllenRel::Equal, EntryPredicate::IsInterval);
        assert!(!pat.matches(&h));
    }

    #[test]
    fn builder_resets_the_compiled_automaton() {
        let h = history(vec![
            diag(t(2013, 1, 10), "T90"),
            stay(t(2013, 3, 1), t(2013, 3, 5)),
        ]);
        let one = TemporalPattern::starting_with(p("T90"));
        assert!(one.matches(&h)); // compiles the 1-step automaton
        let two = one.then(GapBound::within(Duration::days(5)), EntryPredicate::IsInterval);
        // A stale cache would let the extended pattern still match.
        assert!(!two.matches(&h), "extension after compilation must recompile");
    }

    #[test]
    fn negative_min_gap_allows_overlap() {
        // Follow-up may start up to 10 days before the anchor's end.
        let h = history(vec![
            stay(t(2013, 1, 1), t(2013, 1, 20)),
            stay(t(2013, 1, 15), t(2013, 1, 25)),
        ]);
        let pat = TemporalPattern::starting_with(EntryPredicate::IsInterval).then(
            GapBound { min: Duration::days(-10), max: Duration::days(30) },
            EntryPredicate::IsInterval,
        );
        let hits = pat.find_matches(&h);
        assert_eq!(hits[0].steps, vec![0, 1]);
        assert_eq!(pat.naive_find_matches(&h), hits);
    }

    #[test]
    fn automaton_agrees_with_oracle_on_the_unit_corpus() {
        let histories = [
            history(vec![]),
            history(vec![diag(t(2013, 1, 1), "T90")]),
            history(vec![
                diag(t(2013, 1, 1), "T90"),
                diag(t(2013, 1, 3), "T90"),
                stay(t(2013, 2, 1), t(2013, 2, 5)),
                diag(t(2013, 6, 1), "K74"),
                stay(t(2013, 6, 3), t(2013, 6, 9)),
            ]),
        ];
        let patterns = [
            TemporalPattern::starting_with(p("T90")),
            TemporalPattern::starting_with(p("T90"))
                .then(GapBound::within(Duration::days(60)), EntryPredicate::IsInterval),
            TemporalPattern::starting_with(p("T90"))
                .then(GapBound::any_later(), p("K74"))
                .then(GapBound::within(Duration::days(10)), EntryPredicate::IsInterval),
        ];
        for h in &histories {
            for pat in &patterns {
                assert_eq!(pat.find_matches(h), pat.naive_find_matches(h));
                assert_eq!(pat.matches(h), pat.naive_matches(h));
            }
        }
    }
}
