//! Cohort statistics — the numbers behind "researchers looking at data to
//! be statistically evaluated, in order to discover new hypotheses or get
//! ideas for the best analysis strategies" (§V).
//!
//! These are the summary tables the workbench shows next to the timeline:
//! monthly utilization series, per-source entry counts, age structure, and
//! per-code frequency — each computed in one pass over the collection.

use crate::predicate::EntryPredicate;
use pastas_model::{HistoryCollection, SourceKind};
use pastas_time::Date;
use std::collections::HashMap;

/// Monthly utilization: entry counts per calendar month over `[from, to)`.
///
/// Intervals are counted in every month they overlap (a six-month home-care
/// period contributes to six buckets) — the same semantics as the
/// background bands in the visualization.
pub fn monthly_utilization(
    collection: &HistoryCollection,
    from: Date,
    to: Date,
    filter: Option<&EntryPredicate>,
) -> Vec<(Date, usize)> {
    let mut months = Vec::new();
    let mut cursor = from.first_of_month();
    while cursor < to {
        months.push(cursor);
        cursor = cursor.add_months(1);
    }
    let mut counts = vec![0usize; months.len()];
    for h in collection {
        for e in h.entries() {
            if filter.is_some_and(|f| !f.matches(e)) {
                continue;
            }
            let start = e.start().date().max(from);
            let end = e.end().date().min(to.add_days(-1));
            if start > end {
                continue;
            }
            let k0 = start.months_between(from).max(0) as usize;
            let k1 = end.months_between(from).max(0) as usize;
            for c in counts.iter_mut().take((k1 + 1).min(months.len())).skip(k0) {
                *c += 1;
            }
        }
    }
    months.into_iter().zip(counts).collect()
}

/// Entry counts per source — the heterogeneity profile of the cohort.
pub fn source_profile(collection: &HistoryCollection) -> Vec<(SourceKind, usize)> {
    let mut counts: HashMap<SourceKind, usize> = HashMap::new();
    for h in collection {
        for e in h.entries() {
            *counts.entry(e.source()).or_default() += 1;
        }
    }
    SourceKind::ALL
        .into_iter()
        .map(|s| (s, counts.get(&s).copied().unwrap_or(0)))
        .collect()
}

/// Age pyramid: patient counts per `bucket_years`-wide age band at `at`.
/// Returns `(band start age, count)` for non-empty bands, ascending.
pub fn age_pyramid(collection: &HistoryCollection, at: Date, bucket_years: i32) -> Vec<(i32, usize)> {
    let bucket = bucket_years.max(1);
    let mut counts: HashMap<i32, usize> = HashMap::new();
    for h in collection {
        let age = h.age_at(at);
        let band = age.div_euclid(bucket) * bucket;
        *counts.entry(band).or_default() += 1;
    }
    let mut out: Vec<(i32, usize)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}

/// Code frequency: distinct patients per code value, descending — the
/// "what is this cohort about?" table.
pub fn code_frequency(collection: &HistoryCollection) -> Vec<(String, usize)> {
    let mut per_code: HashMap<String, usize> = HashMap::new();
    for h in collection {
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for e in h.entries() {
            if let Some(c) = e.code() {
                if seen.insert(&c.value) {
                    *per_code.entry(c.value.clone()).or_default() += 1;
                }
            }
        }
    }
    let mut out: Vec<(String, usize)> = per_code.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, EpisodeKind, History, Patient, PatientId, Payload, Sex};

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn collection() -> HistoryCollection {
        let mut h1 = History::new(Patient {
            id: PatientId(1),
            birth_date: d(1950, 6, 1),
            sex: Sex::Female,
        });
        h1.insert(Entry::event(
            d(2013, 1, 15).at_midnight(),
            Payload::Diagnosis(Code::icpc("T90")),
            SourceKind::PrimaryCare,
        ));
        h1.insert(Entry::event(
            d(2013, 3, 2).at_midnight(),
            Payload::Diagnosis(Code::icpc("T90")),
            SourceKind::PrimaryCare,
        ));
        h1.insert(Entry::interval(
            d(2013, 2, 10).at_midnight(),
            d(2013, 4, 20).at_midnight(),
            Payload::Episode(EpisodeKind::HomeCare),
            SourceKind::Municipal,
        ));
        let mut h2 = History::new(Patient {
            id: PatientId(2),
            birth_date: d(1940, 1, 1),
            sex: Sex::Male,
        });
        h2.insert(Entry::event(
            d(2013, 1, 20).at_midnight(),
            Payload::Diagnosis(Code::icpc("K74")),
            SourceKind::Specialist,
        ));
        HistoryCollection::from_histories([h1, h2])
    }

    #[test]
    fn monthly_series_counts_interval_overlap() {
        let c = collection();
        let series = monthly_utilization(&c, d(2013, 1, 1), d(2013, 6, 1), None);
        assert_eq!(series.len(), 5);
        let by_month: HashMap<u32, usize> =
            series.iter().map(|(m, n)| (m.month(), *n)).collect();
        assert_eq!(by_month[&1], 2, "two January events");
        assert_eq!(by_month[&2], 1, "home care overlaps February");
        assert_eq!(by_month[&3], 2, "March event + home care");
        assert_eq!(by_month[&4], 1, "home care ends in April");
        assert_eq!(by_month[&5], 0);
    }

    #[test]
    fn monthly_series_respects_filters() {
        let c = collection();
        let only_diag = EntryPredicate::IsDiagnosis;
        let series = monthly_utilization(&c, d(2013, 1, 1), d(2013, 6, 1), Some(&only_diag));
        let total: usize = series.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 3, "three diagnosis events, no interval smearing");
    }

    #[test]
    fn source_profile_covers_all_sources() {
        let profile = source_profile(&collection());
        assert_eq!(profile.len(), SourceKind::ALL.len());
        let get = |s: SourceKind| profile.iter().find(|(k, _)| *k == s).unwrap().1;
        assert_eq!(get(SourceKind::PrimaryCare), 2);
        assert_eq!(get(SourceKind::Municipal), 1);
        assert_eq!(get(SourceKind::Specialist), 1);
        assert_eq!(get(SourceKind::Hospital), 0);
    }

    #[test]
    fn age_pyramid_buckets() {
        let pyramid = age_pyramid(&collection(), d(2013, 1, 1), 10);
        // Ages: 62 (band 60), 73 (band 70).
        assert_eq!(pyramid, vec![(60, 1), (70, 1)]);
        let fine = age_pyramid(&collection(), d(2013, 1, 1), 1);
        assert_eq!(fine, vec![(62, 1), (73, 1)]);
    }

    #[test]
    fn code_frequency_is_per_patient() {
        let freq = code_frequency(&collection());
        // T90 appears twice in h1 but counts once per patient; ties break
        // alphabetically.
        assert_eq!(
            freq,
            vec![("K74".to_owned(), 1), ("T90".to_owned(), 1)]
        );
    }

    #[test]
    fn empty_collection_statistics() {
        let c = HistoryCollection::new();
        assert!(monthly_utilization(&c, d(2013, 1, 1), d(2013, 3, 1), None)
            .iter()
            .all(|&(_, n)| n == 0));
        assert!(source_profile(&c).iter().all(|&(_, n)| n == 0));
        assert!(age_pyramid(&c, d(2013, 1, 1), 10).is_empty());
        assert!(code_frequency(&c).is_empty());
    }
}
