//! A textual query language — the scriptable face of the Fig. 4 builder.
//!
//! §IV.A: "While being a useful tool for computer scientists, general
//! practitioners cannot be expected to be acquainted with regular
//! expressions. This means that a graphical user interface is needed."
//! The GUI compiles to [`HistoryQuery`]; so does this little language, so
//! saved queries and scripted analyses have a readable, diffable form:
//!
//! ```text
//! has(T90|T89) and age(50..80) and count(diagnosis) >= 3
//! (has(K77) or has(I50.*)) and not lacks(C07.*) and sex(F)
//! ```
//!
//! Grammar (casual EBNF):
//!
//! ```text
//! query   := or
//! or      := and { "or" and }
//! and     := not { "and" not }
//! not     := "not" not | primary
//! primary := "(" or ")" | clause
//! clause  := "has" "(" regex ")"
//!          | "lacks" "(" regex ")"
//!          | "count" "(" counted ")" (">=" | "<=") integer
//!          | "age" "(" integer ".." integer ")"
//!          | "sex" "(" ("F" | "M") ")"
//!          | "seq" "(" step { "then" [ "[" days ".." days "]" ] step } ")"
//! counted := "diagnosis" | "medication" | "interval" | "any" | regex
//! step    := "diagnosis" | "medication" | "interval" | "any" | regex
//! days    := [ "-" ] integer "d"
//! ```
//!
//! Regexes run to the matching close-paren (nested parens balanced), so
//! `has(E1(0|1|4).*)` works. The `age` clause is evaluated at a reference
//! date supplied by the caller. `seq` builds a [`TemporalPattern`]:
//! `seq(T90 then[0d..90d] interval)` matches histories where an entry
//! coded `T90` is followed within 90 days by an interval entry; a bare
//! `then` allows any later time, and a negative minimum permits overlap.

use crate::predicate::EntryPredicate;
use crate::query::HistoryQuery;
use crate::temporal::{GapBound, TemporalPattern};
use pastas_model::Sex;
use pastas_time::{Date, Duration};
use std::fmt;

/// A query-language parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parse a query. `age(..)` clauses evaluate at `reference_date`.
pub fn parse_query(text: &str, reference_date: Date) -> Result<HistoryQuery, QueryParseError> {
    let mut p = P { text, pos: 0, reference_date };
    p.ws();
    let q = p.or_expr()?;
    p.ws();
    if p.pos != p.text.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

struct P<'a> {
    text: &'a str,
    pos: usize,
    reference_date: Date,
}

impl P<'_> {
    fn err(&self, message: &str) -> QueryParseError {
        QueryParseError { message: message.to_owned(), position: self.pos }
    }

    fn rest(&self) -> &str {
        // lint:allow(no-panic-hot-path) pos advances by whole chars, stays <= len
        &self.text[self.pos..]
    }

    fn ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// Consume a keyword followed by a non-word boundary.
    fn keyword(&mut self, kw: &str) -> bool {
        let rest = self.rest();
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.chars().next();
            if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                self.pos += kw.len();
                self.ws();
                return true;
            }
        }
        false
    }

    fn eat(&mut self, token: &str) -> Result<(), QueryParseError> {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            self.ws();
            Ok(())
        } else {
            Err(self.err(&format!("expected {token:?}")))
        }
    }

    fn or_expr(&mut self) -> Result<HistoryQuery, QueryParseError> {
        let mut branches = vec![self.and_expr()?];
        while self.keyword("or") {
            branches.push(self.and_expr()?);
        }
        Ok(if branches.len() == 1 {
            // lint:allow(no-panic-hot-path) len == 1 checked on the line above
            branches.pop().expect("one branch")
        } else {
            HistoryQuery::Or(branches)
        })
    }

    fn and_expr(&mut self) -> Result<HistoryQuery, QueryParseError> {
        let mut parts = vec![self.not_expr()?];
        while self.keyword("and") {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            // lint:allow(no-panic-hot-path) len == 1 checked on the line above
            parts.pop().expect("one part")
        } else {
            HistoryQuery::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<HistoryQuery, QueryParseError> {
        if self.keyword("not") {
            return Ok(HistoryQuery::Not(Box::new(self.not_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<HistoryQuery, QueryParseError> {
        if self.rest().starts_with('(') {
            self.eat("(")?;
            let q = self.or_expr()?;
            self.eat(")")?;
            return Ok(q);
        }
        if self.keyword("has") {
            let re = self.paren_regex()?;
            return Ok(HistoryQuery::any(self.compile(&re)?));
        }
        if self.keyword("lacks") {
            let re = self.paren_regex()?;
            return Ok(HistoryQuery::none(self.compile(&re)?));
        }
        if self.keyword("count") {
            let inner = self.paren_regex()?;
            let pred = match inner.trim() {
                "diagnosis" => EntryPredicate::IsDiagnosis,
                "medication" => EntryPredicate::IsMedication,
                "interval" => EntryPredicate::IsInterval,
                "any" => EntryPredicate::Any,
                regex => self.compile(regex)?,
            };
            let at_least = if self.rest().starts_with(">=") {
                self.eat(">=")?;
                true
            } else if self.rest().starts_with("<=") {
                self.eat("<=")?;
                false
            } else {
                return Err(self.err("expected >= or <= after count(...)"));
            };
            let n = self.integer()?;
            return Ok(if at_least {
                HistoryQuery::CountAtLeast(pred, n as usize)
            } else {
                HistoryQuery::CountAtMost(pred, n as usize)
            });
        }
        if self.keyword("age") {
            self.eat("(")?;
            let min = self.integer()?;
            self.eat("..")?;
            let max = self.integer()?;
            self.eat(")")?;
            if max < min {
                return Err(self.err("age range is reversed"));
            }
            return Ok(HistoryQuery::AgeBetween {
                at: self.reference_date,
                min: min as i32,
                max: max as i32,
            });
        }
        if self.keyword("sex") {
            self.eat("(")?;
            let sex = if self.keyword("F") {
                Sex::Female
            } else if self.keyword("M") {
                Sex::Male
            } else {
                return Err(self.err("expected F or M"));
            };
            self.eat(")")?;
            return Ok(HistoryQuery::SexIs(sex));
        }
        if self.keyword("seq") {
            self.eat("(")?;
            let mut pattern = TemporalPattern::starting_with(self.seq_step()?);
            while self.keyword("then") {
                let gap = if self.rest().starts_with('[') {
                    self.eat("[")?;
                    let min = self.signed_days()?;
                    self.eat("..")?;
                    let max = self.signed_days()?;
                    self.eat("]")?;
                    if max < min {
                        return Err(self.err("gap range is reversed"));
                    }
                    GapBound { min: Duration::days(min), max: Duration::days(max) }
                } else {
                    GapBound::any_later()
                };
                pattern = pattern.then(gap, self.seq_step()?);
            }
            self.eat(")")?;
            return Ok(HistoryQuery::Pattern(pattern));
        }
        Err(self.err("expected a clause: has/lacks/count/age/sex/seq, or a parenthesized query"))
    }

    /// Read one `seq` step — a predicate name or code regex — ending at
    /// the next top-level `then` connector or the closing `)`. Regex
    /// groups `(…)` and classes `[…]` nest freely inside a step.
    fn seq_step(&mut self) -> Result<EntryPredicate, QueryParseError> {
        let start = self.pos;
        let mut depth = 0usize;
        let mut end = None;
        let mut prev: Option<char> = None;
        for (i, c) in self.rest().char_indices() {
            let at = start + i;
            if depth == 0 {
                if c == ')' {
                    end = Some(at);
                    break;
                }
                // A top-level `then` at a word boundary ends the step.
                let boundary = !prev.is_some_and(|p| p.is_alphanumeric() || p == '_');
                // lint:allow(no-panic-hot-path) at is a char_indices offset into text
                if boundary && c == 't' && self.text[at..].starts_with("then") {
                    // lint:allow(no-panic-hot-path) "then" just matched at `at`
                    let after = self.text[at + 4..].chars().next();
                    if !after.is_some_and(|a| a.is_alphanumeric() || a == '_') {
                        end = Some(at);
                        break;
                    }
                }
            }
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth = depth.saturating_sub(1),
                _ => {}
            }
            prev = Some(c);
        }
        let Some(end) = end else {
            return Err(self.err("unclosed seq(...)"));
        };
        // lint:allow(no-panic-hot-path) start and end are char boundaries by construction
        let body = self.text[start..end].trim();
        if body.is_empty() {
            return Err(self.err("expected a step: diagnosis/medication/interval/any or a regex"));
        }
        self.pos = end;
        self.ws();
        Ok(match body {
            "diagnosis" => EntryPredicate::IsDiagnosis,
            "medication" => EntryPredicate::IsMedication,
            "interval" => EntryPredicate::IsInterval,
            "any" => EntryPredicate::Any,
            regex => self.compile(regex)?,
        })
    }

    /// A day count with mandatory `d` suffix, optionally negative:
    /// `90d`, `-5d`.
    fn signed_days(&mut self) -> Result<i64, QueryParseError> {
        let neg = self.rest().starts_with('-');
        if neg {
            self.eat("-")?;
        }
        let n = self.integer()?;
        self.eat("d")?;
        let n = i64::try_from(n).map_err(|_| self.err("day count out of range"))?;
        Ok(if neg { -n } else { n })
    }

    /// Read `( … )` with balanced nested parens; returns the inside.
    fn paren_regex(&mut self) -> Result<String, QueryParseError> {
        self.eat("(")?;
        let start = self.pos;
        let mut depth = 1usize;
        for (i, c) in self.rest().char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        // lint:allow(no-panic-hot-path) i is a char_indices offset of rest()
                        let inner = self.text[start..start + i].to_owned();
                        self.pos = start + i + 1;
                        self.ws();
                        return Ok(inner);
                    }
                }
                _ => {}
            }
        }
        Err(self.err("unclosed '('"))
    }

    fn compile(&self, pattern: &str) -> Result<EntryPredicate, QueryParseError> {
        EntryPredicate::code_regex(pattern.trim()).map_err(|e| QueryParseError {
            message: format!("bad regex {pattern:?}: {e}"),
            position: self.pos,
        })
    }

    fn integer(&mut self) -> Result<u64, QueryParseError> {
        let digits: String = self.rest().chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return Err(self.err("expected a number"));
        }
        self.pos += digits.len();
        self.ws();
        digits.parse().map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, History, Patient, PatientId, Payload, SourceKind};

    fn reference() -> Date {
        Date::new(2013, 1, 1).unwrap()
    }

    fn q(text: &str) -> HistoryQuery {
        parse_query(text, reference()).unwrap_or_else(|e| panic!("{text:?}: {e}"))
    }

    fn history(id: u64, birth_year: i32, codes: &[&str]) -> History {
        let mut h = History::new(Patient {
            id: PatientId(id),
            birth_date: Date::new(birth_year, 6, 1).unwrap(),
            sex: if id.is_multiple_of(2) { Sex::Female } else { Sex::Male },
        });
        for (i, code) in codes.iter().enumerate() {
            h.insert(Entry::event(
                Date::new(2013, 1 + (i as u32 % 12), 1).unwrap().at_midnight(),
                Payload::Diagnosis(Code::icpc(code)),
                SourceKind::PrimaryCare,
            ));
        }
        h
    }

    #[test]
    fn the_running_example() {
        let query = q("has(T90|T89) and age(50..80) and count(diagnosis) >= 3");
        let hit = history(2, 1950, &["T90", "A01", "K86"]);
        let too_few = history(4, 1950, &["T90"]);
        let too_young = history(6, 1990, &["T90", "A01", "K86"]);
        assert!(query.matches(&hit));
        assert!(!query.matches(&too_few));
        assert!(!query.matches(&too_young));
    }

    #[test]
    fn nested_regex_parens_balance() {
        let query = q("has(E1(0|1|4).*)");
        let mut h = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Male,
        });
        h.insert(Entry::event(
            Date::new(2013, 5, 1).unwrap().at_midnight(),
            Payload::Diagnosis(Code::icd10("E11.9")),
            SourceKind::Hospital,
        ));
        assert!(query.matches(&h));
    }

    #[test]
    fn boolean_structure_and_precedence() {
        // and binds tighter than or.
        let query = q("has(A01) or has(T90) and has(K86)");
        assert!(query.matches(&history(1, 1950, &["A01"])));
        assert!(query.matches(&history(1, 1950, &["T90", "K86"])));
        assert!(!query.matches(&history(1, 1950, &["T90"])));
        // Parens override.
        let query = q("(has(A01) or has(T90)) and has(K86)");
        assert!(!query.matches(&history(1, 1950, &["A01"])));
        assert!(query.matches(&history(1, 1950, &["A01", "K86"])));
    }

    #[test]
    fn not_and_lacks() {
        let no_dm = q("not has(T90)");
        assert!(no_dm.matches(&history(1, 1950, &["A01"])));
        assert!(!no_dm.matches(&history(1, 1950, &["T90"])));
        let lacks = q("lacks(T90)");
        assert!(lacks.matches(&history(1, 1950, &["A01"])));
        // Double negation.
        assert!(q("not not has(T90)").matches(&history(1, 1950, &["T90"])));
    }

    #[test]
    fn count_variants() {
        let at_most = q("count(T90) <= 1");
        assert!(at_most.matches(&history(1, 1950, &["T90"])));
        assert!(!at_most.matches(&history(1, 1950, &["T90", "T90"])));
        let regex_count = q("count(K.*) >= 2");
        assert!(regex_count.matches(&history(1, 1950, &["K86", "K74"])));
        assert!(!regex_count.matches(&history(1, 1950, &["K86"])));
    }

    #[test]
    fn sex_clause() {
        assert!(q("sex(F)").matches(&history(2, 1950, &[])));
        assert!(!q("sex(F)").matches(&history(1, 1950, &[])));
        assert!(q("sex(M)").matches(&history(1, 1950, &[])));
    }

    #[test]
    fn whitespace_is_free() {
        let a = q("has(T90)and age(50..80)");
        let b = q("  has( T90 )  and\n  age( 50 .. 80 )  ");
        let h = history(2, 1950, &["T90"]);
        assert_eq!(a.matches(&h), b.matches(&h));
    }

    #[test]
    fn error_reporting() {
        for (bad, expect) in [
            ("", "expected a clause"),
            ("has(T90", "unclosed"),
            ("has(T90) extra", "trailing"),
            ("count(diagnosis) > 3", "expected >= or <="),
            ("age(80..50)", "reversed"),
            ("sex(X)", "expected F or M"),
            ("has(T90[)", "bad regex"),
            ("age(a..b)", "expected a number"),
        ] {
            let e = parse_query(bad, reference()).unwrap_err();
            assert!(
                e.message.contains(expect),
                "{bad:?} gave {:?}, wanted {expect:?}",
                e.message
            );
        }
    }

    #[test]
    fn keywords_do_not_swallow_identifier_prefixes() {
        // "android" must not parse as "and".
        assert!(parse_query("has(T90) android", reference()).is_err());
        // A regex containing the word "or" is untouched inside parens.
        let query = q("has(T90|K74)");
        assert!(query.matches(&history(1, 1950, &["K74"])));
    }

    #[test]
    fn seq_clause_builds_a_temporal_pattern() {
        // T90 followed within ~3 months by any K-chapter code.
        let query = q("seq(T90 then[0d..90d] K.*)");
        let hit = history(1, 1950, &["T90", "K86"]); // one month apart
        let wrong_order = history(1, 1950, &["K86", "T90"]);
        let missing = history(1, 1950, &["T90", "A01"]);
        assert!(query.matches(&hit));
        assert!(!query.matches(&wrong_order));
        assert!(!query.matches(&missing));
        // Matches the builder exactly.
        let built = HistoryQuery::Pattern(
            TemporalPattern::starting_with(EntryPredicate::code_regex("T90").unwrap()).then(
                GapBound { min: Duration::ZERO, max: Duration::days(90) },
                EntryPredicate::code_regex("K.*").unwrap(),
            ),
        );
        for h in [
            history(1, 1950, &["T90", "K86"]),
            history(1, 1950, &["K86"]),
            history(1, 1950, &["T90"]),
        ] {
            assert_eq!(query.matches(&h), built.matches(&h));
        }
    }

    #[test]
    fn seq_steps_take_names_and_bare_then() {
        // Named step predicates, and `then` with no window = any later.
        let query = q("seq(diagnosis then any)");
        assert!(query.matches(&history(1, 1950, &["T90", "K86"])));
        assert!(!query.matches(&history(1, 1950, &["T90"])), "needs a later entry");
        // A three-step chain with grouped regex inside a step.
        let chained = q("seq(E1(0|1).* then[0d..365d] diagnosis then T90)");
        let _ = chained; // structural parse is the assertion
        // Negative minimum allows overlap.
        let overlap = q("seq(T90 then[-30d..60d] K.*)");
        assert!(overlap.matches(&history(1, 1950, &["T90", "K86"])));
    }

    #[test]
    fn seq_error_reporting() {
        for (bad, expect) in [
            ("seq()", "expected a step"),
            ("seq(T90", "unclosed seq"),
            ("seq(T90 then[90d..0d] K.*)", "reversed"),
            ("seq(T90 then[0..90d] K.*)", "expected \"d\""),
            ("seq(T90 then[0d..90d)", "expected \"]\""),
        ] {
            let e = parse_query(bad, reference()).unwrap_err();
            assert!(
                e.message.contains(expect),
                "{bad:?} gave {:?}, wanted {expect:?}",
                e.message
            );
        }
        // "then" embedded in a regex is not a connector.
        assert!(parse_query("seq(T90then)", reference()).is_ok(), "word-boundary check");
    }

    #[test]
    fn parsed_queries_agree_with_the_builder() {
        use crate::query::QueryBuilder;
        let parsed = q("has(T90|T89) and age(50..80)");
        let built = QueryBuilder::new()
            .has_code("T90|T89")
            .unwrap()
            .age_between(reference(), 50, 80)
            .build();
        for h in [
            history(2, 1950, &["T90"]),
            history(4, 1990, &["T90"]),
            history(6, 1950, &["A01"]),
        ] {
            assert_eq!(parsed.matches(&h), built.matches(&h));
        }
    }
}
