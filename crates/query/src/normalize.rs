//! Logical query normalization: one canonical form per query meaning.
//!
//! The planner ([`crate::plan`]) and the workbench's selection cache both
//! want *logically equivalent* queries to collapse onto one
//! representation: `And(a, b)` and `And(b, a)` must produce the same plan
//! and the same cache key, and a `not has(X)` written three different
//! ways (`not has(X)`, `lacks(X)`, `not not lacks(X)`) must be one query.
//!
//! The canonical form:
//!
//! * **Negation at the leaves.** `Not` is pushed down through `And`/`Or`
//!   (De Morgan) and eliminated over counts (`¬(count ≥ n)` ⇔
//!   `count ≤ n−1`, `¬(count ≤ n)` ⇔ `count ≥ n+1`), so the only
//!   surviving `Not` wraps leaves with no complemented form
//!   ([`HistoryQuery::Pattern`], [`HistoryQuery::AgeBetween`],
//!   [`HistoryQuery::SexIs`]) — plus the canonical never-matches query
//!   `Not(All)`.
//! * **Flat combinators.** Nested `And(And(..))` / `Or(Or(..))` are
//!   spliced into one level; vacuous clauses are absorbed (`All` drops
//!   out of a conjunction, collapses a disjunction; `Not(All)` dually).
//! * **Sorted, deduplicated clauses.** `And`/`Or` operands are ordered by
//!   their canonical [`HistoryQuery::fingerprint`] and deduplicated, so
//!   commuted or repeated clauses converge.
//! * **No trivial counts.** `CountAtLeast(p, 0)` is vacuously true and
//!   becomes `All`.
//!
//! Normalization is **idempotent** (`normalize(normalize(q))` ≡
//! `normalize(q)`) and **semantics-preserving** (the normalized query
//! matches exactly the histories the original matches) — both are
//! property-tested in `proptests.rs`. The canonical fingerprint of a
//! query is simply `normalize(q).fingerprint()`.

use crate::query::HistoryQuery;

/// Rewrite a query into its canonical form (see the module docs).
pub fn normalize(query: &HistoryQuery) -> HistoryQuery {
    norm(query, false)
}

/// The canonical fingerprint: the fingerprint of the normalized form.
/// Logically-equivalent-by-rewriting queries (commuted conjunctions,
/// double negations, `lacks` vs `not has`) share one value; the
/// workbench keys its selection cache on it.
pub fn canonical_fingerprint(query: &HistoryQuery) -> String {
    normalize(query).fingerprint()
}

/// The canonical never-matches query. `Not` over `All` is the one
/// negation the normal form keeps at the root, representing `false`.
pub(crate) fn never() -> HistoryQuery {
    HistoryQuery::Not(Box::new(HistoryQuery::All))
}

/// Is this the canonical `false` (i.e. [`never`])?
pub(crate) fn is_never(q: &HistoryQuery) -> bool {
    matches!(q, HistoryQuery::Not(inner) if matches!(**inner, HistoryQuery::All))
}

/// Normalize `q` under `negate` pending negations (parity of the `Not`s
/// seen on the way down).
fn norm(q: &HistoryQuery, negate: bool) -> HistoryQuery {
    match q {
        HistoryQuery::All => {
            if negate {
                never()
            } else {
                HistoryQuery::All
            }
        }
        HistoryQuery::CountAtLeast(p, n) => {
            if negate {
                match n.checked_sub(1) {
                    // ¬(count ≥ n) ⇔ count ≤ n−1.
                    Some(m) => HistoryQuery::CountAtMost(p.clone(), m),
                    // count ≥ 0 is vacuous, so its negation never matches.
                    None => never(),
                }
            } else if *n == 0 {
                HistoryQuery::All
            } else {
                HistoryQuery::CountAtLeast(p.clone(), *n)
            }
        }
        HistoryQuery::CountAtMost(p, n) => {
            if negate {
                // ¬(count ≤ n) ⇔ count ≥ n+1. Saturating: a real history
                // can never reach usize::MAX matching entries, so the
                // saturated threshold keeps the never-matches meaning.
                HistoryQuery::CountAtLeast(p.clone(), n.saturating_add(1))
            } else {
                HistoryQuery::CountAtMost(p.clone(), *n)
            }
        }
        HistoryQuery::Pattern(_) | HistoryQuery::AgeBetween { .. } | HistoryQuery::SexIs(_) => {
            // Leaves without a complemented form keep their Not.
            if negate {
                HistoryQuery::Not(Box::new(q.clone()))
            } else {
                q.clone()
            }
        }
        // De Morgan: negation flips the combinator and distributes, so a
        // conjunction stays a conjunction iff no negation is pending.
        HistoryQuery::And(qs) => combine(qs, negate, negate),
        HistoryQuery::Or(qs) => combine(qs, negate, !negate),
        HistoryQuery::Not(inner) => norm(inner, !negate),
    }
}

/// Normalize the children of a combinator (each under `negate`), then
/// flatten / absorb / sort / deduplicate. `as_or` says whether the
/// *output* combinator is a disjunction.
fn combine(qs: &[HistoryQuery], negate: bool, as_or: bool) -> HistoryQuery {
    let mut flat: Vec<HistoryQuery> = Vec::with_capacity(qs.len());
    for q in qs {
        let n = norm(q, negate);
        // Children are already canonical, so same-variant nesting is at
        // most one level deep — splice it here.
        match n {
            HistoryQuery::And(inner) if !as_or => flat.extend(inner),
            HistoryQuery::Or(inner) if as_or => flat.extend(inner),
            other => flat.push(other),
        }
    }
    // Absorption: `All` is the identity of ∧ and a zero of ∨; `Not(All)`
    // dually.
    if as_or {
        if flat.iter().any(|q| matches!(q, HistoryQuery::All)) {
            return HistoryQuery::All;
        }
        flat.retain(|q| !is_never(q));
    } else {
        if flat.iter().any(is_never) {
            return never();
        }
        flat.retain(|q| !matches!(q, HistoryQuery::All));
    }
    // Canonical clause order, duplicates collapsed.
    let mut keyed: Vec<(String, HistoryQuery)> =
        flat.into_iter().map(|q| (q.fingerprint(), q)).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.dedup_by(|a, b| a.0 == b.0);
    let mut flat: Vec<HistoryQuery> = keyed.into_iter().map(|(_, q)| q).collect();
    match flat.len() {
        // An empty conjunction is vacuously true; an empty disjunction
        // (every branch absorbed as never-matching) is false.
        0 => {
            if as_or {
                never()
            } else {
                HistoryQuery::All
            }
        }
        1 => match flat.pop() {
            Some(only) => only,
            // lint:allow(no-panic-hot-path) len == 1 proved by the match arm
            None => unreachable!(),
        },
        _ => {
            if as_or {
                HistoryQuery::Or(flat)
            } else {
                HistoryQuery::And(flat)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::EntryPredicate;
    use crate::query::QueryBuilder;
    use pastas_time::Date;

    fn has(pat: &str) -> HistoryQuery {
        HistoryQuery::any(EntryPredicate::code_regex(pat).unwrap())
    }

    fn lacks(pat: &str) -> HistoryQuery {
        HistoryQuery::none(EntryPredicate::code_regex(pat).unwrap())
    }

    fn age() -> HistoryQuery {
        HistoryQuery::AgeBetween { at: Date::new(2013, 1, 1).unwrap(), min: 50, max: 80 }
    }

    #[test]
    fn commuted_conjunctions_share_a_fingerprint() {
        let ab = HistoryQuery::And(vec![has("T90"), age()]);
        let ba = HistoryQuery::And(vec![age(), has("T90")]);
        assert_eq!(canonical_fingerprint(&ab), canonical_fingerprint(&ba));
        // The raw fingerprints differ — that is the bug being fixed.
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn double_negation_cancels() {
        let q = HistoryQuery::Not(Box::new(HistoryQuery::Not(Box::new(has("T90")))));
        assert_eq!(canonical_fingerprint(&q), canonical_fingerprint(&has("T90")));
    }

    #[test]
    fn not_has_is_lacks() {
        let not_has = HistoryQuery::Not(Box::new(has("T90")));
        assert_eq!(canonical_fingerprint(&not_has), canonical_fingerprint(&lacks("T90")));
    }

    #[test]
    fn not_lacks_is_has() {
        let not_lacks = HistoryQuery::Not(Box::new(lacks("T90")));
        assert_eq!(canonical_fingerprint(&not_lacks), canonical_fingerprint(&has("T90")));
    }

    #[test]
    fn de_morgan_pushes_not_to_leaves() {
        let q = HistoryQuery::Not(Box::new(HistoryQuery::And(vec![has("T90"), has("K74")])));
        let n = normalize(&q);
        // ¬(a ∧ b) = ¬a ∨ ¬b, with each ¬ dissolved into a count bound.
        match &n {
            HistoryQuery::Or(branches) => {
                assert_eq!(branches.len(), 2);
                for b in branches {
                    assert!(matches!(b, HistoryQuery::CountAtMost(_, 0)), "{b:?}");
                }
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn nested_combinators_flatten_and_dedup() {
        let q = HistoryQuery::And(vec![
            HistoryQuery::And(vec![has("T90"), age()]),
            has("T90"),
            HistoryQuery::All,
        ]);
        let n = normalize(&q);
        match &n {
            HistoryQuery::And(clauses) => assert_eq!(clauses.len(), 2, "{clauses:?}"),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn vacuous_counts_and_absorption() {
        let vacuous = HistoryQuery::CountAtLeast(EntryPredicate::Any, 0);
        assert_eq!(canonical_fingerprint(&vacuous), HistoryQuery::All.fingerprint());
        let or_all = HistoryQuery::Or(vec![has("T90"), HistoryQuery::All]);
        assert_eq!(canonical_fingerprint(&or_all), HistoryQuery::All.fingerprint());
        let and_never = HistoryQuery::And(vec![has("T90"), never()]);
        assert_eq!(canonical_fingerprint(&and_never), never().fingerprint());
        // ¬(count ≥ 0) never matches.
        let not_vacuous = HistoryQuery::Not(Box::new(vacuous));
        assert_eq!(canonical_fingerprint(&not_vacuous), never().fingerprint());
    }

    #[test]
    fn singleton_combinators_unwrap() {
        let q = HistoryQuery::And(vec![has("T90")]);
        assert_eq!(canonical_fingerprint(&q), canonical_fingerprint(&has("T90")));
        let q = HistoryQuery::Or(vec![age()]);
        assert_eq!(canonical_fingerprint(&q), canonical_fingerprint(&age()));
    }

    #[test]
    fn normalization_is_idempotent_on_builder_queries() {
        let q = QueryBuilder::new()
            .has_code("T90|T89")
            .unwrap()
            .lacks_code("K74")
            .unwrap()
            .age_between(Date::new(2013, 1, 1).unwrap(), 50, 80)
            .build();
        let once = normalize(&q);
        let twice = normalize(&once);
        assert_eq!(once.fingerprint(), twice.fingerprint());
    }

    #[test]
    fn normalization_preserves_matching() {
        use pastas_synth::{generate_collection, SynthConfig};
        let c = generate_collection(SynthConfig::with_patients(200), 13);
        let queries = [
            HistoryQuery::Not(Box::new(HistoryQuery::And(vec![has("T90"), age()]))),
            HistoryQuery::Or(vec![
                HistoryQuery::Not(Box::new(has("K.*"))),
                HistoryQuery::And(vec![has("T90"), has("T90")]),
            ]),
            HistoryQuery::Not(Box::new(HistoryQuery::Not(Box::new(lacks("A.*"))))),
        ];
        for q in &queries {
            let n = normalize(q);
            for h in &c {
                assert_eq!(q.matches(h), n.matches(h), "{q:?} vs {n:?}");
            }
        }
    }
}
