//! The workbench operators: sorting and aligning histories.
//!
//! §IV.B: "In an aligned diagram, the axis shows the number of months
//! before and after the alignment point." Alignment computes, per history,
//! the anchor instant (the first entry matching a predicate — "merged
//! around the first incidence of diabetes"); histories with no anchor drop
//! out of the aligned view.

use crate::predicate::EntryPredicate;
use pastas_model::{History, HistoryCollection, PatientId};
use pastas_time::DateTime;
use std::collections::HashMap;

/// Per-history anchors for the aligned axis mode.
#[derive(Debug, Clone, Default)]
pub struct Alignment {
    anchors: HashMap<PatientId, DateTime>,
}

impl Alignment {
    /// The anchor for a patient, if the history had a matching entry.
    pub fn anchor(&self, id: PatientId) -> Option<DateTime> {
        self.anchors.get(&id).copied()
    }

    /// Number of aligned histories.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True if no history anchored.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// Patients that anchored, unordered.
    pub fn patients(&self) -> impl Iterator<Item = PatientId> + '_ {
        self.anchors.keys().copied()
    }
}

/// Compute anchors: the **first** entry of each history matching `pred`.
pub fn align_on(collection: &HistoryCollection, pred: &EntryPredicate) -> Alignment {
    let mut anchors = HashMap::new();
    for h in collection {
        if let Some(e) = h.first_matching(|e| pred.matches(e)) {
            anchors.insert(h.id(), e.start());
        }
    }
    Alignment { anchors }
}

/// Sort keys for the vertical order of the display.
#[derive(Debug, Clone)]
pub enum SortKey {
    /// By patient id (the database order of Fig. 1).
    PatientId,
    /// By first entry time.
    FirstEntry,
    /// By total number of entries (utilization).
    EntryCount,
    /// By history span (long trajectories first when descending).
    Span,
    /// By anchor time under an alignment (unanchored histories last).
    Anchor(Alignment),
}

/// Return history positions in sorted order (stable, ascending).
///
/// Key extraction (which may walk every entry, e.g. [`SortKey::Span`]) is
/// chunked across threads; the sort itself is the serial stable sort over
/// precomputed keys, so the order is identical at every thread count.
pub fn sort_histories(collection: &HistoryCollection, key: &SortKey) -> Vec<u32> {
    let hs = collection.histories();
    let mut order: Vec<u32> = (0..hs.len() as u32).collect();
    let sort_value = |h: &History| -> i64 {
        match key {
            SortKey::PatientId => h.id().0 as i64,
            SortKey::FirstEntry => h
                .first_time()
                .map(|t| t.second_number())
                .unwrap_or(i64::MAX),
            SortKey::EntryCount => h.len() as i64,
            SortKey::Span => h.span().map(|d| d.as_seconds()).unwrap_or(-1),
            SortKey::Anchor(a) => a
                .anchor(h.id())
                .map(|t| t.second_number())
                .unwrap_or(i64::MAX),
        }
    };
    let keys = pastas_par::par_map(hs, |h| sort_value(h));
    // lint:allow(no-panic-hot-path) order holds indices 0..hs.len(), one key each
    order.sort_by_key(|&i| keys[i as usize]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, Patient, Payload, Sex, SourceKind};
    use pastas_time::Date;

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn history(id: u64, events: &[(&str, (i32, u32, u32))]) -> History {
        let mut h = History::new(Patient {
            id: PatientId(id),
            birth_date: Date::new(1940, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        for &(code, (y, m, d)) in events {
            h.insert(Entry::event(
                t(y, m, d),
                Payload::Diagnosis(Code::icpc(code)),
                SourceKind::PrimaryCare,
            ));
        }
        h
    }

    fn collection() -> HistoryCollection {
        HistoryCollection::from_histories([
            history(1, &[("A01", (2013, 1, 1)), ("T90", (2013, 6, 1)), ("T90", (2014, 1, 1))]),
            history(2, &[("T90", (2013, 2, 1))]),
            history(3, &[("K74", (2013, 3, 1))]), // never anchors on T90
        ])
    }

    #[test]
    fn alignment_uses_first_occurrence() {
        let c = collection();
        let a = align_on(&c, &EntryPredicate::code_regex("T90").unwrap());
        assert_eq!(a.len(), 2);
        assert_eq!(a.anchor(PatientId(1)), Some(t(2013, 6, 1)), "first T90, not the 2014 one");
        assert_eq!(a.anchor(PatientId(2)), Some(t(2013, 2, 1)));
        assert_eq!(a.anchor(PatientId(3)), None);
    }

    #[test]
    fn sort_by_patient_id_and_first_entry() {
        let c = collection();
        assert_eq!(sort_histories(&c, &SortKey::PatientId), vec![0, 1, 2]);
        // First entries: h1=2013-01-01, h2=2013-02-01, h3=2013-03-01.
        assert_eq!(sort_histories(&c, &SortKey::FirstEntry), vec![0, 1, 2]);
    }

    #[test]
    fn sort_by_entry_count_is_stable() {
        let c = collection();
        // Counts: 3, 1, 1 → ascending puts h2, h3 (stable) then h1.
        assert_eq!(sort_histories(&c, &SortKey::EntryCount), vec![1, 2, 0]);
    }

    #[test]
    fn sort_by_anchor_puts_unanchored_last() {
        let c = collection();
        let a = align_on(&c, &EntryPredicate::code_regex("T90").unwrap());
        // Anchors: h1=2013-06-01, h2=2013-02-01, h3=None.
        assert_eq!(sort_histories(&c, &SortKey::Anchor(a)), vec![1, 0, 2]);
    }

    #[test]
    fn sort_by_span() {
        let c = collection();
        // Spans: h1 = one year, h2 = h3 = zero.
        let order = sort_histories(&c, &SortKey::Span);
        assert_eq!(order[2], 0, "longest span last when ascending");
    }

    #[test]
    fn empty_collection() {
        let c = HistoryCollection::new();
        let a = align_on(&c, &EntryPredicate::Any);
        assert!(a.is_empty());
        assert!(sort_histories(&c, &SortKey::PatientId).is_empty());
    }
}
