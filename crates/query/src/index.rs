//! The inverted code index.
//!
//! "It can be challenging to use for large data sets" is the paper's own
//! conclusion; this index is our answer. It maps every distinct code value
//! to the (sorted, deduplicated) list of history positions containing it,
//! so a regex cohort selection first matches the regex against the
//! *distinct code vocabulary* (hundreds of strings) instead of every entry
//! of 168,000 histories, then unions candidate lists.
//!
//! Two refinements on top of the vocabulary scan:
//!
//! * postings live in a **B-tree keyed by code value**, and the regex
//!   engine exports its guaranteed literal prefix
//!   ([`pastas_regex::PrefixInfo`]) — `K.*` becomes a range scan over
//!   `K..L`, `T90` an equality probe;
//! * candidate lists are unioned with a merge, keeping output sorted.
//!
//! The E5/E8 benches compare all three paths (scan, vocabulary, prefix).

use crate::query::HistoryQuery;
use pastas_model::HistoryCollection;
use pastas_regex::Regex;
use std::collections::BTreeMap;

/// Inverted index: distinct code value → history positions.
///
/// Values are merged across code systems (the paper's regexes — `T90`,
/// `F.*|H.*` — select by value; a value that exists in two systems simply
/// unions both sets, which matches the predicate semantics of
/// `EntryPredicate::CodeMatches`).
#[derive(Debug, Default)]
pub struct CodeIndex {
    /// code value → sorted history positions.
    postings: BTreeMap<String, Vec<u32>>,
}

impl CodeIndex {
    /// Build the index over a collection (one pass over all entries).
    pub fn build(collection: &HistoryCollection) -> CodeIndex {
        let mut postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for (hi, h) in collection.iter().enumerate() {
            for e in h.entries() {
                if let Some(code) = e.code() {
                    let list = postings.entry(code.value.clone()).or_default();
                    if list.last() != Some(&(hi as u32)) {
                        list.push(hi as u32);
                    }
                }
            }
        }
        // Values seen in several systems or orders may interleave; ensure
        // the invariant.
        for list in postings.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        CodeIndex { postings }
    }

    /// Number of distinct codes indexed.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// History positions whose entries contain a code fully matching the
    /// regex (sorted, deduplicated). Uses the pattern's literal prefix to
    /// restrict the vocabulary range — an exact literal is one probe, a
    /// prefix pattern scans only its subtree.
    pub fn candidates_for_regex(&self, re: &Regex) -> Vec<u32> {
        let info = re.prefix_info();
        let mut out = Vec::new();
        if info.exact {
            if let Some(list) = self.postings.get(&info.prefix) {
                out.extend_from_slice(list);
            }
            return out;
        }
        if info.prefix.is_empty() {
            for (value, list) in &self.postings {
                if re.is_full_match(value) {
                    out.extend_from_slice(list);
                }
            }
        } else {
            for (value, list) in self.postings.range(info.prefix.clone()..) {
                if !value.starts_with(&info.prefix) {
                    break;
                }
                if re.is_full_match(value) {
                    out.extend_from_slice(list);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Like [`Self::candidates_for_regex`] but forcing the full-vocabulary
    /// scan — the prefix-path ablation baseline.
    pub fn candidates_scan_vocabulary(&self, re: &Regex) -> Vec<u32> {
        let mut out = Vec::new();
        for (value, list) in &self.postings {
            if re.is_full_match(value) {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// History positions for a set of regex patterns (union).
    pub fn candidates_for_patterns(&self, patterns: &[String]) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        for p in patterns {
            let re = Regex::new(p).ok()?;
            out.extend(self.candidates_for_regex(&re));
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    /// Evaluate a query over the collection **using the index** as a
    /// pre-filter where possible, falling back to the full scan otherwise.
    /// Returns matching history positions in display order.
    pub fn select(&self, collection: &HistoryCollection, query: &HistoryQuery) -> Vec<u32> {
        let histories = collection.histories();
        match query.positive_code_regexes().and_then(|ps| self.candidates_for_patterns(&ps)) {
            Some(candidates) => candidates
                .into_iter()
                .filter(|&i| query.matches(&histories[i as usize]))
                .collect(),
            None => select_scan(collection, query),
        }
    }
}

/// The naive path: evaluate the query against every history.
pub fn select_scan(collection: &HistoryCollection, query: &HistoryQuery) -> Vec<u32> {
    collection
        .iter()
        .enumerate()
        .filter(|(_, h)| query.matches(h))
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::EntryPredicate;
    use crate::query::QueryBuilder;
    use pastas_synth::{generate_collection, SynthConfig};

    fn collection() -> HistoryCollection {
        generate_collection(SynthConfig::with_patients(400), 71)
    }

    #[test]
    fn index_and_scan_agree_on_simple_selection() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        assert_eq!(idx.select(&c, &q), select_scan(&c, &q));
    }

    #[test]
    fn index_and_scan_agree_on_compound_queries() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new()
            .has_code("T90|K74")
            .unwrap()
            .count_at_least(EntryPredicate::IsDiagnosis, 3)
            .build();
        assert_eq!(idx.select(&c, &q), select_scan(&c, &q));
    }

    #[test]
    fn negative_queries_fall_back_to_scan() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new().lacks_code("T90").unwrap().build();
        let got = idx.select(&c, &q);
        assert_eq!(got, select_scan(&c, &q));
        assert!(!got.is_empty(), "most patients lack diabetes");
    }

    #[test]
    fn prefix_path_agrees_with_vocabulary_scan() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        for pattern in ["T90", "K.*", "E1[014].*", "C07AB..", "T90|T89", "F.*|H.*", ".*", "[KR].*"] {
            let re = Regex::new(pattern).unwrap();
            assert_eq!(
                idx.candidates_for_regex(&re),
                idx.candidates_scan_vocabulary(&re),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn exact_literal_is_an_equality_probe() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let re = Regex::new("T90").unwrap();
        assert!(re.prefix_info().exact);
        let hits = idx.candidates_for_regex(&re);
        assert!(!hits.is_empty());
        // And a literal that indexes nothing returns nothing.
        let re = Regex::new("Z99").unwrap();
        assert!(idx.candidates_for_regex(&re).is_empty());
    }

    #[test]
    fn vocabulary_is_much_smaller_than_entries() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        assert!(idx.vocabulary_size() > 5);
        assert!(idx.vocabulary_size() < 200, "vocab {}", idx.vocabulary_size());
        assert!(idx.vocabulary_size() < c.stats().entries / 10);
    }

    #[test]
    fn candidates_are_sorted_and_unique() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let re = Regex::new("T90|K86").unwrap();
        let cands = idx.candidates_for_regex(&re);
        for w in cands.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn chapter_regex_selects_superset_of_leaf() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let leaf = idx.candidates_for_regex(&Regex::new("K86").unwrap());
        let chapter = idx.candidates_for_regex(&Regex::new("K.*").unwrap());
        for x in &leaf {
            assert!(chapter.contains(x));
        }
        assert!(chapter.len() >= leaf.len());
    }

    #[test]
    fn empty_collection_is_fine() {
        let c = HistoryCollection::new();
        let idx = CodeIndex::build(&c);
        assert_eq!(idx.vocabulary_size(), 0);
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        assert!(idx.select(&c, &q).is_empty());
    }
}
