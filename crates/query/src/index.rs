//! The inverted code index.
//!
//! "It can be challenging to use for large data sets" is the paper's own
//! conclusion; this index is our answer. It maps every distinct code value
//! to the (sorted, deduplicated) list of history positions containing it,
//! so a regex cohort selection first matches the regex against the
//! *distinct code vocabulary* (hundreds of strings) instead of every entry
//! of 168,000 histories, then unions candidate lists.
//!
//! Three refinements on top of the vocabulary scan:
//!
//! * the build rides the model layer's [`pastas_model::CodeInterner`]:
//!   the vocabulary is assembled from the distinct codes each backing
//!   [`EventStore`] already interned (a per-store `CodeId` → vocabulary
//!   slot translation table), so posting an entry is two integer lookups
//!   via [`pastas_model::EntryRef::code_id`] — **no per-entry string
//!   clone or hash**. The sorted vocabulary is probed by binary search;
//!   the regex engine's guaranteed literal prefix
//!   ([`pastas_regex::PrefixInfo`]) turns `K.*` into a `partition_point`
//!   plus a linear walk over the `K…` run, and `T90` into a single
//!   equality probe, with no per-query allocation;
//! * candidate verification and the index build itself run on the
//!   [`pastas_par`] parallel layer (chunked, deterministic: per-chunk
//!   postings merge in chunk order, so `PASTAS_THREADS=1` reproduces the
//!   serial result bit for bit);
//! * compiled regexes are memoized per index, so re-running a selection
//!   (the workbench's dominant interaction) skips recompilation.
//!
//! The E5/E8 benches compare all paths (scan, vocabulary, prefix,
//! serial vs. parallel).

use crate::query::HistoryQuery;
use pastas_model::{EventStore, HistoryCollection};
use pastas_regex::Regex;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-thread minimum number of histories before index building or
/// candidate verification goes parallel. Predicate evaluation is cheap per
/// history, so small cohorts stay on the serial path.
const PAR_MIN_HISTORIES: usize = 256;

/// Inverted index: distinct code value → history positions.
///
/// Values are merged across code systems (the paper's regexes — `T90`,
/// `F.*|H.*` — select by value; a value that exists in two systems simply
/// unions both sets, which matches the predicate semantics of
/// `EntryPredicate::CodeMatches`).
#[derive(Debug, Default)]
pub struct CodeIndex {
    /// Distinct code values present in the collection, sorted. Probed by
    /// binary search; a literal prefix selects a contiguous run.
    vocab: Vec<Box<str>>,
    /// `postings[i]`: ascending history positions containing `vocab[i]`.
    postings: Vec<Vec<u32>>,
    /// Compiled patterns memoized across selections on this index.
    compiled: Mutex<HashMap<String, Regex>>,
}

impl CodeIndex {
    /// Build the index over a collection.
    ///
    /// Two phases. First the distinct backing stores (usually one shared
    /// arena) contribute their interned symbol tables to a merged sorted
    /// vocabulary, with one `CodeId` → vocabulary-slot translation table
    /// per store. Then one pass over all entries posts
    /// `translate(entry.code_id())` — integer lookups only, chunked
    /// across threads; per-chunk postings merge in position order so the
    /// result is identical at every thread count.
    pub fn build(collection: &HistoryCollection) -> CodeIndex {
        let histories = collection.histories();

        // Phase 1: distinct stores and the store slot of each history.
        let mut stores: Vec<&Arc<EventStore>> = Vec::new();
        let mut slot_by_ptr: HashMap<*const EventStore, u32> = HashMap::new();
        let mut store_of: Vec<u32> = Vec::with_capacity(histories.len());
        for h in histories {
            let ptr = Arc::as_ptr(h.store());
            let slot = *slot_by_ptr.entry(ptr).or_insert_with(|| {
                stores.push(h.store());
                (stores.len() - 1) as u32
            });
            store_of.push(slot);
        }

        // Merged vocabulary over every store's interner (values merge
        // across code systems, matching `EntryPredicate::CodeMatches`).
        let mut values: Vec<&str> = stores
            .iter()
            .flat_map(|s| s.interner().iter().map(|c| c.value.as_str()))
            .collect();
        values.sort_unstable();
        values.dedup();
        // Per store: CodeId (append index) → merged vocabulary slot.
        let tables: Vec<Vec<u32>> = stores
            .iter()
            .map(|s| {
                s.interner()
                    .iter()
                    .map(|c| {
                        values
                            .binary_search(&c.value.as_str())
                            // lint:allow(no-panic-hot-path) phase 1 merged every value
                            .expect("interned value is in the merged vocabulary")
                            as u32
                    })
                    .collect()
            })
            .collect();

        // Phase 2: post history positions by translated code id.
        let chunk_lists = pastas_par::par_chunks(histories, PAR_MIN_HISTORIES, |start, chunk| {
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); values.len()];
            for (offset, h) in chunk.iter().enumerate() {
                let hi = (start + offset) as u32;
                // lint:allow(no-panic-hot-path) store_of has one entry per history
                let table = &tables[store_of[start + offset] as usize];
                for e in h.entries() {
                    if let Some(id) = e.code_id() {
                        // lint:allow(no-panic-hot-path) table maps every CodeId of its store
                        let list = &mut lists[table[id.0 as usize] as usize];
                        if list.last() != Some(&hi) {
                            list.push(hi);
                        }
                    }
                }
            }
            lists
        });
        // Each history position lives in exactly one chunk and chunks come
        // back in ascending position order, so appending per-slot lists
        // chunk by chunk keeps every postings list ascending and unique.
        let mut merged: Vec<Vec<u32>> = vec![Vec::new(); values.len()];
        for lists in chunk_lists {
            for (slot, list) in lists.into_iter().enumerate() {
                // lint:allow(no-panic-hot-path) every chunk allocates values.len() slots
                merged[slot].extend(list);
            }
        }
        // A shared arena's interner may carry codes belonging to patients
        // outside this (sub-)collection; keep only values actually seen.
        let (vocab, postings) = values
            .into_iter()
            .zip(merged)
            .filter(|(_, list)| !list.is_empty())
            .map(|(value, list)| (Box::from(value), list))
            .unzip();
        CodeIndex { vocab, postings, compiled: Mutex::new(HashMap::new()) }
    }

    /// Number of distinct codes indexed.
    pub fn vocabulary_size(&self) -> usize {
        self.vocab.len()
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Panics unless the vocabulary is strictly sorted (sorted *and*
    /// deduplicated — what binary search and the prefix walk assume),
    /// there is exactly one postings list per vocabulary slot, and every
    /// postings list is strictly ascending (sorted and duplicate-free —
    /// what the k-way candidate union assumes).
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        assert_eq!(
            self.postings.len(),
            self.vocab.len(),
            "index: vocabulary and postings differ in length"
        );
        for (a, b) in self.vocab.iter().zip(self.vocab.iter().skip(1)) {
            assert!(a < b, "index: vocabulary out of order or duplicated at {a:?} / {b:?}");
        }
        for (value, list) in self.vocab.iter().zip(&self.postings) {
            for (a, b) in list.iter().zip(list.iter().skip(1)) {
                assert!(a < b, "index: postings for {value:?} out of order or duplicated");
            }
        }
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}

    /// The postings list for an exact code value, if indexed.
    fn probe(&self, value: &str) -> Option<&[u32]> {
        self.vocab
            .binary_search_by(|v| v.as_ref().cmp(value))
            .ok()
            .and_then(|i| self.postings.get(i))
            .map(Vec::as_slice)
    }

    /// History positions whose entries contain a code fully matching the
    /// regex (sorted, deduplicated). Uses the pattern's literal prefix to
    /// restrict the vocabulary range — an exact literal is one binary
    /// search, a prefix pattern walks only its contiguous run.
    pub fn candidates_for_regex(&self, re: &Regex) -> Vec<u32> {
        let info = re.prefix_info();
        let mut out = Vec::new();
        if info.exact {
            if let Some(list) = self.probe(&info.prefix) {
                out.extend_from_slice(list);
            }
            return out;
        }
        if info.prefix.is_empty() {
            for (value, list) in self.vocab.iter().zip(&self.postings) {
                if re.is_full_match(value) {
                    out.extend_from_slice(list);
                }
            }
        } else {
            let prefix = info.prefix.as_str();
            let start = self.vocab.partition_point(|v| v.as_ref() < prefix);
            // lint:allow(no-panic-hot-path) partition_point returns start <= len
            for (value, list) in self.vocab[start..].iter().zip(&self.postings[start..]) {
                if !value.starts_with(prefix) {
                    break;
                }
                if re.is_full_match(value) {
                    out.extend_from_slice(list);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Like [`Self::candidates_for_regex`] but forcing the full-vocabulary
    /// scan — the prefix-path ablation baseline.
    pub fn candidates_scan_vocabulary(&self, re: &Regex) -> Vec<u32> {
        let mut out = Vec::new();
        for (value, list) in self.vocab.iter().zip(&self.postings) {
            if re.is_full_match(value) {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Compile `pattern`, memoizing successes on this index. Returns
    /// `None` for invalid patterns (callers fall back to the scan path).
    fn compiled(&self, pattern: &str) -> Option<Regex> {
        let mut cache = self.compiled.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(re) = cache.get(pattern) {
            return Some(re.clone());
        }
        let re = Regex::new(pattern).ok()?;
        cache.insert(pattern.to_owned(), re.clone());
        Some(re)
    }

    /// History positions for a set of regex patterns (union).
    pub fn candidates_for_patterns(&self, patterns: &[String]) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        for p in patterns {
            let re = self.compiled(p)?;
            out.extend(self.candidates_for_regex(&re));
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    /// Upper-bound candidate estimate for a pattern set: the summed
    /// posting sizes over the vocabulary range each pattern selects
    /// (duplicates across patterns counted twice — this is a planning
    /// estimate, not a result). Costs the same vocabulary walk as the
    /// fetch itself but touches no posting list. Patterns that fail to
    /// compile estimate as 0 (they fetch nothing, too).
    pub fn estimated_candidates(&self, patterns: &[String]) -> usize {
        let mut total = 0usize;
        for p in patterns {
            let Some(re) = self.compiled(p) else { continue };
            let info = re.prefix_info();
            if info.exact {
                total += self.probe(&info.prefix).map_or(0, <[u32]>::len);
                continue;
            }
            if info.prefix.is_empty() {
                for (value, list) in self.vocab.iter().zip(&self.postings) {
                    if re.is_full_match(value) {
                        total += list.len();
                    }
                }
            } else {
                let prefix = info.prefix.as_str();
                let start = self.vocab.partition_point(|v| v.as_ref() < prefix);
                // lint:allow(no-panic-hot-path) partition_point returns start <= len
                for (value, list) in self.vocab[start..].iter().zip(&self.postings[start..]) {
                    if !value.starts_with(prefix) {
                        break;
                    }
                    if re.is_full_match(value) {
                        total += list.len();
                    }
                }
            }
        }
        total
    }

    /// Evaluate a query over the collection through the physical planner
    /// ([`crate::plan::QueryPlan`]): code-regex clauses — positive *and*
    /// negative — become posting-list set algebra; residual clauses
    /// verify only the candidate set; only queries with no index-servable
    /// clause at all scan every history. Returns matching history
    /// positions in display order, identical to [`select_scan`].
    pub fn select(&self, collection: &HistoryCollection, query: &HistoryQuery) -> Vec<u32> {
        crate::plan::QueryPlan::build(self, collection, query).execute(collection, self)
    }
}

/// The naive path: evaluate the query against every history (chunked
/// across threads, order-preserving).
pub fn select_scan(collection: &HistoryCollection, query: &HistoryQuery) -> Vec<u32> {
    pastas_par::par_filter_indices_min(collection.histories(), PAR_MIN_HISTORIES, |h| {
        query.matches(h)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::EntryPredicate;
    use crate::query::QueryBuilder;
    use pastas_synth::{generate_collection, SynthConfig};

    fn collection() -> HistoryCollection {
        generate_collection(SynthConfig::with_patients(400), 71)
    }

    #[test]
    fn index_and_scan_agree_on_simple_selection() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        assert_eq!(idx.select(&c, &q), select_scan(&c, &q));
    }

    #[test]
    fn index_and_scan_agree_on_compound_queries() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new()
            .has_code("T90|K74")
            .unwrap()
            .count_at_least(EntryPredicate::IsDiagnosis, 3)
            .build();
        assert_eq!(idx.select(&c, &q), select_scan(&c, &q));
    }

    #[test]
    fn negative_queries_are_served_by_posting_complement() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new().lacks_code("T90").unwrap().build();
        let plan = crate::plan::QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "negation no longer scans:\n{}", plan.render());
        let got = idx.select(&c, &q);
        assert_eq!(got, select_scan(&c, &q));
        assert!(!got.is_empty(), "most patients lack diabetes");
    }

    #[test]
    fn estimated_candidates_bounds_the_fetch() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        for patterns in [
            vec!["T90".to_owned()],
            vec!["K.*".to_owned()],
            vec!["T90".to_owned(), "K.*".to_owned()],
            vec![".*".to_owned()],
            vec!["Z99".to_owned()],
        ] {
            let est = idx.estimated_candidates(&patterns);
            let got = idx.candidates_for_patterns(&patterns).unwrap();
            assert!(est >= got.len(), "estimate {est} < fetched {} for {patterns:?}", got.len());
        }
    }

    #[test]
    fn prefix_path_agrees_with_vocabulary_scan() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        for pattern in ["T90", "K.*", "E1[014].*", "C07AB..", "T90|T89", "F.*|H.*", ".*", "[KR].*"] {
            let re = Regex::new(pattern).unwrap();
            assert_eq!(
                idx.candidates_for_regex(&re),
                idx.candidates_scan_vocabulary(&re),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn exact_literal_is_an_equality_probe() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let re = Regex::new("T90").unwrap();
        assert!(re.prefix_info().exact);
        let hits = idx.candidates_for_regex(&re);
        assert!(!hits.is_empty());
        // And a literal that indexes nothing returns nothing.
        let re = Regex::new("Z99").unwrap();
        assert!(idx.candidates_for_regex(&re).is_empty());
    }

    #[test]
    fn vocabulary_is_much_smaller_than_entries() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        assert!(idx.vocabulary_size() > 5);
        assert!(idx.vocabulary_size() < 200, "vocab {}", idx.vocabulary_size());
        assert!(idx.vocabulary_size() < c.stats().entries / 10);
    }

    #[test]
    fn candidates_are_sorted_and_unique() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let re = Regex::new("T90|K86").unwrap();
        let cands = idx.candidates_for_regex(&re);
        for w in cands.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn chapter_regex_selects_superset_of_leaf() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let leaf = idx.candidates_for_regex(&Regex::new("K86").unwrap());
        let chapter = idx.candidates_for_regex(&Regex::new("K.*").unwrap());
        for x in &leaf {
            assert!(chapter.contains(x));
        }
        assert!(chapter.len() >= leaf.len());
    }

    #[test]
    fn empty_collection_is_fine() {
        let c = HistoryCollection::new();
        let idx = CodeIndex::build(&c);
        assert_eq!(idx.vocabulary_size(), 0);
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        assert!(idx.select(&c, &q).is_empty());
    }

    /// Large enough that `PAR_MIN_HISTORIES` admits several chunks — the
    /// parallel-equivalence tests must actually take the parallel path.
    fn large_collection() -> HistoryCollection {
        generate_collection(SynthConfig::with_patients(1500), 71)
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let c = large_collection();
        let serial = pastas_par::with_threads(1, || CodeIndex::build(&c));
        for threads in [2, 8] {
            let par = pastas_par::with_threads(threads, || CodeIndex::build(&c));
            assert_eq!(par.vocab, serial.vocab, "threads {threads}");
            assert_eq!(par.postings, serial.postings, "threads {threads}");
        }
    }

    #[test]
    fn parallel_select_matches_serial_select() {
        let c = large_collection();
        let idx = CodeIndex::build(&c);
        let queries = [
            QueryBuilder::new().has_code("T90").unwrap().build(),
            QueryBuilder::new().has_code("K.*").unwrap().build(),
            QueryBuilder::new().lacks_code("T90").unwrap().build(),
        ];
        for q in &queries {
            let serial = pastas_par::with_threads(1, || idx.select(&c, q));
            for threads in [2, 8] {
                let par = pastas_par::with_threads(threads, || idx.select(&c, q));
                assert_eq!(par, serial, "threads {threads}, query {q:?}");
            }
        }
    }

    #[test]
    fn pattern_cache_memoizes_compilation() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let patterns = vec!["T90".to_owned(), "K.*".to_owned()];
        let first = idx.candidates_for_patterns(&patterns).unwrap();
        let second = idx.candidates_for_patterns(&patterns).unwrap();
        assert_eq!(first, second);
        let cache = idx.compiled.lock().unwrap();
        assert_eq!(cache.len(), 2, "both patterns cached after first call");
    }
}
