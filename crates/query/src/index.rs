//! The inverted code index, sharded and compressed.
//!
//! "It can be challenging to use for large data sets" is the paper's own
//! conclusion; this index is our answer. It maps every distinct code value
//! to the set of history positions containing it, so a regex cohort
//! selection first matches the regex against the *distinct code
//! vocabulary* (hundreds of strings) instead of every entry of millions of
//! histories, then unions candidate sets.
//!
//! Scale refinements on top of the vocabulary scan:
//!
//! * postings are **compressed bitmaps** ([`crate::bitmap::Bitmap`]), not
//!   `Vec<u32>`: the planner's set algebra (intersect/union/complement)
//!   runs on roaring-style containers without materializing positions,
//!   and a negated clause costs runs, not millions of integers;
//! * postings are **sharded by history-position range**: shard `k` covers
//!   positions `[k·65536, (k+1)·65536)`, so shard-relative positions fit
//!   the low 16 bits and every shard-local posting is a single dense
//!   container. The planner evaluates per shard (fanning out on
//!   [`pastas_par`]) and global bitmaps assemble by container
//!   concatenation ([`crate::bitmap::Bitmap::append_shard`]) — no decode,
//!   no re-sort;
//! * the build rides the model layer's [`pastas_model::CodeInterner`]:
//!   the vocabulary is assembled from the distinct codes each backing
//!   [`EventStore`] already interned (a per-store `CodeId` → vocabulary
//!   slot translation table), so posting an entry is two integer lookups
//!   via [`pastas_model::EntryRef::code_id`] — **no per-entry string
//!   clone or hash**. With a patient-range-sharded arena
//!   ([`pastas_model::ShardedStore`]) each store's interner merges into
//!   the same global symbol table, so per-shard interners stay small and
//!   the query layer never sees the split;
//! * the sorted vocabulary is probed by binary search; the regex engine's
//!   guaranteed literal prefix ([`pastas_regex::PrefixInfo`]) turns `K.*`
//!   into a `partition_point` plus a linear walk over the `K…` run, and
//!   `T90` into a single equality probe, with no per-query allocation;
//! * build and candidate verification run on the [`pastas_par`] parallel
//!   layer (chunked, deterministic: per-chunk postings merge in chunk
//!   order, so `PASTAS_THREADS=1` reproduces the serial result bit for
//!   bit); the intermediate build state is per-shard, bounding peak RSS
//!   at 10M patients;
//! * compiled regexes are memoized per index, so re-running a selection
//!   (the workbench's dominant interaction) skips recompilation.
//!
//! The E5/E8 benches compare all paths (scan, vocabulary, prefix,
//! serial vs. parallel) and report compressed-vs-`Vec<u32>` posting bytes.

use crate::bitmap::Bitmap;
use crate::query::HistoryQuery;
use pastas_model::{EventStore, HistoryCollection};
use pastas_regex::Regex;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-thread minimum number of histories before index building or
/// candidate verification goes parallel. Predicate evaluation is cheap per
/// history, so small cohorts stay on the serial path.
const PAR_MIN_HISTORIES: usize = 256;

/// History positions per index shard. Matches the bitmap container width
/// so shard-relative positions are exactly the low 16 bits: every
/// shard-local posting is one container, and assembling a global bitmap
/// is a key-offset concatenation.
pub const SHARD_ROWS: u32 = 1 << 16;

/// One patient-range shard of the index: compressed postings over the
/// shard-relative positions `0..rows`.
#[derive(Debug, PartialEq)]
pub(crate) struct IndexShard {
    /// First global history position of this shard (a multiple of
    /// [`SHARD_ROWS`]).
    pub(crate) base: u32,
    /// Histories covered (= [`SHARD_ROWS`] except for the final shard).
    pub(crate) rows: u32,
    /// `postings[slot]`: shard-relative positions containing
    /// `vocab[slot]`. Same length as the vocabulary; shard-locally empty
    /// slots hold the empty bitmap (cheap — no containers).
    pub(crate) postings: Vec<Bitmap>,
}

impl IndexShard {
    /// Union the postings of `slots` within this shard (shard-relative).
    pub(crate) fn union_slots(&self, slots: &[u32]) -> Bitmap {
        let mut acc = Bitmap::new();
        for &slot in slots {
            // lint:allow(no-panic-hot-path) slots come from vocabulary walks
            acc = acc.union(&self.postings[slot as usize]);
        }
        acc
    }
}

/// The LSM-style *side-index* over open-epoch rows: sorted-vec postings
/// for the **dirty** history positions — those modified or appended
/// since the main shards were built. Rebuilt per delta batch by
/// [`CodeIndex::with_delta`] (cheap: proportional to the dirty
/// histories, not the collection) and folded into the main roaring
/// shards by [`CodeIndex::compact`].
///
/// Each dirty patient's postings here are their *complete current*
/// code set, so the planner can answer any query shape over the dirty
/// universe from the side postings alone and union that with the main
/// shards' answer restricted to clean rows — plan-vs-scan equivalence
/// holds mid-compaction (see `exec_side` in `plan.rs`).
#[derive(Debug, Default, PartialEq)]
pub(crate) struct SideIndex {
    /// Dirty history positions, strictly ascending. Every position at or
    /// beyond the main shards' coverage is dirty (appended patients).
    pub(crate) dirty: Vec<u32>,
    /// Distinct code values of the dirty histories, sorted.
    pub(crate) vocab: Vec<Box<str>>,
    /// `postings[slot]`: dirty positions (global, strictly ascending)
    /// whose history contains `vocab[slot]`.
    pub(crate) postings: Vec<Vec<u32>>,
}

/// Memory accounting for the compressed postings, reported by E5 and the
/// serve layer's `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexFootprint {
    /// Number of patient-range shards.
    pub shards: usize,
    /// Total postings (code, position) pairs across every shard.
    pub postings: usize,
    /// Heap bytes of every compressed posting bitmap.
    pub postings_compressed_bytes: usize,
    /// Bytes the same postings would cost as `Vec<u32>` (4 B/position).
    pub postings_uncompressed_bytes_est: usize,
}

/// Inverted index: distinct code value → compressed history-position set.
///
/// Values are merged across code systems (the paper's regexes — `T90`,
/// `F.*|H.*` — select by value; a value that exists in two systems simply
/// unions both sets, which matches the predicate semantics of
/// `EntryPredicate::CodeMatches`).
#[derive(Debug, Default)]
pub struct CodeIndex {
    /// Distinct code values present in the collection, sorted. Probed by
    /// binary search; a literal prefix selects a contiguous run.
    vocab: Vec<Box<str>>,
    /// `counts[slot]`: total positions holding `vocab[slot]` across all
    /// shards — O(1) planner cardinality estimates.
    counts: Vec<u32>,
    /// Patient-range shards in ascending `base` order, tiling the main
    /// (compacted) row range. Behind `Arc` so an incremental index
    /// ([`Self::with_delta`] / [`Self::compact`]) shares untouched
    /// shards with its predecessor instead of cloning postings.
    shards: Vec<Arc<IndexShard>>,
    /// Total history count (the complement universe), *including* rows
    /// covered only by the side-index (appended patients).
    rows: u32,
    /// Shard width this index was built with ([`SHARD_ROWS`] in
    /// production; smaller in multi-shard tests). Compaction tiles new
    /// rows with the same width. `0` only in `Default` (treated as
    /// [`SHARD_ROWS`]).
    shard_rows: u32,
    /// Postings for dirty rows, merged into `shards` by [`Self::compact`].
    side: SideIndex,
    /// Compiled patterns memoized across selections on this index.
    compiled: Mutex<HashMap<String, Regex>>,
}

impl CodeIndex {
    /// Build the index over a collection.
    ///
    /// Two phases. First the distinct backing stores (one shared arena,
    /// or one per patient-range shard) contribute their interned symbol
    /// tables to a merged sorted vocabulary, with one `CodeId` →
    /// vocabulary-slot translation table per store. Then each
    /// [`SHARD_ROWS`]-wide position block posts
    /// `translate(entry.code_id())` shard-relatively — integer lookups
    /// only, chunked across threads; per-chunk postings merge in position
    /// order so the result is identical at every thread count, and the
    /// uncompressed intermediate never exceeds one shard.
    pub fn build(collection: &HistoryCollection) -> CodeIndex {
        Self::build_with_shard_rows(collection, SHARD_ROWS)
    }

    /// [`Self::build`] with a custom shard width (≤ [`SHARD_ROWS`]).
    /// Test-only: exercising the multi-shard fan-out without generating
    /// 65k+ patients. Production always uses the aligned full width.
    pub(crate) fn build_with_shard_rows(
        collection: &HistoryCollection,
        shard_rows: u32,
    ) -> CodeIndex {
        assert!(shard_rows > 0 && shard_rows <= SHARD_ROWS, "bad shard width");
        let histories = collection.histories();

        // Phase 1: distinct stores and the store slot of each history.
        let mut stores: Vec<&Arc<EventStore>> = Vec::new();
        let mut slot_by_ptr: HashMap<*const EventStore, u32> = HashMap::new();
        let mut store_of: Vec<u32> = Vec::with_capacity(histories.len());
        for h in histories {
            let ptr = Arc::as_ptr(h.store());
            let slot = *slot_by_ptr.entry(ptr).or_insert_with(|| {
                stores.push(h.store());
                (stores.len() - 1) as u32
            });
            store_of.push(slot);
        }

        // Merged vocabulary over every store's interner — the global
        // symbol table uniting per-shard interners (values also merge
        // across code systems, matching `EntryPredicate::CodeMatches`).
        let mut values: Vec<&str> = stores
            .iter()
            .flat_map(|s| s.interner().iter().map(|c| c.value.as_str()))
            .collect();
        values.sort_unstable();
        values.dedup();
        // Per store: CodeId (append index) → merged vocabulary slot.
        let tables: Vec<Vec<u32>> = stores
            .iter()
            .map(|s| {
                s.interner()
                    .iter()
                    .map(|c| {
                        values
                            .binary_search(&c.value.as_str())
                            // lint:allow(no-panic-hot-path) phase 1 merged every value
                            .expect("interned value is in the merged vocabulary")
                            as u32
                    })
                    .collect()
            })
            .collect();

        // Phase 2: post shard-relative positions, one fixed-width block
        // at a time. Within a shard, chunks parallelize and merge back in
        // position order; across shards the loop is sequential, so peak
        // uncompressed state is one shard's lists.
        let rows = histories.len() as u32;
        let shard_count = histories.len().div_ceil(shard_rows as usize);
        let mut shards = Vec::with_capacity(shard_count);
        let mut counts = vec![0u32; values.len()];
        for s in 0..shard_count {
            let base = s * shard_rows as usize;
            // lint:allow(no-panic-hot-path) base < len for every s < shard_count
            let span = &histories[base..(base + shard_rows as usize).min(histories.len())];
            let chunk_lists = pastas_par::par_chunks(span, PAR_MIN_HISTORIES, |start, chunk| {
                let mut lists: Vec<Vec<u16>> = vec![Vec::new(); values.len()];
                for (offset, h) in chunk.iter().enumerate() {
                    let rel = (start + offset) as u16;
                    // lint:allow(no-panic-hot-path) store_of has one entry per history
                    let table = &tables[store_of[base + start + offset] as usize];
                    for e in h.entries() {
                        if let Some(id) = e.code_id() {
                            // lint:allow(no-panic-hot-path) table maps every CodeId of its store
                            let list = &mut lists[table[id.0 as usize] as usize];
                            if list.last() != Some(&rel) {
                                list.push(rel);
                            }
                        }
                    }
                }
                lists
            });
            // Each position lives in exactly one chunk and chunks come
            // back in ascending position order, so appending per-slot
            // lists chunk by chunk keeps every list ascending and unique.
            let mut merged: Vec<Vec<u16>> = vec![Vec::new(); values.len()];
            for lists in chunk_lists {
                for (slot, list) in lists.into_iter().enumerate() {
                    // lint:allow(no-panic-hot-path) every chunk allocates values.len() slots
                    merged[slot].extend(list);
                }
            }
            let postings: Vec<Bitmap> = merged
                .into_iter()
                .enumerate()
                .map(|(slot, list)| {
                    // lint:allow(no-panic-hot-path) counts has values.len() slots
                    counts[slot] += list.len() as u32;
                    list.into_iter().map(u32::from).collect()
                })
                .collect();
            shards.push(IndexShard { base: base as u32, rows: span.len() as u32, postings });
        }

        // A shared arena's interner may carry codes belonging to patients
        // outside this (sub-)collection; keep only values actually seen.
        let keep: Vec<usize> =
            // lint:allow(no-panic-hot-path) slots range over values.len()
            (0..values.len()).filter(|&slot| counts[slot] > 0).collect();
        // lint:allow(no-panic-hot-path) keep holds indexes below values.len()
        let vocab: Vec<Box<str>> = keep.iter().map(|&slot| Box::from(values[slot])).collect();
        // lint:allow(no-panic-hot-path) keep holds indexes below values.len()
        let counts: Vec<u32> = keep.iter().map(|&slot| counts[slot]).collect();
        for shard in &mut shards {
            let mut postings = Vec::with_capacity(keep.len());
            for &slot in &keep {
                // lint:allow(no-panic-hot-path) every shard has values.len() postings
                postings.push(std::mem::take(&mut shard.postings[slot]));
            }
            shard.postings = postings;
        }
        CodeIndex {
            vocab,
            counts,
            shards: shards.into_iter().map(Arc::new).collect(),
            rows,
            shard_rows,
            side: SideIndex::default(),
            compiled: Mutex::new(HashMap::new()),
        }
    }

    /// A successor index marking `newly_dirty` history positions (and any
    /// previously dirty ones) as served by the side-index: the main
    /// shards are shared untouched (`Arc` clones — no posting copied),
    /// and the side postings are rebuilt by scanning only the dirty
    /// histories of `collection` — O(dirty · entries-per-history), not
    /// O(collection). The streaming path (`Workbench::apply_ingest`)
    /// calls this after every sealed delta batch; [`Self::compact`]
    /// folds the accumulated side postings back into the shards.
    pub fn with_delta(&self, collection: &HistoryCollection, newly_dirty: &[u32]) -> CodeIndex {
        let rows = collection.len() as u32;
        let mut extra: Vec<u32> = newly_dirty.to_vec();
        extra.sort_unstable();
        extra.dedup();
        let dirty = crate::plan::reference::union2(&self.side.dirty, &extra);
        debug_assert!(dirty.last().is_none_or(|&p| p < rows), "dirty position beyond rows");
        // Side vocabulary + postings: the complete current code set of
        // every dirty history (not just the delta), so side evaluation
        // answers any plan shape over the dirty universe exactly.
        let histories = collection.histories();
        let mut values: Vec<&str> = Vec::new();
        for &p in &dirty {
            // lint:allow(no-panic-hot-path) dirty positions index the collection
            for e in histories[p as usize].entries() {
                if let Some(c) = e.code() {
                    values.push(c.value.as_str());
                }
            }
        }
        values.sort_unstable();
        values.dedup();
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); values.len()];
        for &p in &dirty {
            // lint:allow(no-panic-hot-path) dirty positions index the collection
            for e in histories[p as usize].entries() {
                if let Some(c) = e.code() {
                    let slot = values
                        .binary_search(&c.value.as_str())
                        // lint:allow(no-panic-hot-path) every dirty value was merged above
                        .expect("dirty code value is in the side vocabulary");
                    // lint:allow(no-panic-hot-path) slot < values.len() by construction
                    let list = &mut postings[slot];
                    if list.last() != Some(&p) {
                        list.push(p);
                    }
                }
            }
        }
        CodeIndex {
            vocab: self.vocab.clone(),
            counts: self.counts.clone(),
            shards: self.shards.clone(),
            rows,
            shard_rows: self.shard_rows,
            side: SideIndex {
                dirty,
                vocab: values.into_iter().map(Box::from).collect(),
                postings,
            },
            compiled: Mutex::new(HashMap::new()),
        }
    }

    /// Fold the side postings into the main shards, LSM-style: side
    /// postings union into the covering shards' compressed bitmaps
    /// (`append`-idempotent — entries are never removed, so main
    /// postings are always a subset of the truth for dirty rows), rows
    /// beyond the old shard coverage extend the tiling with fresh
    /// shards of the same width, and the result has an empty
    /// side-index. Untouched shards are shared (`Arc`), unless the
    /// vocabulary grew (new code values force a slot re-layout of every
    /// shard). The swap-in is the caller's job (e.g. the serve layer's
    /// compaction thread publishing a fresh snapshot).
    pub fn compact(&self) -> CodeIndex {
        let shard_rows = if self.shard_rows == 0 { SHARD_ROWS } else { self.shard_rows };
        if self.side.dirty.is_empty() {
            return CodeIndex {
                vocab: self.vocab.clone(),
                counts: self.counts.clone(),
                shards: self.shards.clone(),
                rows: self.rows,
                shard_rows: self.shard_rows,
                side: SideIndex::default(),
                compiled: Mutex::new(HashMap::new()),
            };
        }
        // Merged vocabulary. Common case: dirty histories reuse existing
        // code values and the vocabulary (hence every slot number) is
        // unchanged, so untouched shards stay shared.
        let grew = self.side.vocab.iter().any(|v| self.vocab.binary_search(v).is_err());
        let vocab: Vec<Box<str>> = if grew {
            let mut merged = self.vocab.clone();
            merged.extend(
                self.side
                    .vocab
                    .iter()
                    .filter(|v| self.vocab.binary_search(v).is_err())
                    .cloned(),
            );
            merged.sort();
            merged
        } else {
            self.vocab.clone()
        };
        let remap_old: Option<Vec<usize>> = if grew {
            Some(
                self.vocab
                    .iter()
                    // lint:allow(no-panic-hot-path) merged vocabulary keeps every old value
                    .map(|v| vocab.binary_search(v).expect("old value survives the merge"))
                    .collect(),
            )
        } else {
            None
        };
        // Distribute side postings into per-shard, slot-tagged relative
        // bitmaps, under the *new* tiling.
        let shard_count = (self.rows as usize).div_ceil(shard_rows as usize);
        let mut extra: Vec<Vec<(usize, Bitmap)>> = vec![Vec::new(); shard_count];
        for (side_slot, list) in self.side.postings.iter().enumerate() {
            let slot = vocab
                // lint:allow(no-panic-hot-path) side_slot enumerates the side vocabulary
                .binary_search(&self.side.vocab[side_slot])
                // lint:allow(no-panic-hot-path) merged vocabulary holds every side value
                .expect("side value survives the merge");
            let mut i = 0;
            while i < list.len() {
                // lint:allow(no-panic-hot-path) i < list.len() by the loop guard
                let shard_idx = (list[i] / shard_rows) as usize;
                // lint:allow(no-silent-truncation) shard_idx < shard_count so base fits u32
                let base = shard_idx as u32 * shard_rows;
                // lint:allow(no-panic-hot-path) i < list.len() by the loop guard
                let j = i + list[i..].partition_point(|&p| p < base + shard_rows);
                // lint:allow(no-panic-hot-path) i <= j <= list.len() by partition_point
                let rel: Vec<u32> = list[i..j].iter().map(|&p| p - base).collect();
                // lint:allow(no-panic-hot-path) shard_idx derives from p < rows
                extra[shard_idx].push((slot, Bitmap::from_sorted(&rel)));
                i = j;
            }
        }
        let mut shards: Vec<Arc<IndexShard>> = Vec::with_capacity(shard_count);
        for (s, extra) in extra.into_iter().enumerate() {
            // lint:allow(no-silent-truncation) s < shard_count so base fits u32
            let base = s as u32 * shard_rows;
            let rows_s = shard_rows.min(self.rows - base);
            let existing = self.shards.get(s);
            if !grew && extra.is_empty() {
                if let Some(e) = existing {
                    if e.rows == rows_s {
                        shards.push(Arc::clone(e));
                        continue;
                    }
                }
            }
            let mut postings: Vec<Bitmap> = vec![Bitmap::new(); vocab.len()];
            if let Some(e) = existing {
                for (old_slot, bm) in e.postings.iter().enumerate() {
                    // lint:allow(no-panic-hot-path) old_slot enumerates the old vocabulary
                    let slot = remap_old.as_ref().map_or(old_slot, |m| m[old_slot]);
                    // lint:allow(no-panic-hot-path) slot < vocab.len() by the remap
                    postings[slot] = bm.clone();
                }
            }
            for (slot, bm) in extra {
                // lint:allow(no-panic-hot-path) slot < vocab.len() by the merge
                postings[slot] = postings[slot].union(&bm);
            }
            shards.push(Arc::new(IndexShard { base, rows: rows_s, postings }));
        }
        // Recompute the cardinality cache from the merged shards.
        let mut counts = vec![0u32; vocab.len()];
        for shard in &shards {
            for (slot, bm) in shard.postings.iter().enumerate() {
                // lint:allow(no-silent-truncation) postings count < rows which fits u32
                let posted = bm.len() as u32;
                // lint:allow(no-panic-hot-path) every shard has vocab.len() postings
                counts[slot] += posted;
            }
        }
        CodeIndex {
            vocab,
            counts,
            shards,
            rows: self.rows,
            shard_rows: self.shard_rows,
            side: SideIndex::default(),
            compiled: Mutex::new(HashMap::new()),
        }
    }

    /// Number of distinct codes indexed.
    pub fn vocabulary_size(&self) -> usize {
        self.vocab.len()
    }

    /// Total history positions indexed (the complement universe).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The patient-range shards (plan execution fans out over these).
    pub(crate) fn shards(&self) -> &[Arc<IndexShard>] {
        &self.shards
    }

    /// True if no rows are served by the side-index (fully compacted).
    pub fn side_is_empty(&self) -> bool {
        self.side.dirty.is_empty()
    }

    /// Dirty history positions (ascending) served by the side-index.
    pub(crate) fn side_dirty(&self) -> &[u32] {
        &self.side.dirty
    }

    /// Side postings of one side-vocabulary slot (global positions).
    pub(crate) fn side_postings(&self, slot: u32) -> &[u32] {
        // lint:allow(no-panic-hot-path) callers pass slots from side_slots_for_patterns
        &self.side.postings[slot as usize]
    }

    /// Number of dirty rows in the side-index (`/metrics`: side size).
    pub fn side_rows(&self) -> usize {
        self.side.dirty.len()
    }

    /// Total side postings awaiting compaction (`/metrics`: debt).
    pub fn side_postings_total(&self) -> usize {
        self.side.postings.iter().map(Vec::len).sum()
    }

    /// Side-vocabulary slots matched by any of `patterns` (sorted,
    /// unique). Patterns that fail to compile match nothing, mirroring
    /// [`Self::slots_for_patterns`]'s executor fallback.
    pub(crate) fn side_slots_for_patterns(&self, patterns: &[String]) -> Vec<u32> {
        if self.side.vocab.is_empty() {
            return Vec::new();
        }
        let mut slots = Vec::new();
        for p in patterns {
            let Some(re) = self.compiled(p) else { continue };
            slots.extend(matching_slots_in(&self.side.vocab, &re));
        }
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Compressed-postings memory accounting for E5 and `/metrics`.
    pub fn footprint(&self) -> IndexFootprint {
        let mut compressed = 0usize;
        let mut uncompressed = 0usize;
        for shard in &self.shards {
            for bm in &shard.postings {
                compressed += bm.heap_bytes();
                uncompressed += bm.uncompressed_bytes_est();
            }
        }
        IndexFootprint {
            shards: self.shards.len(),
            postings: self.counts.iter().map(|&c| c as usize).sum(),
            postings_compressed_bytes: compressed,
            postings_uncompressed_bytes_est: uncompressed,
        }
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Panics unless the vocabulary is strictly sorted (sorted *and*
    /// deduplicated — what binary search and the prefix walk assume),
    /// shards partition `0..rows` in fixed-width blocks with one postings
    /// list per vocabulary slot, every posting bitmap honours its own
    /// container invariants ([`Bitmap::debug_validate`]) inside the
    /// shard's row range, and the per-slot counts match the shard totals.
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        assert_eq!(
            self.counts.len(),
            self.vocab.len(),
            "index: vocabulary and counts differ in length"
        );
        for (a, b) in self.vocab.iter().zip(self.vocab.iter().skip(1)) {
            assert!(a < b, "index: vocabulary out of order or duplicated at {a:?} / {b:?}");
        }
        let mut next_base = 0u32;
        let mut totals = vec![0u64; self.vocab.len()];
        for shard in &self.shards {
            assert_eq!(shard.base, next_base, "index: shards must tile 0..rows");
            assert!(shard.rows > 0 && shard.rows <= SHARD_ROWS, "index: bad shard width");
            next_base += shard.rows;
            assert_eq!(
                shard.postings.len(),
                self.vocab.len(),
                "index: shard postings and vocabulary differ in length"
            );
            for (slot, bm) in shard.postings.iter().enumerate() {
                bm.debug_validate();
                // lint:allow(no-panic-hot-path) totals sized to vocab above
                totals[slot] += bm.len() as u64;
                if let Some(last) = bm.iter().last() {
                    assert!(
                        last < shard.rows,
                        "index: posting beyond shard rows at slot {slot}"
                    );
                }
            }
        }
        assert!(next_base <= self.rows, "index: shards cover more rows than exist");
        for (slot, &total) in totals.iter().enumerate() {
            assert_eq!(
                // lint:allow(no-panic-hot-path) counts and totals share vocab length
                u64::from(self.counts[slot]),
                total,
                "index: cached count != shard totals at slot {slot}"
            );
        }
        // Side-index twin: rows beyond the shards exist only while dirty.
        for p in next_base..self.rows {
            assert!(
                self.side.dirty.binary_search(&p).is_ok(),
                "index: appended row {p} is covered by neither shards nor side-index"
            );
        }
        for w in self.side.dirty.windows(2) {
            // lint:allow(no-panic-hot-path) windows(2) yields exactly two elements
            assert!(w[0] < w[1], "index: side dirty set out of order at {w:?}");
        }
        if let Some(&last) = self.side.dirty.last() {
            assert!(last < self.rows, "index: dirty position {last} beyond rows {}", self.rows);
        }
        assert_eq!(
            self.side.postings.len(),
            self.side.vocab.len(),
            "index: side postings and side vocabulary differ in length"
        );
        for (a, b) in self.side.vocab.iter().zip(self.side.vocab.iter().skip(1)) {
            assert!(a < b, "index: side vocabulary out of order or duplicated at {a:?} / {b:?}");
        }
        for (slot, list) in self.side.postings.iter().enumerate() {
            assert!(!list.is_empty(), "index: side slot {slot} posts nothing");
            for w in list.windows(2) {
                // lint:allow(no-panic-hot-path) windows(2) yields exactly two elements
                assert!(w[0] < w[1], "index: side postings out of order at slot {slot}");
            }
            for &p in list {
                assert!(
                    self.side.dirty.binary_search(&p).is_ok(),
                    "index: side slot {slot} posts clean row {p}"
                );
            }
        }
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}


    /// Vocabulary slots whose value fully matches the regex. Uses the
    /// pattern's literal prefix to restrict the range — an exact literal
    /// is one binary search, a prefix pattern walks only its contiguous
    /// run. Returned ascending (and therefore unique).
    pub(crate) fn matching_slots(&self, re: &Regex) -> Vec<u32> {
        matching_slots_in(&self.vocab, re)
    }

    /// Union the postings of `slots` into one global bitmap: shard-local
    /// unions on compressed form, then container concatenation — one
    /// result set, no per-term vectors, no post-hoc sort/dedup.
    fn union_slots(&self, slots: &[u32]) -> Bitmap {
        let mut out = Bitmap::new();
        for shard in &self.shards {
            out.append_shard(shard.base, &shard.union_slots(slots));
        }
        out
    }

    /// History positions whose entries contain a code fully matching the
    /// regex, as one compressed bitmap (ascending by construction).
    pub fn candidates_for_regex(&self, re: &Regex) -> Bitmap {
        self.union_slots(&self.matching_slots(re))
    }

    /// Like [`Self::candidates_for_regex`] but forcing the full-vocabulary
    /// scan — the prefix-path ablation baseline.
    pub fn candidates_scan_vocabulary(&self, re: &Regex) -> Bitmap {
        let slots: Vec<u32> = (0..self.vocab.len() as u32)
            // lint:allow(no-panic-hot-path) slot ranges over the vocabulary
            .filter(|&slot| re.is_full_match(&self.vocab[slot as usize]))
            .collect();
        self.union_slots(&slots)
    }

    /// Compile `pattern`, memoizing successes on this index. Returns
    /// `None` for invalid patterns (callers fall back to the scan path).
    fn compiled(&self, pattern: &str) -> Option<Regex> {
        let mut cache = self.compiled.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(re) = cache.get(pattern) {
            return Some(re.clone());
        }
        let re = Regex::new(pattern).ok()?;
        cache.insert(pattern.to_owned(), re.clone());
        Some(re)
    }

    /// Vocabulary slots matched by any of `patterns` (sorted, unique), or
    /// `None` if a pattern fails to compile.
    pub(crate) fn slots_for_patterns(&self, patterns: &[String]) -> Option<Vec<u32>> {
        let mut slots = Vec::new();
        for p in patterns {
            let re = self.compiled(p)?;
            slots.extend(self.matching_slots(&re));
        }
        slots.sort_unstable();
        slots.dedup();
        Some(slots)
    }

    /// History positions for a set of regex patterns (union), as one
    /// compressed bitmap.
    pub fn candidates_for_patterns(&self, patterns: &[String]) -> Option<Bitmap> {
        Some(self.union_slots(&self.slots_for_patterns(patterns)?))
    }

    /// Upper-bound candidate estimate for a pattern set: the summed
    /// cached cardinalities over the vocabulary range each pattern
    /// selects (duplicates across patterns counted twice — this is a
    /// planning estimate, not a result). Costs a vocabulary walk but
    /// touches no posting list. Patterns that fail to compile estimate
    /// as 0 (they fetch nothing, too).
    pub fn estimated_candidates(&self, patterns: &[String]) -> usize {
        let mut total = 0usize;
        for p in patterns {
            let Some(re) = self.compiled(p) else { continue };
            for slot in self.matching_slots(&re) {
                // lint:allow(no-panic-hot-path) matching_slots yields vocab indexes
                total += self.counts[slot as usize] as usize;
            }
        }
        total
    }

    /// Evaluate a query over the collection through the physical planner
    /// ([`crate::plan::QueryPlan`]): code-regex clauses — positive *and*
    /// negative — become posting-bitmap set algebra, fanned out per
    /// shard; residual clauses verify only the candidate set; only
    /// queries with no index-servable clause at all scan every history.
    /// Returns matching history positions in display order, identical to
    /// [`select_scan`].
    pub fn select(&self, collection: &HistoryCollection, query: &HistoryQuery) -> Vec<u32> {
        crate::plan::QueryPlan::build(self, collection, query).execute(collection, self)
    }
}

/// Slots of a sorted, deduplicated vocabulary whose value fully matches
/// the regex — the shared probe behind the main vocabulary and the
/// side-index's. An exact literal is one binary search; a prefix
/// pattern walks only its contiguous run. Returned ascending.
fn matching_slots_in(vocab: &[Box<str>], re: &Regex) -> Vec<u32> {
    let info = re.prefix_info();
    if info.exact {
        return vocab
            .binary_search_by(|v| v.as_ref().cmp(info.prefix.as_str()))
            .ok()
            // lint:allow(no-silent-truncation) vocabulary slots fit u32
            .map(|i| i as u32)
            .into_iter()
            .collect();
    }
    let mut out = Vec::new();
    if info.prefix.is_empty() {
        for (slot, value) in vocab.iter().enumerate() {
            if re.is_full_match(value) {
                out.push(slot as u32);
            }
        }
    } else {
        let prefix = info.prefix.as_str();
        let start = vocab.partition_point(|v| v.as_ref() < prefix);
        // lint:allow(no-panic-hot-path) partition_point returns start <= len
        for (slot, value) in vocab[start..].iter().enumerate() {
            if !value.starts_with(prefix) {
                break;
            }
            if re.is_full_match(value) {
                out.push((start + slot) as u32);
            }
        }
    }
    out
}

/// The naive path: evaluate the query against every history (chunked
/// across threads, order-preserving).
pub fn select_scan(collection: &HistoryCollection, query: &HistoryQuery) -> Vec<u32> {
    pastas_par::par_filter_indices_min(collection.histories(), PAR_MIN_HISTORIES, |h| {
        query.matches(h)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::EntryPredicate;
    use crate::query::QueryBuilder;
    use pastas_synth::{generate_collection, SynthConfig};

    fn collection() -> HistoryCollection {
        generate_collection(SynthConfig::with_patients(400), 71)
    }

    #[test]
    fn index_and_scan_agree_on_simple_selection() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        idx.debug_validate();
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        assert_eq!(idx.select(&c, &q), select_scan(&c, &q));
    }

    #[test]
    fn index_and_scan_agree_on_compound_queries() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new()
            .has_code("T90|K74")
            .unwrap()
            .count_at_least(EntryPredicate::IsDiagnosis, 3)
            .build();
        assert_eq!(idx.select(&c, &q), select_scan(&c, &q));
    }

    #[test]
    fn negative_queries_are_served_by_posting_complement() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let q = QueryBuilder::new().lacks_code("T90").unwrap().build();
        let plan = crate::plan::QueryPlan::build(&idx, &c, &q);
        assert!(!plan.uses_full_scan(), "negation no longer scans:\n{}", plan.render());
        let got = idx.select(&c, &q);
        assert_eq!(got, select_scan(&c, &q));
        assert!(!got.is_empty(), "most patients lack diabetes");
    }

    #[test]
    fn estimated_candidates_bounds_the_fetch() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        for patterns in [
            vec!["T90".to_owned()],
            vec!["K.*".to_owned()],
            vec!["T90".to_owned(), "K.*".to_owned()],
            vec![".*".to_owned()],
            vec!["Z99".to_owned()],
        ] {
            let est = idx.estimated_candidates(&patterns);
            let got = idx.candidates_for_patterns(&patterns).unwrap();
            assert!(est >= got.len(), "estimate {est} < fetched {} for {patterns:?}", got.len());
        }
    }

    #[test]
    fn prefix_path_agrees_with_vocabulary_scan() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        for pattern in ["T90", "K.*", "E1[014].*", "C07AB..", "T90|T89", "F.*|H.*", ".*", "[KR].*"] {
            let re = Regex::new(pattern).unwrap();
            assert_eq!(
                idx.candidates_for_regex(&re),
                idx.candidates_scan_vocabulary(&re),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn exact_literal_is_an_equality_probe() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let re = Regex::new("T90").unwrap();
        assert!(re.prefix_info().exact);
        let hits = idx.candidates_for_regex(&re);
        assert!(!hits.is_empty());
        // And a literal that indexes nothing returns nothing.
        let re = Regex::new("Z99").unwrap();
        assert!(idx.candidates_for_regex(&re).is_empty());
    }

    #[test]
    fn vocabulary_is_much_smaller_than_entries() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        assert!(idx.vocabulary_size() > 5);
        assert!(idx.vocabulary_size() < 200, "vocab {}", idx.vocabulary_size());
        assert!(idx.vocabulary_size() < c.stats().entries / 10);
    }

    /// Regression for the old `candidates_for_regex`: it concatenated one
    /// `Vec<u32>` per matching vocabulary term and sort/dedup'd the pile.
    /// A broad regex must now come back as one unioned bitmap whose
    /// decode is already sorted and unique — and must equal the per-term
    /// union done the slow way.
    #[test]
    fn broad_regex_returns_one_unioned_bitmap() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let re = Regex::new("[KRT].*").unwrap();
        let slots = idx.matching_slots(&re);
        assert!(slots.len() > 3, "broad regex must match many terms, got {}", slots.len());
        let got = idx.candidates_for_regex(&re);
        got.debug_validate(); // one canonical set, not a concatenation
        let decoded = got.to_vec();
        for w in decoded.windows(2) {
            assert!(w[0] < w[1], "decode must be sorted and unique");
        }
        // Per-term reference union.
        let mut expect: Vec<u32> = Vec::new();
        for &slot in &slots {
            let one = idx.union_slots(&[slot]);
            expect.extend(one.to_vec());
        }
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn chapter_regex_selects_superset_of_leaf() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let leaf = idx.candidates_for_regex(&Regex::new("K86").unwrap());
        let chapter = idx.candidates_for_regex(&Regex::new("K.*").unwrap());
        for x in leaf.iter() {
            assert!(chapter.contains(x));
        }
        assert!(chapter.len() >= leaf.len());
    }

    #[test]
    fn empty_collection_is_fine() {
        let c = HistoryCollection::new();
        let idx = CodeIndex::build(&c);
        idx.debug_validate();
        assert_eq!(idx.vocabulary_size(), 0);
        assert_eq!(idx.rows(), 0);
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        assert!(idx.select(&c, &q).is_empty());
    }

    #[test]
    fn footprint_accounts_for_postings() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let fp = idx.footprint();
        assert_eq!(fp.shards, 1, "400 patients fit one shard");
        assert!(fp.postings_compressed_bytes > 0);
        let total: usize = (0..idx.vocabulary_size())
            .map(|slot| idx.counts[slot] as usize)
            .sum();
        assert_eq!(fp.postings_uncompressed_bytes_est, total * 4);
    }

    /// Large enough that `PAR_MIN_HISTORIES` admits several chunks — the
    /// parallel-equivalence tests must actually take the parallel path.
    fn large_collection() -> HistoryCollection {
        generate_collection(SynthConfig::with_patients(1500), 71)
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let c = large_collection();
        let serial = pastas_par::with_threads(1, || CodeIndex::build(&c));
        for threads in [2, 8] {
            let par = pastas_par::with_threads(threads, || CodeIndex::build(&c));
            assert_eq!(par.vocab, serial.vocab, "threads {threads}");
            assert_eq!(par.counts, serial.counts, "threads {threads}");
            assert_eq!(par.shards, serial.shards, "threads {threads}");
        }
    }

    #[test]
    fn parallel_select_matches_serial_select() {
        let c = large_collection();
        let idx = CodeIndex::build(&c);
        let queries = [
            QueryBuilder::new().has_code("T90").unwrap().build(),
            QueryBuilder::new().has_code("K.*").unwrap().build(),
            QueryBuilder::new().lacks_code("T90").unwrap().build(),
        ];
        for q in &queries {
            let serial = pastas_par::with_threads(1, || idx.select(&c, q));
            for threads in [2, 8] {
                let par = pastas_par::with_threads(threads, || idx.select(&c, q));
                assert_eq!(par, serial, "threads {threads}, query {q:?}");
            }
        }
    }

    #[test]
    fn pattern_cache_memoizes_compilation() {
        let c = collection();
        let idx = CodeIndex::build(&c);
        let patterns = vec!["T90".to_owned(), "K.*".to_owned()];
        let first = idx.candidates_for_patterns(&patterns).unwrap();
        let second = idx.candidates_for_patterns(&patterns).unwrap();
        assert_eq!(first, second);
        let cache = idx.compiled.lock().unwrap();
        assert_eq!(cache.len(), 2, "both patterns cached after first call");
    }

    // -- streaming: with_delta / compact ----------------------------------

    use pastas_codes::Code;
    use pastas_model::{Entry, OpenEpoch, Patient, PatientId, Payload, Sex, SourceKind};
    use pastas_time::Date;

    fn new_patient(id: u64) -> Patient {
        Patient {
            id: PatientId(1_000_000 + id),
            birth_date: Date::new(1950, 6, 15).unwrap(),
            sex: Sex::Female,
        }
    }

    fn diag(y: i32, code: &str) -> Entry {
        Entry::event(
            Date::new(y, 3, 1).unwrap().at_midnight(),
            Payload::Diagnosis(Code::icpc(code)),
            SourceKind::PrimaryCare,
        )
    }

    /// Seal `deltas` into the collection and return the successor index.
    fn apply_delta(
        c: &mut HistoryCollection,
        idx: &CodeIndex,
        deltas: Vec<(Patient, Vec<Entry>)>,
    ) -> CodeIndex {
        let mut epoch = OpenEpoch::new();
        for (p, es) in deltas {
            epoch.append(p, es);
        }
        let touched = epoch.seal_into(c);
        let dirty: Vec<u32> =
            touched.iter().map(|&id| c.position_of(id).unwrap() as u32).collect();
        idx.with_delta(c, &dirty)
    }

    fn streaming_queries() -> Vec<HistoryQuery> {
        vec![
            QueryBuilder::new().has_code("T90").unwrap().build(),
            QueryBuilder::new().has_code("Z9[89]").unwrap().build(),
            QueryBuilder::new().lacks_code("T90").unwrap().build(),
            QueryBuilder::new().has_code("[KT].*").unwrap().lacks_code("Z98").unwrap().build(),
            HistoryQuery::CountAtMost(EntryPredicate::code_regex("T90").unwrap(), 1),
            HistoryQuery::Or(vec![
                QueryBuilder::new().has_code("Z99").unwrap().build(),
                HistoryQuery::SexIs(Sex::Female),
            ]),
            HistoryQuery::All,
        ]
    }

    #[test]
    fn with_delta_serves_mutations_and_appends_like_a_fresh_scan() {
        let mut c = collection();
        let idx = CodeIndex::build(&c);
        // Mutate two existing patients (one with a brand-new code value,
        // one with a known one) and append two new patients.
        let existing_a = *c.histories()[3].patient();
        let existing_b = *c.histories()[7].patient();
        let idx2 = apply_delta(
            &mut c,
            &idx,
            vec![
                (existing_a, vec![diag(2016, "Z98")]),
                (existing_b, vec![diag(2016, "T90")]),
                (new_patient(1), vec![diag(2015, "Z99"), diag(2016, "T90")]),
                (new_patient(2), Vec::new()),
            ],
        );
        idx2.debug_validate();
        assert_eq!(idx2.rows(), c.len() as u32);
        assert_eq!(idx2.side_rows(), 4);
        assert!(idx2.side_postings_total() > 0);
        assert!(!idx2.side_is_empty());
        for q in streaming_queries() {
            assert_eq!(idx2.select(&c, &q), select_scan(&c, &q), "query {q:?}");
        }
        // The stale predecessor still validates and answers its own rows.
        idx.debug_validate();
    }

    #[test]
    fn compact_folds_side_postings_and_matches_a_fresh_build() {
        let mut c = collection();
        let idx = CodeIndex::build(&c);
        let existing = *c.histories()[0].patient();
        let idx2 = apply_delta(
            &mut c,
            &idx,
            vec![
                (existing, vec![diag(2016, "Z98")]),
                (new_patient(1), vec![diag(2015, "Z99")]),
            ],
        );
        let compacted = idx2.compact();
        compacted.debug_validate();
        assert!(compacted.side_is_empty());
        assert_eq!(compacted.rows(), c.len() as u32);
        let fresh = CodeIndex::build(&c);
        assert_eq!(compacted.vocab, fresh.vocab, "merged vocabulary = fresh vocabulary");
        assert_eq!(compacted.counts, fresh.counts, "merged counts = fresh counts");
        for q in streaming_queries() {
            assert_eq!(compacted.select(&c, &q), select_scan(&c, &q), "query {q:?}");
        }
        // Compacting a fully-compacted index is a cheap shared clone.
        let again = compacted.compact();
        assert!(again.side_is_empty());
        for (a, b) in again.shards.iter().zip(compacted.shards.iter()) {
            assert!(Arc::ptr_eq(a, b), "no-op compaction shares every shard");
        }
    }

    #[test]
    fn compact_shares_untouched_shards_when_vocabulary_is_stable() {
        let mut c = large_collection();
        let idx = CodeIndex::build_with_shard_rows(&c, 256);
        assert!(idx.shards.len() > 3, "want several shards, got {}", idx.shards.len());
        // Touch one patient in shard 1 with a code value the vocabulary
        // already holds — no re-layout, untouched shards stay shared.
        let existing = *c.histories()[300].patient();
        let idx2 = apply_delta(&mut c, &idx, vec![(existing, vec![diag(2016, "T90")])]);
        let compacted = idx2.compact();
        compacted.debug_validate();
        assert!(Arc::ptr_eq(&compacted.shards[0], &idx.shards[0]), "shard 0 untouched");
        assert!(!Arc::ptr_eq(&compacted.shards[1], &idx.shards[1]), "shard 1 rebuilt");
        for q in streaming_queries() {
            assert_eq!(compacted.select(&c, &q), select_scan(&c, &q), "query {q:?}");
        }
    }

    #[test]
    fn repeated_deltas_accumulate_dirty_rows_until_one_compaction() {
        let mut c = collection();
        let mut idx = CodeIndex::build(&c);
        for round in 0..3u64 {
            let existing = *c.histories()[round as usize].patient();
            idx = apply_delta(
                &mut c,
                &idx,
                vec![
                    (existing, vec![diag(2016, "Z98")]),
                    (new_patient(round), vec![diag(2015, "T90")]),
                ],
            );
            idx.debug_validate();
            assert_eq!(idx.side_rows(), 2 * (round as usize + 1));
            for q in streaming_queries() {
                assert_eq!(idx.select(&c, &q), select_scan(&c, &q), "round {round} {q:?}");
            }
        }
        let compacted = idx.compact();
        compacted.debug_validate();
        assert!(compacted.side_is_empty());
        for q in streaming_queries() {
            assert_eq!(compacted.select(&c, &q), select_scan(&c, &q), "query {q:?}");
        }
    }

    #[test]
    fn delta_onto_an_empty_collection_grows_shards_at_compaction() {
        let mut c = HistoryCollection::new();
        let idx = CodeIndex::build(&c);
        let idx2 = apply_delta(
            &mut c,
            &idx,
            vec![
                (new_patient(1), vec![diag(2015, "T90")]),
                (new_patient(2), vec![diag(2016, "K74")]),
            ],
        );
        idx2.debug_validate();
        assert_eq!(idx2.shards.len(), 0, "no main shards yet");
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        assert_eq!(idx2.select(&c, &q), select_scan(&c, &q));
        let compacted = idx2.compact();
        compacted.debug_validate();
        assert_eq!(compacted.shards.len(), 1);
        assert_eq!(compacted.select(&c, &q), select_scan(&c, &q));
    }
}
