//! History-level queries and the Fig. 4 query builder.

use crate::predicate::EntryPredicate;
use crate::temporal::TemporalPattern;
use pastas_model::{History, Sex};
use pastas_time::Date;

/// A query over a whole patient history — the unit the cohort selector
/// evaluates. "General practitioners cannot be expected to be acquainted
/// with regular expressions. This means that a graphical user interface is
/// needed" (§IV.A): [`QueryBuilder`] is that interface, headless.
#[derive(Debug, Clone)]
pub enum HistoryQuery {
    /// Every history.
    All,
    /// At least `n` entries match the predicate.
    CountAtLeast(EntryPredicate, usize),
    /// At most `n` entries match the predicate (0 = absence, the paper's
    /// "presence or absence of a given code").
    CountAtMost(EntryPredicate, usize),
    /// The temporal pattern has at least one hit.
    Pattern(TemporalPattern),
    /// Patient age at `at` is within `[min, max]`.
    AgeBetween {
        /// Reference date for the age computation.
        at: Date,
        /// Inclusive minimum age in years.
        min: i32,
        /// Inclusive maximum age in years.
        max: i32,
    },
    /// Patient sex.
    SexIs(Sex),
    /// Conjunction.
    And(Vec<HistoryQuery>),
    /// Disjunction.
    Or(Vec<HistoryQuery>),
    /// Negation.
    Not(Box<HistoryQuery>),
}

impl HistoryQuery {
    /// Shorthand: at least one entry matches.
    pub fn any(pred: EntryPredicate) -> HistoryQuery {
        HistoryQuery::CountAtLeast(pred, 1)
    }

    /// Shorthand: no entry matches.
    pub fn none(pred: EntryPredicate) -> HistoryQuery {
        HistoryQuery::CountAtMost(pred, 0)
    }

    /// Evaluate against one history.
    pub fn matches(&self, history: &History) -> bool {
        match self {
            HistoryQuery::All => true,
            HistoryQuery::CountAtLeast(p, n) => {
                // Short-circuit at n.
                let mut count = 0;
                for e in history.entries() {
                    if p.matches(e) {
                        count += 1;
                        if count >= *n {
                            return true;
                        }
                    }
                }
                *n == 0
            }
            HistoryQuery::CountAtMost(p, n) => {
                let mut count = 0;
                for e in history.entries() {
                    if p.matches(e) {
                        count += 1;
                        if count > *n {
                            return false;
                        }
                    }
                }
                true
            }
            HistoryQuery::Pattern(pat) => pat.matches(history),
            HistoryQuery::AgeBetween { at, min, max } => {
                let age = history.age_at(*at);
                (*min..=*max).contains(&age)
            }
            HistoryQuery::SexIs(s) => history.patient().sex == *s,
            HistoryQuery::And(qs) => qs.iter().all(|q| q.matches(history)),
            HistoryQuery::Or(qs) => qs.iter().any(|q| q.matches(history)),
            HistoryQuery::Not(q) => !q.matches(history),
        }
    }

    /// A canonical, deterministic fingerprint of this query.
    ///
    /// Two queries fingerprint identically iff they are structurally
    /// equal: regexes contribute their source pattern (not their
    /// compiled form), dates their ISO form, and combinators
    /// parenthesize their operands. The workbench keys its selection
    /// cache on this string, so it must stay injective over query
    /// semantics and stable across internal representation changes —
    /// properties the previous `Debug`-derived key could not promise.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        self.write_fingerprint(&mut out);
        out
    }

    fn write_fingerprint(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            HistoryQuery::All => out.push_str("all"),
            HistoryQuery::CountAtLeast(p, n) => {
                let _ = write!(out, ">={n}:");
                p.write_fingerprint(out);
            }
            HistoryQuery::CountAtMost(p, n) => {
                let _ = write!(out, "<={n}:");
                p.write_fingerprint(out);
            }
            HistoryQuery::Pattern(pat) => pat.write_fingerprint(out),
            HistoryQuery::AgeBetween { at, min, max } => {
                let _ = write!(out, "age@{at}:{min}..{max}");
            }
            HistoryQuery::SexIs(s) => {
                let _ = write!(out, "sex:{s:?}");
            }
            HistoryQuery::And(qs) => {
                out.push_str("&(");
                for (i, q) in qs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    q.write_fingerprint(out);
                }
                out.push(')');
            }
            HistoryQuery::Or(qs) => {
                out.push_str("|(");
                for (i, q) in qs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    q.write_fingerprint(out);
                }
                out.push(')');
            }
            HistoryQuery::Not(q) => {
                out.push_str("!(");
                q.write_fingerprint(out);
                out.push(')');
            }
        }
    }

}

/// Fluent builder for [`HistoryQuery`] — the headless Fig. 4 dialog.
///
/// ```
/// use pastas_query::{QueryBuilder, EntryPredicate};
/// // "Diabetes patients aged 40–80 with at least 3 GP contacts"
/// let q = QueryBuilder::new()
///     .has_code("T90|E1[014].*").unwrap()
///     .age_between(pastas_time::Date::new(2013, 1, 1).unwrap(), 40, 80)
///     .count_at_least(EntryPredicate::IsDiagnosis, 3)
///     .build();
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    clauses: Vec<HistoryQuery>,
}

impl QueryBuilder {
    /// An empty builder (builds to [`HistoryQuery::All`]).
    pub fn new() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Require at least one entry whose code matches the regex in full.
    pub fn has_code(mut self, pattern: &str) -> Result<QueryBuilder, pastas_regex::ParseError> {
        self.clauses.push(HistoryQuery::any(EntryPredicate::code_regex(pattern)?));
        Ok(self)
    }

    /// Require the absence of any entry whose code matches.
    pub fn lacks_code(mut self, pattern: &str) -> Result<QueryBuilder, pastas_regex::ParseError> {
        self.clauses.push(HistoryQuery::none(EntryPredicate::code_regex(pattern)?));
        Ok(self)
    }

    /// Require at least `n` entries matching a predicate.
    pub fn count_at_least(mut self, pred: EntryPredicate, n: usize) -> QueryBuilder {
        self.clauses.push(HistoryQuery::CountAtLeast(pred, n));
        self
    }

    /// Require age within `[min, max]` at the reference date.
    pub fn age_between(mut self, at: Date, min: i32, max: i32) -> QueryBuilder {
        self.clauses.push(HistoryQuery::AgeBetween { at, min, max });
        self
    }

    /// Require a sex.
    pub fn sex(mut self, sex: Sex) -> QueryBuilder {
        self.clauses.push(HistoryQuery::SexIs(sex));
        self
    }

    /// Require a temporal pattern hit.
    pub fn pattern(mut self, pattern: TemporalPattern) -> QueryBuilder {
        self.clauses.push(HistoryQuery::Pattern(pattern));
        self
    }

    /// Add an arbitrary clause.
    pub fn clause(mut self, q: HistoryQuery) -> QueryBuilder {
        self.clauses.push(q);
        self
    }

    /// Build the conjunction of all clauses.
    pub fn build(self) -> HistoryQuery {
        match self.clauses.len() {
            0 => HistoryQuery::All,
            // lint:allow(no-panic-hot-path) this match arm proved len == 1
            1 => self.clauses.into_iter().next().expect("one clause"),
            _ => HistoryQuery::And(self.clauses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, Patient, PatientId, Payload, SourceKind};

    fn history(id: u64, birth_year: i32, codes: &[&str]) -> History {
        let mut h = History::new(Patient {
            id: PatientId(id),
            birth_date: Date::new(birth_year, 6, 1).unwrap(),
            sex: if id.is_multiple_of(2) { Sex::Female } else { Sex::Male },
        });
        for (i, code) in codes.iter().enumerate() {
            h.insert(Entry::event(
                Date::new(2013, 1 + (i as u32 % 12), 1).unwrap().at_midnight(),
                Payload::Diagnosis(Code::icpc(code)),
                SourceKind::PrimaryCare,
            ));
        }
        h
    }

    #[test]
    fn presence_and_absence() {
        let diabetic = history(1, 1950, &["A01", "T90"]);
        let healthy = history(2, 1950, &["A01"]);
        let has = QueryBuilder::new().has_code("T90").unwrap().build();
        assert!(has.matches(&diabetic));
        assert!(!has.matches(&healthy));
        let lacks = QueryBuilder::new().lacks_code("T90").unwrap().build();
        assert!(!lacks.matches(&diabetic));
        assert!(lacks.matches(&healthy));
    }

    #[test]
    fn count_thresholds_short_circuit() {
        let frequent = history(1, 1950, &["T90", "T90", "T90", "A01"]);
        let rare = history(2, 1950, &["T90"]);
        let q = HistoryQuery::CountAtLeast(EntryPredicate::code_regex("T90").unwrap(), 3);
        assert!(q.matches(&frequent));
        assert!(!q.matches(&rare));
        let zero = HistoryQuery::CountAtLeast(EntryPredicate::code_regex("Z99").unwrap(), 0);
        assert!(zero.matches(&rare), "count >= 0 is vacuous");
    }

    #[test]
    fn age_bounds() {
        let old = history(1, 1935, &[]);
        let young = history(2, 1990, &[]);
        let at = Date::new(2013, 1, 1).unwrap();
        let q = QueryBuilder::new().age_between(at, 65, 120).build();
        assert!(q.matches(&old));
        assert!(!q.matches(&young));
    }

    #[test]
    fn sex_clause() {
        let female = history(2, 1950, &[]);
        let male = history(1, 1950, &[]);
        let q = QueryBuilder::new().sex(Sex::Female).build();
        assert!(q.matches(&female));
        assert!(!q.matches(&male));
    }

    #[test]
    fn conjunction_of_clauses() {
        let target = history(2, 1940, &["T90", "K74", "T90", "T90"]);
        let too_young = history(4, 1990, &["T90", "T90", "T90"]);
        let q = QueryBuilder::new()
            .has_code("T90")
            .unwrap()
            .age_between(Date::new(2013, 1, 1).unwrap(), 60, 120)
            .count_at_least(EntryPredicate::IsDiagnosis, 3)
            .build();
        assert!(q.matches(&target));
        assert!(!q.matches(&too_young));
    }

    #[test]
    fn boolean_combinators() {
        let a = history(1, 1950, &["T90"]);
        let b = history(2, 1950, &["R95"]);
        let c = history(3, 1950, &["A01"]);
        let q = HistoryQuery::Or(vec![
            HistoryQuery::any(EntryPredicate::code_regex("T90").unwrap()),
            HistoryQuery::any(EntryPredicate::code_regex("R95").unwrap()),
        ]);
        assert!(q.matches(&a) && q.matches(&b) && !q.matches(&c));
        let not = HistoryQuery::Not(Box::new(q));
        assert!(!not.matches(&a) && not.matches(&c));
    }

    #[test]
    fn empty_builder_matches_everything() {
        let q = QueryBuilder::new().build();
        assert!(matches!(q, HistoryQuery::All));
        assert!(q.matches(&history(1, 1950, &[])));
    }

    #[test]
    fn fingerprints_are_canonical_and_injective() {
        let q = |pat: &str| {
            QueryBuilder::new()
                .has_code(pat)
                .unwrap()
                .age_between(Date::new(2013, 1, 1).unwrap(), 40, 80)
                .build()
        };
        // Structurally equal queries agree even when rebuilt (fresh
        // regex compilation, fresh allocations).
        assert_eq!(q("T90|R95").fingerprint(), q("T90|R95").fingerprint());
        // Structurally different queries disagree.
        assert_ne!(q("T90|R95").fingerprint(), q("T90").fingerprint());
        assert_ne!(
            HistoryQuery::any(EntryPredicate::IsDiagnosis).fingerprint(),
            HistoryQuery::none(EntryPredicate::IsDiagnosis).fingerprint()
        );
        assert_ne!(
            HistoryQuery::And(vec![HistoryQuery::All]).fingerprint(),
            HistoryQuery::Or(vec![HistoryQuery::All]).fingerprint()
        );
        // Patterns fingerprint on their constraints, not Debug internals.
        let pat = |days: i64| {
            HistoryQuery::Pattern(
                TemporalPattern::starting_with(EntryPredicate::code_regex("T90").unwrap())
                    .then(
                        crate::GapBound::within(pastas_time::Duration::days(days)),
                        EntryPredicate::IsInterval,
                    ),
            )
        };
        assert_eq!(pat(30).fingerprint(), pat(30).fingerprint());
        assert_ne!(pat(30).fingerprint(), pat(90).fingerprint());
    }
}
