//! Entry-level predicates with boolean composition.

use pastas_codes::{Code, CodeSystem};
use pastas_model::{EntryView, MeasurementKind, PayloadRef, SourceKind};
use pastas_regex::Regex;
use pastas_time::Date;

/// A predicate over a single entry. This is the atom of the Fig. 4
/// query builder: every row in that dialog compiles to one of these.
///
/// Evaluation is generic over [`EntryView`], so the same predicate runs
/// against owned `&Entry` values and against the columnar store's
/// zero-copy [`pastas_model::EntryRef`] without materializing payloads.
#[derive(Debug, Clone)]
pub enum EntryPredicate {
    /// Always true (the builder's empty state).
    Any,
    /// The entry's code matches a regex **in full** (the §IV.A semantics:
    /// `F.*` selects chapter F codes, never `XF1`).
    CodeMatches(Regex),
    /// The entry's code equals or descends from the given code.
    CodeWithin(Code),
    /// The entry's code belongs to a code system.
    System(CodeSystem),
    /// The entry was aggregated from a given source.
    Source(SourceKind),
    /// The entry is a diagnosis.
    IsDiagnosis,
    /// The entry is a medication record.
    IsMedication,
    /// The entry is a measurement of the given kind, within `[lo, hi]`.
    MeasurementIn {
        /// Measured quantity.
        kind: MeasurementKind,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// The entry is an interval (episode) entry.
    IsInterval,
    /// The entry overlaps the closed date window `[from, to]`.
    InWindow {
        /// Window start (inclusive).
        from: Date,
        /// Window end (inclusive).
        to: Date,
    },
    /// Conjunction.
    And(Vec<EntryPredicate>),
    /// Disjunction.
    Or(Vec<EntryPredicate>),
    /// Negation.
    Not(Box<EntryPredicate>),
}

impl EntryPredicate {
    /// Compile a code regex predicate (full-match semantics).
    pub fn code_regex(pattern: &str) -> Result<EntryPredicate, pastas_regex::ParseError> {
        Ok(EntryPredicate::CodeMatches(Regex::new(pattern)?))
    }

    /// Evaluate against an entry view (`&Entry` or `EntryRef`).
    pub fn matches<E: EntryView>(&self, entry: E) -> bool {
        match self {
            EntryPredicate::Any => true,
            EntryPredicate::CodeMatches(re) => {
                entry.code_ref().is_some_and(|c| re.is_full_match(&c.value))
            }
            EntryPredicate::CodeWithin(root) => {
                entry.code_ref().is_some_and(|c| c.is_within(root))
            }
            EntryPredicate::System(sys) => entry.code_ref().is_some_and(|c| c.system == *sys),
            EntryPredicate::Source(s) => entry.source() == *s,
            EntryPredicate::IsDiagnosis => {
                matches!(entry.payload_ref(), PayloadRef::Diagnosis(_))
            }
            EntryPredicate::IsMedication => {
                matches!(entry.payload_ref(), PayloadRef::Medication(_))
            }
            EntryPredicate::MeasurementIn { kind, lo, hi } => match entry.payload_ref() {
                PayloadRef::Measurement { kind: k, value } => {
                    k == *kind && (*lo..=*hi).contains(&value)
                }
                _ => false,
            },
            EntryPredicate::IsInterval => entry.is_interval(),
            EntryPredicate::InWindow { from, to } => {
                // lint:allow(no-panic-hot-path) 23:59:59 is a valid constant clock time
                entry.overlaps_window(from.at_midnight(), to.at(23, 59, 59).expect("valid clock"))
            }
            EntryPredicate::And(ps) => ps.iter().all(|p| p.matches(entry)),
            EntryPredicate::Or(ps) => ps.iter().any(|p| p.matches(entry)),
            EntryPredicate::Not(p) => !p.matches(entry),
        }
    }

    /// Convenience conjunction.
    pub fn and(self, other: EntryPredicate) -> EntryPredicate {
        match self {
            EntryPredicate::And(mut ps) => {
                ps.push(other);
                EntryPredicate::And(ps)
            }
            p => EntryPredicate::And(vec![p, other]),
        }
    }

    /// Convenience disjunction.
    pub fn or(self, other: EntryPredicate) -> EntryPredicate {
        match self {
            EntryPredicate::Or(mut ps) => {
                ps.push(other);
                EntryPredicate::Or(ps)
            }
            p => EntryPredicate::Or(vec![p, other]),
        }
    }

    /// Convenience negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> EntryPredicate {
        EntryPredicate::Not(Box::new(self))
    }

    /// Append this predicate's canonical fingerprint to `out`.
    ///
    /// The form is structural and injective over predicate semantics:
    /// regexes contribute their source pattern, dates their ISO form,
    /// and combinators parenthesize their operands — unlike `Debug`
    /// output, the result is stable across representation changes (a
    /// recompiled regex with the same pattern fingerprints identically).
    pub(crate) fn write_fingerprint(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            EntryPredicate::Any => out.push_str("any"),
            EntryPredicate::CodeMatches(re) => {
                let _ = write!(out, "code~{}", re.pattern());
            }
            EntryPredicate::CodeWithin(root) => {
                let _ = write!(out, "within:{:?}:{}", root.system, root.value);
            }
            EntryPredicate::System(sys) => {
                let _ = write!(out, "system:{sys:?}");
            }
            EntryPredicate::Source(s) => {
                let _ = write!(out, "source:{s:?}");
            }
            EntryPredicate::IsDiagnosis => out.push_str("diagnosis"),
            EntryPredicate::IsMedication => out.push_str("medication"),
            EntryPredicate::MeasurementIn { kind, lo, hi } => {
                let _ = write!(out, "meas:{kind:?}:{lo}:{hi}");
            }
            EntryPredicate::IsInterval => out.push_str("interval"),
            EntryPredicate::InWindow { from, to } => {
                let _ = write!(out, "window:{from}..{to}");
            }
            EntryPredicate::And(ps) => {
                out.push_str("&(");
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    p.write_fingerprint(out);
                }
                out.push(')');
            }
            EntryPredicate::Or(ps) => {
                out.push_str("|(");
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    p.write_fingerprint(out);
                }
                out.push(')');
            }
            EntryPredicate::Not(p) => {
                out.push_str("!(");
                p.write_fingerprint(out);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_model::{Entry, EpisodeKind, Payload};
    use pastas_time::DateTime;

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    fn diag(code: &str) -> Entry {
        Entry::event(t(2014, 6, 1), Payload::Diagnosis(Code::icpc(code)), SourceKind::PrimaryCare)
    }

    fn med(code: &str) -> Entry {
        Entry::event(t(2014, 6, 1), Payload::Medication(Code::atc(code)), SourceKind::Prescription)
    }

    #[test]
    fn the_papers_eye_or_ear_filter() {
        let p = EntryPredicate::code_regex("F.*|H.*").unwrap();
        assert!(p.matches(&diag("F83")));
        assert!(p.matches(&diag("H71")));
        assert!(!p.matches(&diag("T90")));
        assert!(!p.matches(&med("C07AB02")), "full-match never hits ATC codes by accident");
    }

    #[test]
    fn code_within_walks_hierarchies() {
        let p = EntryPredicate::CodeWithin(Code::atc("C07"));
        assert!(p.matches(&med("C07AB02")));
        assert!(!p.matches(&med("A10BA02")));
        assert!(!p.matches(&diag("K74")), "cross-system never matches");
    }

    #[test]
    fn source_and_kind_predicates() {
        assert!(EntryPredicate::Source(SourceKind::PrimaryCare).matches(&diag("A01")));
        assert!(!EntryPredicate::Source(SourceKind::Hospital).matches(&diag("A01")));
        assert!(EntryPredicate::IsDiagnosis.matches(&diag("A01")));
        assert!(!EntryPredicate::IsDiagnosis.matches(&med("N02BE01")));
        assert!(EntryPredicate::IsMedication.matches(&med("N02BE01")));
        assert!(EntryPredicate::System(CodeSystem::Atc).matches(&med("N02BE01")));
    }

    #[test]
    fn measurement_ranges() {
        let high_bp = Entry::event(
            t(2014, 6, 1),
            Payload::Measurement { kind: MeasurementKind::SystolicBp, value: 165.0 },
            SourceKind::PrimaryCare,
        );
        let p = EntryPredicate::MeasurementIn { kind: MeasurementKind::SystolicBp, lo: 140.0, hi: 300.0 };
        assert!(p.matches(&high_bp));
        let p2 = EntryPredicate::MeasurementIn { kind: MeasurementKind::SystolicBp, lo: 90.0, hi: 140.0 };
        assert!(!p2.matches(&high_bp));
        let p3 = EntryPredicate::MeasurementIn { kind: MeasurementKind::Hba1c, lo: 0.0, hi: 300.0 };
        assert!(!p3.matches(&high_bp), "kind must match");
    }

    #[test]
    fn window_predicate_includes_overlapping_intervals() {
        let stay = Entry::interval(
            t(2014, 5, 20),
            t(2014, 6, 10),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        );
        let w = EntryPredicate::InWindow {
            from: Date::new(2014, 6, 1).unwrap(),
            to: Date::new(2014, 6, 30).unwrap(),
        };
        assert!(w.matches(&stay), "interval spans into the window");
        assert!(w.matches(&diag("A01")));
        let w2 = EntryPredicate::InWindow {
            from: Date::new(2015, 1, 1).unwrap(),
            to: Date::new(2015, 12, 31).unwrap(),
        };
        assert!(!w2.matches(&stay));
    }

    #[test]
    fn boolean_composition() {
        let p = EntryPredicate::IsDiagnosis
            .and(EntryPredicate::code_regex("T.*").unwrap())
            .or(EntryPredicate::IsMedication);
        assert!(p.matches(&diag("T90")));
        assert!(!p.matches(&diag("K74")));
        assert!(p.matches(&med("C07AB02")));
        assert!(!EntryPredicate::Any.not().matches(&diag("T90")));
    }

    #[test]
    fn interval_predicate() {
        let stay = Entry::interval(
            t(2014, 1, 1),
            t(2014, 1, 5),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        );
        assert!(EntryPredicate::IsInterval.matches(&stay));
        assert!(!EntryPredicate::IsInterval.matches(&diag("A01")));
    }
}
