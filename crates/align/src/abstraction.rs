//! Sequence abstraction: roll sequences up the code hierarchy and collapse
//! repetition — §II.A.2's "abstractions over sequences of diagnosis
//! instances".

use pastas_codes::Code;

/// Roll every code up to its chapter / top-level group (`T90 → T`,
/// `E11.9 → E11 → … → IV`, `C07AB02 → C`). Codes with no parent stay.
pub fn to_chapter_level(seq: &[Code]) -> Vec<Code> {
    seq.iter()
        .map(|c| {
            let mut cur = c.clone();
            while let Some(p) = cur.parent() {
                cur = p;
            }
            cur
        })
        .collect()
}

/// Collapse consecutive repetitions, returning `(code, run_length)` pairs:
/// `[T90, T90, K74] → [(T90, 2), (K74, 1)]`. Ten follow-up contacts for the
/// same problem read as one abstracted episode.
pub fn collapse_runs(seq: &[Code]) -> Vec<(Code, usize)> {
    let mut out: Vec<(Code, usize)> = Vec::new();
    for c in seq {
        match out.last_mut() {
            Some((last, n)) if last == c => *n += 1,
            _ => out.push((c.clone(), 1)),
        }
    }
    out
}

/// Full abstraction: chapter roll-up then run collapsing. This is the view
/// NSEPter's graphs become readable in.
pub fn abstracted(seq: &[Code]) -> Vec<(Code, usize)> {
    collapse_runs(&to_chapter_level(seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    #[test]
    fn chapter_roll_up() {
        let got = to_chapter_level(&seq(&["T90", "K74", "K77"]));
        assert_eq!(got, vec![Code::icpc("T"), Code::icpc("K"), Code::icpc("K")]);
    }

    #[test]
    fn icd_rolls_to_roman_chapter() {
        let got = to_chapter_level(&[Code::icd10("E11.9")]);
        assert_eq!(got, vec![Code::icd10("IV")]);
    }

    #[test]
    fn atc_rolls_to_main_group() {
        let got = to_chapter_level(&[Code::atc("C07AB02")]);
        assert_eq!(got, vec![Code::atc("C")]);
    }

    #[test]
    fn run_collapsing() {
        let got = collapse_runs(&seq(&["T90", "T90", "T90", "K74", "T90"]));
        assert_eq!(
            got,
            vec![
                (Code::icpc("T90"), 3),
                (Code::icpc("K74"), 1),
                (Code::icpc("T90"), 1)
            ]
        );
    }

    #[test]
    fn full_abstraction_merges_same_chapter_neighbours() {
        // K74 K77 K74 are all chapter K: one run of 3 after roll-up.
        let got = abstracted(&seq(&["T90", "K74", "K77", "K74"]));
        assert_eq!(got, vec![(Code::icpc("T"), 1), (Code::icpc("K"), 3)]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(collapse_runs(&[]).is_empty());
        assert_eq!(collapse_runs(&seq(&["A01"])), vec![(Code::icpc("A01"), 1)]);
    }
}
