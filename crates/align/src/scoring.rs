//! Hierarchy-aware similarity scoring for clinical codes.

use pastas_codes::{mapping, Code};

/// Scoring parameters for alignment.
#[derive(Debug, Clone, Copy)]
pub struct Scoring {
    /// Score for identical codes.
    pub exact: i32,
    /// Score for same-condition codes (cross-system bridge) — a GP `T90`
    /// aligned with a hospital `E11`.
    pub same_condition: i32,
    /// Score for codes sharing an immediate parent (same ICPC chapter,
    /// same ICD block, same ATC subgroup).
    pub same_parent: i32,
    /// Score for unrelated codes (mismatch penalty; negative).
    pub mismatch: i32,
    /// Cost to open a gap (negative).
    pub gap_open: i32,
    /// Cost to extend a gap by one position (negative).
    pub gap_extend: i32,
}

impl Default for Scoring {
    fn default() -> Scoring {
        Scoring {
            exact: 4,
            same_condition: 3,
            same_parent: 1,
            mismatch: -2,
            gap_open: -3,
            gap_extend: -1,
        }
    }
}

impl Scoring {
    /// Similarity of two codes under this scheme.
    pub fn score(&self, a: &Code, b: &Code) -> i32 {
        if a == b {
            return self.exact;
        }
        if a.system != b.system {
            // Cross-system: only the condition bridge relates them.
            return if mapping::same_condition(a, b) { self.same_condition } else { self.mismatch };
        }
        if mapping::same_condition(a, b) {
            return self.same_condition;
        }
        match (a.parent(), b.parent()) {
            (Some(pa), Some(pb)) if pa == pb => self.same_parent,
            _ => self.mismatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_beats_everything() {
        let s = Scoring::default();
        let t90 = Code::icpc("T90");
        assert_eq!(s.score(&t90, &t90), s.exact);
        assert!(s.score(&t90, &t90) > s.score(&t90, &Code::icd10("E11")));
    }

    #[test]
    fn cross_system_bridge_scores_high() {
        let s = Scoring::default();
        assert_eq!(s.score(&Code::icpc("T90"), &Code::icd10("E11")), s.same_condition);
        assert_eq!(s.score(&Code::icd10("E11"), &Code::icpc("T90")), s.same_condition);
        assert_eq!(s.score(&Code::icpc("T90"), &Code::icd10("I50")), s.mismatch);
    }

    #[test]
    fn same_chapter_scores_low_positive() {
        let s = Scoring::default();
        // K74 and K78 share chapter K but are different conditions.
        assert_eq!(s.score(&Code::icpc("K74"), &Code::icpc("K78")), s.same_parent);
        assert_eq!(s.score(&Code::icpc("K74"), &Code::icpc("T90")), s.mismatch);
    }

    #[test]
    fn scoring_is_symmetric() {
        let s = Scoring::default();
        let codes = [
            Code::icpc("T90"),
            Code::icpc("K74"),
            Code::icpc("K78"),
            Code::icd10("E11"),
            Code::atc("C07AB02"),
        ];
        for a in &codes {
            for b in &codes {
                assert_eq!(s.score(a, b), s.score(b, a), "{a} vs {b}");
            }
        }
    }
}
