//! Pairwise alignment: Needleman–Wunsch (global) and Smith–Waterman
//! (local), both with affine gap costs via Gotoh's three-matrix recurrence.

use crate::scoring::Scoring;
use pastas_codes::Code;

/// One column of an alignment: indexes into the two input sequences
/// (`None` = gap).
pub type AlignedPair = (Option<usize>, Option<usize>);

/// The result of a pairwise alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentResult {
    /// Total score.
    pub score: i32,
    /// The aligned columns, in order.
    pub columns: Vec<AlignedPair>,
}

const NEG: i32 = i32::MIN / 4;

/// Global alignment of two code sequences (Needleman–Wunsch, affine gaps).
pub fn global_align(a: &[Code], b: &[Code], s: &Scoring) -> AlignmentResult {
    let (n, m) = (a.len(), b.len());
    // m_[i][j]: best score ending in a match at (i, j);
    // x[i][j]: ending in a gap in b (a[i-1] consumed);
    // y[i][j]: ending in a gap in a.
    let w = m + 1;
    let mut mm = vec![NEG; (n + 1) * w];
    let mut xx = vec![NEG; (n + 1) * w];
    let mut yy = vec![NEG; (n + 1) * w];
    mm[0] = 0;
    for i in 1..=n {
        xx[i * w] = s.gap_open + (i as i32 - 1) * s.gap_extend;
    }
    for (j, cell) in yy.iter_mut().enumerate().take(m + 1).skip(1) {
        *cell = s.gap_open + (j as i32 - 1) * s.gap_extend;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sc = s.score(&a[i - 1], &b[j - 1]);
            let diag = mm[(i - 1) * w + j - 1]
                .max(xx[(i - 1) * w + j - 1])
                .max(yy[(i - 1) * w + j - 1]);
            mm[i * w + j] = diag.saturating_add(sc);
            xx[i * w + j] = (mm[(i - 1) * w + j] + s.gap_open)
                .max(xx[(i - 1) * w + j] + s.gap_extend)
                .max(yy[(i - 1) * w + j] + s.gap_open);
            yy[i * w + j] = (mm[i * w + j - 1] + s.gap_open)
                .max(yy[i * w + j - 1] + s.gap_extend)
                .max(xx[i * w + j - 1] + s.gap_open);
        }
    }
    // Traceback from the best of the three at (n, m).
    let mut columns = Vec::new();
    let (mut i, mut j) = (n, m);
    let score = mm[n * w + m].max(xx[n * w + m]).max(yy[n * w + m]);
    // state: 0 = M, 1 = X, 2 = Y
    let mut state = if score == mm[n * w + m] {
        0
    } else if score == xx[n * w + m] {
        1
    } else {
        2
    };
    while i > 0 || j > 0 {
        match state {
            0 if i > 0 && j > 0 => {
                columns.push((Some(i - 1), Some(j - 1)));
                let prev = mm[i * w + j] - s.score(&a[i - 1], &b[j - 1]);
                i -= 1;
                j -= 1;
                state = if prev == mm[i * w + j] {
                    0
                } else if prev == xx[i * w + j] {
                    1
                } else {
                    2
                };
            }
            1 if i > 0 => {
                columns.push((Some(i - 1), None));
                let cur = xx[i * w + j];
                i -= 1;
                state = if cur == mm[i * w + j] + s.gap_open {
                    0
                } else if cur == xx[i * w + j] + s.gap_extend {
                    1
                } else {
                    2
                };
            }
            2 if j > 0 => {
                columns.push((None, Some(j - 1)));
                let cur = yy[i * w + j];
                j -= 1;
                state = if cur == mm[i * w + j] + s.gap_open {
                    0
                } else if cur == yy[i * w + j] + s.gap_extend {
                    2
                } else {
                    1
                };
            }
            // Boundary: force the only possible move.
            _ if i > 0 => {
                columns.push((Some(i - 1), None));
                i -= 1;
                state = 1;
            }
            _ => {
                columns.push((None, Some(j - 1)));
                j -= 1;
                state = 2;
            }
        }
    }
    columns.reverse();
    AlignmentResult { score, columns }
}

/// Local alignment (Smith–Waterman, affine gaps): the best-scoring pair of
/// subsequences. Returns an empty alignment when nothing scores positive.
pub fn local_align(a: &[Code], b: &[Code], s: &Scoring) -> AlignmentResult {
    let (n, m) = (a.len(), b.len());
    let w = m + 1;
    let mut mm = vec![0i32; (n + 1) * w];
    let mut xx = vec![NEG; (n + 1) * w];
    let mut yy = vec![NEG; (n + 1) * w];
    let (mut best, mut bi, mut bj) = (0, 0, 0);
    for i in 1..=n {
        for j in 1..=m {
            let sc = s.score(&a[i - 1], &b[j - 1]);
            let diag = mm[(i - 1) * w + j - 1]
                .max(xx[(i - 1) * w + j - 1])
                .max(yy[(i - 1) * w + j - 1]);
            mm[i * w + j] = (diag.saturating_add(sc)).max(0);
            xx[i * w + j] = (mm[(i - 1) * w + j] + s.gap_open)
                .max(xx[(i - 1) * w + j] + s.gap_extend);
            yy[i * w + j] = (mm[i * w + j - 1] + s.gap_open)
                .max(yy[i * w + j - 1] + s.gap_extend);
            if mm[i * w + j] > best {
                best = mm[i * w + j];
                bi = i;
                bj = j;
            }
        }
    }
    if best == 0 {
        return AlignmentResult { score: 0, columns: Vec::new() };
    }
    // Traceback M-states until a zero cell.
    let mut columns = Vec::new();
    let (mut i, mut j) = (bi, bj);
    let mut state = 0;
    while i > 0 && j > 0 {
        match state {
            0 => {
                if mm[i * w + j] == 0 {
                    break;
                }
                columns.push((Some(i - 1), Some(j - 1)));
                let prev = mm[i * w + j] - s.score(&a[i - 1], &b[j - 1]);
                i -= 1;
                j -= 1;
                if prev == 0 && mm[i * w + j] == 0 {
                    break;
                }
                state = if prev == mm[i * w + j] {
                    0
                } else if prev == xx[i * w + j] {
                    1
                } else {
                    2
                };
            }
            1 => {
                columns.push((Some(i - 1), None));
                let cur = xx[i * w + j];
                i -= 1;
                state = if cur == mm[i * w + j] + s.gap_open { 0 } else { 1 };
            }
            _ => {
                columns.push((None, Some(j - 1)));
                let cur = yy[i * w + j];
                j -= 1;
                state = if cur == mm[i * w + j] + s.gap_open { 0 } else { 2 };
            }
        }
    }
    columns.reverse();
    AlignmentResult { score: best, columns }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    fn s() -> Scoring {
        Scoring::default()
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let a = seq(&["A01", "T90", "K74"]);
        let r = global_align(&a, &a, &s());
        assert_eq!(r.score, 3 * s().exact);
        assert_eq!(
            r.columns,
            vec![(Some(0), Some(0)), (Some(1), Some(1)), (Some(2), Some(2))]
        );
    }

    #[test]
    fn single_insertion_produces_one_gap() {
        // The exact case NSEPter failed on: "differed in one single position".
        let a = seq(&["A01", "T90", "K74"]);
        let b = seq(&["A01", "R05", "T90", "K74"]);
        let r = global_align(&a, &b, &s());
        assert_eq!(
            r.columns,
            vec![
                (Some(0), Some(0)),
                (None, Some(1)), // the inserted R05
                (Some(1), Some(2)),
                (Some(2), Some(3)),
            ]
        );
    }

    #[test]
    fn empty_sequences() {
        let a = seq(&["T90"]);
        let empty: Vec<Code> = Vec::new();
        let r = global_align(&a, &empty, &s());
        assert_eq!(r.columns, vec![(Some(0), None)]);
        assert_eq!(r.score, s().gap_open);
        let r = global_align(&empty, &empty, &s());
        assert!(r.columns.is_empty());
        assert_eq!(r.score, 0);
    }

    #[test]
    fn affine_gaps_prefer_one_long_gap() {
        // Two separate single gaps cost 2×open; one double gap costs
        // open + extend — the alignment should consolidate.
        let a = seq(&["A01", "K74"]);
        let b = seq(&["A01", "R05", "D01", "K74"]);
        let r = global_align(&a, &b, &s());
        let gaps: Vec<usize> = r
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.0.is_none())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(gaps, vec![1, 2], "contiguous gap block");
        assert_eq!(r.score, 2 * s().exact + s().gap_open + s().gap_extend);
    }

    #[test]
    fn cross_system_codes_align_via_bridge() {
        let a = seq(&["A01", "T90"]);
        let b = vec![Code::icpc("A01"), Code::icd10("E11")];
        let r = global_align(&a, &b, &s());
        assert_eq!(r.columns, vec![(Some(0), Some(0)), (Some(1), Some(1))]);
        assert_eq!(r.score, s().exact + s().same_condition);
    }

    #[test]
    fn global_score_is_symmetric() {
        let a = seq(&["A01", "T90", "K74", "R05"]);
        let b = seq(&["T90", "K74", "K78"]);
        let ab = global_align(&a, &b, &s());
        let ba = global_align(&b, &a, &s());
        assert_eq!(ab.score, ba.score);
    }

    #[test]
    fn local_alignment_finds_the_shared_core() {
        let a = seq(&["R05", "H71", "T90", "K74", "K77"]);
        let b = seq(&["D01", "T90", "K74", "K77", "A97"]);
        let r = local_align(&a, &b, &s());
        assert_eq!(r.score, 3 * s().exact);
        assert_eq!(
            r.columns,
            vec![(Some(2), Some(1)), (Some(3), Some(2)), (Some(4), Some(3))]
        );
    }

    #[test]
    fn local_alignment_of_unrelated_sequences_is_empty() {
        let a = seq(&["A01"]);
        let b = seq(&["Z01"]);
        let r = local_align(&a, &b, &s());
        assert_eq!(r.score, 0);
        assert!(r.columns.is_empty());
    }

    #[test]
    fn alignment_columns_are_monotone() {
        let a = seq(&["A01", "T90", "K74", "R05", "A97"]);
        let b = seq(&["T90", "R05", "K78", "A97"]);
        for r in [global_align(&a, &b, &s()), local_align(&a, &b, &s())] {
            let mut last_a = None;
            let mut last_b = None;
            for (ia, ib) in &r.columns {
                if let Some(x) = ia {
                    assert!(last_a.is_none_or(|l: usize| *x == l + 1), "a indexes skip/repeat");
                    last_a = Some(*x);
                }
                if let Some(y) = ib {
                    assert!(last_b.is_none_or(|l: usize| *y == l + 1), "b indexes skip/repeat");
                    last_b = Some(*y);
                }
            }
        }
    }
}
