//! Property tests for the alignment layer.

use crate::cluster::sequence_distance;
use crate::pairwise::{global_align, local_align};
use crate::scoring::Scoring;
use pastas_codes::Code;
use proptest::prelude::*;

fn arb_code() -> impl Strategy<Value = Code> {
    prop_oneof![
        Just(Code::icpc("A01")),
        Just(Code::icpc("T90")),
        Just(Code::icpc("K74")),
        Just(Code::icpc("K77")),
        Just(Code::icpc("R05")),
        Just(Code::icd10("E11")),
        Just(Code::atc("C07AB02")),
    ]
}

fn arb_seq() -> impl Strategy<Value = Vec<Code>> {
    proptest::collection::vec(arb_code(), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Global alignment columns reconstruct both inputs exactly.
    #[test]
    fn alignment_columns_cover_inputs(a in arb_seq(), b in arb_seq()) {
        let s = Scoring::default();
        let r = global_align(&a, &b, &s);
        let a_idx: Vec<usize> = r.columns.iter().filter_map(|c| c.0).collect();
        let b_idx: Vec<usize> = r.columns.iter().filter_map(|c| c.1).collect();
        prop_assert_eq!(a_idx, (0..a.len()).collect::<Vec<_>>());
        prop_assert_eq!(b_idx, (0..b.len()).collect::<Vec<_>>());
        // No column is a double gap.
        prop_assert!(r.columns.iter().all(|c| c.0.is_some() || c.1.is_some()));
    }

    /// The alignment score equals the recomputed score of its columns.
    #[test]
    fn score_matches_columns(a in arb_seq(), b in arb_seq()) {
        let s = Scoring::default();
        let r = global_align(&a, &b, &s);
        // Recompute with affine gap accounting over the column run-lengths.
        let mut total = 0i32;
        let mut in_gap_a = false;
        let mut in_gap_b = false;
        for &(ia, ib) in &r.columns {
            match (ia, ib) {
                (Some(i), Some(j)) => {
                    total += s.score(&a[i], &b[j]);
                    in_gap_a = false;
                    in_gap_b = false;
                }
                (Some(_), None) => {
                    total += if in_gap_a { s.gap_extend } else { s.gap_open };
                    in_gap_a = true;
                    in_gap_b = false;
                }
                (None, Some(_)) => {
                    total += if in_gap_b { s.gap_extend } else { s.gap_open };
                    in_gap_b = true;
                    in_gap_a = false;
                }
                (None, None) => unreachable!(),
            }
        }
        prop_assert_eq!(r.score, total, "reported score disagrees with its own columns");
    }

    /// Global alignment score is symmetric and bounded by the perfect
    /// self-alignment of the shorter sequence.
    #[test]
    fn score_symmetry_and_upper_bound(a in arb_seq(), b in arb_seq()) {
        let s = Scoring::default();
        let ab = global_align(&a, &b, &s).score;
        let ba = global_align(&b, &a, &s).score;
        prop_assert_eq!(ab, ba);
        let bound = (a.len().min(b.len()) as i32) * s.exact;
        prop_assert!(ab <= bound, "score {ab} exceeds bound {bound}");
    }

    /// Local alignment never scores below zero and never above global+gaps
    /// slack; its columns contain no gaps-only ends.
    #[test]
    fn local_alignment_sanity(a in arb_seq(), b in arb_seq()) {
        let s = Scoring::default();
        let r = local_align(&a, &b, &s);
        prop_assert!(r.score >= 0);
        if let (Some(first), Some(last)) = (r.columns.first(), r.columns.last()) {
            // A maximal local alignment never starts or ends with a gap.
            prop_assert!(first.0.is_some() && first.1.is_some());
            prop_assert!(last.0.is_some() && last.1.is_some());
        }
    }

    /// The cluster distance is a symmetric, bounded pseudo-metric with
    /// identity at zero.
    #[test]
    fn cluster_distance_properties(a in arb_seq(), b in arb_seq()) {
        let s = Scoring::default();
        let d_ab = sequence_distance(&a, &b, &s);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert_eq!(d_ab, sequence_distance(&b, &a, &s));
        prop_assert_eq!(sequence_distance(&a, &a, &s), 0.0);
    }
}
