//! Ordered-pair association mining over diagnosis sequences — §II.A.2's
//! "mined for relations between the diagnosis codes themselves".
//!
//! For every ordered pair `(a → b)` where `b` follows `a` somewhere in the
//! same history, we report support, confidence and lift. This is the
//! hypothesis-generation companion to the visualization: a high-lift
//! `T90 → K77` rule is exactly the kind of pattern the analyst then goes
//! and *looks at* in the timeline.

use pastas_codes::Code;
use std::collections::{HashMap, HashSet};

/// One mined rule `antecedent → consequent` with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The earlier code.
    pub antecedent: Code,
    /// The later code.
    pub consequent: Code,
    /// Fraction of histories containing the ordered pair.
    pub support: f64,
    /// P(consequent follows | antecedent present).
    pub confidence: f64,
    /// confidence / P(consequent present) — >1 means positive association.
    pub lift: f64,
}

/// Mine ordered-pair rules from code sequences.
///
/// `min_support` and `min_confidence` prune the output; both in `[0, 1]`.
pub fn mine_rules(sequences: &[Vec<Code>], min_support: f64, min_confidence: f64) -> Vec<Rule> {
    let n = sequences.len();
    if n == 0 {
        return Vec::new();
    }
    // Per-history presence and ordered-pair presence (set semantics).
    let mut present: HashMap<Code, usize> = HashMap::new();
    let mut pairs: HashMap<(Code, Code), usize> = HashMap::new();
    for seq in sequences {
        let distinct: HashSet<&Code> = seq.iter().collect();
        for c in &distinct {
            *present.entry((*c).clone()).or_default() += 1;
        }
        let mut seen_pairs: HashSet<(&Code, &Code)> = HashSet::new();
        let mut seen_before: HashSet<&Code> = HashSet::new();
        for b in seq {
            for &a in &seen_before {
                if a != b {
                    seen_pairs.insert((a, b));
                }
            }
            seen_before.insert(b);
        }
        for (a, b) in seen_pairs {
            *pairs.entry((a.clone(), b.clone())).or_default() += 1;
        }
    }

    let mut rules: Vec<Rule> = pairs
        .into_iter()
        .filter_map(|((a, b), pair_count)| {
            let support = pair_count as f64 / n as f64;
            if support < min_support {
                return None;
            }
            let a_count = present[&a] as f64;
            let b_count = present[&b] as f64;
            let confidence = pair_count as f64 / a_count;
            if confidence < min_confidence {
                return None;
            }
            let lift = confidence / (b_count / n as f64);
            Some(Rule { antecedent: a, consequent: b, support, confidence, lift })
        })
        .collect();
    rules.sort_by(|x, y| {
        y.lift
            .partial_cmp(&x.lift)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.antecedent.cmp(&y.antecedent))
            .then_with(|| x.consequent.cmp(&y.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    #[test]
    fn basic_rule_statistics() {
        // 4 histories; T90→K77 in 2; T90 in 3; K77 in 2.
        let data = vec![
            seq(&["T90", "K77"]),
            seq(&["T90", "A01", "K77"]),
            seq(&["T90"]),
            seq(&["A01"]),
        ];
        let rules = mine_rules(&data, 0.0, 0.0);
        let r = rules
            .iter()
            .find(|r| r.antecedent.value == "T90" && r.consequent.value == "K77")
            .expect("rule T90→K77");
        assert!((r.support - 0.5).abs() < 1e-9);
        assert!((r.confidence - 2.0 / 3.0).abs() < 1e-9);
        assert!((r.lift - (2.0 / 3.0) / 0.5).abs() < 1e-9);
    }

    #[test]
    fn order_matters() {
        let data = vec![seq(&["A01", "T90"]), seq(&["A01", "T90"])];
        let rules = mine_rules(&data, 0.0, 0.0);
        assert!(rules.iter().any(|r| r.antecedent.value == "A01" && r.consequent.value == "T90"));
        assert!(
            !rules.iter().any(|r| r.antecedent.value == "T90" && r.consequent.value == "A01"),
            "reverse order never observed"
        );
    }

    #[test]
    fn thresholds_prune() {
        let data = vec![
            seq(&["T90", "K77"]),
            seq(&["A01", "R05"]),
            seq(&["A01", "R05"]),
            seq(&["A01", "R05"]),
        ];
        let strict = mine_rules(&data, 0.5, 0.5);
        assert!(strict.iter().all(|r| r.support >= 0.5 && r.confidence >= 0.5));
        assert!(strict.iter().any(|r| r.antecedent.value == "A01"));
        assert!(!strict.iter().any(|r| r.antecedent.value == "T90"), "support 0.25 pruned");
    }

    #[test]
    fn repeated_codes_count_once_per_history() {
        let data = vec![seq(&["T90", "T90", "K77", "K77"])];
        let rules = mine_rules(&data, 0.0, 0.0);
        let r = rules
            .iter()
            .find(|r| r.antecedent.value == "T90" && r.consequent.value == "K77")
            .unwrap();
        assert!((r.support - 1.0).abs() < 1e-9, "set semantics per history");
        // No self-rules.
        assert!(!rules.iter().any(|r| r.antecedent == r.consequent));
    }

    #[test]
    fn output_is_sorted_by_lift() {
        let data = vec![
            seq(&["T90", "K77"]),
            seq(&["T90", "K77"]),
            seq(&["A01", "R05"]),
            seq(&["A01", "K77"]),
        ];
        let rules = mine_rules(&data, 0.0, 0.0);
        for w in rules.windows(2) {
            assert!(w[0].lift >= w[1].lift);
        }
    }

    #[test]
    fn empty_input() {
        assert!(mine_rules(&[], 0.0, 0.0).is_empty());
    }
}
