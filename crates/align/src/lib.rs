//! Sequence alignment over diagnosis code sequences.
//!
//! The second predecessor project (§II.A.2) "employed alignment methods and
//! different measures to reduce the amount of noise … calculated
//! abstractions over sequences of diagnosis instances and mined for
//! relations between the diagnosis codes themselves." This crate rebuilds
//! that layer and fixes the NSEPter weaknesses the paper enumerates (the
//! serial merge "would miss an opportunity to merge nodes if two histories
//! differed in one single position. Moreover, the order in which the
//! histories were merged, mattered."):
//!
//! * [`scoring`] — hierarchy-aware code similarity (same code ≫ same
//!   chapter ≫ unrelated; the ICPC↔ICD bridge scores cross-system pairs);
//! * [`pairwise`] — Needleman–Wunsch global and Smith–Waterman local
//!   alignment with affine gaps (Gotoh);
//! * [`msa`] — progressive (star) multiple alignment;
//! * [`consensus`] — order-independent, noise-resilient consensus merging
//!   from MSA columns — the E9 ablation pits it against NSEPter's serial
//!   merge;
//! * [`abstraction`] — sequence abstraction (chapter roll-up, run
//!   collapsing);
//! * [`mining`] — ordered-pair association mining (support, confidence,
//!   lift);
//! * [`cluster`] — alignment-distance trajectory clustering (agglomerative,
//!   average linkage, with medoid representatives) answering the paper's
//!   "how can meaningful groups of these be extracted?".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod cluster;
pub mod consensus;
pub mod mining;
pub mod msa;
pub mod pairwise;
pub mod scoring;

pub use consensus::{consensus_sequence, ConsensusColumn};
pub use msa::MultipleAlignment;
pub use pairwise::{global_align, local_align, AlignedPair, AlignmentResult};
pub use scoring::Scoring;

#[cfg(test)]
mod proptests;
