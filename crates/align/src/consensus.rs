//! Consensus extraction from a multiple alignment — the noise-resilient,
//! order-independent replacement for NSEPter's serial merge.

use crate::msa::MultipleAlignment;
use crate::scoring::Scoring;
use pastas_codes::Code;
use std::collections::HashMap;

/// One consensus column: code frequencies plus gap count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusColumn {
    /// Codes observed in the column with their multiplicities.
    pub counts: HashMap<Code, usize>,
    /// Rows that had a gap in this column.
    pub gaps: usize,
}

impl ConsensusColumn {
    /// The most frequent code (ties broken by code ordering for
    /// determinism) and its count.
    pub fn majority(&self) -> Option<(&Code, usize)> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(c, &n)| (c, n))
    }

    /// Total rows contributing (non-gap).
    pub fn support(&self) -> usize {
        self.counts.values().sum()
    }
}

/// Column statistics of an alignment.
pub fn columns(msa: &MultipleAlignment) -> Vec<ConsensusColumn> {
    (0..msa.width())
        .map(|c| {
            let mut counts: HashMap<Code, usize> = HashMap::new();
            let mut gaps = 0;
            for row in &msa.rows {
                match &row[c] {
                    Some(code) => *counts.entry(code.clone()).or_default() += 1,
                    None => gaps += 1,
                }
            }
            ConsensusColumn { counts, gaps }
        })
        .collect()
}

/// Extract the consensus pathway: columns where the majority code covers at
/// least `min_support` of all rows, in column order.
///
/// With `min_support = 0.5`, a pathway shared by most histories survives
/// arbitrary single-position noise in individual histories — the property
/// NSEPter lacked.
pub fn consensus_sequence(sequences: &[Vec<Code>], min_support: f64, scoring: &Scoring) -> Vec<Code> {
    // Canonicalize the input order: progressive alignment attaches
    // sequences to the profile one at a time, so different input orders
    // could tie-break differently. Sorting first makes the consensus a
    // pure function of the *multiset* of sequences — the order-independence
    // NSEPter lacked, by construction.
    let mut canonical: Vec<Vec<Code>> = sequences.to_vec();
    canonical.sort();
    let msa = MultipleAlignment::build(&canonical, scoring);
    let n = msa.height();
    if n == 0 {
        return Vec::new();
    }
    columns(&msa)
        .into_iter()
        .filter_map(|col| {
            let (code, count) = col.majority()?;
            (count as f64 >= min_support * n as f64).then(|| code.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    fn s() -> Scoring {
        Scoring::default()
    }

    #[test]
    fn unanimous_consensus() {
        let path = seq(&["A01", "T90", "K74"]);
        let consensus = consensus_sequence(&[path.clone(), path.clone(), path.clone()], 0.5, &s());
        assert_eq!(consensus, path);
    }

    #[test]
    fn survives_single_position_noise() {
        // Four histories share A01→T90→K74→K77; each has one private
        // mutation. NSEPter's serial positional merge degrades; the MSA
        // consensus recovers the pathway exactly.
        let truth = seq(&["A01", "T90", "K74", "K77"]);
        let noisy = vec![
            seq(&["A01", "R05", "T90", "K74", "K77"]), // insertion
            seq(&["A01", "T90", "K77"]),               // deletion of K74
            seq(&["A01", "T90", "K74", "K77", "A97"]), // trailing extra
            seq(&["A01", "T90", "K74", "K77"]),        // clean
        ];
        let consensus = consensus_sequence(&noisy, 0.5, &s());
        assert_eq!(consensus, truth);
    }

    #[test]
    fn consensus_is_order_independent() {
        let seqs = vec![
            seq(&["A01", "T90", "K74"]),
            seq(&["A01", "T90", "K74", "K77"]),
            seq(&["T90", "K74", "K77"]),
            seq(&["A01", "T90", "K77"]),
        ];
        let c1 = consensus_sequence(&seqs, 0.5, &s());
        let mut rev = seqs.clone();
        rev.reverse();
        let c2 = consensus_sequence(&rev, 0.5, &s());
        assert_eq!(c1, c2, "consensus must not depend on input order");
    }

    #[test]
    fn support_threshold_filters_minority_columns() {
        let seqs = vec![
            seq(&["A01", "T90"]),
            seq(&["A01", "T90"]),
            seq(&["A01", "R05", "T90"]), // R05 in 1 of 3
        ];
        let strict = consensus_sequence(&seqs, 0.5, &s());
        assert_eq!(strict, seq(&["A01", "T90"]));
        let loose = consensus_sequence(&seqs, 0.3, &s());
        assert_eq!(loose, seq(&["A01", "R05", "T90"]));
    }

    #[test]
    fn column_statistics() {
        let seqs = vec![seq(&["A01", "T90"]), seq(&["A01", "K74"])];
        let msa = MultipleAlignment::build(&seqs, &s());
        let cols = columns(&msa);
        // First column unanimous A01.
        let a01 = cols.iter().find(|c| c.counts.contains_key(&Code::icpc("A01"))).unwrap();
        assert_eq!(a01.majority().unwrap().1, 2);
        assert_eq!(a01.support(), 2);
        assert_eq!(a01.gaps, 0);
    }

    #[test]
    fn empty_input() {
        assert!(consensus_sequence(&[], 0.5, &s()).is_empty());
    }

    #[test]
    fn majority_ties_are_deterministic() {
        let col = ConsensusColumn {
            counts: [(Code::icpc("A01"), 1), (Code::icpc("T90"), 1)].into_iter().collect(),
            gaps: 0,
        };
        // Tie broken toward the smaller code (A01 < T90).
        assert_eq!(col.majority().unwrap().0, &Code::icpc("A01"));
    }
}
