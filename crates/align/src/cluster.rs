//! Trajectory clustering — "What are the interesting properties of patient
//! histories, and how can **meaningful groups** of these be extracted?"
//! (§I, the paper's second research sub-question).
//!
//! Histories are grouped by the similarity of their diagnosis sequences:
//! the pairwise distance is derived from the global alignment score
//! (normalized so identical sequences are at 0 and unrelated ones near 1),
//! then agglomerative clustering with average linkage builds a dendrogram
//! that is cut at `k` clusters. Cluster order becomes a row order in the
//! workbench, so similar trajectories sit together on screen.

use crate::pairwise::global_align;
use crate::scoring::Scoring;
use pastas_codes::Code;

/// A symmetric pairwise distance matrix (row-major, n×n).
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Distance between items `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Alignment-derived distance between two sequences in `[0, 1]`:
/// `1 − score / max(self_score_a, self_score_b)`, clamped. Identical
/// sequences score their own self-alignment → distance 0.
pub fn sequence_distance(a: &[Code], b: &[Code], scoring: &Scoring) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let self_a = (a.len() as i32) * scoring.exact;
    let self_b = (b.len() as i32) * scoring.exact;
    let denom = self_a.max(self_b).max(1) as f64;
    let score = global_align(a, b, scoring).score as f64;
    (1.0 - score / denom).clamp(0.0, 1.0)
}

/// Build the full pairwise matrix (O(n²) alignments — intended for
/// cohort-sized inputs, hundreds of trajectories). Rows are independent
/// and each costs up to n alignments, so they are chunked across threads
/// (each row computes its strict upper triangle); the symmetric fill is a
/// serial pass, keeping the result identical at every thread count.
pub fn distance_matrix(sequences: &[Vec<Code>], scoring: &Scoring) -> DistanceMatrix {
    let n = sequences.len();
    let rows: Vec<usize> = (0..n).collect();
    let upper = pastas_par::par_map_min(&rows, 8, |&i| {
        ((i + 1)..n)
            .map(|j| sequence_distance(&sequences[i], &sequences[j], scoring))
            .collect::<Vec<f64>>()
    });
    let mut d = vec![0.0; n * n];
    for (i, row) in upper.into_iter().enumerate() {
        for (offset, dist) in row.into_iter().enumerate() {
            let j = i + 1 + offset;
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    DistanceMatrix { n, d }
}

/// Agglomerative clustering with average linkage, cut at `k` clusters.
/// Returns the cluster id (0..k) per item. `k` is clamped to `[1, n]`.
pub fn agglomerative(matrix: &DistanceMatrix, k: usize) -> Vec<usize> {
    let n = matrix.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    // Active clusters as member lists.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > k {
        // Find the pair with minimal average inter-cluster distance.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let mut total = 0.0;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        total += matrix.get(i, j);
                    }
                }
                let avg = total / (clusters[a].len() * clusters[b].len()) as f64;
                if avg < best.2 {
                    best = (a, b, avg);
                }
            }
        }
        let (a, b, _) = best;
        let merged = clusters.swap_remove(b);
        // swap_remove moved the former last cluster into slot b; if that
        // was `a`, it now lives at `b`.
        let target = if a == clusters.len() { b } else { a };
        clusters[target].extend(merged);
    }
    // Stable ids: order clusters by smallest member.
    clusters.sort_by_key(|c| c.iter().copied().min().unwrap_or(usize::MAX));
    let mut assignment = vec![0usize; n];
    for (cid, members) in clusters.iter().enumerate() {
        for &m in members {
            assignment[m] = cid;
        }
    }
    assignment
}

/// The medoid of each cluster: the member minimizing total distance to its
/// cluster mates — the "typical trajectory" to show as the group's label.
pub fn medoids(matrix: &DistanceMatrix, assignment: &[usize]) -> Vec<usize> {
    let k = assignment.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut out = Vec::with_capacity(k);
    for cid in 0..k {
        let members: Vec<usize> =
            (0..assignment.len()).filter(|&i| assignment[i] == cid).collect();
        let medoid = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da: f64 = members.iter().map(|&m| matrix.get(a, m)).sum();
                let db: f64 = members.iter().map(|&m| matrix.get(b, m)).sum();
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty cluster");
        out.push(medoid);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    fn s() -> Scoring {
        Scoring::default()
    }

    #[test]
    fn parallel_distance_matrix_matches_serial() {
        // 40 short trajectories with varied content.
        let sequences: Vec<Vec<Code>> = (0..40u32)
            .map(|i| {
                let codes = ["T90", "K74", "A01", "R95", "K86"];
                (0..(i % 7)).map(|j| Code::icpc(codes[((i + j) % 5) as usize])).collect()
            })
            .collect();
        let serial = pastas_par::with_threads(1, || distance_matrix(&sequences, &s()));
        for threads in [2, 8] {
            let par = pastas_par::with_threads(threads, || distance_matrix(&sequences, &s()));
            assert_eq!(par.d, serial.d, "threads {threads}");
            assert_eq!(par.n, serial.n);
        }
    }

    #[test]
    fn distance_properties() {
        let a = seq(&["A01", "T90", "K74"]);
        let b = seq(&["A01", "T90", "K74", "K77"]);
        let c = seq(&["H71", "F83", "D01"]);
        assert_eq!(sequence_distance(&a, &a, &s()), 0.0, "identity");
        let dab = sequence_distance(&a, &b, &s());
        let dac = sequence_distance(&a, &c, &s());
        assert!(dab < dac, "near pair {dab} < far pair {dac}");
        assert!((0.0..=1.0).contains(&dab) && (0.0..=1.0).contains(&dac));
        // Symmetry.
        assert_eq!(dab, sequence_distance(&b, &a, &s()));
        assert_eq!(sequence_distance(&[], &[], &s()), 0.0);
    }

    #[test]
    fn clustering_separates_two_obvious_groups() {
        // Group 1: diabetes-flavoured; group 2: respiratory-flavoured.
        let seqs = vec![
            seq(&["A01", "T90", "K74"]),
            seq(&["A01", "T90", "K74", "K77"]),
            seq(&["T90", "K74"]),
            seq(&["R05", "R95", "R96"]),
            seq(&["R05", "R95"]),
            seq(&["R95", "R96", "R05"]),
        ];
        let m = distance_matrix(&seqs, &s());
        let assignment = agglomerative(&m, 2);
        assert_eq!(assignment.len(), 6);
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[1], assignment[2]);
        assert_eq!(assignment[3], assignment[4]);
        assert_eq!(assignment[4], assignment[5]);
        assert_ne!(assignment[0], assignment[3]);
        // Stable ids: cluster of item 0 is id 0.
        assert_eq!(assignment[0], 0);
    }

    #[test]
    fn k_boundaries() {
        let seqs = vec![seq(&["A01"]), seq(&["T90"]), seq(&["R95"])];
        let m = distance_matrix(&seqs, &s());
        assert_eq!(agglomerative(&m, 1), vec![0, 0, 0]);
        let all = agglomerative(&m, 3);
        assert_eq!(all, vec![0, 1, 2]);
        let clamped = agglomerative(&m, 99);
        assert_eq!(clamped, vec![0, 1, 2], "k clamped to n");
        assert!(agglomerative(&distance_matrix(&[], &s()), 2).is_empty());
    }

    #[test]
    fn medoid_is_the_central_member() {
        let seqs = vec![
            seq(&["A01", "T90", "K74"]),         // close to both below
            seq(&["A01", "T90", "K74", "K77"]),
            seq(&["A01", "T90"]),
            seq(&["R95"]),
        ];
        let m = distance_matrix(&seqs, &s());
        let assignment = agglomerative(&m, 2);
        let meds = medoids(&m, &assignment);
        assert_eq!(meds.len(), 2);
        // The diabetes cluster's medoid is one of its members.
        assert_eq!(assignment[meds[0]], 0);
        assert_eq!(assignment[meds[1]], 1);
        // Item 0 (the full pathway) should be the most central of cluster 0.
        assert_eq!(meds[0], 0);
    }
}
