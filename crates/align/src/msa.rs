//! Progressive multiple alignment (star alignment around a centre
//! sequence).
//!
//! This is the machinery that makes merging **order-independent**: instead
//! of NSEPter's "first with the first, second with the second", every
//! sequence is aligned against a common profile, and the result does not
//! depend on input order beyond tie-breaking.

use crate::pairwise::global_align;
use crate::scoring::Scoring;
use pastas_codes::Code;

/// A multiple alignment: a rectangular matrix of rows (one per input
/// sequence, in input order) over columns that may hold gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipleAlignment {
    /// `rows[r][c]` = the code of sequence `r` in column `c`, or a gap.
    pub rows: Vec<Vec<Option<Code>>>,
}

impl MultipleAlignment {
    /// Align all sequences progressively. Empty input gives an empty
    /// alignment; a single sequence aligns to itself.
    pub fn build(sequences: &[Vec<Code>], scoring: &Scoring) -> MultipleAlignment {
        if sequences.is_empty() {
            return MultipleAlignment { rows: Vec::new() };
        }
        // Choose the centre: the sequence with the highest total pairwise
        // score against all others (the classic star-alignment heuristic).
        let centre = if sequences.len() <= 2 {
            0
        } else {
            let mut best = (0usize, i64::MIN);
            for i in 0..sequences.len() {
                let total: i64 = sequences
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, other)| global_align(&sequences[i], other, scoring).score as i64)
                    .sum();
                if total > best.1 {
                    best = (i, total);
                }
            }
            best.0
        };

        // The profile starts as the centre sequence.
        let mut columns: Vec<Vec<Option<Code>>> = sequences[centre]
            .iter()
            .map(|c| vec![Some(c.clone())])
            .collect();
        let mut row_order = vec![centre];

        for (i, seq) in sequences.iter().enumerate() {
            if i == centre {
                continue;
            }
            align_into_profile(&mut columns, seq, scoring);
            row_order.push(i);
        }

        // Transpose the profile into rows, restoring input order.
        let n = sequences.len();
        let width = columns.len();
        let mut rows = vec![vec![None; width]; n];
        for (c, col) in columns.iter().enumerate() {
            for (slot, cell) in col.iter().enumerate() {
                rows[row_order[slot]][c] = cell.clone();
            }
        }
        MultipleAlignment { rows }
    }

    /// Number of rows (input sequences).
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.rows.first().map(Vec::len).unwrap_or(0)
    }

    /// The non-gap codes of one column, with multiplicity.
    pub fn column(&self, c: usize) -> Vec<&Code> {
        self.rows.iter().filter_map(|r| r[c].as_ref()).collect()
    }

    /// Recover the original (gap-free) sequence of row `r`.
    pub fn ungapped_row(&self, r: usize) -> Vec<Code> {
        self.rows[r].iter().flatten().cloned().collect()
    }
}

/// Align one sequence into the growing column profile (linear gap costs at
/// the profile stage; the pairwise stage carries the affine model).
fn align_into_profile(columns: &mut Vec<Vec<Option<Code>>>, seq: &[Code], scoring: &Scoring) {
    let n = columns.len();
    let m = seq.len();
    let slots = columns.first().map(Vec::len).unwrap_or(0);
    let gap = scoring.gap_open;

    let col_score = |col: &[Option<Code>], code: &Code| -> i32 {
        let (mut total, mut cnt) = (0i64, 0i64);
        for cell in col.iter().flatten() {
            total += scoring.score(cell, code) as i64;
            cnt += 1;
        }
        if cnt == 0 {
            0
        } else {
            (total / cnt) as i32
        }
    };

    // DP over (profile column, sequence position).
    let w = m + 1;
    let mut dp = vec![0i32; (n + 1) * w];
    for i in 1..=n {
        dp[i * w] = i as i32 * gap;
    }
    for (j, cell) in dp.iter_mut().enumerate().take(m + 1).skip(1) {
        *cell = j as i32 * gap;
    }
    for i in 1..=n {
        for j in 1..=m {
            let mat = dp[(i - 1) * w + j - 1] + col_score(&columns[i - 1], &seq[j - 1]);
            let del = dp[(i - 1) * w + j] + gap; // gap in sequence
            let ins = dp[i * w + j - 1] + gap; // gap column in profile
            dp[i * w + j] = mat.max(del).max(ins);
        }
    }

    // Traceback building the new profile.
    let mut new_columns: Vec<Vec<Option<Code>>> = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let cur = dp[i * w + j];
        if i > 0 && j > 0 && cur == dp[(i - 1) * w + j - 1] + col_score(&columns[i - 1], &seq[j - 1])
        {
            let mut col = columns[i - 1].clone();
            col.push(Some(seq[j - 1].clone()));
            new_columns.push(col);
            i -= 1;
            j -= 1;
        } else if i > 0 && cur == dp[(i - 1) * w + j] + gap {
            let mut col = columns[i - 1].clone();
            col.push(None);
            new_columns.push(col);
            i -= 1;
        } else {
            let mut col = vec![None; slots];
            col.push(Some(seq[j - 1].clone()));
            new_columns.push(col);
            j -= 1;
        }
    }
    new_columns.reverse();
    *columns = new_columns;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(codes: &[&str]) -> Vec<Code> {
        codes.iter().map(|c| Code::icpc(c)).collect()
    }

    #[test]
    fn empty_and_singleton() {
        let m = MultipleAlignment::build(&[], &Scoring::default());
        assert_eq!(m.height(), 0);
        let m = MultipleAlignment::build(&[seq(&["A01", "T90"])], &Scoring::default());
        assert_eq!(m.height(), 1);
        assert_eq!(m.width(), 2);
        assert_eq!(m.ungapped_row(0), seq(&["A01", "T90"]));
    }

    #[test]
    fn identical_sequences_have_no_gaps() {
        let s = seq(&["A01", "T90", "K74"]);
        let m = MultipleAlignment::build(&[s.clone(), s.clone(), s.clone()], &Scoring::default());
        assert_eq!(m.width(), 3);
        for r in 0..3 {
            assert!(m.rows[r].iter().all(Option::is_some));
        }
    }

    #[test]
    fn rows_preserve_original_sequences() {
        let seqs = vec![
            seq(&["A01", "T90", "K74"]),
            seq(&["A01", "R05", "T90", "K74"]),
            seq(&["T90", "K74", "K77"]),
        ];
        let m = MultipleAlignment::build(&seqs, &Scoring::default());
        assert_eq!(m.height(), 3);
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(&m.ungapped_row(i), s, "row {i} corrupted");
        }
        // All rows have the same width.
        let w = m.width();
        assert!(m.rows.iter().all(|r| r.len() == w));
    }

    #[test]
    fn single_position_difference_still_aligns_the_rest() {
        // NSEPter's failure case: histories differing in one position must
        // still merge everywhere else.
        let seqs = vec![
            seq(&["A01", "T90", "K74", "K77"]),
            seq(&["A01", "R05", "K74", "K77"]),
        ];
        let m = MultipleAlignment::build(&seqs, &Scoring::default());
        // A01, K74, K77 columns have both rows filled.
        let full_columns = (0..m.width()).filter(|&c| m.column(c).len() == 2).count();
        assert!(full_columns >= 3, "expected ≥3 fully-merged columns, got {full_columns}");
    }

    #[test]
    fn order_independence_of_consensus_content() {
        let a = seq(&["A01", "T90", "K74"]);
        let b = seq(&["A01", "T90", "K74", "K77"]);
        let c = seq(&["T90", "K74", "K77"]);
        let m1 = MultipleAlignment::build(&[a.clone(), b.clone(), c.clone()], &Scoring::default());
        let m2 = MultipleAlignment::build(&[c, a, b], &Scoring::default());
        // The multiset of fully-populated column contents is order-stable.
        let full = |m: &MultipleAlignment| {
            let mut v: Vec<String> = (0..m.width())
                .filter(|&c| m.column(c).len() == m.height())
                .map(|c| m.column(c)[0].value.clone())
                .collect();
            v.sort();
            v
        };
        assert_eq!(full(&m1), full(&m2));
    }
}
