//! Session history — Shneiderman's neglected tasks.
//!
//! §II.C.3: of the seven tasks in Shneiderman's taxonomy, "the three latter
//! (relationships, **history**, extraction) are more seldom" implemented,
//! yet "they are … important for the explorative aspects of interaction
//! and should be remembered when developing a prototype." This module
//! remembers them:
//!
//! * **history** — [`Session`] wraps a [`Workbench`] and records every view
//!   command with undo/redo, so an analyst can retrace an exploration;
//! * **extraction** — see [`crate::export`], reachable from here via
//!   [`Session::workbench`];
//! * **relationships** — [`Selection`] sets with union/intersection/
//!   difference combinators support linked selections across views.

use crate::error::CoreError;
use crate::workbench::{ViewState, Workbench};
use pastas_model::PatientId;
use pastas_query::{EntryPredicate, HistoryQuery, SortKey};
use std::collections::BTreeSet;

/// A view-changing command (replayable; parameters are owned strings so
/// the log can be serialized for session replay).
#[derive(Debug, Clone)]
pub enum ViewCommand {
    /// Re-sort the display order.
    Sort(SortKey),
    /// Align on the first code matching a regex.
    AlignOnCode(String),
    /// Back to calendar mode.
    ClearAlignment,
    /// Set or clear the event filter.
    SetFilter(Option<EntryPredicate>),
}

/// A workbench with command history.
pub struct Session {
    workbench: Workbench,
    undo: Vec<(ViewState, ViewCommand)>,
    redo: Vec<(ViewState, ViewCommand)>,
}

impl Session {
    /// Wrap a workbench.
    pub fn new(workbench: Workbench) -> Session {
        Session { workbench, undo: Vec::new(), redo: Vec::new() }
    }

    /// Read access to the underlying workbench.
    pub fn workbench(&self) -> &Workbench {
        &self.workbench
    }

    /// Apply a command, recording it for undo. Returns a [`CoreError`] for
    /// invalid parameters (e.g. a bad regex) without changing state.
    pub fn apply(&mut self, command: ViewCommand) -> Result<(), CoreError> {
        let before = self.workbench.view_state();
        self.workbench.apply_command(&command)?;
        self.undo.push((before, command));
        self.redo.clear();
        Ok(())
    }

    /// Undo the last command. Returns `false` if there was nothing to undo.
    pub fn undo(&mut self) -> bool {
        let Some((state, command)) = self.undo.pop() else {
            return false;
        };
        let current = self.workbench.view_state();
        self.workbench.restore_view_state(state);
        self.redo.push((current, command));
        true
    }

    /// Redo the last undone command.
    pub fn redo(&mut self) -> bool {
        let Some((state, command)) = self.redo.pop() else {
            return false;
        };
        let current = self.workbench.view_state();
        self.workbench.restore_view_state(state);
        self.undo.push((current, command));
        true
    }

    /// The command trail, oldest first (the replayable session log).
    pub fn history(&self) -> Vec<&ViewCommand> {
        self.undo.iter().map(|(_, c)| c).collect()
    }

    /// Depth of the undo stack.
    pub fn undo_depth(&self) -> usize {
        self.undo.len()
    }
}

/// A patient selection — the "relationships" task: selections compose
/// across views with set algebra.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Selection {
    ids: BTreeSet<PatientId>,
}

impl Selection {
    /// The empty selection.
    pub fn new() -> Selection {
        Selection::default()
    }

    /// Build from patient ids.
    pub fn from_ids<I: IntoIterator<Item = PatientId>>(ids: I) -> Selection {
        Selection { ids: ids.into_iter().collect() }
    }

    /// Build from a query over a workbench. Goes through the workbench's
    /// fingerprint-keyed selection cache ([`Workbench::select_positions`]),
    /// so a selection repeated from *any* entry point — here, the server's
    /// `/select` endpoint, or the workbench itself — is a cache hit.
    pub fn from_query(wb: &Workbench, query: &HistoryQuery) -> Selection {
        Selection::from_ids(wb.select_ids(query))
    }

    /// Membership test.
    pub fn contains(&self, id: PatientId) -> bool {
        self.ids.contains(&id)
    }

    /// Number of selected patients.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Set union.
    pub fn union(&self, other: &Selection) -> Selection {
        Selection { ids: self.ids.union(&other.ids).copied().collect() }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Selection) -> Selection {
        Selection { ids: self.ids.intersection(&other.ids).copied().collect() }
    }

    /// Set difference (`self − other`).
    pub fn subtract(&self, other: &Selection) -> Selection {
        Selection { ids: self.ids.difference(&other.ids).copied().collect() }
    }

    /// Iterate ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PatientId> + '_ {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_query::QueryBuilder;
    use pastas_synth::{generate_collection, SynthConfig};

    fn session() -> Session {
        Session::new(Workbench::from_collection(generate_collection(
            SynthConfig::with_patients(200),
            47,
        )))
    }

    #[test]
    fn undo_redo_round_trip() {
        let mut s = session();
        let initial = s.workbench().order().to_vec();
        s.apply(ViewCommand::Sort(SortKey::EntryCount)).unwrap();
        let sorted = s.workbench().order().to_vec();
        assert_ne!(initial, sorted);

        assert!(s.undo());
        assert_eq!(s.workbench().order(), initial.as_slice());
        assert!(s.redo());
        assert_eq!(s.workbench().order(), sorted.as_slice());
        assert!(!s.redo(), "nothing further to redo");
    }

    #[test]
    fn alignment_commands_are_undoable() {
        let mut s = session();
        assert!(!s.workbench().is_aligned());
        s.apply(ViewCommand::AlignOnCode("T90".to_owned())).unwrap();
        assert!(s.workbench().is_aligned());
        s.undo();
        assert!(!s.workbench().is_aligned());
    }

    #[test]
    fn failed_commands_leave_no_trace() {
        let mut s = session();
        let err = s.apply(ViewCommand::AlignOnCode("T90[".to_owned()));
        assert!(err.is_err());
        assert_eq!(s.undo_depth(), 0);
        assert!(!s.undo());
    }

    #[test]
    fn new_command_clears_the_redo_branch() {
        let mut s = session();
        s.apply(ViewCommand::Sort(SortKey::EntryCount)).unwrap();
        s.apply(ViewCommand::Sort(SortKey::FirstEntry)).unwrap();
        s.undo();
        s.apply(ViewCommand::Sort(SortKey::Span)).unwrap();
        assert!(!s.redo(), "redo branch discarded after divergence");
        assert_eq!(s.history().len(), 2);
    }

    #[test]
    fn history_is_the_replayable_trail() {
        let mut s = session();
        s.apply(ViewCommand::Sort(SortKey::EntryCount)).unwrap();
        s.apply(ViewCommand::AlignOnCode("K86".to_owned())).unwrap();
        s.apply(ViewCommand::ClearAlignment).unwrap();
        let trail: Vec<String> = s.history().iter().map(|c| format!("{c:?}")).collect();
        assert_eq!(trail.len(), 3);
        assert!(trail[1].contains("K86"));
    }

    #[test]
    fn from_query_goes_through_the_selection_cache() {
        let s = session();
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        let first = Selection::from_query(s.workbench(), &q);
        assert_eq!(s.workbench().selection_cache_len(), 1, "query memoized");
        assert_eq!(s.workbench().selection_cache_misses(), 1);
        let second = Selection::from_query(s.workbench(), &q);
        assert_eq!(first, second);
        assert_eq!(s.workbench().selection_cache_len(), 1, "no duplicate entry");
        assert!(s.workbench().selection_cache_hits() >= 1, "repeat was a hit");
        // The cache is shared with snapshots: a repeat through a snapshot
        // also hits, and a fresh query through the snapshot warms the
        // original.
        let snap = s.workbench().snapshot();
        let hits_before = snap.selection_cache_hits();
        let _ = Selection::from_query(&snap, &q);
        assert_eq!(snap.selection_cache_hits(), hits_before + 1);
        let q2 = QueryBuilder::new().has_code("K86").unwrap().build();
        let _ = Selection::from_query(&snap, &q2);
        assert_eq!(s.workbench().selection_cache_len(), 2);
    }

    #[test]
    fn selection_algebra() {
        let s = session();
        let diabetics = Selection::from_query(
            s.workbench(),
            &QueryBuilder::new().has_code("T90").unwrap().build(),
        );
        let hypertensives = Selection::from_query(
            s.workbench(),
            &QueryBuilder::new().has_code("K86").unwrap().build(),
        );
        let both = diabetics.intersect(&hypertensives);
        let either = diabetics.union(&hypertensives);
        let only_dm = diabetics.subtract(&hypertensives);
        assert_eq!(both.len() + only_dm.len(), diabetics.len());
        assert_eq!(
            either.len(),
            diabetics.len() + hypertensives.len() - both.len(),
            "inclusion–exclusion"
        );
        for id in both.iter() {
            assert!(diabetics.contains(id) && hypertensives.contains(id));
        }
        assert!(Selection::new().is_empty());
    }
}
