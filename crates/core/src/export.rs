//! Extraction — the third of Shneiderman's neglected tasks (§II.C.3).
//!
//! Cohorts leave the workbench as flat files for downstream statistics
//! ("data to be statistically evaluated"): a CSV of entries and a JSON
//! document of histories. Both writers are hand-rolled (no serde) and
//! escape correctly; the JSON grammar is the obvious one so R/Python load
//! it directly.

use crate::error::CoreError;
use pastas_model::{Entry, EntryView, HistoryCollection, Payload, PayloadRef, Sex};
use std::fmt::Write as _;

/// Export every entry of the collection as CSV:
/// `patient;birth_date;sex;start;end;kind;code_or_label;value;source`.
pub fn to_csv(collection: &HistoryCollection) -> String {
    let mut out = String::new();
    out.push_str("patient;birth_date;sex;start;end;kind;code;value;source\n");
    for h in collection {
        let p = h.patient();
        let sex = match p.sex {
            Sex::Female => "F",
            Sex::Male => "M",
        };
        for e in h.entries() {
            let (kind, code, value) = payload_fields(e);
            writeln!(
                out,
                "{};{};{};{};{};{};{};{};{}",
                p.id,
                p.birth_date,
                sex,
                e.start(),
                e.end(),
                kind,
                csv_field(&code),
                value,
                e.source()
            )
            .expect("write to String");
        }
    }
    out
}

fn payload_fields<E: EntryView>(e: E) -> (&'static str, String, String) {
    match e.payload_ref() {
        PayloadRef::Diagnosis(c) => ("diagnosis", c.to_string(), String::new()),
        PayloadRef::Medication(c) => ("medication", c.to_string(), String::new()),
        PayloadRef::Measurement { kind, value } => {
            ("measurement", kind.label().to_owned(), format!("{value:.2}"))
        }
        PayloadRef::Episode(k) => ("episode", k.label().to_owned(), String::new()),
        PayloadRef::Note(t) => ("note", t.to_owned(), String::new()),
    }
}

fn csv_field(s: &str) -> String {
    // A bare carriage return splits a record in most CSV readers just
    // like a newline does, so it forces quoting too (RFC 4180 §2.6).
    if s.contains(';') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Export the collection as a JSON document:
/// `{"patients": [{"id": …, "entries": [...]}, …]}`.
pub fn to_json(collection: &HistoryCollection) -> String {
    let mut out = String::from("{\"patients\":[");
    for (i, h) in collection.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p = h.patient();
        let sex = match p.sex {
            Sex::Female => "F",
            Sex::Male => "M",
        };
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"birth_date\":\"{}\",\"sex\":\"{sex}\",\"entries\":[",
            p.id, p.birth_date
        );
        for (j, e) in h.entries().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let (kind, code, value) = payload_fields(e);
            let _ = write!(
                out,
                "{{\"start\":\"{}\",\"end\":\"{}\",\"kind\":\"{kind}\",\"code\":{},\"source\":\"{}\"",
                e.start(),
                e.end(),
                json_string(&code),
                e.source()
            );
            if !value.is_empty() {
                let _ = write!(out, ",\"value\":{value}");
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Load a collection previously saved with [`to_json`].
///
/// Entries with equal start and end come back as point events, others as
/// intervals (which matches how [`to_json`] wrote them: only intervals
/// have distinct extents). Unknown kinds or malformed rows are reported
/// as [`CoreError::Document`].
pub fn from_json(text: &str) -> Result<HistoryCollection, CoreError> {
    use pastas_codes::{Code, CodeSystem};
    use pastas_ingest::json::Json;
    use pastas_model::{EpisodeKind, History, MeasurementKind, Patient, PatientId, SourceKind};
    use pastas_time::{Date, DateTime};

    let doc = Json::parse(text).map_err(CoreError::document)?;
    let patients = doc
        .get("patients")
        .and_then(Json::as_array)
        .ok_or_else(|| CoreError::document("missing patients array"))?;
    let mut histories = Vec::with_capacity(patients.len());
    for p in patients {
        let id_text = p
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| CoreError::document("missing id"))?;
        let id: u64 = id_text
            .trim_start_matches('P')
            .parse()
            .map_err(|_| CoreError::document(format!("bad id {id_text:?}")))?;
        let birth = p
            .get("birth_date")
            .and_then(Json::as_str)
            .ok_or_else(|| CoreError::document("missing birth_date"))?;
        let birth_date = Date::parse_iso(birth).map_err(CoreError::document)?;
        let sex = match p.get("sex").and_then(Json::as_str) {
            Some("F") => Sex::Female,
            Some("M") => Sex::Male,
            other => return Err(CoreError::document(format!("bad sex {other:?}"))),
        };
        let mut history =
            History::new(Patient { id: PatientId(id), birth_date, sex });
        for e in p.get("entries").and_then(Json::as_array).unwrap_or(&[]) {
            let start = DateTime::parse_iso(
                e.get("start")
                    .and_then(Json::as_str)
                    .ok_or_else(|| CoreError::document("missing start"))?,
            )
            .map_err(CoreError::document)?;
            let end = DateTime::parse_iso(
                e.get("end")
                    .and_then(Json::as_str)
                    .ok_or_else(|| CoreError::document("missing end"))?,
            )
            .map_err(CoreError::document)?;
            let code = e
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| CoreError::document("missing code"))?;
            let source = match e.get("source").and_then(Json::as_str) {
                Some("hospital") => SourceKind::Hospital,
                Some("primary-care") => SourceKind::PrimaryCare,
                Some("specialist") => SourceKind::Specialist,
                Some("municipal") => SourceKind::Municipal,
                Some("prescription") => SourceKind::Prescription,
                other => return Err(CoreError::document(format!("bad source {other:?}"))),
            };
            let parse_code = |text: &str| -> Result<Code, CoreError> {
                let (system, value) = text
                    .split_once(':')
                    .ok_or_else(|| CoreError::document(format!("bad code {text:?}")))?;
                let system = match system {
                    "ICPC2" => CodeSystem::Icpc2,
                    "ICD10" => CodeSystem::Icd10,
                    "ATC" => CodeSystem::Atc,
                    _ => {
                        return Err(CoreError::document(format!("bad code system {system:?}")))
                    }
                };
                Ok(Code::new(system, value))
            };
            let payload = match e.get("kind").and_then(Json::as_str) {
                Some("diagnosis") => Payload::Diagnosis(parse_code(code)?),
                Some("medication") => Payload::Medication(parse_code(code)?),
                Some("measurement") => {
                    let kind = match code {
                        "systolic BP" => MeasurementKind::SystolicBp,
                        "diastolic BP" => MeasurementKind::DiastolicBp,
                        "HbA1c" => MeasurementKind::Hba1c,
                        "weight" => MeasurementKind::Weight,
                        "peak flow" => MeasurementKind::PeakFlow,
                        "cholesterol" => MeasurementKind::Cholesterol,
                        other => {
                            return Err(CoreError::document(format!(
                                "bad measurement kind {other:?}"
                            )))
                        }
                    };
                    let value = e
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| CoreError::document("missing value"))?;
                    Payload::Measurement { kind, value }
                }
                Some("episode") => {
                    let kind = match code {
                        "inpatient stay" => EpisodeKind::Inpatient,
                        "outpatient series" => EpisodeKind::Outpatient,
                        "day treatment" => EpisodeKind::DayTreatment,
                        "home care" => EpisodeKind::HomeCare,
                        "nursing home" => EpisodeKind::NursingHome,
                        "rehabilitation" => EpisodeKind::Rehabilitation,
                        "medication exposure" => EpisodeKind::MedicationExposure,
                        other => {
                            return Err(CoreError::document(format!("bad episode kind {other:?}")))
                        }
                    };
                    Payload::Episode(kind)
                }
                Some("note") => Payload::Note(code.to_owned()),
                other => return Err(CoreError::document(format!("bad entry kind {other:?}"))),
            };
            let entry = if start == end {
                Entry::event(start, payload, source)
            } else {
                Entry::interval(start, end, payload, source)
            };
            history.insert(entry);
        }
        histories.push(history);
    }
    Ok(HistoryCollection::from_histories(histories))
}

/// Quote and escape `s` as a JSON string literal (RFC 8259: quote,
/// backslash, and all control characters below U+0020). Public because
/// every hand-rolled JSON emitter in the workspace — exports here, the
/// serve layer's `/select`, `/details` and `/metrics` responses — must
/// share one escaper rather than each growing its own partial copy.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{EpisodeKind, History, MeasurementKind, Patient, PatientId, SourceKind};
    use pastas_time::Date;

    fn collection() -> HistoryCollection {
        let mut h = History::new(Patient {
            id: PatientId(9),
            birth_date: Date::new(1950, 2, 3).unwrap(),
            sex: Sex::Female,
        });
        let t = Date::new(2013, 5, 1).unwrap().at_midnight();
        h.insert(Entry::event(t, Payload::Diagnosis(Code::icpc("T90")), SourceKind::PrimaryCare));
        h.insert(Entry::event(
            t,
            Payload::Measurement { kind: MeasurementKind::SystolicBp, value: 151.25 },
            SourceKind::PrimaryCare,
        ));
        h.insert(Entry::interval(
            t,
            t + pastas_time::Duration::days(4),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        ));
        h.insert(Entry::event(
            t,
            Payload::Note("kontroll; BT 150/90".into()),
            SourceKind::PrimaryCare,
        ));
        HistoryCollection::from_histories([h])
    }

    #[test]
    fn csv_has_header_and_one_row_per_entry() {
        let csv = to_csv(&collection());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("patient;birth_date;sex;start"));
        assert!(lines[1].contains("ICPC2:T90"));
        assert!(lines[2].contains("151.25"));
        // The interval sorts after the point entries sharing its start.
        assert!(lines[4].contains("inpatient stay"), "{}", lines[4]);
    }

    #[test]
    fn csv_quotes_fields_containing_the_delimiter() {
        let csv = to_csv(&collection());
        assert!(
            csv.contains("\"kontroll; BT 150/90\""),
            "note with semicolon must be quoted: {csv}"
        );
        // Quoted row still has the right field count when parsed naively
        // by our own reader.
        let noisy_row = csv.lines().find(|l| l.contains("kontroll")).unwrap();
        let fields = pastas_ingest::csv::split_line(noisy_row, ';');
        assert_eq!(fields.len(), 9);
        assert_eq!(fields[6], "kontroll; BT 150/90");
    }

    #[test]
    fn csv_quotes_fields_containing_bare_carriage_returns() {
        // A lone \r splits records in most readers just like \n; both
        // must force quoting so the field stays one field.
        assert_eq!(csv_field("a\rb"), "\"a\rb\"");
        assert_eq!(csv_field("a\nb"), "\"a\nb\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_counts() {
        let json = to_json(&collection());
        assert!(json.starts_with("{\"patients\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"start\":").count(), 4);
        assert_eq!(json.matches("\"id\":").count(), 1);
        // Balanced braces/brackets (a cheap structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Numeric measurement values are not quoted.
        assert!(json.contains("\"value\":151.25"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_collection_exports() {
        let empty = HistoryCollection::new();
        assert_eq!(to_csv(&empty).lines().count(), 1, "header only");
        assert_eq!(to_json(&empty), "{\"patients\":[]}");
        assert_eq!(from_json("{\"patients\":[]}").unwrap().len(), 0);
    }

    #[test]
    fn json_round_trip_preserves_the_collection() {
        use pastas_synth::{generate_collection, SynthConfig};
        let original = generate_collection(SynthConfig::with_patients(60), 77);
        let json = to_json(&original);
        let loaded = from_json(&json).expect("load");
        assert_eq!(loaded.len(), original.len());
        for h in &original {
            let back = loaded.get(h.id()).expect("patient survives");
            assert_eq!(back.patient(), h.patient());
            assert_eq!(back.len(), h.len(), "{} entry count", h.id());
            for (a, b) in h.entries().iter().zip(back.entries()) {
                assert_eq!(a.start(), b.start());
                assert_eq!(a.end(), b.end());
                assert_eq!(a.source(), b.source());
                match (a.payload(), b.payload()) {
                    (PayloadRef::Measurement { kind: ka, value: va },
                     PayloadRef::Measurement { kind: kb, value: vb }) => {
                        assert_eq!(ka, kb);
                        // Values round-trip through {value:.2}.
                        assert!((va - vb).abs() < 0.005, "{va} vs {vb}");
                    }
                    (pa, pb) => assert_eq!(pa, pb),
                }
            }
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{}").is_err(), "missing patients");
        assert!(from_json("{\"patients\":[{\"id\":\"P1\"}]}").is_err(), "missing fields");
        let bad_kind = "{\"patients\":[{\"id\":\"P1\",\"birth_date\":\"1950-01-01\",\"sex\":\"F\",\
            \"entries\":[{\"start\":\"2013-01-01T00:00:00\",\"end\":\"2013-01-01T00:00:00\",\
            \"kind\":\"surgery\",\"code\":\"X\",\"source\":\"hospital\"}]}]}";
        assert!(from_json(bad_kind).is_err());
    }
}
