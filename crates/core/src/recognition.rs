//! The patient-recognition study, simulated (experiment E6).
//!
//! §IV of the paper: the prototype selected 13,000 patients, produced their
//! individual trajectories, and presented them to the patients themselves.
//! "only 1% of the patients said that everything was wrong in the presented
//! trajectories … while 92% could easily recognize their own trajectory and
//! 7% did not remember."
//!
//! We cannot mail synthetic patients a questionnaire, so we model the three
//! response channels the paper's numbers imply:
//!
//! 1. **Record integrity.** A presented trajectory is wrong *in toto* when
//!    identity linkage swapped records — probability
//!    [`RecognitionModel::record_swap_prob`] (the "everything was wrong" 1%).
//! 2. **Aggregation fidelity.** Sources drop out with probability
//!    [`RecognitionModel::source_dropout`]; a patient shown a trajectory
//!    missing most of what happened to them cannot recognise it.
//! 3. **Patient memory.** Patients with few health-service contacts have
//!    little to recognise; the probability of "did not remember" decays
//!    with the number of entries in the true trajectory.
//!
//! The defaults reproduce the paper's 92 / 7 / 1 split on the default
//! synthetic cohort; the E6 bench sweeps the error parameters to show how
//! the split degrades — the sensitivity analysis the paper does not report.

use pastas_model::{History, HistoryCollection, SourceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error-model and response-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecognitionModel {
    /// Probability a patient was shown someone else's record entirely
    /// (identity-linkage failure).
    pub record_swap_prob: f64,
    /// Per-source probability that the source's entries are missing from
    /// the presented trajectory.
    pub source_dropout: f64,
    /// Memory model: P(does not remember) = `memory_floor +
    /// memory_scale · exp(−entries / memory_halflife)`.
    pub memory_floor: f64,
    /// See `memory_floor`.
    pub memory_scale: f64,
    /// See `memory_floor`.
    pub memory_halflife: f64,
    /// Minimum fraction of the true trajectory that must survive
    /// aggregation for the patient to recognise it.
    pub recognition_threshold: f64,
}

impl Default for RecognitionModel {
    fn default() -> RecognitionModel {
        RecognitionModel {
            record_swap_prob: 0.010,
            source_dropout: 0.01,
            memory_floor: 0.015,
            memory_scale: 0.45,
            memory_halflife: 16.0,
            recognition_threshold: 0.45,
        }
    }
}

/// A patient's simulated questionnaire response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// "Could easily recognize their own trajectory."
    Recognized,
    /// "Did not remember."
    DidNotRemember,
    /// "Everything was wrong."
    EverythingWrong,
}

/// Aggregate study outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyOutcome {
    /// Number of patients in the study.
    pub patients: usize,
    /// Fraction answering "recognized".
    pub recognized: f64,
    /// Fraction answering "did not remember".
    pub not_remembered: f64,
    /// Fraction answering "everything wrong".
    pub all_wrong: f64,
}

/// Simulate one patient's response.
pub fn simulate_response(history: &History, model: &RecognitionModel, rng: &mut StdRng) -> Response {
    // Channel 1: linkage failure.
    if rng.gen_bool(model.record_swap_prob.clamp(0.0, 1.0)) {
        return Response::EverythingWrong;
    }
    // Channel 3: memory. Patients with sparse trajectories may not
    // remember the contacts at all.
    let n = history.len() as f64;
    let p_forget = (model.memory_floor
        + model.memory_scale * (-n / model.memory_halflife.max(0.1)).exp())
    .clamp(0.0, 1.0);
    if rng.gen_bool(p_forget) {
        return Response::DidNotRemember;
    }
    // Channel 2: aggregation fidelity. Drop whole sources, then check what
    // fraction of the trajectory survives.
    let mut kept = 0usize;
    let mut dropped_sources = 0u8;
    let mut keep_source = [true; 5];
    for (i, _) in SourceKind::ALL.iter().enumerate() {
        if rng.gen_bool(model.source_dropout.clamp(0.0, 1.0)) {
            keep_source[i] = false;
            dropped_sources += 1;
        }
    }
    let _ = dropped_sources;
    for e in history.entries() {
        let idx = SourceKind::ALL.iter().position(|&s| s == e.source()).expect("known source");
        if keep_source[idx] {
            kept += 1;
        }
    }
    let survival = if history.is_empty() { 1.0 } else { kept as f64 / history.len() as f64 };
    if survival >= model.recognition_threshold {
        Response::Recognized
    } else {
        Response::EverythingWrong
    }
}

/// Run the full study over a cohort.
pub fn simulate_study(
    collection: &HistoryCollection,
    model: &RecognitionModel,
    seed: u64,
) -> StudyOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = [0usize; 3];
    for h in collection {
        let r = simulate_response(h, model, &mut rng);
        counts[match r {
            Response::Recognized => 0,
            Response::DidNotRemember => 1,
            Response::EverythingWrong => 2,
        }] += 1;
    }
    let n = collection.len().max(1) as f64;
    StudyOutcome {
        patients: collection.len(),
        recognized: counts[0] as f64 / n,
        not_remembered: counts[1] as f64 / n,
        all_wrong: counts[2] as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_synth::{generate_collection, SynthConfig};

    #[test]
    fn defaults_reproduce_the_papers_split() {
        // Paper: 92% recognized / 7% did not remember / 1% everything
        // wrong — measured on the *selected* cohort (the 13,000 were the
        // chronically ill patients, whose trajectories are rich), so we
        // select the chronic cohort before running the study.
        let c = generate_collection(SynthConfig::with_patients(12_000), 7);
        let q = pastas_query::QueryBuilder::new()
            .has_code("T90|K74|K77|K86|R95")
            .unwrap()
            .build();
        let c = c.extract(|h| q.matches(h));
        assert!(c.len() > 1_000, "selected cohort size {}", c.len());
        let o = simulate_study(&c, &RecognitionModel::default(), 99);
        assert!((o.recognized - 0.92).abs() < 0.03, "recognized {:.3}", o.recognized);
        assert!((o.not_remembered - 0.07).abs() < 0.03, "not remembered {:.3}", o.not_remembered);
        assert!((o.all_wrong - 0.01).abs() < 0.015, "all wrong {:.3}", o.all_wrong);
        let total = o.recognized + o.not_remembered + o.all_wrong;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linkage_failure_drives_everything_wrong() {
        let c = generate_collection(SynthConfig::with_patients(1_500), 11);
        let broken = RecognitionModel { record_swap_prob: 0.30, ..RecognitionModel::default() };
        let o = simulate_study(&c, &broken, 5);
        assert!(o.all_wrong > 0.25, "all wrong {:.3}", o.all_wrong);
    }

    #[test]
    fn source_dropout_erodes_recognition() {
        let c = generate_collection(SynthConfig::with_patients(1_500), 13);
        let base = simulate_study(&c, &RecognitionModel::default(), 5);
        let lossy = RecognitionModel { source_dropout: 0.5, ..RecognitionModel::default() };
        let o = simulate_study(&c, &lossy, 5);
        assert!(o.recognized < base.recognized - 0.1, "{:.3} vs {:.3}", o.recognized, base.recognized);
    }

    #[test]
    fn sparse_histories_are_forgotten_more() {
        use pastas_model::{History, Patient, PatientId, Sex};
        use pastas_time::Date;
        let sparse = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        let model = RecognitionModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let forgotten = (0..5_000)
            .filter(|_| {
                simulate_response(&sparse, &model, &mut rng) == Response::DidNotRemember
            })
            .count() as f64
            / 5_000.0;
        // Empty trajectory: forget probability ≈ floor + scale ≈ 46%.
        assert!((0.38..0.55).contains(&forgotten), "forgotten {:.3}", forgotten);
    }

    #[test]
    fn study_is_deterministic_per_seed() {
        let c = generate_collection(SynthConfig::with_patients(500), 17);
        let a = simulate_study(&c, &RecognitionModel::default(), 1);
        let b = simulate_study(&c, &RecognitionModel::default(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_cohort() {
        let o = simulate_study(&HistoryCollection::new(), &RecognitionModel::default(), 1);
        assert_eq!(o.patients, 0);
        assert_eq!(o.recognized, 0.0);
    }
}
