//! Materialized cohort handles: frozen selections with a lifecycle.
//!
//! The paper's refinement loop re-reads one cohort many times (stats,
//! timeline, render) between edits to the criteria. A
//! [`CohortRegistry`] freezes a selection's posting bitmap under a
//! small id so those reads skip the planner entirely — the handle *is*
//! the row set. Handles are pinned to the snapshot version they were
//! materialized against: the first lookup after ingest publishes a new
//! version reports the handle stale (and drops it), because the frozen
//! positions index into a collection that no longer exists. The caller
//! answers `410 Gone` with a re-materialize hint built from the stored
//! query text.
//!
//! The registry is bounded by handle count and by bitmap bytes;
//! least-recently-used handles are evicted first. Re-materializing an
//! identical selection (same canonical fingerprint, same version) is
//! deduplicated onto the existing handle.

use pastas_query::Bitmap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A frozen selection: the posting bitmap of a cohort at one snapshot
/// version, plus what is needed to re-materialize it.
#[derive(Debug)]
pub struct CohortHandle {
    /// Registry-assigned id (`"c1"`, `"c2"`, …).
    pub id: String,
    /// Snapshot version the positions index into.
    pub version: u64,
    /// Number of selected patients.
    pub count: u64,
    /// Canonical query fingerprint (dedup key within a version).
    pub fingerprint: String,
    /// The original query text (the re-materialize hint).
    pub query: String,
    /// The frozen history positions.
    pub positions: Bitmap,
}

impl CohortHandle {
    /// Approximate heap bytes the handle pins.
    fn bytes(&self) -> usize {
        std::mem::size_of::<CohortHandle>()
            + self.positions.heap_bytes()
            + self.id.len()
            + self.fingerprint.len()
            + self.query.len()
    }
}

/// Outcome of a registry lookup against the current snapshot version.
#[derive(Debug)]
pub enum CohortLookup {
    /// The handle is live: its version matches the current snapshot.
    Hit(Arc<CohortHandle>),
    /// The handle was pinned to an older version and has been dropped;
    /// the caller should answer `410 Gone` with the stored query as a
    /// re-materialize hint.
    Stale {
        /// Version the handle was materialized against.
        version: u64,
        /// The original query text.
        query: String,
    },
    /// No handle under that id (never existed, evicted, or already
    /// dropped as stale).
    Missing,
}

/// Bounds for the registry.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Maximum live handles; LRU-evicted beyond this.
    pub max_handles: usize,
    /// Maximum total handle bytes; LRU-evicted beyond this.
    pub max_bytes: usize,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig { max_handles: 64, max_bytes: 64 << 20 }
    }
}

struct Entry {
    handle: Arc<CohortHandle>,
    last_used: u64,
}

struct Inner {
    handles: HashMap<String, Entry>,
    next_id: u64,
    tick: u64,
    bytes: usize,
}

/// Bounded, versioned store of materialized cohort handles. Thread-safe;
/// shared by reference between the HTTP router and the metrics endpoint.
pub struct CohortRegistry {
    inner: Mutex<Inner>,
    config: RegistryConfig,
    materializations: AtomicU64,
    stale_hits: AtomicU64,
}

impl CohortRegistry {
    /// An empty registry with the given bounds.
    pub fn new(config: RegistryConfig) -> CohortRegistry {
        CohortRegistry {
            inner: Mutex::new(Inner {
                handles: HashMap::new(),
                next_id: 1,
                tick: 0,
                bytes: 0,
            }),
            config,
            materializations: AtomicU64::new(0),
            stale_hits: AtomicU64::new(0),
        }
    }

    /// Freeze `positions` (sorted, as returned by the planner) under a
    /// fresh id pinned to `version`. Re-materializing the same canonical
    /// fingerprint at the same version returns the existing handle.
    pub fn materialize(
        &self,
        version: u64,
        fingerprint: &str,
        query: &str,
        positions: &[u32],
    ) -> Arc<CohortHandle> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner
            .handles
            .values_mut()
            .find(|e| e.handle.version == version && e.handle.fingerprint == fingerprint)
        {
            entry.last_used = tick;
            return Arc::clone(&entry.handle);
        }
        let handle = Arc::new(CohortHandle {
            id: format!("c{}", inner.next_id),
            version,
            count: positions.len() as u64,
            fingerprint: fingerprint.to_owned(),
            query: query.to_owned(),
            positions: Bitmap::from_sorted(positions),
        });
        inner.next_id += 1;
        let bytes = handle.bytes();
        while !inner.handles.is_empty()
            && (inner.handles.len() >= self.config.max_handles
                || inner.bytes + bytes > self.config.max_bytes)
        {
            let Some(oldest) = inner
                .handles
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| id.clone())
            else {
                break;
            };
            if let Some(evicted) = inner.handles.remove(&oldest) {
                inner.bytes -= evicted.handle.bytes();
            }
        }
        inner.bytes += bytes;
        inner
            .handles
            .insert(handle.id.clone(), Entry { handle: Arc::clone(&handle), last_used: tick });
        self.materializations.fetch_add(1, Ordering::Relaxed);
        handle
    }

    /// Resolve `id` against the current snapshot version. A version
    /// mismatch drops the handle and reports it stale (counted in
    /// [`Self::stale_hits_total`]).
    pub fn lookup(&self, id: &str, current_version: u64) -> CohortLookup {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.handles.get_mut(id) {
            None => return CohortLookup::Missing,
            Some(entry) if entry.handle.version == current_version => {
                entry.last_used = tick;
                return CohortLookup::Hit(Arc::clone(&entry.handle));
            }
            Some(_) => {}
        }
        let Some(stale) = inner.handles.remove(id) else {
            return CohortLookup::Missing;
        };
        inner.bytes -= stale.handle.bytes();
        self.stale_hits.fetch_add(1, Ordering::Relaxed);
        CohortLookup::Stale {
            version: stale.handle.version,
            query: stale.handle.query.clone(),
        }
    }

    /// Number of live handles.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).handles.len()
    }

    /// True if no handles are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes pinned by live handles.
    pub fn bytes(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    /// Handles materialized since startup (dedup hits not counted).
    pub fn materializations_total(&self) -> u64 {
        self.materializations.load(Ordering::Relaxed)
    }

    /// Lookups that found a stale handle since startup.
    pub fn stale_hits_total(&self) -> u64 {
        self.stale_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> CohortRegistry {
        CohortRegistry::new(RegistryConfig::default())
    }

    #[test]
    fn materialize_then_hit() {
        let reg = registry();
        let h = reg.materialize(1, "fp:a", "has(T90)", &[1, 5, 9]);
        assert_eq!(h.id, "c1");
        assert_eq!(h.count, 3);
        match reg.lookup("c1", 1) {
            CohortLookup::Hit(hit) => {
                assert_eq!(hit.positions.to_vec(), vec![1, 5, 9]);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(reg.materializations_total(), 1);
        assert_eq!(reg.stale_hits_total(), 0);
        assert_eq!(reg.len(), 1);
        assert!(reg.bytes() > 0);
    }

    #[test]
    fn version_bump_invalidates_on_first_touch() {
        let reg = registry();
        reg.materialize(1, "fp:a", "has(T90)", &[2, 4]);
        match reg.lookup("c1", 2) {
            CohortLookup::Stale { version, query } => {
                assert_eq!(version, 1);
                assert_eq!(query, "has(T90)");
            }
            other => panic!("expected stale, got {other:?}"),
        }
        assert_eq!(reg.stale_hits_total(), 1);
        // The stale handle is gone: the second touch is a plain miss.
        assert!(matches!(reg.lookup("c1", 2), CohortLookup::Missing));
        assert_eq!(reg.stale_hits_total(), 1);
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.bytes(), 0);
    }

    #[test]
    fn identical_selection_deduplicates() {
        let reg = registry();
        let a = reg.materialize(1, "fp:a", "has(T90)", &[7]);
        let b = reg.materialize(1, "fp:a", "has( T90 )", &[7]);
        assert_eq!(a.id, b.id);
        assert_eq!(reg.materializations_total(), 1);
        // Same fingerprint at a NEW version is a distinct handle.
        let c = reg.materialize(2, "fp:a", "has(T90)", &[7, 8]);
        assert_ne!(a.id, c.id);
        assert_eq!(reg.materializations_total(), 2);
    }

    #[test]
    fn lru_eviction_respects_handle_bound() {
        let reg = CohortRegistry::new(RegistryConfig { max_handles: 2, max_bytes: 1 << 20 });
        reg.materialize(1, "fp:a", "a", &[1]);
        reg.materialize(1, "fp:b", "b", &[2]);
        // Touch c1 so c2 becomes the LRU victim.
        assert!(matches!(reg.lookup("c1", 1), CohortLookup::Hit(_)));
        reg.materialize(1, "fp:c", "c", &[3]);
        assert_eq!(reg.len(), 2);
        assert!(matches!(reg.lookup("c1", 1), CohortLookup::Hit(_)));
        assert!(matches!(reg.lookup("c2", 1), CohortLookup::Missing));
        assert!(matches!(reg.lookup("c3", 1), CohortLookup::Hit(_)));
    }

    #[test]
    fn byte_bound_evicts() {
        let reg = CohortRegistry::new(RegistryConfig { max_handles: 64, max_bytes: 700 });
        let wide: Vec<u32> = (0..4096).map(|i| i * 131).collect();
        reg.materialize(1, "fp:a", "a", &wide);
        reg.materialize(1, "fp:b", "b", &wide);
        assert_eq!(reg.len(), 1, "byte bound keeps only the newest wide handle");
        assert!(reg.bytes() <= 700 + std::mem::size_of::<CohortHandle>() + wide.len() * 4);
    }
}
