//! Medication-exposure derivation — turning point dispensings into the
//! interval bands Fig. 1 colors by medication class.
//!
//! The raw prescription register only records *dispensings* (point events),
//! but the visualization wants continuous exposure periods ("The colors in
//! the visualization show different classes of medication" — shown as
//! spans, not dots, in the screenshot). The standard construction is the
//! OHDSI-style *drug era*: consecutive dispensings of the same substance
//! merge into one exposure while the gap stays within a persistence
//! window; the era extends one refill beyond the last dispensing.

use pastas_codes::Code;
use pastas_model::{Entry, EpisodeKind, History, Payload, PayloadRef, SourceKind};
use pastas_time::{DateTime, Duration};
use std::collections::HashMap;

/// One derived exposure period.
#[derive(Debug, Clone, PartialEq)]
pub struct Exposure {
    /// The substance (level-5 ATC as dispensed).
    pub code: Code,
    /// Era start (first dispensing).
    pub start: DateTime,
    /// Era end (last dispensing + persistence window).
    pub end: DateTime,
    /// Number of dispensings merged into the era.
    pub dispensings: usize,
}

impl Exposure {
    /// The exposure as a model entry (a medication-exposure interval
    /// carrying the substance code).
    pub fn to_entry(&self) -> Entry {
        Entry::interval(
            self.start,
            self.end,
            Payload::Medication(self.code.clone()),
            SourceKind::Prescription,
        )
    }
}

/// Derive exposure eras from a history's dispensings.
///
/// `persistence` is the maximum gap between consecutive dispensings of the
/// same substance that still counts as continuous use (90–120 days for the
/// quarterly refill cycles the synthetic register models); it also pads
/// the era past the final dispensing.
pub fn medication_exposures(history: &History, persistence: Duration) -> Vec<Exposure> {
    let mut per_substance: HashMap<&Code, Vec<DateTime>> = HashMap::new();
    for e in history.entries() {
        if let PayloadRef::Medication(code) = e.payload() {
            if e.is_event() {
                per_substance.entry(code).or_default().push(e.start());
            }
        }
    }
    let mut out = Vec::new();
    for (code, times) in per_substance {
        // History iteration is time-ordered, so times are sorted.
        let mut start = times[0];
        let mut last = times[0];
        let mut count = 1usize;
        for &t in &times[1..] {
            if t - last <= persistence {
                last = t;
                count += 1;
            } else {
                out.push(Exposure { code: code.clone(), start, end: last + persistence, dispensings: count });
                start = t;
                last = t;
                count = 1;
            }
        }
        out.push(Exposure { code: code.clone(), start, end: last + persistence, dispensings: count });
    }
    out.sort_by_key(|e| (e.start, e.code.value.clone()));
    out
}

/// A copy of the history with derived exposure intervals inserted (the
/// view the timeline renders with medication bands). The original point
/// dispensings are kept — the paper's design shows both levels of detail.
pub fn with_exposures(history: &History, persistence: Duration) -> History {
    let mut enriched = history.clone();
    for exp in medication_exposures(history, persistence) {
        enriched.insert(exp.to_entry());
    }
    enriched
}

/// Like [`with_exposures`] but replaces the substance payload with a bare
/// [`EpisodeKind::MedicationExposure`] episode — the fully abstracted view
/// (LifeLines' "group of drugs" level).
pub fn with_abstract_exposures(history: &History, persistence: Duration) -> History {
    let mut enriched = history.clone();
    for exp in medication_exposures(history, persistence) {
        enriched.insert(Entry::interval(
            exp.start,
            exp.end,
            Payload::Episode(EpisodeKind::MedicationExposure),
            SourceKind::Prescription,
        ));
    }
    enriched
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_model::{Patient, PatientId, Sex};
    use pastas_time::Date;

    fn t(days: i64) -> DateTime {
        Date::new(2013, 1, 1).unwrap().add_days(days).at_midnight()
    }

    fn history(dispensings: &[(&str, i64)]) -> History {
        let mut h = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        for &(code, day) in dispensings {
            h.insert(Entry::event(
                t(day),
                Payload::Medication(Code::atc(code)),
                SourceKind::Prescription,
            ));
        }
        h
    }

    #[test]
    fn regular_refills_merge_into_one_era() {
        let h = history(&[("C07AB02", 0), ("C07AB02", 90), ("C07AB02", 180)]);
        let eras = medication_exposures(&h, Duration::days(120));
        assert_eq!(eras.len(), 1);
        assert_eq!(eras[0].dispensings, 3);
        assert_eq!(eras[0].start, t(0));
        assert_eq!(eras[0].end, t(180 + 120), "padded by persistence");
    }

    #[test]
    fn a_long_gap_splits_the_era() {
        let h = history(&[("C07AB02", 0), ("C07AB02", 90), ("C07AB02", 400)]);
        let eras = medication_exposures(&h, Duration::days(120));
        assert_eq!(eras.len(), 2);
        assert_eq!(eras[0].dispensings, 2);
        assert_eq!(eras[1].dispensings, 1);
        assert_eq!(eras[1].start, t(400));
    }

    #[test]
    fn substances_form_independent_eras() {
        let h = history(&[("C07AB02", 0), ("A10BA02", 10), ("C07AB02", 90), ("A10BA02", 100)]);
        let eras = medication_exposures(&h, Duration::days(120));
        assert_eq!(eras.len(), 2);
        let codes: Vec<&str> = eras.iter().map(|e| e.code.value.as_str()).collect();
        assert!(codes.contains(&"C07AB02") && codes.contains(&"A10BA02"));
        assert!(eras.iter().all(|e| e.dispensings == 2));
    }

    #[test]
    fn enriched_history_renders_bands() {
        use pastas_ontology::presentation::{BandKind, PresentationOntology};
        let h = history(&[("C07AB02", 0), ("C07AB02", 90)]);
        let enriched = with_exposures(&h, Duration::days(120));
        assert_eq!(enriched.len(), 3, "2 dispensings + 1 era");
        let p = PresentationOntology::new();
        let era = enriched.entries().iter().find(|e| e.is_interval()).expect("era interval");
        assert_eq!(p.band_for(era.payload()), Some(BandKind::Medication));
        // The era still knows its substance → its ATC color class.
        assert!(p.entry_color_class(era).is_some());
        // Abstract view: no substance, still a medication band.
        let abstracted = with_abstract_exposures(&h, Duration::days(120));
        let era = abstracted.entries().iter().find(|e| e.is_interval()).unwrap();
        assert_eq!(p.band_for(era.payload()), Some(BandKind::Medication));
        assert!(p.entry_color_class(era).is_none());
    }

    #[test]
    fn no_dispensings_no_eras() {
        let h = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Male,
        });
        assert!(medication_exposures(&h, Duration::days(90)).is_empty());
        assert_eq!(with_exposures(&h, Duration::days(90)).len(), 0);
    }

    #[test]
    fn synthetic_patients_develop_plausible_eras() {
        use pastas_synth::{generate_collection, SynthConfig};
        let c = generate_collection(SynthConfig::with_patients(300), 5);
        let mut eras_total = 0usize;
        let mut multi = 0usize;
        for h in &c {
            for era in medication_exposures(h, Duration::days(120)) {
                eras_total += 1;
                if era.dispensings >= 3 {
                    multi += 1;
                }
            }
        }
        assert!(eras_total > 50, "eras {eras_total}");
        // Quarterly refill simulation → most eras merge several dispensings.
        assert!(
            multi as f64 > 0.4 * eras_total as f64,
            "{multi} of {eras_total} eras have ≥3 dispensings"
        );
    }
}
