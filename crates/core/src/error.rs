//! The crate's typed error — what fallible workbench/export operations
//! return instead of bare strings, so callers can match on the failure
//! class and `?` composes through `std::error::Error`.

use std::fmt;

/// Why a core operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A serialized document (the JSON export format) was malformed.
    Document(String),
    /// A user-supplied code pattern did not parse as a regex.
    Pattern(pastas_regex::ParseError),
}

impl CoreError {
    /// A document error from anything printable (parse errors, literals).
    pub fn document(message: impl ToString) -> CoreError {
        CoreError::Document(message.to_string())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Document(msg) => write!(f, "malformed document: {msg}"),
            CoreError::Pattern(e) => write!(f, "invalid code pattern: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Document(_) => None,
            CoreError::Pattern(e) => Some(e),
        }
    }
}

impl From<pastas_regex::ParseError> for CoreError {
    fn from(e: pastas_regex::ParseError) -> CoreError {
        CoreError::Pattern(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let doc = CoreError::document("missing patients array");
        assert_eq!(doc.to_string(), "malformed document: missing patients array");
        assert!(std::error::Error::source(&doc).is_none());

        let parse_err = pastas_regex::Regex::new("T90[").unwrap_err();
        let pat = CoreError::from(parse_err);
        assert!(pat.to_string().starts_with("invalid code pattern:"));
        assert!(std::error::Error::source(&pat).is_some());
    }
}
