//! # pastas-core — the PAsTAs workbench
//!
//! A from-scratch Rust reproduction of *"Visual exploration and cohort
//! identification of acute patient histories aggregated from heterogeneous
//! sources"* (Sætre, Nytrø, Nordbø, Steinsbekk — ICDE 2016). This crate is
//! the public API a downstream user adopts; the subsystems live in their
//! own crates and are re-exported here.
//!
//! ```
//! use pastas_core::prelude::*;
//!
//! // Generate a small synthetic cohort (the paper's full set is 168,000).
//! let collection = generate_collection(SynthConfig::with_patients(200), 7);
//! let mut wb = Workbench::from_collection(collection);
//!
//! // Fig. 4: select the diabetes cohort by predefined characteristics.
//! let cohort = wb.select(&QueryBuilder::new().has_code("T90").unwrap().build());
//! assert!(cohort.collection().len() < 200);
//!
//! // Align on the first diabetes code and render the Fig. 1 view.
//! let mut cohort = cohort;
//! cohort.align_on_code("T90").unwrap();
//! let svg = cohort.render_svg(900.0, 500.0);
//! assert!(svg.contains("<svg"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohorts;
pub mod error;
pub mod export;
pub mod exposure;
pub mod indicators;
pub mod recognition;
pub mod session;
pub mod workbench;

pub use cohorts::{CohortHandle, CohortLookup, CohortRegistry, RegistryConfig};
pub use error::CoreError;
pub use recognition::{simulate_study, RecognitionModel, StudyOutcome};
pub use session::{Selection, Session, ViewCommand};
pub use workbench::{IngestStats, ViewState, Workbench};

/// Convenient re-exports of the whole stack.
pub mod prelude {
    pub use crate::error::CoreError;
    pub use crate::export::{from_json, to_csv, to_json};
    pub use crate::exposure::{medication_exposures, with_exposures};
    pub use crate::indicators::{indicators, IndicatorPanel};
    pub use crate::recognition::{simulate_study, RecognitionModel, StudyOutcome};
    pub use crate::session::{Selection, Session, ViewCommand};
    pub use crate::workbench::{IngestStats, Workbench};
    pub use pastas_codes::{Code, CodeSystem};
    pub use pastas_ingest::{
        aggregate, parse_delta, DeltaBatch, DeltaFormat, QualityReport, SourceTexts,
    };
    pub use pastas_model::{
        CodeId, Entry, EntryRef, EntryView, EpisodeKind, History, HistoryCollection,
        MeasurementKind, MemoryFootprint, Patient, PatientId, Payload, PayloadRef, Sex,
        SourceKind,
    };
    pub use pastas_query::{
        align_on, sort_histories, EntryPredicate, GapBound, HistoryQuery, QueryBuilder, SortKey,
        TemporalPattern,
    };
    pub use pastas_synth::{generate_collection, generate_population, SynthConfig};
    pub use pastas_time::{Date, DateTime, Duration};
    pub use pastas_viz::{AxisMode, TimelineOptions, TimelineView, Viewport};
}
