//! The workbench: one object holding the aggregated collection, its
//! indexes, the two ontologies, and the current view state.
//!
//! Every §IV interactive operation is a method whose wall-clock cost E8
//! benches against Shneiderman's 0.1 s budget: select, sort, align, filter,
//! zoom, hover.

use pastas_ingest::{
    aggregate, entry_fingerprint, DeltaBatch, EntryFingerprint, QualityReport, SourceTexts,
};
use pastas_model::{HistoryCollection, OpenEpoch, PatientId};
use pastas_ontology::integration::IntegrationOntology;
use pastas_query::{
    align_on, sort_histories, CodeIndex, EntryPredicate, Explain, HistoryQuery, QueryPlan, SortKey,
};
use pastas_regex::ParseError;
use pastas_time::{Date, Duration};
use pastas_viz::html::{personal_timeline, PersonalTimelineOptions};
use pastas_viz::timeline::aligned_viewport;
use pastas_viz::{ascii, hit::HitMap, svg, AxisMode, Scene, TimelineOptions, TimelineView, Viewport};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A snapshot of the mutable view state (what undo/redo restores).
#[derive(Debug, Clone)]
pub struct ViewState {
    pub(crate) order: Vec<u32>,
    pub(crate) axis: AxisMode,
    pub(crate) filter: Option<EntryPredicate>,
}

/// Memoized selection results, keyed by the query's **canonical**
/// fingerprint (the normalized form's [`HistoryQuery::fingerprint`], via
/// [`pastas_query::plan::QueryPlan::canonical_fingerprint`]) — so
/// logically equivalent spellings (`And(a,b)` vs `And(b,a)`, `lacks(X)`
/// vs `not has(X)`) share one entry. Re-running a selection is the
/// workbench's dominant interaction; a hit skips planning, index probing
/// and candidate verification. Shared (`Arc`) between a workbench and its
/// [`Workbench::snapshot`]s — they view the same collection, so a hit from
/// any entry point warms every other — and replaced wholesale when the
/// collection changes ([`Workbench::set_collection`]), which leaves
/// snapshots of the *old* collection consistent with their own cache.
///
/// Also home to the plan-path counters the serve layer exports:
/// `index_hits` counts uncached selections answered by posting-list set
/// algebra, `scan_fallbacks` those whose plan evaluated the query against
/// every history.
struct SelectionCache {
    entries: Mutex<HashMap<String, Vec<u32>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    index_hits: AtomicU64,
    scan_fallbacks: AtomicU64,
    pattern_candidates: AtomicU64,
    pattern_automaton_runs: AtomicU64,
}

impl SelectionCache {
    fn new() -> Arc<SelectionCache> {
        Arc::new(SelectionCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            scan_fallbacks: AtomicU64::new(0),
            pattern_candidates: AtomicU64::new(0),
            pattern_automaton_runs: AtomicU64::new(0),
        })
    }

    fn count_plan_path(&self, used_full_scan: bool) {
        if used_full_scan {
            self.scan_fallbacks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.index_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count_exec_stats(&self, stats: &pastas_query::plan::ExecStats) {
        if stats.pattern_candidates > 0 {
            self.pattern_candidates.fetch_add(stats.pattern_candidates, Ordering::Relaxed);
        }
        if stats.pattern_automaton_runs > 0 {
            self.pattern_automaton_runs
                .fetch_add(stats.pattern_automaton_runs, Ordering::Relaxed);
        }
    }
}

/// Outcome accounting of one [`Workbench::apply_ingest`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Per-patient deltas processed (across every batch).
    pub deltas_applied: usize,
    /// Entries accepted into the collection.
    pub entries_applied: usize,
    /// Entries dropped as exact duplicates of already-loaded ones (or of
    /// earlier entries in the same call), by the batch pipeline's
    /// [`entry_fingerprint`] identity.
    pub duplicates_dropped: usize,
    /// Entries dropped by the §IV pre-birth validation rule.
    pub dropped_pre_birth: usize,
    /// Distinct patients whose history changed (created or extended).
    pub patients_touched: usize,
    /// Patients appended to the collection (first appearance).
    pub patients_created: usize,
}

/// The workbench. See the crate docs for a tour.
pub struct Workbench {
    collection: HistoryCollection,
    /// Cheap content fingerprint of `collection` (see
    /// [`Self::collection_fingerprint`]).
    collection_fingerprint: u64,
    index: Arc<CodeIndex>,
    ontology: Arc<IntegrationOntology>,
    quality: Option<QualityReport>,
    selections: Arc<SelectionCache>,
    /// Lazily built dimension tables for `collection` (see
    /// `pastas-analytics`): the first [`Self::cohort_profile`] call pays
    /// the build, every later profile of this collection reuses it.
    /// `Arc`-shared with snapshots and *replaced* (never cleared) when
    /// the collection changes, like the selection cache.
    dimension_tables: Arc<OnceLock<pastas_analytics::DimensionTables>>,
    // View state.
    order: Vec<u32>,
    axis: AxisMode,
    filter: Option<EntryPredicate>,
}

/// FNV-1a over per-history identity (id, entry count) plus collection
/// stats — a cheap O(histories + entries) digest that distinguishes any
/// two collections this workspace produces. Used to key server-side
/// response caches together with [`HistoryQuery::fingerprint`].
fn fingerprint_collection(collection: &HistoryCollection) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(collection.len() as u64);
    let stats = collection.stats();
    mix(stats.entries as u64);
    mix(stats.events as u64);
    mix(stats.intervals as u64);
    for history in collection {
        mix(history.id().0);
        mix(history.len() as u64);
    }
    h
}

impl Workbench {
    /// Build from an already-aggregated collection.
    pub fn from_collection(collection: HistoryCollection) -> Workbench {
        let index = Arc::new(CodeIndex::build(&collection));
        let order = (0..collection.len() as u32).collect();
        let collection_fingerprint = fingerprint_collection(&collection);
        Workbench {
            collection,
            collection_fingerprint,
            index,
            ontology: Arc::new(IntegrationOntology::new()),
            quality: None,
            selections: SelectionCache::new(),
            dimension_tables: Arc::new(OnceLock::new()),
            order,
            axis: AxisMode::Calendar,
            filter: None,
        }
    }

    /// Replace the collection: rebuilds the index, resets the display
    /// order and axis (old positions are meaningless against the new
    /// data), and invalidates the selection cache. The filter is kept —
    /// it is position-independent.
    ///
    /// The old selection cache is *replaced*, not cleared: snapshots taken
    /// before the swap ([`Self::snapshot`]) still reference it together
    /// with the old collection, and stay internally consistent.
    pub fn set_collection(&mut self, collection: HistoryCollection) {
        self.index = Arc::new(CodeIndex::build(&collection));
        self.order = (0..collection.len() as u32).collect();
        self.axis = AxisMode::Calendar;
        self.collection_fingerprint = fingerprint_collection(&collection);
        self.collection = collection;
        self.selections = SelectionCache::new();
        self.dimension_tables = Arc::new(OnceLock::new());
    }

    /// Apply parsed ingest deltas ([`pastas_ingest::parse_delta`])
    /// incrementally — the streaming alternative to
    /// [`Self::set_collection`]'s full rebuild.
    ///
    /// Entries dedup against the already-loaded collection (and each
    /// other) with the batch pipeline's [`entry_fingerprint`] identity,
    /// stage in a [`OpenEpoch`] (which applies the §IV pre-birth rule),
    /// and seal into the collection: existing patients keep their
    /// display position and code ids, new patients append at the end of
    /// the display order. The code index advances via
    /// [`CodeIndex::with_delta`] — main posting shards are shared, only
    /// the touched rows are re-scanned into the side-index — and the
    /// selection cache is replaced (snapshots of the old collection keep
    /// the old one). Call [`Self::compact`] periodically to fold the
    /// side-index back into the main shards.
    pub fn apply_ingest(&mut self, batches: &[DeltaBatch]) -> IngestStats {
        let mut stats = IngestStats::default();
        let mut epoch = OpenEpoch::new();
        // Per-patient fingerprints of already-loaded entries, extended
        // with each accepted delta entry so duplicates are dropped both
        // against the collection and within this call.
        let mut known: HashMap<u64, HashSet<EntryFingerprint>> = HashMap::new();
        for batch in batches {
            for delta in &batch.deltas {
                stats.deltas_applied += 1;
                let pid = delta.patient.id;
                let seen = known.entry(pid.0).or_insert_with(|| {
                    self.collection
                        .get(pid)
                        .map(|h| {
                            h.entries()
                                .iter()
                                .map(|e| entry_fingerprint(pid.0, &e.to_entry()))
                                .collect()
                        })
                        .unwrap_or_default()
                });
                let mut fresh = Vec::with_capacity(delta.entries.len());
                for e in &delta.entries {
                    if seen.insert(entry_fingerprint(pid.0, e)) {
                        fresh.push(e.clone());
                    } else {
                        stats.duplicates_dropped += 1;
                    }
                }
                // A delta that nets out to nothing for a patient we
                // already hold (a replayed batch, a re-registration) must
                // not dirty the row: replaying an increment is a no-op.
                if fresh.is_empty() && self.collection.get(pid).is_some() {
                    continue;
                }
                let report = epoch.append(delta.patient, fresh);
                stats.entries_applied += report.accepted;
                stats.dropped_pre_birth += report.dropped_pre_birth;
            }
        }
        let rows_before = self.collection.len();
        let touched = epoch.seal_into(&mut self.collection);
        stats.patients_touched = touched.len();
        stats.patients_created = self.collection.len() - rows_before;
        if touched.is_empty() {
            return stats;
        }
        let dirty: Vec<u32> = touched
            .iter()
            .map(|&id| {
                // lint:allow(transitive-no-panic-hot-path) every id in `touched` was sealed into the collection in the loop above
                self.collection.position_of(id).expect("sealed patient has a position") as u32
            })
            .collect();
        self.index = Arc::new(self.index.with_delta(&self.collection, &dirty));
        self.collection_fingerprint = fingerprint_collection(&self.collection);
        self.selections = SelectionCache::new();
        self.dimension_tables = Arc::new(OnceLock::new());
        // Appended patients join the end of the display order; existing
        // rows keep their positions, so the current sort/alignment stays
        // meaningful.
        self.order.extend(rows_before as u32..self.collection.len() as u32);
        // Fold the parse/linkage accounting into the quality report.
        let quality = self.quality.get_or_insert_with(QualityReport::default);
        for batch in batches {
            quality.rows_read += batch.rows_read;
            quality.parse_errors += batch.parse_errors;
            quality.unlinked_rows += batch.unlinked_rows;
            quality.measurements_extracted += batch.measurements_extracted;
        }
        quality.duplicates_dropped += stats.duplicates_dropped;
        quality.dropped_pre_birth += stats.dropped_pre_birth;
        quality.entries_loaded += stats.entries_applied;
        stats
    }

    /// Fold the code index's side-index into its main posting shards
    /// (LSM compaction; see [`CodeIndex::compact`]). Selection results
    /// are unchanged — the side pass and the compacted shards answer
    /// identically — so the collection fingerprint and selection cache
    /// survive. Returns false (and does nothing) when already compact.
    pub fn compact(&mut self) -> bool {
        if self.index.side_is_empty() {
            return false;
        }
        self.index = Arc::new(self.index.compact());
        true
    }

    /// A cheap immutable snapshot sharing all heavy state — histories,
    /// code index, ontology, and the selection cache are `Arc`-shared
    /// (O(histories) pointer bumps, no entry data or postings copied);
    /// only the view state (order, axis, filter) is deep-cloned so the
    /// snapshot and the original diverge freely afterwards.
    ///
    /// This is the serving layer's unit of publication: readers hold a
    /// snapshot and never block a writer that is building the next one.
    pub fn snapshot(&self) -> Workbench {
        Workbench {
            collection: self.collection.clone(),
            collection_fingerprint: self.collection_fingerprint,
            index: Arc::clone(&self.index),
            ontology: Arc::clone(&self.ontology),
            quality: self.quality.clone(),
            selections: Arc::clone(&self.selections),
            dimension_tables: Arc::clone(&self.dimension_tables),
            order: self.order.clone(),
            axis: self.axis.clone(),
            filter: self.filter.clone(),
        }
    }

    /// Apply a replayable view command (the programmatic face of the §IV
    /// interactions — also the `POST /command` endpoint's engine). Invalid
    /// parameters (e.g. a bad regex) return an error without changing
    /// state.
    pub fn apply_command(
        &mut self,
        command: &crate::session::ViewCommand,
    ) -> Result<(), crate::error::CoreError> {
        use crate::session::ViewCommand;
        match command {
            ViewCommand::Sort(key) => self.sort(key),
            ViewCommand::AlignOnCode(pattern) => {
                self.align_on_code(pattern)?;
            }
            ViewCommand::ClearAlignment => self.clear_alignment(),
            ViewCommand::SetFilter(f) => self.set_filter(f.clone()),
        }
        Ok(())
    }

    /// Content fingerprint of the current collection. Two workbenches over
    /// the same aggregated data agree; any ingest/set_collection changes
    /// it. Response caches key on `(this, query fingerprint, params)`.
    pub fn collection_fingerprint(&self) -> u64 {
        self.collection_fingerprint
    }

    /// Number of memoized selections.
    pub fn selection_cache_len(&self) -> usize {
        self.selections.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Selection-cache hits since this collection was installed.
    pub fn selection_cache_hits(&self) -> u64 {
        self.selections.hits.load(Ordering::Relaxed)
    }

    /// Selection-cache misses since this collection was installed.
    pub fn selection_cache_misses(&self) -> u64 {
        self.selections.misses.load(Ordering::Relaxed)
    }

    /// Uncached selections whose physical plan was served by posting-list
    /// set algebra (no full-scan operator anywhere in the tree).
    pub fn select_index_hits(&self) -> u64 {
        self.selections.index_hits.load(Ordering::Relaxed)
    }

    /// Uncached selections whose physical plan fell back to evaluating
    /// the query against every history.
    pub fn select_scan_fallbacks(&self) -> u64 {
        self.selections.scan_fallbacks.load(Ordering::Relaxed)
    }

    /// Histories that survived temporal-pattern index prefilters and were
    /// handed to a compiled automaton, summed over uncached selections.
    pub fn pattern_candidates(&self) -> u64 {
        self.selections.pattern_candidates.load(Ordering::Relaxed)
    }

    /// Temporal-pattern automaton executions across uncached selections
    /// (one per candidate verified).
    pub fn pattern_automaton_runs(&self) -> u64 {
        self.selections.pattern_automaton_runs.load(Ordering::Relaxed)
    }

    /// Build by running the full heterogeneous-source aggregation pipeline.
    pub fn from_raw_sources(sources: SourceTexts<'_>) -> Workbench {
        let (collection, quality) = aggregate(sources);
        let mut wb = Workbench::from_collection(collection);
        wb.quality = Some(quality);
        wb
    }

    /// The aggregated collection.
    pub fn collection(&self) -> &HistoryCollection {
        &self.collection
    }

    /// The data-quality report, when built from raw sources.
    pub fn quality(&self) -> Option<&QualityReport> {
        self.quality.as_ref()
    }

    /// The integration & alignment ontology.
    pub fn ontology(&self) -> &IntegrationOntology {
        &self.ontology
    }

    /// The inverted code index.
    pub fn index(&self) -> &CodeIndex {
        &self.index
    }

    /// Current display order (history positions).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Snapshot the current view state (order, axis mode, filter) — the
    /// unit of undo/redo in [`crate::session::Session`].
    pub fn view_state(&self) -> ViewState {
        ViewState {
            order: self.order.clone(),
            axis: self.axis.clone(),
            filter: self.filter.clone(),
        }
    }

    /// Restore a previously captured view state.
    pub fn restore_view_state(&mut self, state: ViewState) {
        self.order = state.order;
        self.axis = state.axis;
        self.filter = state.filter;
    }

    // ------------------------------------------------------------------
    // Cohort identification (§IV: "extraction of sub-collections")
    // ------------------------------------------------------------------

    /// Positions of histories matching the query (planner-accelerated and
    /// memoized — repeating a selection on an unchanged collection is a
    /// cache hit, and the cache keys on the *canonical* fingerprint, so
    /// commuted or double-negated spellings of one query also hit).
    pub fn select_positions(&self, query: &HistoryQuery) -> Vec<u32> {
        let plan = QueryPlan::build(&self.index, &self.collection, query);
        let fingerprint = plan.canonical_fingerprint().to_owned();
        {
            let cache = self.selections.entries.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = cache.get(&fingerprint) {
                self.selections.hits.fetch_add(1, Ordering::Relaxed);
                return hit.clone();
            }
        }
        self.selections.misses.fetch_add(1, Ordering::Relaxed);
        self.selections.count_plan_path(plan.uses_full_scan());
        let (positions, stats) = plan.execute_stats(&self.collection, &self.index);
        self.selections.count_exec_stats(&stats);
        self.selections
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fingerprint, positions.clone());
        positions
    }

    /// Like [`Self::select_positions`], but always executes the physical
    /// plan (bypassing the memo for the result — the cache still learns
    /// it) and returns the executed [`Explain`] tree alongside the
    /// positions: per-operator candidate counts and timings, the payload
    /// behind `pastas-serve`'s `/select?explain=1`.
    pub fn select_explain(&self, query: &HistoryQuery) -> (Vec<u32>, Explain) {
        let plan = QueryPlan::build(&self.index, &self.collection, query);
        self.selections.count_plan_path(plan.uses_full_scan());
        let (positions, explain, stats) =
            plan.execute_explain_stats(&self.collection, &self.index);
        self.selections.count_exec_stats(&stats);
        self.selections
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(plan.canonical_fingerprint().to_owned(), positions.clone());
        (positions, explain)
    }

    /// Extract the matching sub-collection into a new workbench. The
    /// sub-collection shares the selected histories with this one
    /// (O(matches) pointer copies — no entry data is cloned).
    pub fn select(&self, query: &HistoryQuery) -> Workbench {
        let positions = self.select_positions(query);
        let histories = self.collection.histories();
        let sub = HistoryCollection::from_shared(
            positions.iter().map(|&i| Arc::clone(&histories[i as usize])),
        );
        Workbench::from_collection(sub)
    }

    /// The canonical fingerprint of a query against the current index —
    /// the registry's dedup key for materialized cohorts (commuted or
    /// double-negated spellings of one selection share a handle).
    pub fn canonical_query_fingerprint(&self, query: &HistoryQuery) -> String {
        QueryPlan::build(&self.index, &self.collection, query)
            .canonical_fingerprint()
            .to_owned()
    }

    /// The nine-dimension composition profile of the cohort at
    /// `positions` (sorted history positions, e.g. a
    /// [`Self::select_positions`] result or a materialized handle's
    /// decoded bitmap), aged against `reference`. One parallel columnar
    /// pass — see `pastas-analytics`. Does **not** touch the planner or
    /// the selection cache. The code→dimension tables are built on first
    /// use and memoized per collection (shared with snapshots), so a
    /// warm workbench pays only the fold itself.
    pub fn cohort_profile(
        &self,
        positions: &[u32],
        reference: Date,
        top_k: usize,
    ) -> pastas_analytics::CohortProfile {
        let tables = self.dimension_tables.get_or_init(|| {
            pastas_analytics::DimensionTables::build(&self.collection, &self.ontology)
        });
        pastas_analytics::cohort_profile_prepared(
            &self.collection,
            tables,
            positions,
            reference,
            top_k,
        )
    }

    /// Monthly event counts of the cohort at `positions` (gap-filled,
    /// first-of-month keyed) — the cohort-level timeline.
    pub fn cohort_monthly(&self, positions: &[u32]) -> Vec<(Date, u64)> {
        pastas_analytics::cohort_monthly(&self.collection, positions)
    }

    /// Patient ids matching the query.
    pub fn select_ids(&self, query: &HistoryQuery) -> Vec<PatientId> {
        let histories = self.collection.histories();
        self.select_positions(query)
            .into_iter()
            .map(|i| histories[i as usize].id())
            .collect()
    }

    // ------------------------------------------------------------------
    // View operations (§IV: sorting, aligning, filtering)
    // ------------------------------------------------------------------

    /// Re-sort the display order.
    pub fn sort(&mut self, key: &SortKey) {
        self.order = sort_histories(&self.collection, key);
    }

    /// Group the display order by trajectory similarity: cluster the
    /// diagnosis sequences (alignment distance, agglomerative linkage)
    /// into `k` groups and order rows cluster-by-cluster, each cluster led
    /// by its medoid (the "typical trajectory").
    ///
    /// O(n²) alignments — intended for cohort views of up to a few hundred
    /// rows; returns the per-history cluster assignment in display order.
    pub fn sort_by_similarity(&mut self, k: usize) -> Vec<usize> {
        use pastas_align::cluster::{agglomerative, distance_matrix, medoids};
        let sequences: Vec<Vec<pastas_codes::Code>> = self
            .collection
            .iter()
            .map(|h| h.diagnosis_sequence().into_iter().cloned().collect())
            .collect();
        let matrix = distance_matrix(&sequences, &pastas_align::Scoring::default());
        let assignment = agglomerative(&matrix, k);
        let meds = medoids(&matrix, &assignment);
        let mut order: Vec<u32> = (0..self.collection.len() as u32).collect();
        order.sort_by_key(|&i| {
            let i = i as usize;
            let cluster = assignment[i];
            // Medoid first within its cluster, then original order.
            (cluster, if meds.get(cluster) == Some(&i) { 0usize } else { 1 }, i)
        });
        let assignment_in_order: Vec<usize> =
            order.iter().map(|&i| assignment[i as usize]).collect();
        self.order = order;
        assignment_in_order
    }

    /// Align on the first entry whose code matches `pattern`; switches the
    /// axis to aligned mode and sorts unanchored histories last.
    pub fn align_on_code(&mut self, pattern: &str) -> Result<usize, ParseError> {
        let pred = EntryPredicate::code_regex(pattern)?;
        let alignment = align_on(&self.collection, &pred);
        let n = alignment.len();
        self.order = sort_histories(&self.collection, &SortKey::Anchor(alignment.clone()));
        self.axis = AxisMode::Aligned(alignment);
        Ok(n)
    }

    /// Back to calendar mode.
    pub fn clear_alignment(&mut self) {
        self.axis = AxisMode::Calendar;
    }

    /// Set (or clear) the event filter.
    pub fn set_filter(&mut self, filter: Option<EntryPredicate>) {
        self.filter = filter;
    }

    /// True if currently in aligned mode.
    pub fn is_aligned(&self) -> bool {
        self.axis.is_aligned()
    }

    // ------------------------------------------------------------------
    // Rendering
    // ------------------------------------------------------------------

    /// A default viewport covering the whole collection (calendar mode) or
    /// ±24 months (aligned mode), showing up to 40 rows.
    pub fn default_viewport(&self, width_px: f64, height_px: f64) -> Viewport {
        let rows = (self.collection.len() as f64).clamp(1.0, 40.0);
        match &self.axis {
            AxisMode::Aligned(_) => aligned_viewport(24, 24, rows, width_px, height_px),
            AxisMode::Calendar => {
                let stats = self.collection.stats();
                let (from, to) = match (stats.first, stats.last) {
                    (Some(a), Some(b)) if a < b => (a, b),
                    (Some(a), _) => (a, a + Duration::days(365)),
                    _ => {
                        // lint:allow(transitive-no-panic-hot-path) literal 2013-01-01 is a valid date
                        let d = pastas_time::Date::new(2013, 1, 1).expect("valid");
                        (d.at_midnight(), d.add_days(730).at_midnight())
                    }
                };
                let margin = Duration::days(((to - from).whole_days() / 30).max(7));
                Viewport::new(from + -margin, to + margin, rows, width_px, height_px)
            }
        }
    }

    /// Lay out the current view.
    pub fn layout(&self, viewport: &Viewport) -> (Scene, HitMap) {
        let opts = TimelineOptions {
            axis: self.axis.clone(),
            filter: self.filter.clone(),
            ..TimelineOptions::default()
        };
        TimelineView::new(&self.collection, opts)
            .with_order(self.order.clone())
            .layout(viewport)
    }

    /// Render the current view as SVG at the given canvas size.
    pub fn render_svg(&self, width_px: f64, height_px: f64) -> String {
        let vp = self.default_viewport(width_px, height_px);
        let (scene, _) = self.layout(&vp);
        svg::render(&scene)
    }

    /// Render the overview density mode ("Overview first"): the whole
    /// collection as a blocks × buckets density matrix — the view that
    /// stays readable when the cohort has more histories than pixel rows.
    pub fn render_overview_svg(&self, width_px: f64, height_px: f64) -> String {
        use pastas_viz::overview::{density, render_overview, OverviewOptions};
        let stats = self.collection.stats();
        let (Some(from), Some(to)) = (stats.first, stats.last) else {
            return svg::render(&Scene::new(width_px, height_px));
        };
        let m = density(
            &self.collection,
            &self.order,
            from,
            to,
            self.filter.as_ref(),
            &OverviewOptions::default(),
        );
        svg::render(&render_overview(&m, width_px, height_px))
    }

    /// Render the current view as terminal text.
    pub fn render_ascii(&self, cols: usize, rows: usize) -> String {
        let vp = self.default_viewport(cols as f64 * 8.0, rows as f64 * 16.0);
        let (scene, _) = self.layout(&vp);
        ascii::render(&scene, cols, rows)
    }

    /// Details-on-demand: the entry description under a cursor position in
    /// the default viewport.
    pub fn details_at(&self, viewport: &Viewport, x: f64, y: f64) -> Option<String> {
        let (_, hits) = self.layout(viewport);
        hits.hit_test(x, y).map(|r| r.details.clone())
    }

    /// Export one patient's interactive personal timeline (pastas.no).
    pub fn export_personal_timeline(&self, id: PatientId) -> Option<String> {
        let history = self.collection.get(id)?;
        let opts = PersonalTimelineOptions {
            title: format!("Health timeline for {id}"),
            ..PersonalTimelineOptions::default()
        };
        Some(personal_timeline(history, &opts))
    }

    /// The conditions (per the integration ontology) present anywhere in a
    /// patient's history.
    pub fn conditions_of(&self, id: PatientId) -> Vec<&'static str> {
        let Some(history) = self.collection.get(id) else {
            return Vec::new();
        };
        let mut out: Vec<&'static str> = history
            .entries()
            .iter()
            .filter_map(|e| e.code())
            .flat_map(|c| self.ontology.conditions_of(c))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_query::QueryBuilder;
    use pastas_synth::{generate_collection, SynthConfig};

    fn wb() -> Workbench {
        Workbench::from_collection(generate_collection(SynthConfig::with_patients(300), 19))
    }

    #[test]
    fn selection_shrinks_the_cohort() {
        let wb = wb();
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        let cohort = wb.select(&q);
        assert!(!cohort.collection().is_empty());
        assert!(cohort.collection().len() < 300);
        // Every selected patient really has the code.
        for h in cohort.collection() {
            assert!(h.entries().iter().any(|e| e.code().is_some_and(|c| c.value == "T90")));
        }
    }

    #[test]
    fn selection_ids_match_positions() {
        let wb = wb();
        let q = QueryBuilder::new().has_code("K86").unwrap().build();
        let ids = wb.select_ids(&q);
        let positions = wb.select_positions(&q);
        assert_eq!(ids.len(), positions.len());
    }

    #[test]
    fn repeated_selection_hits_the_cache() {
        let wb = wb();
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        let first = wb.select_positions(&q);
        assert_eq!(wb.selection_cache_len(), 1);
        let second = wb.select_positions(&q);
        assert_eq!(first, second);
        assert_eq!(wb.selection_cache_len(), 1, "same fingerprint, one entry");
        // A structurally different query is a different fingerprint.
        let q2 = QueryBuilder::new().has_code("K86").unwrap().build();
        let _ = wb.select_positions(&q2);
        assert_eq!(wb.selection_cache_len(), 2);
    }

    #[test]
    fn commuted_clauses_hit_the_same_cache_entry() {
        let wb = wb();
        let at = pastas_time::Date::new(2013, 1, 1).unwrap();
        let ab = QueryBuilder::new().has_code("T90").unwrap().age_between(at, 40, 90).build();
        let ba = QueryBuilder::new().age_between(at, 40, 90).has_code("T90").unwrap().build();
        let first = wb.select_positions(&ab);
        assert_eq!(wb.selection_cache_misses(), 1);
        let second = wb.select_positions(&ba);
        assert_eq!(first, second);
        assert_eq!(wb.selection_cache_len(), 1, "one canonical entry for both spellings");
        assert_eq!(wb.selection_cache_hits(), 1, "commuted query is a cache hit");
        // `lacks(X)` and `not has(X)` also share an entry.
        let lacks = QueryBuilder::new().lacks_code("T90").unwrap().build();
        let not_has = HistoryQuery::Not(Box::new(
            QueryBuilder::new().has_code("T90").unwrap().build(),
        ));
        assert_eq!(wb.select_positions(&lacks), wb.select_positions(&not_has));
        assert_eq!(wb.selection_cache_len(), 2);
    }

    #[test]
    fn pattern_counters_accumulate_over_selections() {
        use pastas_query::{GapBound, TemporalPattern};
        use pastas_time::Duration;
        let wb = wb();
        assert_eq!(wb.pattern_candidates(), 0);
        let pred = |p: &str| pastas_query::EntryPredicate::code_regex(p).unwrap();
        let pat = TemporalPattern::starting_with(pred("T90"))
            .then(GapBound::within(Duration::days(3650)), pred("K74|K86|K87"));
        let q = QueryBuilder::new().pattern(pat).build();
        let first = wb.select_positions(&q);
        let after_one = wb.pattern_candidates();
        assert!(after_one > 0, "prefiltered candidates reached the automaton");
        assert_eq!(wb.pattern_automaton_runs(), after_one);
        // A cache hit re-runs nothing: the counters stand still.
        assert_eq!(wb.select_positions(&q), first);
        assert_eq!(wb.pattern_candidates(), after_one);
        // Explain bypasses the memo, so it executes and counts again.
        let _ = wb.select_explain(&q);
        assert_eq!(wb.pattern_candidates(), after_one * 2);
    }

    #[test]
    fn plan_path_counters_distinguish_index_from_scan() {
        let wb = wb();
        // Compound query with a negated code clause: pure set algebra.
        let indexed =
            QueryBuilder::new().has_code("K.*").unwrap().lacks_code("T90").unwrap().build();
        let _ = wb.select_positions(&indexed);
        assert_eq!(wb.select_index_hits(), 1);
        assert_eq!(wb.select_scan_fallbacks(), 0);
        // Purely demographic query: nothing for the index to serve.
        let residual = QueryBuilder::new().sex(pastas_model::Sex::Female).build();
        let _ = wb.select_positions(&residual);
        assert_eq!(wb.select_scan_fallbacks(), 1);
        // A cache hit re-runs no plan and moves neither counter.
        let _ = wb.select_positions(&indexed);
        assert_eq!(wb.select_index_hits(), 1);
        assert_eq!(wb.select_scan_fallbacks(), 1);
    }

    #[test]
    fn select_explain_reports_the_executed_operators() {
        let wb = wb();
        let q = QueryBuilder::new().has_code("K.*").unwrap().lacks_code("T90").unwrap().build();
        let (positions, explain) = wb.select_explain(&q);
        assert_eq!(positions, wb.select_positions(&q));
        assert!(!explain.used_full_scan(), "{}", explain.render_text());
        assert_eq!(explain.root.rows, positions.len());
        // The explain run warmed the cache for the plain path.
        assert_eq!(wb.selection_cache_hits(), 1);
    }

    #[test]
    fn set_collection_invalidates_the_selection_cache() {
        let mut wb = wb();
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        let before = wb.select_positions(&q);
        assert!(!before.is_empty());
        wb.set_collection(generate_collection(SynthConfig::with_patients(50), 7));
        assert_eq!(wb.selection_cache_len(), 0, "cache cleared");
        let after = wb.select_positions(&q);
        // Fresh result against the new collection, not a stale replay.
        assert!(after.iter().all(|&i| (i as usize) < wb.collection().len()));
        assert_eq!(wb.collection().len(), 50);
        assert_eq!(wb.order().len(), 50, "order reset to the new collection");
    }

    #[test]
    fn alignment_switches_axis_and_counts_anchors() {
        let mut wb = wb();
        assert!(!wb.is_aligned());
        let n = wb.align_on_code("T90").unwrap();
        assert!(wb.is_aligned());
        assert!(n > 0 && n < 300);
        wb.clear_alignment();
        assert!(!wb.is_aligned());
    }

    #[test]
    fn bad_pattern_is_an_error_not_a_panic() {
        let mut wb = wb();
        assert!(wb.align_on_code("T90[").is_err());
    }

    #[test]
    fn svg_and_ascii_rendering() {
        let wb = wb();
        let svg = wb.render_svg(800.0, 400.0);
        assert!(svg.contains("<svg") && svg.contains("viz-Row-bar"));
        let text = wb.render_ascii(100, 30);
        assert_eq!(text.lines().count(), 30);
        assert!(text.contains('─'), "row bars render");
    }

    #[test]
    fn details_on_demand_via_the_workbench() {
        let wb = wb();
        let vp = wb.default_viewport(800.0, 400.0);
        let (_, hits) = wb.layout(&vp);
        let some = hits.iter().next().expect("at least one entry drawn");
        let cx = (some.bbox.0 + some.bbox.2) / 2.0;
        let cy = (some.bbox.1 + some.bbox.3) / 2.0;
        let details = wb.details_at(&vp, cx, cy).expect("hit");
        assert!(!details.is_empty());
    }

    #[test]
    fn personal_timeline_export() {
        let wb = wb();
        let id = wb.collection().histories()[0].id();
        let page = wb.export_personal_timeline(id).unwrap();
        assert!(page.contains("<svg"));
        assert!(page.contains(&id.to_string()));
        assert!(wb.export_personal_timeline(PatientId(999_999)).is_none());
    }

    #[test]
    fn ontology_backed_condition_summary() {
        let wb = wb();
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        let ids = wb.select_ids(&q);
        let conditions = wb.conditions_of(ids[0]);
        assert!(conditions.contains(&"Diabetes"), "{conditions:?}");
    }

    #[test]
    fn sort_changes_order() {
        let mut wb = wb();
        let before = wb.order().to_vec();
        wb.sort(&SortKey::EntryCount);
        let after = wb.order().to_vec();
        assert_eq!(before.len(), after.len());
        assert_ne!(before, after, "order should change for a varied cohort");
    }

    #[test]
    fn similarity_sort_groups_clusters_contiguously() {
        let wb0 = wb();
        let q = QueryBuilder::new().has_code("T90|R95").unwrap().build();
        let mut cohort = wb0.select(&q);
        let n = cohort.collection().len();
        assert!(n > 4, "need a few histories");
        let assignment = cohort.sort_by_similarity(3);
        assert_eq!(assignment.len(), n);
        // Cluster ids appear as contiguous runs in display order.
        let mut seen = Vec::new();
        for c in &assignment {
            if seen.last() != Some(c) {
                assert!(!seen.contains(c), "cluster {c} split across runs: {assignment:?}");
                seen.push(*c);
            }
        }
        assert!(seen.len() <= 3);
    }

    #[test]
    fn quality_report_flows_through_from_raw_sources() {
        use pastas_synth::emit::{emit, MessConfig};
        use pastas_synth::generate_population;
        let pop = generate_population(SynthConfig::with_patients(80), 3);
        let raw = emit(&pop, MessConfig::default());
        let wb = Workbench::from_raw_sources(SourceTexts {
            persons: &raw.persons,
            claims: &raw.claims,
            hospital: &raw.hospital,
            municipal: &raw.municipal,
            prescriptions: &raw.prescriptions,
        });
        assert_eq!(wb.collection().len(), 80);
        let q = wb.quality().expect("quality report");
        assert!(q.entries_loaded > 0);
    }

    #[test]
    fn apply_ingest_extends_the_collection_and_invalidates_selections() {
        use pastas_ingest::{parse_delta, DeltaFormat, IdentityRegistry};
        let mut wb = wb();
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        let before = wb.select_positions(&q);
        let fp_before = wb.collection_fingerprint();
        assert_eq!(wb.selection_cache_len(), 1);
        let mut registry = IdentityRegistry::new();
        let persons = parse_delta(
            DeltaFormat::Persons,
            "nin;birth_date;sex\nNIN-0900001;1950-01-01;F\n",
            &mut registry,
        );
        let claims = parse_delta(
            DeltaFormat::Claims,
            "claim_id;patient;date;provider;icpc;note\nK1;NIN-0900001;04.05.2013;GP;T90;\n",
            &mut registry,
        );
        let stats = wb.apply_ingest(&[persons, claims]);
        assert_eq!(stats.patients_created, 1);
        assert_eq!(stats.patients_touched, 1);
        assert_eq!(stats.entries_applied, 1);
        assert_eq!(wb.collection().len(), 301);
        assert_eq!(wb.order().len(), 301, "appended row joins the display order");
        assert_ne!(wb.collection_fingerprint(), fp_before);
        assert_eq!(wb.selection_cache_len(), 0, "selection cache replaced");
        let after = wb.select_positions(&q);
        assert_eq!(after.len(), before.len() + 1, "new T90 patient is selectable");
        assert!(!wb.index().side_is_empty(), "delta rows served by the side-index");
        // Re-sending the same delta is a no-op thanks to fingerprint dedup.
        let mut registry2 = IdentityRegistry::new();
        parse_delta(
            DeltaFormat::Persons,
            "nin;birth_date;sex\nNIN-0900001;1950-01-01;F\n",
            &mut registry2,
        );
        let replay = parse_delta(
            DeltaFormat::Claims,
            "claim_id;patient;date;provider;icpc;note\nK1;NIN-0900001;04.05.2013;GP;T90;\n",
            &mut registry2,
        );
        let stats = wb.apply_ingest(&[replay]);
        assert_eq!(stats.entries_applied, 0);
        assert_eq!(stats.duplicates_dropped, 1);
        assert_eq!(wb.collection().len(), 301);
    }

    #[test]
    fn compact_folds_the_side_index_without_changing_results() {
        use pastas_ingest::{parse_delta, DeltaFormat, IdentityRegistry};
        let mut wb = wb();
        let mut registry = IdentityRegistry::new();
        let persons = parse_delta(
            DeltaFormat::Persons,
            "nin;birth_date;sex\nNIN-0900001;1950-01-01;F\n",
            &mut registry,
        );
        let claims = parse_delta(
            DeltaFormat::Claims,
            "claim_id;patient;date;provider;icpc;note\nK1;NIN-0900001;04.05.2013;GP;T90;\n",
            &mut registry,
        );
        wb.apply_ingest(&[persons, claims]);
        let q = QueryBuilder::new().has_code("T90").unwrap().build();
        let mid = wb.select_positions(&q);
        let fp = wb.collection_fingerprint();
        assert!(wb.compact(), "side-index had debt");
        assert!(wb.index().side_is_empty());
        assert_eq!(wb.index().side_postings_total(), 0);
        assert_eq!(wb.select_positions(&q), mid, "compaction changes no result");
        assert_eq!(wb.collection_fingerprint(), fp, "same data, same fingerprint");
        assert!(!wb.compact(), "second compaction is a no-op");
    }

    /// The streaming path's convergence contract: an empty workbench fed
    /// the five sources as deltas, then compacted, answers cohort
    /// selections exactly like a batch build of the same raw text.
    #[test]
    fn streamed_ingest_converges_to_the_batch_build() {
        use pastas_ingest::{parse_delta, DeltaFormat, IdentityRegistry};
        use pastas_synth::emit::{emit, MessConfig};
        use pastas_synth::generate_population;
        let pop = generate_population(SynthConfig::with_patients(60), 5);
        let raw = emit(&pop, MessConfig::default());
        let batch_wb = Workbench::from_raw_sources(SourceTexts {
            persons: &raw.persons,
            claims: &raw.claims,
            hospital: &raw.hospital,
            municipal: &raw.municipal,
            prescriptions: &raw.prescriptions,
        });
        let mut wb = Workbench::from_collection(HistoryCollection::new());
        let mut registry = IdentityRegistry::new();
        let batches = vec![
            parse_delta(DeltaFormat::Persons, &raw.persons, &mut registry),
            parse_delta(DeltaFormat::Claims, &raw.claims, &mut registry),
            parse_delta(DeltaFormat::Hospital, &raw.hospital, &mut registry),
            parse_delta(DeltaFormat::Municipal, &raw.municipal, &mut registry),
            parse_delta(DeltaFormat::Prescriptions, &raw.prescriptions, &mut registry),
        ];
        wb.apply_ingest(&batches);
        wb.compact();
        assert_eq!(wb.collection().len(), batch_wb.collection().len());
        assert_eq!(
            wb.collection().stats().entries,
            batch_wb.collection().stats().entries,
            "same dedup + validation, same entry count"
        );
        let queries = [
            QueryBuilder::new().has_code("T90").unwrap().build(),
            QueryBuilder::new().has_code("[KT].*").unwrap().lacks_code("A0.*").unwrap().build(),
            QueryBuilder::new().lacks_code("T90").unwrap().build(),
            QueryBuilder::new().sex(pastas_model::Sex::Female).build(),
        ];
        for q in &queries {
            let mut streamed = wb.select_ids(q);
            let mut batch = batch_wb.select_ids(q);
            streamed.sort();
            batch.sort();
            assert_eq!(streamed, batch, "query {q:?}");
        }
    }

    #[test]
    fn overview_density_mode() {
        let wb = wb();
        let svg = wb.render_overview_svg(800.0, 300.0);
        assert!(svg.contains("viz-Overview-cell"), "density cells rendered");
        // Cell count bounded by the default grid, not the cohort size.
        assert!(svg.matches("<rect").count() <= 96 * 64 + 1);
        let empty = Workbench::from_collection(HistoryCollection::new());
        assert!(empty.render_overview_svg(100.0, 100.0).contains("<svg"));
    }

    #[test]
    fn empty_collection_workbench() {
        let wb = Workbench::from_collection(HistoryCollection::new());
        let svg = wb.render_svg(400.0, 200.0);
        assert!(svg.contains("<svg"));
        assert!(wb.select_ids(&HistoryQuery::All).is_empty());
    }
}
