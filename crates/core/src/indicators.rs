//! Statistical indicator analysis — §I's "second way" of extracting
//! knowledge from EHR databases, implemented so the workbench can put
//! numbers next to the pictures.
//!
//! Indicators follow the standard health-services definitions: rates are
//! per 1,000 patient-years of observation (the §III two-year window), the
//! readmission rate uses the 30-day convention, and polypharmacy is ≥ 5
//! distinct level-5 ATC substances dispensed within any 90-day window.

use pastas_model::{EpisodeKind, HistoryCollection, PayloadRef, SourceKind};
use pastas_query::{EntryPredicate, GapBound, TemporalPattern};
use pastas_time::{Date, Duration};
use std::collections::HashSet;

/// The indicator panel for one cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct IndicatorPanel {
    /// Patients in the cohort.
    pub patients: usize,
    /// Total observed patient-years (window length × patients).
    pub patient_years: f64,
    /// Primary-care contacts per patient-year.
    pub gp_contacts_per_py: f64,
    /// Specialist contacts per patient-year.
    pub specialist_contacts_per_py: f64,
    /// Inpatient admissions per 1,000 patient-years.
    pub admissions_per_1000py: f64,
    /// Mean inpatient length of stay, days.
    pub mean_los_days: f64,
    /// Fraction of patients with ≥1 admission followed by another within
    /// 30 days of discharge.
    pub readmission_rate: f64,
    /// Fraction of patients dispensed ≥5 distinct ATC substances within
    /// some 90-day window.
    pub polypharmacy_rate: f64,
    /// Fraction of patients with any municipal-care period.
    pub municipal_care_rate: f64,
}

/// Compute the panel over an observation window `[from, to)`.
pub fn indicators(collection: &HistoryCollection, from: Date, to: Date) -> IndicatorPanel {
    let patients = collection.len();
    let years = (to.days_since(from) as f64 / 365.25).max(1e-9);
    let patient_years = years * patients as f64;

    let mut gp = 0usize;
    let mut specialist = 0usize;
    let mut admissions = 0usize;
    let mut los_total_days = 0.0f64;
    let mut readmitted = 0usize;
    let mut polypharmacy = 0usize;
    let mut municipal = 0usize;

    let readmit = TemporalPattern::starting_with(EntryPredicate::And(vec![
        EntryPredicate::IsInterval,
        EntryPredicate::Source(SourceKind::Hospital),
    ]))
    .then(
        GapBound::within(Duration::days(30)),
        EntryPredicate::And(vec![
            EntryPredicate::IsInterval,
            EntryPredicate::Source(SourceKind::Hospital),
        ]),
    );

    for h in collection {
        let mut dispensed: Vec<(pastas_time::DateTime, String)> = Vec::new();
        for e in h.entries() {
            if e.start().date() < from || e.start().date() >= to {
                continue;
            }
            match (e.payload(), e.source()) {
                (PayloadRef::Diagnosis(_), SourceKind::PrimaryCare) => gp += 1,
                (PayloadRef::Diagnosis(_), SourceKind::Specialist) => specialist += 1,
                (PayloadRef::Episode(EpisodeKind::Inpatient), _) => {
                    admissions += 1;
                    los_total_days += (e.end() - e.start()).as_days_f64();
                }
                (PayloadRef::Episode(EpisodeKind::HomeCare | EpisodeKind::NursingHome), _) => {
                    municipal += 1;
                }
                (PayloadRef::Medication(c), _) => dispensed.push((e.start(), c.value.clone())),
                _ => {}
            }
        }
        if readmit.matches(h) {
            readmitted += 1;
        }
        if has_polypharmacy(&dispensed) {
            polypharmacy += 1;
        }
    }

    // Municipal rate counts patients, not periods.
    let municipal_patients = collection
        .iter()
        .filter(|h| {
            h.entries().iter().any(|e| {
                matches!(
                    e.payload(),
                    PayloadRef::Episode(EpisodeKind::HomeCare | EpisodeKind::NursingHome)
                )
            })
        })
        .count();
    let _ = municipal;

    let n = patients.max(1) as f64;
    IndicatorPanel {
        patients,
        patient_years,
        gp_contacts_per_py: gp as f64 / patient_years.max(1e-9),
        specialist_contacts_per_py: specialist as f64 / patient_years.max(1e-9),
        admissions_per_1000py: admissions as f64 / patient_years.max(1e-9) * 1_000.0,
        mean_los_days: if admissions == 0 { 0.0 } else { los_total_days / admissions as f64 },
        readmission_rate: readmitted as f64 / n,
        polypharmacy_rate: polypharmacy as f64 / n,
        municipal_care_rate: municipal_patients as f64 / n,
    }
}

/// ≥5 distinct substances within some 90-day window (sliding over the
/// dispensing sequence, which `History` keeps time-sorted).
fn has_polypharmacy(dispensed: &[(pastas_time::DateTime, String)]) -> bool {
    let window = Duration::days(90);
    for (i, (t0, _)) in dispensed.iter().enumerate() {
        let mut distinct: HashSet<&str> = HashSet::new();
        for (t, code) in &dispensed[i..] {
            if *t - *t0 > window {
                break;
            }
            distinct.insert(code);
            if distinct.len() >= 5 {
                return true;
            }
        }
    }
    false
}

impl IndicatorPanel {
    /// Render as an aligned text table (the workbench side panel).
    pub fn to_table(&self) -> String {
        format!(
            "patients                      {:>10}\n\
             patient-years                 {:>10.0}\n\
             GP contacts / patient-year    {:>10.2}\n\
             specialist contacts / py      {:>10.2}\n\
             admissions / 1000 py          {:>10.1}\n\
             mean length of stay (days)    {:>10.1}\n\
             30-day readmission rate       {:>9.1}%\n\
             polypharmacy rate (≥5 ATC)    {:>9.1}%\n\
             municipal care rate           {:>9.1}%\n",
            self.patients,
            self.patient_years,
            self.gp_contacts_per_py,
            self.specialist_contacts_per_py,
            self.admissions_per_1000py,
            self.mean_los_days,
            100.0 * self.readmission_rate,
            100.0 * self.polypharmacy_rate,
            100.0 * self.municipal_care_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_codes::Code;
    use pastas_model::{Entry, History, Patient, PatientId, Payload, Sex};
    use pastas_synth::{generate_collection, SynthConfig};

    fn window() -> (Date, Date) {
        (Date::new(2013, 1, 1).unwrap(), Date::new(2015, 1, 1).unwrap())
    }

    #[test]
    fn synthetic_cohort_has_plausible_indicators() {
        let c = generate_collection(SynthConfig::with_patients(2_000), 5);
        let (from, to) = window();
        let p = indicators(&c, from, to);
        assert_eq!(p.patients, 2_000);
        assert!((p.patient_years - 4_000.0).abs() < 20.0);
        // A chronically-ill-skewed adult population.
        assert!((1.0..8.0).contains(&p.gp_contacts_per_py), "gp {}", p.gp_contacts_per_py);
        assert!((20.0..200.0).contains(&p.admissions_per_1000py),
            "admissions {}", p.admissions_per_1000py);
        assert!((1.0..15.0).contains(&p.mean_los_days), "LOS {}", p.mean_los_days);
        assert!(p.readmission_rate < 0.2);
        assert!(p.polypharmacy_rate > 0.005, "poly {}", p.polypharmacy_rate);
        assert!(p.municipal_care_rate < 0.2);
    }

    #[test]
    fn sicker_cohorts_have_higher_indicators() {
        let c = generate_collection(SynthConfig::with_patients(4_000), 5);
        let (from, to) = window();
        let all = indicators(&c, from, to);
        let q = pastas_query::QueryBuilder::new().has_code("K77").unwrap().build();
        let hf = c.extract(|h| q.matches(h));
        let hf_panel = indicators(&hf, from, to);
        assert!(hf_panel.gp_contacts_per_py > all.gp_contacts_per_py);
        assert!(hf_panel.admissions_per_1000py > all.admissions_per_1000py * 2.0);
        assert!(hf_panel.polypharmacy_rate > all.polypharmacy_rate);
    }

    #[test]
    fn polypharmacy_window_logic() {
        let t0 = Date::new(2013, 1, 1).unwrap().at_midnight();
        let day = |d: i64| t0 + Duration::days(d);
        // Five substances in 80 days → positive.
        let tight: Vec<_> = (0..5)
            .map(|i| (day(i * 20), format!("C0{i}AA01")))
            .collect();
        assert!(has_polypharmacy(&tight));
        // Five substances spread over a year with no dense window → negative.
        let sparse: Vec<_> = (0..5)
            .map(|i| (day(i * 100), format!("C0{i}AA01")))
            .collect();
        assert!(!has_polypharmacy(&sparse));
        // Repeats of one substance never count.
        let repeats: Vec<_> = (0..10).map(|i| (day(i * 7), "C07AB02".to_owned())).collect();
        assert!(!has_polypharmacy(&repeats));
    }

    #[test]
    fn empty_cohort_panel_is_zeroes() {
        let (from, to) = window();
        let p = indicators(&HistoryCollection::new(), from, to);
        assert_eq!(p.patients, 0);
        assert_eq!(p.mean_los_days, 0.0);
        assert_eq!(p.readmission_rate, 0.0);
        let table = p.to_table();
        assert!(table.contains("patients"));
    }

    #[test]
    fn window_bounds_exclude_outside_entries() {
        let mut h = History::new(Patient {
            id: PatientId(1),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: Sex::Female,
        });
        // One contact inside, one outside the window.
        h.insert(Entry::event(
            Date::new(2013, 6, 1).unwrap().at_midnight(),
            Payload::Diagnosis(Code::icpc("A01")),
            SourceKind::PrimaryCare,
        ));
        h.insert(Entry::event(
            Date::new(2016, 6, 1).unwrap().at_midnight(),
            Payload::Diagnosis(Code::icpc("A01")),
            SourceKind::PrimaryCare,
        ));
        let c = HistoryCollection::from_histories([h]);
        let (from, to) = window();
        let p = indicators(&c, from, to);
        assert!((p.gp_contacts_per_py - 0.5).abs() < 1e-2, "one contact over two years: {}", p.gp_contacts_per_py);
    }
}
