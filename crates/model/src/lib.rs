//! The PAsTAs patient data model.
//!
//! §IV of the paper fixes the model precisely: "all content to be visualized
//! or queried is pre-loaded into a data structure … The entries themselves
//! are either **intervals**, defined by their start and end times, or
//! **events** that happen at a given time and have no duration. Intervals
//! could be notions such as *Hospital stay*. Concerning point events, these
//! are single day contacts, usually with a recorded diagnosis. … entries
//! with a clearly invalid date (prior to the birth of the patient) are
//! ignored."
//!
//! This crate is that data structure:
//!
//! * [`Entry`] — an [`Event`] (point) or an [`Interval`], each carrying a
//!   [`Payload`] and a [`SourceKind`] provenance tag;
//! * [`History`] — one patient's validated, time-ordered entry sequence;
//! * [`HistoryCollection`] — the in-memory cohort the workbench operates on,
//!   with sub-collection extraction and summary statistics;
//! * [`EventStore`] — the columnar, code-interned arena behind histories,
//!   with the zero-copy [`EntryRef`]/[`Entries`] views the hot query, viz,
//!   and align paths iterate (see the `store` module docs for the layout).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collection;
mod entry;
mod epoch;
mod history;
mod store;

pub use collection::{CollectionStats, HistoryCollection};
pub use entry::{EpisodeKind, Entry, Event, Interval, MeasurementKind, Payload, SourceKind};
pub use epoch::OpenEpoch;
pub use history::{History, Patient, Sex, ValidationReport};
pub use store::{
    CodeId, CodeInterner, CollectionBuilder, Entries, EntriesIter, EntryRef, EntryView,
    EventStore, MemoryFootprint, PayloadRef, ShardedStore,
};

/// A patient identifier, unique within a collection.
///
/// The paper shows "patient ID numbers (taken from the database) … along the
/// vertical axis"; this is that number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatientId(pub u64);

impl std::fmt::Display for PatientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{:07}", self.0)
    }
}

#[cfg(test)]
mod proptests;
