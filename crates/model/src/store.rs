//! The columnar, interned event store — the arena behind [`History`].
//!
//! The paper's workloads (selecting 13,000 of 168,000 patients, keeping
//! every §IV interaction under the 0.1 s budget) are scans over entry
//! attributes: time, code, source. A `Vec<Entry>` per patient puts each
//! attribute behind an enum discriminant and each code behind its own
//! heap `String`; this module stores one collection's entries as
//! struct-of-arrays instead:
//!
//! * [`CodeInterner`] — every distinct [`Code`] appears once; entries
//!   refer to it by [`CodeId`], so equality is an integer compare and
//!   prefix tests are range walks over the sorted symbol table;
//! * [`EventStore`] — parallel columns `starts`/`ends`/`sources`/`tags`
//!   plus one `u32` of payload auxiliary data per entry (a `CodeId`, an
//!   episode discriminant, or a side-table index for measurements and
//!   notes). Point events store `end == start`;
//! * [`EntryRef`] — a zero-copy view (`&EventStore` + row index) that the
//!   hot query/viz/align paths iterate without materializing [`Entry`];
//! * [`Entries`] — one history's contiguous row span, iterable like the
//!   old `&[Entry]` slice;
//! * [`CollectionBuilder`] — builds one shared arena for a whole
//!   collection (the `ingest::aggregate` and `synth` path), so cohort
//!   extraction shares a single allocation.
//!
//! [`Entry`] stays as the construction/export/materialization type; the
//! store ⇄ `Vec<Entry>` round trip is lossless (property-tested in
//! `proptests.rs`).

use crate::entry::{Entry, EpisodeKind, MeasurementKind, Payload, SourceKind};
use crate::history::{History, Patient, ValidationReport};
use crate::HistoryCollection;
use pastas_codes::Code;
use pastas_time::DateTime;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Code interning
// ---------------------------------------------------------------------------

/// A handle to an interned [`Code`]: its append index in the interner.
/// Stable across later interning (the sorted view is a separate
/// permutation), so stored `aux` columns never need rewriting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CodeId(pub u32);

/// A per-collection symbol table of distinct codes.
///
/// Codes are kept in append (id) order plus a permutation sorted by
/// `(value, system)`, so exact lookup is a binary search and all codes
/// sharing a value prefix form one contiguous run of the sorted view —
/// the property the query layer's prefix probes exploit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodeInterner {
    codes: Vec<Code>,
    /// Ids sorted by `(value, system)`.
    sorted: Vec<u32>,
}

fn code_key(c: &Code) -> (&str, pastas_codes::CodeSystem) {
    (c.value.as_str(), c.system)
}

impl CodeInterner {
    /// An empty interner.
    pub fn new() -> CodeInterner {
        CodeInterner::default()
    }

    /// Number of distinct codes.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if no codes are interned.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code behind an id.
    pub fn resolve(&self, id: CodeId) -> &Code {
        &self.codes[id.0 as usize]
    }

    /// The id of a code, if interned.
    pub fn lookup(&self, code: &Code) -> Option<CodeId> {
        self.sorted
            .binary_search_by(|&i| code_key(&self.codes[i as usize]).cmp(&code_key(code)))
            .ok()
            .map(|pos| CodeId(self.sorted[pos]))
    }

    /// Intern a code, returning its stable id.
    pub fn intern(&mut self, code: &Code) -> CodeId {
        match self
            .sorted
            .binary_search_by(|&i| code_key(&self.codes[i as usize]).cmp(&code_key(code)))
        {
            Ok(pos) => CodeId(self.sorted[pos]),
            Err(pos) => {
                let id = u32::try_from(self.codes.len())
                    .expect("code interner holds < 2^32 distinct codes");
                self.codes.push(code.clone());
                self.sorted.insert(pos, id);
                CodeId(id)
            }
        }
    }

    /// Iterate codes in id order (index `i` is `CodeId(i)`).
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Code> {
        self.codes.iter()
    }

    /// Approximate heap bytes held by the symbol table.
    pub fn heap_bytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<Code>()
            + self.codes.iter().map(|c| c.value.len()).sum::<usize>()
            + self.sorted.len() * std::mem::size_of::<u32>()
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Panics unless the sorted view is an exact permutation of the id
    /// space, strictly increasing by `(value, system)` — i.e. sorted
    /// *and* deduplicated, the property every binary-search lookup and
    /// prefix probe relies on.
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        assert_eq!(
            self.sorted.len(),
            self.codes.len(),
            "interner: sorted view and id space differ in length"
        );
        let mut seen = vec![false; self.codes.len()];
        for &id in &self.sorted {
            let slot = seen
                .get_mut(id as usize)
                .unwrap_or_else(|| panic!("interner: sorted view holds stray id {id}"));
            assert!(!*slot, "interner: id {id} appears twice in the sorted view");
            *slot = true;
        }
        for w in self.sorted.windows(2) {
            let (a, b) = (&self.codes[w[0] as usize], &self.codes[w[1] as usize]);
            assert!(
                code_key(a) < code_key(b),
                "interner: sorted view out of order or duplicated at {a:?} / {b:?}"
            );
        }
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}
}

// ---------------------------------------------------------------------------
// Payload tags and codecs
// ---------------------------------------------------------------------------

const TAG_DIAGNOSIS: u8 = 0;
const TAG_MEDICATION: u8 = 1;
const TAG_MEASUREMENT: u8 = 2;
const TAG_EPISODE: u8 = 3;
const TAG_NOTE: u8 = 4;
/// High bit of the tag column: the entry is an interval.
const FLAG_INTERVAL: u8 = 0x80;
const TAG_MASK: u8 = 0x7f;

fn episode_to_u32(k: EpisodeKind) -> u32 {
    match k {
        EpisodeKind::Inpatient => 0,
        EpisodeKind::Outpatient => 1,
        EpisodeKind::DayTreatment => 2,
        EpisodeKind::HomeCare => 3,
        EpisodeKind::NursingHome => 4,
        EpisodeKind::Rehabilitation => 5,
        EpisodeKind::MedicationExposure => 6,
    }
}

fn episode_from_u32(v: u32) -> EpisodeKind {
    match v {
        0 => EpisodeKind::Inpatient,
        1 => EpisodeKind::Outpatient,
        2 => EpisodeKind::DayTreatment,
        3 => EpisodeKind::HomeCare,
        4 => EpisodeKind::NursingHome,
        5 => EpisodeKind::Rehabilitation,
        _ => EpisodeKind::MedicationExposure,
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// The struct-of-arrays entry arena. One store backs one or many
/// histories; each [`History`] views a contiguous row span.
#[derive(Debug, Clone, Default)]
pub struct EventStore {
    pub(crate) interner: Arc<CodeInterner>,
    pub(crate) starts: Vec<DateTime>,
    /// `end == start` for point events.
    pub(crate) ends: Vec<DateTime>,
    pub(crate) sources: Vec<SourceKind>,
    /// Payload kind (low bits) | [`FLAG_INTERVAL`].
    pub(crate) tags: Vec<u8>,
    /// Per-kind auxiliary word: `CodeId`, episode discriminant, or
    /// side-table index.
    pub(crate) aux: Vec<u32>,
    pub(crate) measurements: Vec<(MeasurementKind, f64)>,
    pub(crate) notes: Vec<String>,
}

impl EventStore {
    /// An empty store with its own interner.
    pub fn new() -> EventStore {
        EventStore::default()
    }

    /// An empty store sharing an existing interner (ids stay compatible).
    pub fn with_interner(interner: Arc<CodeInterner>) -> EventStore {
        EventStore { interner, ..EventStore::default() }
    }

    /// Build a store from entries, preserving their order (lossless —
    /// see [`EntryRef::to_entry`] for the way back).
    pub fn from_entries<'a, I: IntoIterator<Item = &'a Entry>>(entries: I) -> EventStore {
        let mut store = EventStore::new();
        for e in entries {
            store.push(e);
        }
        store
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Number of entries as the `u32` row-id type used by spans and the
    /// query index. The arena addresses rows with `u32` by design; a
    /// store that outgrows that is a logic error, so overflow panics
    /// loudly instead of wrapping.
    pub fn len_u32(&self) -> u32 {
        // lint:allow(transitive-no-panic-hot-path) deliberate loud overflow guard, per the doc comment above
        u32::try_from(self.starts.len()).expect("event arena holds < 2^32 rows")
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Panics unless every parallel column has the same length, every
    /// interval ends at or after it starts, every tag is a known payload
    /// kind, and every `aux` word lands inside the structure it indexes
    /// (interner, measurement side table, note side table, or episode
    /// discriminant space). Also validates the shared interner.
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        let n = self.starts.len();
        assert_eq!(self.ends.len(), n, "store: ends column length mismatch");
        assert_eq!(self.sources.len(), n, "store: sources column length mismatch");
        assert_eq!(self.tags.len(), n, "store: tags column length mismatch");
        assert_eq!(self.aux.len(), n, "store: aux column length mismatch");
        self.interner.debug_validate();
        for i in 0..n {
            assert!(
                self.starts[i] <= self.ends[i],
                "store: row {i} ends before it starts"
            );
            let tag = self.tags[i] & TAG_MASK;
            let aux = self.aux[i] as usize;
            match tag {
                TAG_DIAGNOSIS | TAG_MEDICATION => assert!(
                    aux < self.interner.len(),
                    "store: row {i} code id {aux} outside interner (len {})",
                    self.interner.len()
                ),
                TAG_MEASUREMENT => assert!(
                    aux < self.measurements.len(),
                    "store: row {i} measurement index {aux} outside side table"
                ),
                TAG_NOTE => assert!(
                    aux < self.notes.len(),
                    "store: row {i} note index {aux} outside side table"
                ),
                TAG_EPISODE => assert!(
                    self.aux[i] <= 6,
                    "store: row {i} episode discriminant {aux} unknown"
                ),
                other => panic!("store: row {i} has unknown payload tag {other}"),
            }
        }
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}

    /// True if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The shared symbol table.
    pub fn interner(&self) -> &CodeInterner {
        &self.interner
    }

    /// The shared symbol-table handle (for stores that must keep ids
    /// compatible, e.g. a history detaching on mutation).
    pub fn interner_arc(&self) -> &Arc<CodeInterner> {
        &self.interner
    }

    fn encode(&mut self, payload: &Payload) -> (u8, u32) {
        match payload {
            Payload::Diagnosis(c) => {
                (TAG_DIAGNOSIS, Arc::make_mut(&mut self.interner).intern(c).0)
            }
            Payload::Medication(c) => {
                (TAG_MEDICATION, Arc::make_mut(&mut self.interner).intern(c).0)
            }
            Payload::Measurement { kind, value } => {
                self.measurements.push((*kind, *value));
                let idx = u32::try_from(self.measurements.len() - 1)
                    .expect("measurement side table holds < 2^32 rows");
                (TAG_MEASUREMENT, idx)
            }
            Payload::Episode(k) => (TAG_EPISODE, episode_to_u32(*k)),
            Payload::Note(text) => {
                self.notes.push(text.clone());
                let idx = u32::try_from(self.notes.len() - 1)
                    .expect("note side table holds < 2^32 rows");
                (TAG_NOTE, idx)
            }
        }
    }

    /// Append one entry.
    pub fn push(&mut self, entry: &Entry) {
        let (tag, aux) = self.encode(entry.payload());
        self.starts.push(entry.start());
        self.ends.push(entry.end());
        self.sources.push(entry.source());
        self.tags.push(tag | if entry.is_interval() { FLAG_INTERVAL } else { 0 });
        self.aux.push(aux);
    }

    /// Splice one entry in at row `at` (used by the in-place insert fast
    /// path; side tables are append-only so other rows stay valid).
    pub(crate) fn insert_at(&mut self, at: usize, entry: &Entry) {
        let (tag, aux) = self.encode(entry.payload());
        self.starts.insert(at, entry.start());
        self.ends.insert(at, entry.end());
        self.sources.insert(at, entry.source());
        self.tags.insert(at, tag | if entry.is_interval() { FLAG_INTERVAL } else { 0 });
        self.aux.insert(at, aux);
    }

    /// A zero-copy view of row `i`.
    pub fn get(&self, i: u32) -> EntryRef<'_> {
        assert!((i as usize) < self.len(), "row {i} out of bounds");
        EntryRef { store: self, idx: i }
    }

    /// The payload of row `i`, borrowed.
    pub(crate) fn payload_ref(&self, i: u32) -> PayloadRef<'_> {
        let i = i as usize;
        let aux = self.aux[i];
        match self.tags[i] & TAG_MASK {
            TAG_DIAGNOSIS => PayloadRef::Diagnosis(self.interner.resolve(CodeId(aux))),
            TAG_MEDICATION => PayloadRef::Medication(self.interner.resolve(CodeId(aux))),
            TAG_MEASUREMENT => {
                let (kind, value) = self.measurements[aux as usize];
                PayloadRef::Measurement { kind, value }
            }
            TAG_EPISODE => PayloadRef::Episode(episode_from_u32(aux)),
            _ => PayloadRef::Note(&self.notes[aux as usize]),
        }
    }

    /// Approximate heap bytes held by the store (columns + side tables +
    /// symbol table) — the numerator of the E5 bytes-per-entry report.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.starts.len() * size_of::<DateTime>()
            + self.ends.len() * size_of::<DateTime>()
            + self.sources.len() * size_of::<SourceKind>()
            + self.tags.len()
            + self.aux.len() * size_of::<u32>()
            + self.measurements.len() * size_of::<(MeasurementKind, f64)>()
            + self.notes.iter().map(|n| size_of::<String>() + n.len()).sum::<usize>()
            + self.interner.heap_bytes()
    }

    /// Rows `[lo, hi)` whose `(start, end)` key is `<= key` — the stable
    /// insertion point used by [`History::insert`].
    pub(crate) fn partition_point_le(
        &self,
        lo: u32,
        hi: u32,
        key: (DateTime, DateTime),
    ) -> u32 {
        let s = &self.starts[lo as usize..hi as usize];
        let e = &self.ends[lo as usize..hi as usize];
        let mut n = 0;
        // partition_point over the span: entries with key <= the probe.
        let mut size = s.len();
        let mut base = 0usize;
        while size > 0 {
            let half = size / 2;
            let mid = base + half;
            if (s[mid], e[mid]) <= key {
                base = mid + 1;
                size -= half + 1;
            } else {
                size = half;
            }
            n = base;
        }
        // lint:allow(no-silent-truncation) n <= hi - lo, which is u32
        lo + n as u32
    }
}

// ---------------------------------------------------------------------------
// Zero-copy views
// ---------------------------------------------------------------------------

/// A borrowed view of an entry's payload — what [`EntryRef::payload`]
/// yields instead of materializing a [`Payload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayloadRef<'a> {
    /// A recorded diagnosis.
    Diagnosis(&'a Code),
    /// A dispensed or administered medication.
    Medication(&'a Code),
    /// A clinical measurement.
    Measurement {
        /// What was measured.
        kind: MeasurementKind,
        /// The value, in [`MeasurementKind::unit`] units.
        value: f64,
    },
    /// A care episode.
    Episode(EpisodeKind),
    /// Free text extracted from the record.
    Note(&'a str),
}

impl<'a> PayloadRef<'a> {
    /// The clinical code, if this payload carries one.
    pub fn code(self) -> Option<&'a Code> {
        match self {
            PayloadRef::Diagnosis(c) | PayloadRef::Medication(c) => Some(c),
            _ => None,
        }
    }

    /// Materialize an owned [`Payload`].
    pub fn to_payload(self) -> Payload {
        match self {
            PayloadRef::Diagnosis(c) => Payload::Diagnosis(c.clone()),
            PayloadRef::Medication(c) => Payload::Medication(c.clone()),
            PayloadRef::Measurement { kind, value } => Payload::Measurement { kind, value },
            PayloadRef::Episode(k) => Payload::Episode(k),
            PayloadRef::Note(t) => Payload::Note(t.to_owned()),
        }
    }

    /// One-line rendering for details-on-demand panels (identical to
    /// [`Payload::describe`]).
    pub fn describe(self) -> String {
        match self {
            PayloadRef::Diagnosis(c) => match c.display_name() {
                Some(name) => format!("diagnosis {} ({name})", c.value),
                None => format!("diagnosis {}", c.value),
            },
            PayloadRef::Medication(c) => match c.display_name() {
                Some(name) => format!("medication {} ({name})", c.value),
                None => format!("medication {}", c.value),
            },
            PayloadRef::Measurement { kind, value } => {
                format!("{} {value:.1} {}", kind.label(), kind.unit())
            }
            PayloadRef::Episode(k) => k.label().to_owned(),
            PayloadRef::Note(text) => {
                let mut t: String = text.chars().take(60).collect();
                if t.len() < text.len() {
                    t.push('…');
                }
                format!("note: {t}")
            }
        }
    }
}

impl<'a> From<&'a Payload> for PayloadRef<'a> {
    fn from(p: &'a Payload) -> PayloadRef<'a> {
        match p {
            Payload::Diagnosis(c) => PayloadRef::Diagnosis(c),
            Payload::Medication(c) => PayloadRef::Medication(c),
            Payload::Measurement { kind, value } => {
                PayloadRef::Measurement { kind: *kind, value: *value }
            }
            Payload::Episode(k) => PayloadRef::Episode(*k),
            Payload::Note(t) => PayloadRef::Note(t),
        }
    }
}

impl PartialEq<Payload> for PayloadRef<'_> {
    fn eq(&self, other: &Payload) -> bool {
        *self == PayloadRef::from(other)
    }
}

/// A zero-copy view of one entry: a store reference plus a row index.
/// `Copy`, 16 bytes — the type the hot query/viz/align loops traffic in.
#[derive(Clone, Copy)]
pub struct EntryRef<'a> {
    store: &'a EventStore,
    idx: u32,
}

impl<'a> EntryRef<'a> {
    /// The anchor time: event time, or interval start.
    pub fn start(&self) -> DateTime {
        self.store.starts[self.idx as usize]
    }

    /// The end time: event time, or interval end.
    pub fn end(&self) -> DateTime {
        self.store.ends[self.idx as usize]
    }

    /// The provenance tag.
    pub fn source(&self) -> SourceKind {
        self.store.sources[self.idx as usize]
    }

    /// True for intervals.
    pub fn is_interval(&self) -> bool {
        self.store.tags[self.idx as usize] & FLAG_INTERVAL != 0
    }

    /// True for point events.
    pub fn is_event(&self) -> bool {
        !self.is_interval()
    }

    /// The payload, borrowed from the store.
    pub fn payload(&self) -> PayloadRef<'a> {
        self.store.payload_ref(self.idx)
    }

    /// The clinical code, if any, borrowed from the interner.
    pub fn code(&self) -> Option<&'a Code> {
        self.payload().code()
    }

    /// The interned code id, if this entry carries a code. Integer
    /// identity within this entry's store — what the query layer posts.
    pub fn code_id(&self) -> Option<CodeId> {
        match self.store.tags[self.idx as usize] & TAG_MASK {
            TAG_DIAGNOSIS | TAG_MEDICATION => {
                Some(CodeId(self.store.aux[self.idx as usize]))
            }
            _ => None,
        }
    }

    /// True if this entry overlaps the closed time window `[from, to]`.
    pub fn overlaps(&self, from: DateTime, to: DateTime) -> bool {
        self.start() <= to && self.end() >= from
    }

    /// One-line rendering for details-on-demand panels (identical to
    /// [`Entry::describe`]).
    pub fn describe(&self) -> String {
        if self.is_interval() {
            format!(
                "{} → {} ({}) — {} [{}]",
                self.start(),
                self.end(),
                self.end() - self.start(),
                self.payload().describe(),
                self.source()
            )
        } else {
            format!("{} — {} [{}]", self.start(), self.payload().describe(), self.source())
        }
    }

    /// Materialize an owned [`Entry`] (export and details-on-demand; the
    /// hot paths never call this).
    pub fn to_entry(&self) -> Entry {
        if self.is_interval() {
            Entry::interval(self.start(), self.end(), self.payload().to_payload(), self.source())
        } else {
            Entry::event(self.start(), self.payload().to_payload(), self.source())
        }
    }
}

impl std::fmt::Debug for EntryRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntryRef")
            .field("start", &self.start())
            .field("end", &self.end())
            .field("payload", &self.payload())
            .field("source", &self.source())
            .field("interval", &self.is_interval())
            .finish()
    }
}

impl PartialEq for EntryRef<'_> {
    fn eq(&self, other: &EntryRef<'_>) -> bool {
        self.start() == other.start()
            && self.end() == other.end()
            && self.is_interval() == other.is_interval()
            && self.source() == other.source()
            && self.payload() == other.payload()
    }
}

impl PartialEq<Entry> for EntryRef<'_> {
    fn eq(&self, other: &Entry) -> bool {
        self.start() == other.start()
            && self.end() == other.end()
            && self.is_interval() == other.is_interval()
            && self.source() == other.source()
            && self.payload() == PayloadRef::from(other.payload())
    }
}

/// The uniform read interface over [`EntryRef`] and `&Entry` — generic
/// predicates and classifiers take `E: EntryView` by value (both
/// implementors are `Copy`), so existing `&Entry` call sites keep
/// compiling while the hot paths pass [`EntryRef`] without allocating.
pub trait EntryView: Copy {
    /// The anchor time: event time, or interval start.
    fn start(self) -> DateTime;
    /// The end time: event time, or interval end.
    fn end(self) -> DateTime;
    /// The provenance tag.
    fn source(self) -> SourceKind;
    /// True for intervals.
    fn is_interval(self) -> bool;
    /// The payload, borrowed.
    fn payload_ref(&self) -> PayloadRef<'_>;

    /// True for point events.
    fn is_event(self) -> bool {
        !self.is_interval()
    }

    /// The clinical code, if any.
    fn code_ref(&self) -> Option<&Code> {
        self.payload_ref().code()
    }

    /// True if this entry overlaps the closed time window `[from, to]`.
    fn overlaps_window(self, from: DateTime, to: DateTime) -> bool {
        self.start() <= to && self.end() >= from
    }
}

impl EntryView for &Entry {
    fn start(self) -> DateTime {
        Entry::start(self)
    }
    fn end(self) -> DateTime {
        Entry::end(self)
    }
    fn source(self) -> SourceKind {
        Entry::source(self)
    }
    fn is_interval(self) -> bool {
        Entry::is_interval(self)
    }
    fn payload_ref(&self) -> PayloadRef<'_> {
        PayloadRef::from(Entry::payload(self))
    }
}

impl EntryView for EntryRef<'_> {
    fn start(self) -> DateTime {
        EntryRef::start(&self)
    }
    fn end(self) -> DateTime {
        EntryRef::end(&self)
    }
    fn source(self) -> SourceKind {
        EntryRef::source(&self)
    }
    fn is_interval(self) -> bool {
        EntryRef::is_interval(&self)
    }
    fn payload_ref(&self) -> PayloadRef<'_> {
        EntryRef::payload(self)
    }
}

/// One history's contiguous row span — the replacement for the old
/// `&[Entry]` slice. `Copy`; iterate it directly (`for e in h.entries()`)
/// or via [`Entries::iter`]; index with [`Entries::get`].
#[derive(Clone, Copy, Debug)]
pub struct Entries<'a> {
    store: &'a EventStore,
    lo: u32,
    hi: u32,
}

impl<'a> Entries<'a> {
    pub(crate) fn new(store: &'a EventStore, lo: u32, hi: u32) -> Entries<'a> {
        Entries { store, lo, hi }
    }

    /// Number of entries in the span.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// True if the span is empty.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// The `i`-th entry of the span (panics when out of bounds, like
    /// slice indexing did).
    pub fn get(&self, i: usize) -> EntryRef<'a> {
        assert!(i < self.len(), "entry index {i} out of bounds (len {})", self.len());
        // lint:allow(no-silent-truncation) asserted i < len, and len fits u32
        EntryRef { store: self.store, idx: self.lo + i as u32 }
    }

    /// The first entry, if any.
    pub fn first(&self) -> Option<EntryRef<'a>> {
        (!self.is_empty()).then(|| self.get(0))
    }

    /// Iterate the span.
    pub fn iter(&self) -> EntriesIter<'a> {
        EntriesIter { store: self.store, next: self.lo, hi: self.hi }
    }

    /// Fused columnar scan: `(source, interned code id, end time)` per
    /// entry, walking each column slice sequentially instead of
    /// re-indexing the store per field the way [`EntryRef`] accessors
    /// do. This is the hot-loop shape of the analytics dimension pass,
    /// which folds provenance, code-derived buckets and the history
    /// span in a single traversal.
    pub fn scan(&self) -> impl Iterator<Item = (SourceKind, Option<CodeId>, DateTime)> + 'a {
        let (lo, hi) = (self.lo as usize, self.hi as usize);
        let sources = &self.store.sources[lo..hi];
        let tags = &self.store.tags[lo..hi];
        let aux = &self.store.aux[lo..hi];
        let ends = &self.store.ends[lo..hi];
        sources.iter().zip(tags).zip(aux).zip(ends).map(|(((&source, &tag), &aux), &end)| {
            let code = match tag & TAG_MASK {
                TAG_DIAGNOSIS | TAG_MEDICATION => Some(CodeId(aux)),
                _ => None,
            };
            (source, code, end)
        })
    }

    /// Materialize the span as owned entries (export/test paths).
    pub fn to_vec(&self) -> Vec<Entry> {
        self.iter().map(|e| e.to_entry()).collect()
    }
}

/// Iterator over a history's entries, yielding [`EntryRef`]s.
#[derive(Clone, Debug)]
pub struct EntriesIter<'a> {
    store: &'a EventStore,
    next: u32,
    hi: u32,
}

impl<'a> Iterator for EntriesIter<'a> {
    type Item = EntryRef<'a>;
    fn next(&mut self) -> Option<EntryRef<'a>> {
        if self.next >= self.hi {
            return None;
        }
        let r = EntryRef { store: self.store, idx: self.next };
        self.next += 1;
        Some(r)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.hi - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EntriesIter<'_> {}
impl<'a> DoubleEndedIterator for EntriesIter<'a> {
    fn next_back(&mut self) -> Option<EntryRef<'a>> {
        if self.next >= self.hi {
            return None;
        }
        self.hi -= 1;
        Some(EntryRef { store: self.store, idx: self.hi })
    }
}

impl<'a> IntoIterator for Entries<'a> {
    type Item = EntryRef<'a>;
    type IntoIter = EntriesIter<'a>;
    fn into_iter(self) -> EntriesIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &Entries<'a> {
    type Item = EntryRef<'a>;
    type IntoIter = EntriesIter<'a>;
    fn into_iter(self) -> EntriesIter<'a> {
        self.iter()
    }
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

/// Byte-level memory accounting for a collection: the columnar arena
/// footprint next to the array-of-structs estimate it replaced.
///
/// The AoS figure is what a `Vec<Entry>` representation costs: one full
/// [`Entry`] per row (`size_of::<Entry>()`) plus the per-entry heap its
/// payload owns (code value bytes, note bytes). The columnar figure is
/// [`EventStore::heap_bytes`] summed over the collection's *distinct*
/// arenas — shared arenas are counted once, which is the whole point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Total entries across the collection.
    pub entries: usize,
    /// Distinct [`EventStore`] arenas backing the collection.
    pub stores: usize,
    /// Bytes held by the columnar arenas (columns + interner).
    pub columnar_bytes: usize,
    /// Estimated bytes for the same data as `Vec<Entry>` per patient.
    pub aos_bytes: usize,
    /// Total postings in the code index, when attached via
    /// [`MemoryFootprint::with_postings`] (the model layer cannot see the
    /// query index; the bench/serve layers fill this in).
    pub postings: usize,
    /// Compressed posting-bitmap bytes, when attached.
    pub postings_compressed_bytes: usize,
    /// What the same postings cost as `Vec<u32>`, when attached.
    pub postings_uncompressed_bytes_est: usize,
}

impl MemoryFootprint {
    /// Measure a collection.
    pub fn measure(collection: &crate::HistoryCollection) -> MemoryFootprint {
        let mut seen: Vec<*const EventStore> = Vec::new();
        let mut f = MemoryFootprint::default();
        for h in collection.iter() {
            let ptr = Arc::as_ptr(h.store());
            if !seen.contains(&ptr) {
                seen.push(ptr);
                f.columnar_bytes += h.store().heap_bytes();
            }
            f.entries += h.len();
            f.aos_bytes += h.len() * std::mem::size_of::<Entry>();
            for e in h.entries() {
                f.aos_bytes += match e.payload() {
                    PayloadRef::Diagnosis(c) | PayloadRef::Medication(c) => c.value.len(),
                    PayloadRef::Note(t) => t.len(),
                    PayloadRef::Measurement { .. } | PayloadRef::Episode(_) => 0,
                };
            }
        }
        f.stores = seen.len();
        f
    }

    /// Columnar bytes per entry.
    pub fn columnar_per_entry(&self) -> f64 {
        self.columnar_bytes as f64 / (self.entries as f64).max(1.0)
    }

    /// Array-of-structs bytes per entry.
    pub fn aos_per_entry(&self) -> f64 {
        self.aos_bytes as f64 / (self.entries as f64).max(1.0)
    }

    /// How many times smaller the columnar layout is (AoS ÷ columnar).
    pub fn reduction(&self) -> f64 {
        self.aos_bytes as f64 / (self.columnar_bytes as f64).max(1.0)
    }

    /// Attach code-index posting accounting (measured by the query layer).
    pub fn with_postings(
        mut self,
        postings: usize,
        compressed_bytes: usize,
        uncompressed_bytes_est: usize,
    ) -> MemoryFootprint {
        self.postings = postings;
        self.postings_compressed_bytes = compressed_bytes;
        self.postings_uncompressed_bytes_est = uncompressed_bytes_est;
        self
    }

    /// Compressed bytes per posting (0 when no postings attached).
    pub fn bytes_per_posting(&self) -> f64 {
        self.postings_compressed_bytes as f64 / (self.postings as f64).max(1.0)
    }

    /// How many times smaller the compressed postings are than `Vec<u32>`.
    pub fn postings_reduction(&self) -> f64 {
        self.postings_uncompressed_bytes_est as f64
            / (self.postings_compressed_bytes as f64).max(1.0)
    }

    /// One human-readable report line (two when postings are attached).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "memory: {:.1} B/entry columnar vs {:.1} B/entry AoS ({:.2}x smaller; \
             {} entries in {} arena{})",
            self.columnar_per_entry(),
            self.aos_per_entry(),
            self.reduction(),
            self.entries,
            self.stores,
            if self.stores == 1 { "" } else { "s" }
        );
        if self.postings > 0 {
            s.push_str(&format!(
                "\npostings: {:.2} B/posting compressed vs 4.00 B/posting Vec<u32> \
                 ({:.2}x smaller; {} postings)",
                self.bytes_per_posting(),
                self.postings_reduction(),
                self.postings
            ));
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Sharded store facade
// ---------------------------------------------------------------------------

/// The patient-range-sharded arena facade: the distinct [`EventStore`]
/// arenas backing a collection, in first-appearance (patient) order.
///
/// A monolithic collection has one shard; a [`CollectionBuilder`] with
/// [`CollectionBuilder::with_shard_patients`] produces one arena per
/// patient range, each with its own (small) [`CodeInterner`]. The query
/// layer merges those interners through its global symbol table, so
/// downstream code sees one vocabulary regardless of the split; this
/// facade exists for accounting (per-shard arena bytes in E5 and the
/// serve layer's `/metrics`) and for layers that want to walk arenas
/// instead of histories.
#[derive(Debug, Clone, Default)]
pub struct ShardedStore {
    shards: Vec<Arc<EventStore>>,
}

impl ShardedStore {
    /// The distinct arenas of a collection, in the order their first
    /// history appears.
    pub fn from_collection(collection: &crate::HistoryCollection) -> ShardedStore {
        let mut shards: Vec<Arc<EventStore>> = Vec::new();
        for h in collection.iter() {
            if shards.iter().all(|s| !Arc::ptr_eq(s, h.store())) {
                shards.push(Arc::clone(h.store()));
            }
        }
        ShardedStore { shards }
    }

    /// Number of arenas.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The arenas, in first-appearance order.
    pub fn shards(&self) -> &[Arc<EventStore>] {
        &self.shards
    }

    /// Heap bytes per arena (columns + interner), in shard order.
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.heap_bytes()).collect()
    }

    /// Heap bytes across all arenas.
    pub fn total_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.heap_bytes()).sum()
    }

    /// Entries across all arenas.
    pub fn total_entries(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Collection building
// ---------------------------------------------------------------------------

/// Builds the shared [`EventStore`] arena(s) for a whole collection.
///
/// `ingest::aggregate` and `synth::generate_collection` funnel through
/// here: per-patient entries are birth-validated and stably sorted by
/// `(start, end)` (exactly the order repeated [`History::insert`] calls
/// produce), then appended to an arena that every resulting [`History`]
/// views by span — cohort extraction and sorting never copy entry data.
///
/// By default the whole collection shares one arena. At the 1M–10M
/// patient scale a single arena (and its single interner) becomes the
/// memory and parallelism ceiling, so
/// [`CollectionBuilder::with_shard_patients`] seals the current arena
/// every *n* patients and starts a fresh one with its own interner —
/// the [`ShardedStore`] layout the sharded query index rides on.
#[derive(Debug, Default)]
pub struct CollectionBuilder {
    store: EventStore,
    /// Arenas already sealed by the patient-range shard cut.
    sealed: Vec<Arc<EventStore>>,
    /// `(patient, arena slot, lo, hi)` — the slot indexes `sealed` after
    /// the final seal in [`CollectionBuilder::build`].
    patients: Vec<(Patient, u32, u32, u32)>,
    /// Patients in the not-yet-sealed arena.
    in_current: u32,
    /// Seal threshold; 0 = monolithic (the default).
    shard_patients: u32,
    report: ValidationReport,
}

impl CollectionBuilder {
    /// An empty builder (monolithic: one shared arena).
    pub fn new() -> CollectionBuilder {
        CollectionBuilder::default()
    }

    /// Seal the arena every `n` patients, giving each patient range its
    /// own [`EventStore`] with its own interner. `0` restores the
    /// monolithic default. Aligning `n` with the query index's shard
    /// width (65 536) keeps one arena per index shard.
    pub fn with_shard_patients(mut self, n: usize) -> CollectionBuilder {
        self.shard_patients = u32::try_from(n).unwrap_or(u32::MAX);
        self
    }

    /// Add one patient's entries (any order; they are validated against
    /// the birth date and sorted here). Returns this patient's report.
    pub fn add_patient(&mut self, patient: Patient, entries: Vec<Entry>) -> ValidationReport {
        if self.shard_patients > 0 && self.in_current >= self.shard_patients {
            self.sealed.push(Arc::new(std::mem::take(&mut self.store)));
            self.in_current = 0;
        }
        let mut report = ValidationReport::default();
        let mut accepted: Vec<Entry> = Vec::with_capacity(entries.len());
        for e in entries {
            if e.start().date() < patient.birth_date {
                report.dropped_pre_birth += 1;
            } else {
                report.accepted += 1;
                accepted.push(e);
            }
        }
        accepted.sort_by_key(|e| (e.start(), e.end()));
        // lint:allow(no-silent-truncation) arena count stays far below u32::MAX
        let slot = self.sealed.len() as u32;
        let lo = self.store.len_u32();
        for e in &accepted {
            self.store.push(e);
        }
        let hi = self.store.len_u32();
        self.patients.push((patient, slot, lo, hi));
        self.in_current += 1;
        self.report.merge(&report);
        report
    }

    /// Finish: one [`History`] span per patient (in insertion order) over
    /// the shared arena(s), plus the merged validation report.
    pub fn build(self) -> (HistoryCollection, ValidationReport) {
        let mut arenas = self.sealed;
        arenas.push(Arc::new(self.store));
        let collection = HistoryCollection::from_histories(
            self.patients.into_iter().map(|(patient, slot, lo, hi)| {
                // lint:allow(no-panic-hot-path) every recorded slot was sealed above
                History::from_span(patient, Arc::clone(&arenas[slot as usize]), lo, hi)
            }),
        );
        (collection, self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PatientId, Sex};
    use pastas_time::Date;

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    #[test]
    fn debug_validate_accepts_a_healthy_store() {
        let store = EventStore::from_entries(&sample_entries());
        store.debug_validate();
        store.interner().debug_validate();
    }

    #[test]
    #[should_panic(expected = "aux column length mismatch")]
    fn debug_validate_catches_a_truncated_column() {
        let mut store = EventStore::from_entries(&sample_entries());
        store.aux.pop();
        store.debug_validate();
    }

    #[test]
    #[should_panic(expected = "outside interner")]
    fn debug_validate_catches_a_dangling_code_id() {
        let mut store = EventStore::from_entries(&sample_entries());
        store.aux[0] = u32::MAX; // row 0 is a diagnosis: aux is a CodeId
        store.debug_validate();
    }

    #[test]
    #[should_panic(expected = "sorted view out of order")]
    fn debug_validate_catches_a_scrambled_interner() {
        let mut store = EventStore::from_entries(&sample_entries());
        Arc::make_mut(&mut store.interner).sorted.reverse();
        store.debug_validate();
    }

    fn sample_entries() -> Vec<Entry> {
        vec![
            Entry::event(
                t(2013, 3, 1),
                Payload::Diagnosis(Code::icpc("T90")),
                SourceKind::PrimaryCare,
            ),
            Entry::event(
                t(2013, 4, 1),
                Payload::Medication(Code::atc("C07AB02")),
                SourceKind::Prescription,
            ),
            Entry::event(
                t(2013, 5, 1),
                Payload::Measurement { kind: MeasurementKind::SystolicBp, value: 151.5 },
                SourceKind::PrimaryCare,
            ),
            Entry::interval(
                t(2013, 6, 1),
                t(2013, 6, 9),
                Payload::Episode(EpisodeKind::Inpatient),
                SourceKind::Hospital,
            ),
            Entry::event(
                t(2013, 7, 1),
                Payload::Note("kontroll; BT 150/90".into()),
                SourceKind::PrimaryCare,
            ),
        ]
    }

    #[test]
    fn round_trip_is_lossless_and_ordered() {
        let entries = sample_entries();
        let store = EventStore::from_entries(&entries);
        assert_eq!(store.len(), entries.len());
        for (i, e) in entries.iter().enumerate() {
            let r = store.get(i as u32);
            assert_eq!(r, *e, "row {i}");
            assert_eq!(r.to_entry(), *e, "materialized row {i}");
            assert_eq!(r.describe(), e.describe(), "description row {i}");
        }
    }

    #[test]
    fn interning_dedups_codes() {
        let mut entries = sample_entries();
        entries.extend(sample_entries());
        let store = EventStore::from_entries(&entries);
        assert_eq!(store.interner().len(), 2, "T90 and C07AB02 interned once");
        let t90 = Code::icpc("T90");
        let id = store.interner().lookup(&t90).expect("interned");
        assert_eq!(store.interner().resolve(id), &t90);
        assert_eq!(store.get(0).code_id(), Some(id));
        assert_eq!(store.get(5).code_id(), Some(id), "same id across duplicates");
        assert_eq!(store.get(2).code_id(), None, "measurements carry no code");
    }

    #[test]
    fn interner_sorted_runs_share_value_prefixes() {
        let mut interner = CodeInterner::new();
        for v in ["T90", "K74", "T89", "A01", "T90"] {
            interner.intern(&Code::icpc(v));
        }
        assert_eq!(interner.len(), 4);
        let values: Vec<&str> = interner
            .sorted
            .iter()
            .map(|&i| interner.codes[i as usize].value.as_str())
            .collect();
        let mut expect = values.clone();
        expect.sort_unstable();
        assert_eq!(values, expect, "sorted view ordered by value");
    }

    #[test]
    fn columnar_layout_is_smaller_than_aos() {
        let mut entries = Vec::new();
        for i in 0..1000u32 {
            entries.push(Entry::event(
                t(2013, 1 + (i % 12), 1 + (i % 28)),
                Payload::Diagnosis(Code::icpc(if i.is_multiple_of(2) { "T90" } else { "K74" })),
                SourceKind::PrimaryCare,
            ));
        }
        let store = EventStore::from_entries(&entries);
        let columnar = store.heap_bytes();
        let aos = entries.len() * std::mem::size_of::<Entry>()
            + entries.iter().filter_map(|e| e.code()).map(|c| c.value.len()).sum::<usize>();
        assert!(
            columnar * 2 < aos,
            "columnar {columnar} B should be well under half of AoS {aos} B"
        );
    }

    #[test]
    fn builder_shares_one_arena() {
        let mut b = CollectionBuilder::new();
        for id in 1..=3u64 {
            let patient = Patient {
                id: PatientId(id),
                birth_date: Date::new(1950, 1, 1).unwrap(),
                sex: Sex::Female,
            };
            b.add_patient(patient, sample_entries());
        }
        let (collection, report) = b.build();
        assert_eq!(report.accepted, 15);
        assert_eq!(collection.len(), 3);
        let stores: Vec<_> =
            collection.iter().map(|h| Arc::as_ptr(h.store())).collect();
        assert!(stores.windows(2).all(|w| w[0] == w[1]), "one shared arena");
        for h in &collection {
            assert_eq!(h.len(), 5);
            assert!(h.entries().iter().all(|e| e.start() >= t(2013, 3, 1)));
        }
    }

    #[test]
    fn sharded_builder_seals_one_arena_per_patient_range() {
        let mut b = CollectionBuilder::new().with_shard_patients(2);
        for id in 1..=5u64 {
            let patient = Patient {
                id: PatientId(id),
                birth_date: Date::new(1950, 1, 1).unwrap(),
                sex: Sex::Female,
            };
            b.add_patient(patient, sample_entries());
        }
        let (collection, report) = b.build();
        assert_eq!(report.accepted, 25);
        assert_eq!(collection.len(), 5);
        let sharded = collection.sharded_store();
        assert_eq!(sharded.shard_count(), 3, "5 patients / 2 per shard = 3 arenas");
        assert_eq!(sharded.total_entries(), 25);
        assert_eq!(sharded.shard_bytes().len(), 3);
        assert!(sharded.total_bytes() > 0);
        // Patients 1-2 share the first arena, 3-4 the second, 5 the third.
        let ptrs: Vec<_> = collection.iter().map(|h| Arc::as_ptr(h.store())).collect();
        assert_eq!(ptrs[0], ptrs[1]);
        assert_eq!(ptrs[2], ptrs[3]);
        assert_ne!(ptrs[0], ptrs[2]);
        assert_ne!(ptrs[2], ptrs[4]);
        // Each shard's interner is self-contained: every history decodes.
        for h in &collection {
            assert_eq!(h.len(), 5);
            h.debug_validate();
        }
        // Spans restart at each fresh arena.
        for shard in sharded.shards() {
            assert_eq!(shard.len() % 5, 0);
            shard.debug_validate();
        }
    }

    #[test]
    fn sharded_and_monolithic_builders_agree_on_contents() {
        let make = |shard: usize| {
            let mut b = CollectionBuilder::new().with_shard_patients(shard);
            for id in 1..=4u64 {
                let patient = Patient {
                    id: PatientId(id),
                    birth_date: Date::new(1950, 1, 1).unwrap(),
                    sex: Sex::Male,
                };
                b.add_patient(patient, sample_entries());
            }
            b.build().0
        };
        let mono = make(0);
        let sharded = make(3);
        assert_eq!(mono.sharded_store().shard_count(), 1);
        assert_eq!(sharded.sharded_store().shard_count(), 2);
        for (a, b) in mono.iter().zip(sharded.iter()) {
            assert_eq!(a.patient().id, b.patient().id);
            assert_eq!(a.entries().to_vec(), b.entries().to_vec());
        }
    }

    #[test]
    fn builder_validates_and_sorts() {
        let mut b = CollectionBuilder::new();
        let patient = Patient {
            id: PatientId(1),
            birth_date: Date::new(1950, 6, 15).unwrap(),
            sex: Sex::Male,
        };
        let report = b.add_patient(
            patient,
            vec![
                Entry::event(
                    t(2015, 6, 1),
                    Payload::Diagnosis(Code::icpc("K74")),
                    SourceKind::PrimaryCare,
                ),
                Entry::event(
                    t(1949, 1, 1),
                    Payload::Diagnosis(Code::icpc("A01")),
                    SourceKind::PrimaryCare,
                ),
                Entry::event(
                    t(2014, 1, 1),
                    Payload::Diagnosis(Code::icpc("T90")),
                    SourceKind::PrimaryCare,
                ),
            ],
        );
        assert_eq!(report, ValidationReport { accepted: 2, dropped_pre_birth: 1 });
        let (collection, _) = b.build();
        let h = collection.get(PatientId(1)).unwrap();
        let starts: Vec<_> = h.entries().iter().map(|e| e.start()).collect();
        assert_eq!(starts, vec![t(2014, 1, 1), t(2015, 6, 1)]);
    }
}
