//! The mutable *open epoch*: the streaming-ingest staging area.
//!
//! Batch builds go `CollectionBuilder` → sealed arenas → frozen
//! collection. A production registry also receives a continuous feed, so
//! this module adds the append path: an [`OpenEpoch`] is an unsealed tail
//! arena that accepts per-patient entry deltas ([`OpenEpoch::append`])
//! and, on demand, seals them into a [`HistoryCollection`]
//! ([`OpenEpoch::seal_into`]) — merging into existing histories (whose
//! interners grow monotonically, so existing [`crate::CodeId`]s stay
//! stable) and appending brand-new patients at the end of the display
//! order. The epoch then resets and is ready for the next round of
//! deltas.
//!
//! The epoch itself is *staging*: rows sit in arrival order and only
//! become query-visible once sealed into the collection (and the query
//! layer's side-index picks the touched rows up — see
//! `CodeIndex::with_delta` in `pastas-query`).

use crate::history::{History, Patient, ValidationReport};
use crate::store::EventStore;
use crate::{Entry, HistoryCollection, PatientId};
use std::collections::HashMap;
use std::sync::Arc;

/// The unsealed tail arena of a streaming collection: validated entry
/// deltas staged in arrival order, per patient, until sealed.
#[derive(Debug, Default)]
pub struct OpenEpoch {
    /// Staged rows, in arrival order (unsorted — sorting happens at seal).
    arena: EventStore,
    /// `(patient, lo, hi)` row spans of `arena`, contiguous and in
    /// arrival order. One patient may appear in several spans.
    spans: Vec<(Patient, u32, u32)>,
}

impl OpenEpoch {
    /// An empty epoch.
    pub fn new() -> OpenEpoch {
        OpenEpoch::default()
    }

    /// Stage one patient's entry delta. Entries predating the patient's
    /// birth are dropped here (§IV validation), exactly as the batch
    /// path's [`crate::CollectionBuilder::add_patient`] does. An empty
    /// (or fully dropped) delta still records the patient, so a
    /// demographics-only record creates an empty history at seal time.
    pub fn append(&mut self, patient: Patient, entries: Vec<Entry>) -> ValidationReport {
        let mut report = ValidationReport::default();
        let lo = self.arena.len_u32();
        for e in entries {
            if e.start().date() < patient.birth_date {
                report.dropped_pre_birth += 1;
            } else {
                report.accepted += 1;
                self.arena.push(&e);
            }
        }
        let hi = self.arena.len_u32();
        self.spans.push((patient, lo, hi));
        report
    }

    /// Number of staged entries.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of staged deltas (spans; one patient may count twice).
    pub fn pending_deltas(&self) -> usize {
        self.spans.len()
    }

    /// Seal the staged deltas into `collection` and reset the epoch.
    ///
    /// Existing patients get their history rebuilt via
    /// [`History::insert_all`] — the new entries merge into the sorted
    /// `(start, end)` order on a store sharing the old interner, so code
    /// ids stay stable and the history keeps its display position. New
    /// patients are appended at the end of the display order, in first-
    /// arrival order, all spanning one fresh shared arena (the same
    /// layout a [`crate::CollectionBuilder`] seal produces).
    ///
    /// Returns the distinct patient ids touched, in first-arrival order —
    /// the set the query layer's side-index marks dirty.
    pub fn seal_into(&mut self, collection: &mut HistoryCollection) -> Vec<PatientId> {
        if self.spans.is_empty() {
            return Vec::new();
        }
        // Group staged rows per patient, preserving first-arrival order.
        let mut order: Vec<Patient> = Vec::new();
        let mut grouped: HashMap<PatientId, Vec<Entry>> = HashMap::new();
        for &(patient, lo, hi) in &self.spans {
            let entries = grouped.entry(patient.id).or_insert_with(|| {
                order.push(patient);
                Vec::new()
            });
            for row in lo..hi {
                entries.push(self.arena.get(row).to_entry());
            }
        }
        let mut touched: Vec<PatientId> = Vec::with_capacity(order.len());
        // New patients share one fresh arena, sealed below.
        let mut fresh = EventStore::new();
        let mut fresh_spans: Vec<(Patient, u32, u32)> = Vec::new();
        for patient in order {
            touched.push(patient.id);
            let mut entries = grouped.remove(&patient.id).unwrap_or_default();
            match collection.get_shared(patient.id) {
                Some(existing) => {
                    // Merge into the existing history: one rebuild on a
                    // store sharing the old interner (stable CodeIds),
                    // replaced in place (stable display position).
                    let mut history = History::clone(existing);
                    history.insert_all(entries);
                    collection.upsert_shared(Arc::new(history));
                }
                None => {
                    entries.sort_by_key(|e| (e.start(), e.end()));
                    let lo = fresh.len_u32();
                    for e in &entries {
                        fresh.push(e);
                    }
                    fresh_spans.push((patient, lo, fresh.len_u32()));
                }
            }
        }
        if !fresh_spans.is_empty() {
            let arena = Arc::new(fresh);
            for (patient, lo, hi) in fresh_spans {
                collection.upsert_shared(Arc::new(History::from_span(
                    patient,
                    Arc::clone(&arena),
                    lo,
                    hi,
                )));
            }
        }
        self.arena = EventStore::new();
        self.spans.clear();
        touched
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    ///
    /// Panics unless the spans tile the arena contiguously in arrival
    /// order and the arena's own columns validate.
    #[cfg(debug_assertions)]
    pub fn debug_validate(&self) {
        self.arena.debug_validate();
        let mut next = 0u32;
        for (i, &(_, lo, hi)) in self.spans.iter().enumerate() {
            assert!(lo <= hi, "epoch: span {i} is reversed ({lo}, {hi})");
            assert_eq!(lo, next, "epoch: span {i} does not start where span {} ended", i.max(1) - 1);
            next = hi;
        }
        assert_eq!(
            next,
            self.arena.len_u32(),
            "epoch: spans cover {next} rows but the arena holds {}",
            self.arena.len()
        );
    }

    /// Deep invariant check (debug builds only; a no-op in release).
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub fn debug_validate(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Payload, Sex, SourceKind};
    use pastas_codes::Code;
    use pastas_time::Date;

    fn patient(id: u64) -> Patient {
        Patient {
            id: PatientId(id),
            birth_date: Date::new(1950, 6, 15).unwrap(),
            sex: Sex::Female,
        }
    }

    fn diag(y: i32, m: u32, d: u32, code: &str) -> Entry {
        Entry::event(
            Date::new(y, m, d).unwrap().at_midnight(),
            Payload::Diagnosis(Code::icpc(code)),
            SourceKind::PrimaryCare,
        )
    }

    #[test]
    fn append_validates_and_stages() {
        let mut epoch = OpenEpoch::new();
        let report = epoch.append(
            patient(1),
            vec![diag(1949, 1, 1, "A01"), diag(2015, 3, 1, "T90")],
        );
        assert_eq!(report, ValidationReport { accepted: 1, dropped_pre_birth: 1 });
        assert_eq!(epoch.len(), 1);
        assert_eq!(epoch.pending_deltas(), 1);
        epoch.debug_validate();
    }

    #[test]
    fn seal_appends_new_patients_in_arrival_order() {
        let mut collection = HistoryCollection::new();
        let mut epoch = OpenEpoch::new();
        epoch.append(patient(7), vec![diag(2015, 3, 1, "T90")]);
        epoch.append(patient(3), vec![diag(2016, 1, 1, "K74"), diag(2015, 1, 1, "A01")]);
        let touched = epoch.seal_into(&mut collection);
        assert_eq!(touched, vec![PatientId(7), PatientId(3)]);
        assert!(epoch.is_empty());
        let ids: Vec<u64> = collection.iter().map(|h| h.id().0).collect();
        assert_eq!(ids, vec![7, 3], "arrival order");
        // Entries come out (start, end)-sorted despite arrival order.
        let h3 = collection.get(PatientId(3)).unwrap();
        let codes: Vec<_> =
            h3.entries().iter().map(|e| e.code().unwrap().value.clone()).collect();
        assert_eq!(codes, vec!["A01", "K74"]);
        h3.debug_validate();
        // Both new patients share one fresh arena.
        assert!(Arc::ptr_eq(
            collection.get_shared(PatientId(7)).unwrap().store(),
            collection.get_shared(PatientId(3)).unwrap().store(),
        ));
    }

    #[test]
    fn seal_merges_existing_patients_with_stable_ids_and_positions() {
        let mut collection = HistoryCollection::new();
        let mut epoch = OpenEpoch::new();
        epoch.append(patient(1), vec![diag(2015, 1, 1, "T90")]);
        epoch.append(patient(2), vec![diag(2015, 2, 1, "K74")]);
        epoch.seal_into(&mut collection);
        let old_interner = Arc::clone(
            collection.get(PatientId(1)).unwrap().store().interner_arc(),
        );
        let t90 = old_interner.lookup(&Code::icpc("T90")).expect("interned");

        // Second round touches patient 1 only.
        epoch.append(patient(1), vec![diag(2014, 6, 1, "A01")]);
        let touched = epoch.seal_into(&mut collection);
        assert_eq!(touched, vec![PatientId(1)]);
        assert_eq!(collection.position_of(PatientId(1)), Some(0), "position kept");
        let h = collection.get(PatientId(1)).unwrap();
        assert_eq!(h.len(), 2);
        let codes: Vec<_> =
            h.entries().iter().map(|e| e.code().unwrap().value.clone()).collect();
        assert_eq!(codes, vec!["A01", "T90"], "merged into sorted order");
        // The grown interner still resolves the old id to the same code.
        assert_eq!(h.store().interner().resolve(t90), &Code::icpc("T90"));
        // Patient 2 was untouched: same Arc as before.
        assert_eq!(collection.get(PatientId(2)).unwrap().len(), 1);
    }

    #[test]
    fn persons_only_delta_creates_an_empty_history() {
        let mut collection = HistoryCollection::new();
        let mut epoch = OpenEpoch::new();
        epoch.append(patient(9), Vec::new());
        let touched = epoch.seal_into(&mut collection);
        assert_eq!(touched, vec![PatientId(9)]);
        let h = collection.get(PatientId(9)).unwrap();
        assert!(h.is_empty());
        h.debug_validate();
    }

    #[test]
    fn repeated_deltas_for_one_patient_coalesce_at_seal() {
        let mut collection = HistoryCollection::new();
        let mut epoch = OpenEpoch::new();
        epoch.append(patient(5), vec![diag(2016, 1, 1, "R95")]);
        epoch.append(patient(5), vec![diag(2015, 1, 1, "T90")]);
        assert_eq!(epoch.pending_deltas(), 2);
        epoch.debug_validate();
        let touched = epoch.seal_into(&mut collection);
        assert_eq!(touched, vec![PatientId(5)], "one distinct patient");
        let h = collection.get(PatientId(5)).unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.entries().get(0).start() < h.entries().get(1).start());
    }

    #[test]
    fn sealing_an_empty_epoch_is_a_no_op() {
        let mut collection = HistoryCollection::new();
        let mut epoch = OpenEpoch::new();
        assert!(epoch.seal_into(&mut collection).is_empty());
        assert!(collection.is_empty());
    }
}
