//! Collections of histories — the unit the workbench visualizes and queries.

use crate::{History, PatientId};
use pastas_time::DateTime;
use std::collections::HashMap;
use std::sync::Arc;

/// Summary statistics over a collection, shown in the workbench status bar
/// and used by the scalability experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionStats {
    /// Number of histories.
    pub patients: usize,
    /// Total entries across all histories.
    pub entries: usize,
    /// Point events among them.
    pub events: usize,
    /// Intervals among them.
    pub intervals: usize,
    /// Earliest entry start.
    pub first: Option<DateTime>,
    /// Latest entry end.
    pub last: Option<DateTime>,
    /// Mean entries per history.
    pub mean_entries: f64,
}

/// An ordered collection of patient histories with id-based lookup.
///
/// Order is significant: it is the vertical order of the visualization, and
/// the sorting operators of the workbench permute it.
///
/// Histories are stored behind [`Arc`], so extracting a sub-collection (the
/// workbench's cohort selection) copies pointers, not the histories
/// themselves — O(matches) regardless of history size. Mutation goes
/// through [`Self::get_mut`], which copy-on-writes a shared history.
#[derive(Debug, Clone, Default)]
pub struct HistoryCollection {
    histories: Vec<Arc<History>>,
    by_id: HashMap<PatientId, usize>,
}

impl HistoryCollection {
    /// An empty collection.
    pub fn new() -> HistoryCollection {
        HistoryCollection::default()
    }

    /// Build from histories. Later duplicates of a patient id replace
    /// earlier ones (last write wins, as when re-importing a source).
    pub fn from_histories<I: IntoIterator<Item = History>>(histories: I) -> HistoryCollection {
        HistoryCollection::from_shared(histories.into_iter().map(Arc::new))
    }

    /// Build from already-shared histories without copying entry data —
    /// the cheap path cohort extraction uses. Same last-write-wins
    /// semantics as [`Self::from_histories`].
    pub fn from_shared<I: IntoIterator<Item = Arc<History>>>(histories: I) -> HistoryCollection {
        let mut c = HistoryCollection::new();
        for h in histories {
            c.upsert_shared(h);
        }
        c
    }

    /// Insert or replace the history for a patient.
    pub fn upsert(&mut self, history: History) {
        self.upsert_shared(Arc::new(history));
    }

    /// Insert or replace the history for a patient, sharing the allocation.
    pub fn upsert_shared(&mut self, history: Arc<History>) {
        match self.by_id.get(&history.id()) {
            Some(&i) => self.histories[i] = history,
            None => {
                self.by_id.insert(history.id(), self.histories.len());
                self.histories.push(history);
            }
        }
    }

    /// Histories in display order. The `Arc` is transparent to readers
    /// (deref coercion); cohort extraction clones the pointers.
    pub fn histories(&self) -> &[Arc<History>] {
        &self.histories
    }

    /// Look up one history by patient id.
    pub fn get(&self, id: PatientId) -> Option<&History> {
        self.by_id.get(&id).map(|&i| self.histories[i].as_ref())
    }

    /// The shared handle for a patient's history.
    pub fn get_shared(&self, id: PatientId) -> Option<&Arc<History>> {
        self.by_id.get(&id).map(|&i| &self.histories[i])
    }

    /// The display position of a patient's history — the row index the
    /// query layer's postings refer to.
    pub fn position_of(&self, id: PatientId) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// Mutable lookup by patient id. Copy-on-write: if the history is
    /// shared with another collection, it is cloned once here.
    pub fn get_mut(&mut self, id: PatientId) -> Option<&mut History> {
        self.by_id.get(&id).map(|&i| Arc::make_mut(&mut self.histories[i]))
    }

    /// Number of histories.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// True if no histories.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// Extract a sub-collection by predicate, preserving order. This is the
    /// "extraction of sub-collections" operation of §IV. The result shares
    /// the selected histories (pointer copies, no entry data cloned).
    pub fn extract<F: Fn(&History) -> bool>(&self, pred: F) -> HistoryCollection {
        HistoryCollection::from_shared(self.histories.iter().filter(|h| pred(h)).cloned())
    }

    /// Extract a sub-collection by ids (ids not present are skipped). The
    /// result is ordered by the id list, so a sorted id list re-sorts the
    /// view. Shares the selected histories.
    pub fn extract_ids(&self, ids: &[PatientId]) -> HistoryCollection {
        HistoryCollection::from_shared(
            ids.iter().filter_map(|&id| self.get_shared(id).cloned()),
        )
    }

    /// Reorder the collection by a key function (the workbench "sorting
    /// histories" operation). Stable.
    pub fn sort_by_key<K: Ord, F: Fn(&History) -> K>(&mut self, key: F) {
        self.histories.sort_by_key(|h| key(h));
        self.reindex();
    }

    fn reindex(&mut self) {
        self.by_id =
            self.histories.iter().enumerate().map(|(i, h)| (h.id(), i)).collect();
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> CollectionStats {
        let mut entries = 0usize;
        let mut events = 0usize;
        let mut intervals = 0usize;
        let mut first: Option<DateTime> = None;
        let mut last: Option<DateTime> = None;
        for h in &self.histories {
            entries += h.len();
            for e in h.entries() {
                if e.is_event() {
                    events += 1;
                } else {
                    intervals += 1;
                }
            }
            first = match (first, h.first_time()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            last = match (last, h.last_time()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        CollectionStats {
            patients: self.histories.len(),
            entries,
            events,
            intervals,
            first,
            last,
            mean_entries: if self.histories.is_empty() {
                0.0
            } else {
                entries as f64 / self.histories.len() as f64
            },
        }
    }

    /// The distinct arenas backing this collection, in first-appearance
    /// order — one for a monolithic build, one per patient range for a
    /// sharded one (see
    /// [`crate::CollectionBuilder::with_shard_patients`]).
    pub fn sharded_store(&self) -> crate::ShardedStore {
        crate::ShardedStore::from_collection(self)
    }

    /// Iterate over histories.
    pub fn iter(&self) -> HistoriesIter<'_> {
        HistoriesIter { inner: self.histories.iter() }
    }
}

/// Iterator over `&History` (hides the `Arc` from callers).
#[derive(Debug, Clone)]
pub struct HistoriesIter<'a> {
    inner: std::slice::Iter<'a, Arc<History>>,
}

impl<'a> Iterator for HistoriesIter<'a> {
    type Item = &'a History;
    fn next(&mut self) -> Option<&'a History> {
        self.inner.next().map(Arc::as_ref)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl DoubleEndedIterator for HistoriesIter<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.inner.next_back().map(Arc::as_ref)
    }
}

impl ExactSizeIterator for HistoriesIter<'_> {}

impl IntoIterator for HistoryCollection {
    type Item = History;
    type IntoIter = std::iter::Map<std::vec::IntoIter<Arc<History>>, fn(Arc<History>) -> History>;
    fn into_iter(self) -> Self::IntoIter {
        self.histories.into_iter().map(Arc::unwrap_or_clone)
    }
}

impl<'a> IntoIterator for &'a HistoryCollection {
    type Item = &'a History;
    type IntoIter = HistoriesIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Entry, Patient, Payload, Sex, SourceKind};
    use pastas_codes::Code;
    use pastas_time::Date;

    fn history(id: u64, codes: &[(&str, i32)]) -> History {
        let mut h = History::new(Patient {
            id: PatientId(id),
            birth_date: Date::new(1950, 1, 1).unwrap(),
            sex: if id.is_multiple_of(2) { Sex::Female } else { Sex::Male },
        });
        for &(code, year) in codes {
            h.insert(Entry::event(
                Date::new(year, 1, 1).unwrap().at_midnight(),
                Payload::Diagnosis(Code::icpc(code)),
                SourceKind::PrimaryCare,
            ));
        }
        h
    }

    #[test]
    fn upsert_replaces_by_id() {
        let mut c = HistoryCollection::new();
        c.upsert(history(1, &[("A01", 2015)]));
        c.upsert(history(2, &[("T90", 2015)]));
        c.upsert(history(1, &[("K74", 2016), ("R95", 2017)]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(PatientId(1)).unwrap().len(), 2);
    }

    #[test]
    fn extract_preserves_order() {
        let c = HistoryCollection::from_histories([
            history(3, &[("T90", 2015)]),
            history(1, &[("A01", 2015)]),
            history(2, &[("T90", 2016)]),
        ]);
        let diabetics = c.extract(|h| {
            h.entries().iter().any(|e| e.code().is_some_and(|c| c.value == "T90"))
        });
        let ids: Vec<_> = diabetics.iter().map(|h| h.id().0).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn extract_ids_orders_by_request() {
        let c = HistoryCollection::from_histories([
            history(1, &[]),
            history(2, &[]),
            history(3, &[]),
        ]);
        let sub = c.extract_ids(&[PatientId(3), PatientId(1), PatientId(99)]);
        let ids: Vec<_> = sub.iter().map(|h| h.id().0).collect();
        assert_eq!(ids, vec![3, 1]);
    }

    #[test]
    fn sort_by_key_reindexes() {
        let mut c = HistoryCollection::from_histories([
            history(2, &[("A01", 2015), ("T90", 2016)]),
            history(1, &[("A01", 2015)]),
        ]);
        c.sort_by_key(|h| h.len());
        let ids: Vec<_> = c.iter().map(|h| h.id().0).collect();
        assert_eq!(ids, vec![1, 2]);
        // Index still answers correctly after the permutation.
        assert_eq!(c.get(PatientId(2)).unwrap().len(), 2);
    }

    #[test]
    fn stats() {
        let mut c = HistoryCollection::from_histories([
            history(1, &[("A01", 2014), ("T90", 2015)]),
            history(2, &[("K74", 2016)]),
        ]);
        c.get_mut(PatientId(2)).unwrap().insert(Entry::interval(
            Date::new(2016, 5, 1).unwrap().at_midnight(),
            Date::new(2016, 5, 9).unwrap().at_midnight(),
            Payload::Episode(crate::EpisodeKind::Inpatient),
            SourceKind::Hospital,
        ));
        let s = c.stats();
        assert_eq!(s.patients, 2);
        assert_eq!(s.entries, 4);
        assert_eq!(s.events, 3);
        assert_eq!(s.intervals, 1);
        assert_eq!(s.first, Some(Date::new(2014, 1, 1).unwrap().at_midnight()));
        assert_eq!(s.last, Some(Date::new(2016, 5, 9).unwrap().at_midnight()));
        assert!((s.mean_entries - 2.0).abs() < 1e-9);
    }

    #[test]
    fn extract_shares_allocations() {
        let c = HistoryCollection::from_histories([
            history(1, &[("A01", 2015)]),
            history(2, &[("T90", 2016)]),
        ]);
        let sub = c.extract(|h| h.id().0 == 2);
        assert_eq!(sub.len(), 1);
        assert!(
            Arc::ptr_eq(&c.histories()[1], &sub.histories()[0]),
            "extraction copies pointers, not history data"
        );
    }

    #[test]
    fn get_mut_copy_on_writes_shared_history() {
        let c = HistoryCollection::from_histories([history(1, &[("A01", 2015)])]);
        let mut sub = c.extract(|_| true);
        sub.get_mut(PatientId(1)).unwrap().insert(Entry::event(
            Date::new(2020, 1, 1).unwrap().at_midnight(),
            Payload::Diagnosis(Code::icpc("T90")),
            SourceKind::PrimaryCare,
        ));
        assert_eq!(sub.get(PatientId(1)).unwrap().len(), 2);
        assert_eq!(c.get(PatientId(1)).unwrap().len(), 1, "parent untouched");
        assert!(!Arc::ptr_eq(&c.histories()[0], &sub.histories()[0]));
    }

    #[test]
    fn empty_stats() {
        let s = HistoryCollection::new().stats();
        assert_eq!(s.patients, 0);
        assert_eq!(s.first, None);
        assert_eq!(s.mean_entries, 0.0);
    }
}
