//! Property tests for model invariants, including the columnar-store
//! round trip (ISSUE 2 satellite): any generated `Vec<Entry>` pushed into
//! an [`EventStore`] reads back through [`EntryRef`] as identical entries
//! in identical order, and history construction over the store reproduces
//! the exact `ValidationReport` accounting of the arrays-of-structs era.

use crate::*;
use pastas_codes::Code;
use pastas_time::{Date, DateTime};
use proptest::prelude::*;

fn arb_datetime() -> impl Strategy<Value = DateTime> {
    // 1990..2030, seconds resolution.
    (631_152_000i64..1_893_456_000).prop_map(|s| DateTime::from_second_number(s).unwrap())
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Diagnosis(Code::icpc("T90"))),
        Just(Payload::Diagnosis(Code::icpc("K74"))),
        Just(Payload::Medication(Code::atc("C07AB02"))),
        (90.0f64..200.0).prop_map(|v| Payload::Measurement {
            kind: MeasurementKind::SystolicBp,
            value: v
        }),
        Just(Payload::Episode(EpisodeKind::Inpatient)),
        ".{0,12}".prop_map(Payload::Note),
    ]
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (arb_datetime(), arb_datetime(), arb_payload(), any::<bool>()).prop_map(
        |(a, b, payload, point)| {
            if point {
                Entry::event(a, payload, SourceKind::PrimaryCare)
            } else {
                Entry::interval(a, b, payload, SourceKind::Hospital)
            }
        },
    )
}

fn patient() -> Patient {
    Patient { id: PatientId(7), birth_date: Date::new(1940, 1, 1).unwrap(), sex: Sex::Male }
}

proptest! {
    /// Intervals always normalize to start <= end.
    #[test]
    fn interval_invariant(a in arb_datetime(), b in arb_datetime()) {
        let e = Entry::interval(a, b, Payload::Episode(EpisodeKind::Inpatient), SourceKind::Hospital);
        prop_assert!(e.start() <= e.end());
    }

    /// Histories are always sorted by (start, end) no matter the insertion
    /// order, and validation accounting is exact.
    #[test]
    fn history_sorted_invariant(entries in proptest::collection::vec(arb_entry(), 0..40)) {
        let mut h = History::new(patient());
        let n = entries.len();
        let report = h.insert_all(entries);
        h.debug_validate();
        h.store().debug_validate();
        prop_assert_eq!(report.accepted + report.dropped_pre_birth, n);
        prop_assert_eq!(h.len(), report.accepted);
        let es = h.entries();
        for i in 1..es.len() {
            let (a, b) = (es.get(i - 1), es.get(i));
            prop_assert!((a.start(), a.end()) <= (b.start(), b.end()));
        }
        // All surviving entries respect the birth boundary.
        for e in h.entries() {
            prop_assert!(e.start().date() >= h.patient().birth_date);
        }
    }

    /// The store ⇄ `Vec<Entry>` round trip is lossless: arbitrary entries
    /// pushed in arrival order read back identical through `EntryRef`.
    #[test]
    fn event_store_round_trip(entries in proptest::collection::vec(arb_entry(), 0..40)) {
        let store = EventStore::from_entries(&entries);
        store.debug_validate();
        prop_assert_eq!(store.len(), entries.len());
        for (i, e) in entries.iter().enumerate() {
            let r = store.get(i as u32);
            // Zero-copy view agrees field by field …
            prop_assert_eq!(r.start(), e.start());
            prop_assert_eq!(r.end(), e.end());
            prop_assert_eq!(r.source(), e.source());
            prop_assert_eq!(r.is_interval(), e.is_interval());
            prop_assert!(r.payload() == *e.payload());
            // … and materializes back to the identical entry.
            prop_assert_eq!(&r.to_entry(), e);
            prop_assert_eq!(r.describe(), e.describe());
        }
    }

    /// Building through the shared-arena `CollectionBuilder` produces the
    /// same entries, order, and `ValidationReport` counts as the
    /// insert-by-insert `History` path.
    #[test]
    fn builder_matches_incremental_history(
        entries in proptest::collection::vec(arb_entry(), 0..40),
    ) {
        let mut reference = History::new(patient());
        let mut expected = ValidationReport::default();
        for e in entries.clone() {
            if reference.insert(e) {
                expected.accepted += 1;
            } else {
                expected.dropped_pre_birth += 1;
            }
        }
        let mut builder = CollectionBuilder::new();
        let report = builder.add_patient(patient(), entries);
        prop_assert_eq!(report, expected);
        let (collection, _) = builder.build();
        let built = collection.get(PatientId(7)).unwrap();
        prop_assert_eq!(built.len(), reference.len());
        for (a, b) in built.entries().iter().zip(reference.entries()) {
            prop_assert_eq!(a, b);
        }
    }

    /// entries_in agrees with a naive overlap filter.
    #[test]
    fn window_query_agrees_with_naive(
        entries in proptest::collection::vec(arb_entry(), 0..30),
        a in arb_datetime(),
        b in arb_datetime(),
    ) {
        let (from, to) = if a <= b { (a, b) } else { (b, a) };
        let mut h = History::new(patient());
        h.insert_all(entries);
        let fast: Vec<_> = h.entries_in(from, to).map(|e| e.to_entry()).collect();
        let naive: Vec<_> = h
            .entries()
            .iter()
            .filter(|e| e.start() <= to && e.end() >= from)
            .map(|e| e.to_entry())
            .collect();
        prop_assert_eq!(fast, naive);
    }

    /// Collection stats add up.
    #[test]
    fn stats_add_up(sizes in proptest::collection::vec(0usize..12, 0..8)) {
        let mut c = HistoryCollection::new();
        for (i, n) in sizes.iter().enumerate() {
            let mut h = History::new(Patient {
                id: PatientId(i as u64),
                birth_date: Date::new(1940, 1, 1).unwrap(),
                sex: Sex::Female,
            });
            for k in 0..*n {
                h.insert(Entry::event(
                    Date::new(2000 + k as i32 % 20, 1, 1).unwrap().at_midnight(),
                    Payload::Diagnosis(Code::icpc("A01")),
                    SourceKind::PrimaryCare,
                ));
            }
            c.upsert(h);
        }
        let s = c.stats();
        prop_assert_eq!(s.patients, sizes.len());
        prop_assert_eq!(s.entries, sizes.iter().sum::<usize>());
        prop_assert_eq!(s.events + s.intervals, s.entries);
    }

    /// extract ∘ extract == extract of the conjunction.
    #[test]
    fn extract_composes(ids in proptest::collection::vec(0u64..30, 0..20)) {
        let c = HistoryCollection::from_histories(ids.iter().map(|&i| {
            History::new(Patient {
                id: PatientId(i),
                birth_date: Date::new(1940, 1, 1).unwrap(),
                sex: Sex::Male,
            })
        }));
        let twice = c.extract(|h| h.id().0.is_multiple_of(2)).extract(|h| h.id().0.is_multiple_of(3));
        let once = c.extract(|h| h.id().0.is_multiple_of(6));
        let a: Vec<_> = twice.iter().map(|h| h.id()).collect();
        let b: Vec<_> = once.iter().map(|h| h.id()).collect();
        prop_assert_eq!(a, b);
    }
}
