//! Entries: point events and intervals with clinical payloads.

use pastas_codes::Code;
use pastas_time::{DateTime, Duration};

/// Where an entry was aggregated from — the heterogeneous sources of the
/// paper's title. §III: "any visit to a hospital (inpatient, outpatient or
/// day treatment), receiving services from the adjacent municipalities
/// (home care services, nursing home etc.) and visits to a primary care
/// provider (GP, emergency primary care …) or private medical specialist",
/// plus the prescription register the medication colorings come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceKind {
    /// Somatic hospital (NPR-style episodes).
    Hospital,
    /// GP and emergency primary care (KUHR-style claims).
    PrimaryCare,
    /// Private medical specialist claims.
    Specialist,
    /// Municipal services: home care, nursing homes (IPLOS-style).
    Municipal,
    /// Dispensed prescriptions (NorPD-style).
    Prescription,
}

impl SourceKind {
    /// All sources, in a stable display order.
    pub const ALL: [SourceKind; 5] = [
        SourceKind::Hospital,
        SourceKind::PrimaryCare,
        SourceKind::Specialist,
        SourceKind::Municipal,
        SourceKind::Prescription,
    ];

    /// Short label used in legends and serialized output.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::Hospital => "hospital",
            SourceKind::PrimaryCare => "primary-care",
            SourceKind::Specialist => "specialist",
            SourceKind::Municipal => "municipal",
            SourceKind::Prescription => "prescription",
        }
    }

    /// Position within [`SourceKind::ALL`] — the dense id the analytics
    /// accumulator arrays index by.
    pub fn dense_index(self) -> usize {
        match self {
            SourceKind::Hospital => 0,
            SourceKind::PrimaryCare => 1,
            SourceKind::Specialist => 2,
            SourceKind::Municipal => 3,
            SourceKind::Prescription => 4,
        }
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The kind of care an interval entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EpisodeKind {
    /// Admitted hospital stay.
    Inpatient,
    /// Hospital outpatient contact series.
    Outpatient,
    /// Hospital day treatment.
    DayTreatment,
    /// Municipal home-care service period.
    HomeCare,
    /// Nursing-home residency.
    NursingHome,
    /// Rehabilitation stay.
    Rehabilitation,
    /// Continuous medication exposure derived from dispensings.
    MedicationExposure,
}

impl EpisodeKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EpisodeKind::Inpatient => "inpatient stay",
            EpisodeKind::Outpatient => "outpatient series",
            EpisodeKind::DayTreatment => "day treatment",
            EpisodeKind::HomeCare => "home care",
            EpisodeKind::NursingHome => "nursing home",
            EpisodeKind::Rehabilitation => "rehabilitation",
            EpisodeKind::MedicationExposure => "medication exposure",
        }
    }
}

/// What a clinical measurement records. Fig. 1 shows "blood pressure
/// measurements" as arrows; the other kinds appear in the chronic-disease
/// pathways the cohort study follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MeasurementKind {
    /// Systolic blood pressure, mmHg.
    SystolicBp,
    /// Diastolic blood pressure, mmHg.
    DiastolicBp,
    /// Glycated haemoglobin, %.
    Hba1c,
    /// Body weight, kg.
    Weight,
    /// Peak expiratory flow, L/min.
    PeakFlow,
    /// Total cholesterol, mmol/L.
    Cholesterol,
}

impl MeasurementKind {
    /// Unit string for display.
    pub fn unit(self) -> &'static str {
        match self {
            MeasurementKind::SystolicBp | MeasurementKind::DiastolicBp => "mmHg",
            MeasurementKind::Hba1c => "%",
            MeasurementKind::Weight => "kg",
            MeasurementKind::PeakFlow => "L/min",
            MeasurementKind::Cholesterol => "mmol/L",
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MeasurementKind::SystolicBp => "systolic BP",
            MeasurementKind::DiastolicBp => "diastolic BP",
            MeasurementKind::Hba1c => "HbA1c",
            MeasurementKind::Weight => "weight",
            MeasurementKind::PeakFlow => "peak flow",
            MeasurementKind::Cholesterol => "cholesterol",
        }
    }
}

/// The clinical content of an entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A recorded diagnosis (ICPC-2 from primary care, ICD-10 from
    /// hospitals).
    Diagnosis(Code),
    /// A dispensed or administered medication (ATC-coded).
    Medication(Code),
    /// A clinical measurement.
    Measurement {
        /// What was measured.
        kind: MeasurementKind,
        /// The value, in [`MeasurementKind::unit`] units.
        value: f64,
    },
    /// A care episode (mostly used on intervals).
    Episode(EpisodeKind),
    /// Free text extracted from the record.
    Note(String),
}

impl Payload {
    /// The clinical code, if this payload carries one.
    pub fn code(&self) -> Option<&Code> {
        match self {
            Payload::Diagnosis(c) | Payload::Medication(c) => Some(c),
            _ => None,
        }
    }

    /// One-line rendering for details-on-demand panels.
    pub fn describe(&self) -> String {
        match self {
            Payload::Diagnosis(c) => match c.display_name() {
                Some(name) => format!("diagnosis {} ({name})", c.value),
                None => format!("diagnosis {}", c.value),
            },
            Payload::Medication(c) => match c.display_name() {
                Some(name) => format!("medication {} ({name})", c.value),
                None => format!("medication {}", c.value),
            },
            Payload::Measurement { kind, value } => {
                format!("{} {value:.1} {}", kind.label(), kind.unit())
            }
            Payload::Episode(k) => k.label().to_owned(),
            Payload::Note(text) => {
                let mut t: String = text.chars().take(60).collect();
                if t.len() < text.len() {
                    t.push('…');
                }
                format!("note: {t}")
            }
        }
    }
}

/// A point entry — "events that happen at a given time and have no
/// duration".
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the event happened.
    pub time: DateTime,
    /// What it was.
    pub payload: Payload,
    /// Which source it was aggregated from.
    pub source: SourceKind,
}

/// An interval entry — "defined by their start and end times", e.g. a
/// hospital stay.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Start of the interval.
    pub start: DateTime,
    /// End of the interval (inclusive semantics: the last covered instant).
    pub end: DateTime,
    /// What it was.
    pub payload: Payload,
    /// Which source it was aggregated from.
    pub source: SourceKind,
}

impl Interval {
    /// The interval's duration.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// An entry of a patient history: a point [`Event`] or an [`Interval`].
#[derive(Debug, Clone, PartialEq)]
pub enum Entry {
    /// A point event.
    Event(Event),
    /// A spanning interval.
    Interval(Interval),
}

impl Entry {
    /// Convenience constructor for a point event.
    pub fn event(time: DateTime, payload: Payload, source: SourceKind) -> Entry {
        Entry::Event(Event { time, payload, source })
    }

    /// Convenience constructor for an interval. `start` and `end` are
    /// normalized (swapped if reversed) so the invariant `start <= end`
    /// always holds.
    pub fn interval(start: DateTime, end: DateTime, payload: Payload, source: SourceKind) -> Entry {
        let (start, end) = if start <= end { (start, end) } else { (end, start) };
        Entry::Interval(Interval { start, end, payload, source })
    }

    /// The anchor time: event time, or interval start.
    pub fn start(&self) -> DateTime {
        match self {
            Entry::Event(e) => e.time,
            Entry::Interval(i) => i.start,
        }
    }

    /// The end time: event time, or interval end.
    pub fn end(&self) -> DateTime {
        match self {
            Entry::Event(e) => e.time,
            Entry::Interval(i) => i.end,
        }
    }

    /// The payload.
    pub fn payload(&self) -> &Payload {
        match self {
            Entry::Event(e) => &e.payload,
            Entry::Interval(i) => &i.payload,
        }
    }

    /// The provenance tag.
    pub fn source(&self) -> SourceKind {
        match self {
            Entry::Event(e) => e.source,
            Entry::Interval(i) => i.source,
        }
    }

    /// The clinical code, if any.
    pub fn code(&self) -> Option<&Code> {
        self.payload().code()
    }

    /// True for point events.
    pub fn is_event(&self) -> bool {
        matches!(self, Entry::Event(_))
    }

    /// True for intervals.
    pub fn is_interval(&self) -> bool {
        matches!(self, Entry::Interval(_))
    }

    /// True if this entry overlaps the closed time window `[from, to]`.
    pub fn overlaps(&self, from: DateTime, to: DateTime) -> bool {
        self.start() <= to && self.end() >= from
    }

    /// One-line rendering for details-on-demand panels.
    pub fn describe(&self) -> String {
        match self {
            Entry::Event(e) => format!("{} — {} [{}]", e.time, e.payload.describe(), e.source),
            Entry::Interval(i) => format!(
                "{} → {} ({}) — {} [{}]",
                i.start,
                i.end,
                i.duration(),
                i.payload.describe(),
                i.source
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastas_time::Date;

    fn t(y: i32, m: u32, d: u32) -> DateTime {
        Date::new(y, m, d).unwrap().at_midnight()
    }

    #[test]
    fn interval_normalizes_reversed_bounds() {
        let e = Entry::interval(
            t(2020, 5, 10),
            t(2020, 5, 1),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        );
        assert!(e.start() <= e.end());
        assert_eq!(e.start(), t(2020, 5, 1));
    }

    #[test]
    fn event_start_equals_end() {
        let e = Entry::event(
            t(2020, 3, 3),
            Payload::Diagnosis(Code::icpc("T90")),
            SourceKind::PrimaryCare,
        );
        assert_eq!(e.start(), e.end());
        assert!(e.is_event());
        assert!(!e.is_interval());
    }

    #[test]
    fn overlap_semantics() {
        let stay = Entry::interval(
            t(2020, 5, 1),
            t(2020, 5, 10),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        );
        assert!(stay.overlaps(t(2020, 5, 5), t(2020, 5, 20)));
        assert!(stay.overlaps(t(2020, 4, 1), t(2020, 5, 1))); // touch at start
        assert!(stay.overlaps(t(2020, 5, 10), t(2020, 6, 1))); // touch at end
        assert!(!stay.overlaps(t(2020, 5, 11), t(2020, 6, 1)));
        assert!(!stay.overlaps(t(2020, 4, 1), t(2020, 4, 30)));
    }

    #[test]
    fn payload_codes() {
        assert!(Payload::Diagnosis(Code::icpc("T90")).code().is_some());
        assert!(Payload::Medication(Code::atc("C07AB02")).code().is_some());
        assert!(Payload::Episode(EpisodeKind::HomeCare).code().is_none());
        assert!(Payload::Measurement { kind: MeasurementKind::SystolicBp, value: 140.0 }
            .code()
            .is_none());
    }

    #[test]
    fn descriptions_are_informative() {
        let d = Payload::Diagnosis(Code::icpc("T90")).describe();
        assert!(d.contains("T90") && d.contains("Diabetes"), "{d}");
        let m = Payload::Measurement { kind: MeasurementKind::SystolicBp, value: 142.5 }.describe();
        assert!(m.contains("142.5") && m.contains("mmHg"), "{m}");
        let n = Payload::Note("x".repeat(100)).describe();
        assert!(n.len() < 100, "long notes are truncated: {n}");
    }

    #[test]
    fn entry_describe_includes_source_and_duration() {
        let stay = Entry::interval(
            t(2020, 5, 1),
            t(2020, 5, 10),
            Payload::Episode(EpisodeKind::Inpatient),
            SourceKind::Hospital,
        );
        let s = stay.describe();
        assert!(s.contains("9d") && s.contains("hospital"), "{s}");
    }

    #[test]
    fn source_and_measurement_tables() {
        assert_eq!(SourceKind::ALL.len(), 5);
        for s in SourceKind::ALL {
            assert!(!s.label().is_empty());
        }
        assert_eq!(MeasurementKind::SystolicBp.unit(), "mmHg");
        assert_eq!(MeasurementKind::Cholesterol.unit(), "mmol/L");
    }
}
